//! Quickstart: evaluate one cache configuration on one workload.
//!
//! Builds the paper's §8 headline configuration — split 8KB direct-mapped
//! L1 caches over a 64KB 4-way *exclusive* L2 — runs the li-like workload
//! through it, and prints the miss rates, the derived cycle times, the
//! chip area, and the resulting time per instruction.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use two_level_cache::area::AreaModel;
use two_level_cache::study::{evaluate, L2Policy, MachineConfig, MachineTiming, SimBudget};
use two_level_cache::timing::TimingModel;
use two_level_cache::trace::spec::SpecBenchmark;

fn main() {
    let timing = TimingModel::paper(); // 0.5µm operating point (§2.3)
    let area = AreaModel::new(); // Mulder rbe model (§2.4)

    let config = MachineConfig::two_level(8, 64, 4, L2Policy::Exclusive, 50.0);
    let benchmark = SpecBenchmark::Li;

    println!("configuration : {config}");
    println!("workload      : {benchmark} (synthetic SPEC'89-like stream)");

    let t = MachineTiming::derive(&config, &timing, &area);
    println!("\nderived physical parameters:");
    println!("  processor cycle   : {:.2} ns (set by the L1, §2.1)", t.l1_cycle_ns);
    println!(
        "  L2 cycle          : {:.2} ns raw -> {} processor cycles (§2.3 rounding)",
        t.l2_raw_cycle_ns, t.l2_cycles
    );
    println!("  off-chip service  : {:.2} ns after rounding", t.offchip_rounded_ns);
    println!("  chip area         : {:.0} rbe (both L1s + L2)", t.area_rbe);

    let point = evaluate(&config, benchmark, SimBudget::standard(), &timing, &area);
    let s = &point.stats;
    println!("\nsimulation ({} measured instructions):", s.instructions);
    println!("  L1 miss rate      : {:.4} per reference", s.l1_miss_rate());
    println!("  L2 local miss rate: {:.4} per L1 miss", s.l2_local_miss_rate());
    println!("  global miss rate  : {:.4} go off-chip", s.global_miss_rate());

    println!("\nresult:");
    println!("  TPI = {:.2} ns/instruction  (CPI {:.2})", point.tpi_ns, point.cpi);
}
