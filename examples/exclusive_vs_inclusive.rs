//! Exclusive vs conventional caching, head to head.
//!
//! Reproduces the paper's §8 argument at the mechanism level:
//!
//! 1. the Figure 21 walk-through — two lines that conflict in both cache
//!    levels end up *mutually exclusive* (both on chip), while an
//!    L1-only conflict leaves inclusion intact;
//! 2. a duplication audit on a real workload — the conventional
//!    hierarchy wastes most of its L2 on lines already in the L1s, the
//!    exclusive one does not;
//! 3. the resulting off-chip miss reduction across L2 sizes.
//!
//! ```text
//! cargo run --release --example exclusive_vs_inclusive
//! ```

use two_level_cache::cache::{
    Associativity, CacheConfig, ConventionalTwoLevel, DuplicationReport, ExclusiveTwoLevel,
    MemorySystem,
};
use two_level_cache::trace::spec::SpecBenchmark;

fn main() {
    // Part 1: the Figure 21 scenario (4-line L1, 16-line L2, both DM).
    println!("== Figure 21: exclusion vs inclusion during swapping ==\n");
    let l1 = CacheConfig::paper(64, Associativity::Direct).expect("valid L1");
    let l2 = CacheConfig::paper(256, Associativity::Direct).expect("valid L2");

    let mut sys = ExclusiveTwoLevel::new(l1, l2);
    let a = two_level_cache::trace::Addr::new(0x000); // L1 line 0, L2 line 0
    let e = two_level_cache::trace::Addr::new(0x100); // L1 line 0, L2 line 0
    use two_level_cache::trace::MemRef;
    for (step, addr) in [("A", a), ("E", e), ("A", a), ("E", e), ("A", a)] {
        let level = sys.access(MemRef::load(addr));
        println!(
            "ref {step}: served by {level:?}; L1 holds A:{} E:{}, L2 holds A:{} E:{}",
            sys.l1d().contains(a.line(16)),
            sys.l1d().contains(e.line(16)),
            sys.l2().contains(a.line(16)),
            sys.l2().contains(e.line(16)),
        );
    }
    println!("-> after warm-up, every reference is an on-chip swap: exclusion.\n");

    // Part 2: duplication audit on gcc1.
    println!("== duplication audit: gcc1 on 4KB L1s / 16KB 4-way L2 ==\n");
    let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct).expect("valid L1");
    let l2 = CacheConfig::paper(16 * 1024, Associativity::SetAssoc(4)).expect("valid L2");
    let mut conv = ConventionalTwoLevel::new(l1, l2);
    let mut excl = ExclusiveTwoLevel::new(l1, l2);
    let mut workload = SpecBenchmark::Gcc1.workload();
    for _ in 0..400_000 {
        let instr = workload.next_instruction();
        conv.access_instruction(&instr);
    }
    let mut workload = SpecBenchmark::Gcc1.workload();
    for _ in 0..400_000 {
        let instr = workload.next_instruction();
        excl.access_instruction(&instr);
    }
    let rc = DuplicationReport::measure(conv.l1i(), conv.l1d(), conv.l2());
    let re = DuplicationReport::measure(excl.l1i(), excl.l1d(), excl.l2());
    println!("conventional: {rc}");
    println!("exclusive   : {re}");
    println!(
        "-> exclusive holds {} more unique lines on the same silicon.\n",
        re.unique_on_chip() as i64 - rc.unique_on_chip() as i64
    );
    println!(
        "off-chip misses: conventional {}, exclusive {} ({:+.1}%)",
        conv.stats().l2_misses,
        excl.stats().l2_misses,
        (excl.stats().l2_misses as f64 / conv.stats().l2_misses as f64 - 1.0) * 100.0
    );

    // Part 3: the gain across L2 sizes.
    println!("\n== off-chip misses vs L2 size (gcc1, 4KB L1s, 4-way L2) ==\n");
    println!("{:>8} {:>14} {:>12} {:>8}", "L2", "conventional", "exclusive", "delta");
    for l2_kb in [8u64, 16, 32, 64, 128] {
        let l2 = CacheConfig::paper(l2_kb * 1024, Associativity::SetAssoc(4)).expect("valid");
        let mut conv = ConventionalTwoLevel::new(l1, l2);
        let mut excl = ExclusiveTwoLevel::new(l1, l2);
        let mut workload = SpecBenchmark::Gcc1.workload();
        for _ in 0..300_000 {
            let instr = workload.next_instruction();
            conv.access_instruction(&instr);
        }
        let mut workload = SpecBenchmark::Gcc1.workload();
        for _ in 0..300_000 {
            let instr = workload.next_instruction();
            excl.access_instruction(&instr);
        }
        println!(
            "{:>7}K {:>14} {:>12} {:>7.1}%",
            l2_kb,
            conv.stats().l2_misses,
            excl.stats().l2_misses,
            (excl.stats().l2_misses as f64 / conv.stats().l2_misses as f64 - 1.0) * 100.0
        );
    }
}
