//! Record a workload to a trace file, replay it through a hierarchy, and
//! verify the replay reproduces the live run exactly.
//!
//! The 1993 study was trace-driven (§2.2); this repository's workloads
//! are synthetic, but the same harness accepts recorded traces — yours
//! included — via the `TLCITR01` instruction-trace format and
//! [`ReplaySource`].
//!
//! ```text
//! cargo run --release --example record_and_replay [-- /path/to/trace.bin]
//! ```
//!
//! With a path argument, the example replays *that* trace instead of
//! recording a synthetic one.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use two_level_cache::study::experiment::{simulate, simulate_source, SimBudget};
use two_level_cache::study::{L2Policy, MachineConfig};
use two_level_cache::trace::io::{read_instruction_trace, write_instruction_trace};
use two_level_cache::trace::spec::SpecBenchmark;
use two_level_cache::trace::ReplaySource;

fn main() -> std::io::Result<()> {
    let cfg = MachineConfig::two_level(4, 32, 4, L2Policy::Exclusive, 50.0);
    let budget = SimBudget { instructions: 200_000, warmup_instructions: 50_000 };
    let n_total = (budget.instructions + budget.warmup_instructions) as usize;

    let (records, name) = match std::env::args().nth(1) {
        Some(path) => {
            println!("replaying user trace {path}...");
            let recs = read_instruction_trace(BufReader::new(File::open(&path)?))?;
            (recs, path)
        }
        None => {
            // Record the li workload to a temporary trace file.
            let path = std::env::temp_dir().join("tlc_li_trace.bin");
            println!("recording {} instructions of li to {}...", n_total, path.display());
            let recs = SpecBenchmark::Li.workload().take_instructions(n_total);
            write_instruction_trace(BufWriter::new(File::create(&path)?), &recs)?;
            let size = std::fs::metadata(&path)?.len();
            println!(
                "trace file: {} bytes ({:.1} bytes/instruction)",
                size,
                size as f64 / n_total as f64
            );

            // Read it back — everything downstream uses only the file.
            let recs = read_instruction_trace(BufReader::new(File::open(&path)?))?;
            (recs, "li (recorded)".to_string())
        }
    };

    println!("replaying {} instructions from {name} through {cfg}...", records.len());
    let mut replay = ReplaySource::new(&name, records);
    let replay_stats = simulate_source(&cfg, &mut replay, budget);
    println!("replay : {replay_stats}");

    if name.starts_with("li") {
        // Cross-check against the live generator.
        let mut live = SpecBenchmark::Li.workload();
        let live_stats = simulate(&cfg, &mut live, budget);
        println!("live   : {live_stats}");
        assert_eq!(replay_stats, live_stats, "replay must reproduce the live run exactly");
        println!("replay == live: the trace file round-trips losslessly.");
    }
    Ok(())
}
