//! Design-space exploration: regenerate a Figure-5-style study for any
//! workload from the command line.
//!
//! Sweeps every configuration of the paper's space (single-level 1–256KB
//! plus all `L1:L2` pairs with `L2 ≥ 2×L1`) on the chosen workload and
//! prints the full scatter with the best-performance envelope marked,
//! exactly like the paper's figures.
//!
//! ```text
//! cargo run --release --example design_space -- gcc1
//! cargo run --release --example design_space -- tomcatv 200
//! ```
//!
//! The optional second argument is the off-chip miss service time in ns
//! (50 = with board-level cache, 200 = without; default 50).

use two_level_cache::area::AreaModel;
use two_level_cache::study::configspace::{full_space, SpaceOptions};
use two_level_cache::study::report::{envelope_table, points_table};
use two_level_cache::study::runner::sweep;
use two_level_cache::study::SimBudget;
use two_level_cache::timing::TimingModel;
use two_level_cache::trace::spec::SpecBenchmark;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "gcc1".to_string());
    let offchip: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(50.0);

    let Some(benchmark) = SpecBenchmark::from_name(&name) else {
        eprintln!(
            "unknown workload {name:?}; choose one of: {}",
            SpecBenchmark::ALL.map(|b| b.name()).join(" ")
        );
        std::process::exit(2);
    };

    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let opts = SpaceOptions { offchip_ns: offchip, ..SpaceOptions::baseline() };
    let configs = full_space(&opts);

    eprintln!("sweeping {} configurations on {benchmark}...", configs.len());
    let points = sweep(&configs, benchmark, SimBudget::standard(), &timing, &area);

    println!(
        "{}",
        points_table(
            &format!(
                "{benchmark}: {offchip}ns off-chip, 4-way conventional L2 (envelope marked *)"
            ),
            &points
        )
    );
    println!("{}", envelope_table("best performance envelope:", &points));
}
