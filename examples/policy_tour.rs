//! A guided tour of every cache organisation in the library, run on one
//! workload with identical geometry so the policies are directly
//! comparable.
//!
//! ```text
//! cargo run --release --example policy_tour [-- <workload>]
//! ```

use two_level_cache::cache::{
    Associativity, CacheConfig, ConventionalTwoLevel, DuplicationReport, ExclusiveTwoLevel,
    InclusiveTwoLevel, MemorySystem, SingleLevel, StreamBufferSystem, VictimCacheSystem,
};
use two_level_cache::trace::spec::SpecBenchmark;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gcc1".to_string());
    let Some(benchmark) = SpecBenchmark::from_name(&name) else {
        eprintln!(
            "unknown workload {name:?}; choose one of: {}",
            SpecBenchmark::ALL.map(|b| b.name()).join(" ")
        );
        std::process::exit(2);
    };

    let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct).expect("valid L1");
    let l2 = CacheConfig::paper(32 * 1024, Associativity::SetAssoc(4)).expect("valid L2");
    const N: u64 = 400_000;

    println!(
        "workload {benchmark}, {N} instructions; 4KB direct-mapped L1 pair; 32KB 4-way L2 where applicable\n"
    );
    println!(
        "{:<58} {:>9} {:>9} {:>10} {:>8}",
        "organisation", "L1 miss", "L2 local", "off-chip", "dup"
    );

    let mut systems: Vec<Box<dyn MemorySystem>> = vec![
        Box::new(SingleLevel::new(l1)),
        Box::new(VictimCacheSystem::new(l1, 8).expect("valid buffer")),
        Box::new(StreamBufferSystem::new(l1, 8, 4)),
        Box::new(InclusiveTwoLevel::new(l1, l2)),
        Box::new(ConventionalTwoLevel::new(l1, l2)),
        Box::new(ExclusiveTwoLevel::new(l1, l2)),
    ];
    for sys in &mut systems {
        let mut w = benchmark.workload();
        for _ in 0..N {
            let rec = w.next_instruction();
            sys.access_instruction(&rec);
        }
        let s = sys.stats();
        println!(
            "{:<58} {:>9.4} {:>9.4} {:>10} {:>8}",
            sys.describe(),
            s.l1_miss_rate(),
            s.l2_local_miss_rate(),
            s.l2_misses,
            "-",
        );
    }

    // Duplication comparison for the three true two-level policies.
    println!("\non-chip content overlap after the run:");
    let mut conv = ConventionalTwoLevel::new(l1, l2);
    let mut excl = ExclusiveTwoLevel::new(l1, l2);
    let mut incl = InclusiveTwoLevel::new(l1, l2);
    for (label, report) in [
        ("inclusive", {
            let mut w = benchmark.workload();
            for _ in 0..N {
                let rec = w.next_instruction();
                incl.access_instruction(&rec);
            }
            DuplicationReport::measure(incl.l1i(), incl.l1d(), incl.l2())
        }),
        ("conventional", {
            let mut w = benchmark.workload();
            for _ in 0..N {
                let rec = w.next_instruction();
                conv.access_instruction(&rec);
            }
            DuplicationReport::measure(conv.l1i(), conv.l1d(), conv.l2())
        }),
        ("exclusive", {
            let mut w = benchmark.workload();
            for _ in 0..N {
                let rec = w.next_instruction();
                excl.access_instruction(&rec);
            }
            DuplicationReport::measure(excl.l1i(), excl.l1d(), excl.l2())
        }),
    ] {
        println!("  {label:<14} {report}");
    }
    println!(
        "\nThe §8 story in one table: inclusion duplicates everything, the conventional\n\
         policy duplicates whatever demand flow happens to copy, and exclusion holds\n\
         the most unique lines — which is why it misses least."
    );
}
