//! Cache physics explorer: the area/time tradeoff behind the study.
//!
//! Prints, for every cache size, the speed-optimal array organisation the
//! Wilton–Jouppi model selects, the resulting access/cycle times, and the
//! rbe area the Mulder model charges — the machinery behind Figures 1
//! and 2 — then shows how associativity and dual-porting shift both.
//!
//! ```text
//! cargo run --release --example cache_physics
//! ```

use two_level_cache::area::{AreaModel, CacheGeometry, CellKind};
use two_level_cache::timing::TimingModel;

fn main() {
    let timing = TimingModel::paper();
    let area = AreaModel::new();

    println!("direct-mapped caches, single-ported cells (Figure 1's axes):\n");
    println!(
        "{:>6} {:>11} {:>10} {:>11} {:>9} {:>32}",
        "size", "access(ns)", "cycle(ns)", "area(rbe)", "ovh", "speed-optimal organisation"
    );
    for kb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
        let g = CacheGeometry::paper(kb * 1024, 1);
        let t = timing.optimal(&g, CellKind::SinglePorted);
        let a = area.cache_area(&g, &t.org, CellKind::SinglePorted);
        println!(
            "{:>5}K {:>11.2} {:>10.2} {:>11.0} {:>8.1}% {:>32}",
            kb,
            t.access_ns,
            t.cycle_ns,
            a.total().value(),
            a.overhead_fraction() * 100.0,
            t.org.to_string(),
        );
    }

    println!("\nwhat associativity costs at 64KB:\n");
    println!("{:>6} {:>11} {:>10} {:>11}", "ways", "access(ns)", "cycle(ns)", "area(rbe)");
    for ways in [1u32, 2, 4, 8] {
        let g = CacheGeometry::paper(64 * 1024, ways);
        let t = timing.optimal(&g, CellKind::SinglePorted);
        let a = area.total_area(&g, &t.org, CellKind::SinglePorted);
        println!("{:>6} {:>11.2} {:>10.2} {:>11.0}", ways, t.access_ns, t.cycle_ns, a.value());
    }

    println!("\nwhat dual-porting costs (8KB direct-mapped, §6):\n");
    for cell in [CellKind::SinglePorted, CellKind::DualPorted] {
        let g = CacheGeometry::paper(8 * 1024, 1);
        let t = timing.optimal(&g, cell);
        let a = area.total_area(&g, &t.org, cell);
        println!(
            "  {cell:<14}: access {:.2}ns, cycle {:.2}ns, area {:.0} rbe, {}x issue bandwidth",
            t.access_ns,
            t.cycle_ns,
            a.value(),
            cell.bandwidth_factor(),
        );
    }
}
