//! The paper's §10 future work, explored: multicycle pipelined L1 caches
//! and non-blocking loads.
//!
//! §10 makes two conjectures about extensions the authors were still
//! working on in 1993:
//!
//! 1. multicycle L1s "reduce the effectiveness of two-level on-chip
//!    caching" because a big L1 no longer drags the cycle time down;
//! 2. non-blocking loads "may increase the benefits of a two-level
//!    on-chip caching organization".
//!
//! This example sweeps the single-level sizes under each model and shows
//! how the optimum moves.
//!
//! ```text
//! cargo run --release --example future_work
//! ```

use two_level_cache::area::{AreaModel, CacheGeometry, CellKind};
use two_level_cache::study::future::{tpi_extended, FutureWorkModel};
use two_level_cache::study::{evaluate, MachineConfig, MachineTiming, SimBudget};
use two_level_cache::timing::TimingModel;
use two_level_cache::trace::spec::SpecBenchmark;

fn main() {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let budget = SimBudget { instructions: 400_000, warmup_instructions: 120_000 };
    let benchmark = SpecBenchmark::Gcc1;

    // The fixed datapath cycle a multicycle design would use: what the
    // fastest (1KB) L1 allows.
    let datapath = timing.optimal(&CacheGeometry::paper(1024, 1), CellKind::SinglePorted).cycle_ns;
    println!("datapath cycle for the multicycle model: {datapath:.2} ns\n");

    let models = [
        ("baseline (L1 sets the cycle, blocking)", FutureWorkModel::baseline()),
        ("multicycle pipelined L1", FutureWorkModel::multicycle(datapath, 0.3)),
        ("non-blocking (50% overlap)", FutureWorkModel::baseline().with_miss_overlap(0.5)),
    ];

    println!("single-level TPI (ns) for {benchmark} under each model:\n");
    print!("{:>6}", "L1");
    for (name, _) in &models {
        print!(" {:>38}", name);
    }
    println!();

    let mut best: Vec<(f64, u64)> = vec![(f64::INFINITY, 0); models.len()];
    for kb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
        let cfg = MachineConfig::single_level(kb, 50.0);
        let point = evaluate(&cfg, benchmark, budget, &timing, &area);
        let t = MachineTiming::derive(&cfg, &timing, &area);
        print!("{kb:>5}K");
        for (i, (_, m)) in models.iter().enumerate() {
            let tpi = tpi_extended(&point.stats, &t, m);
            if tpi < best[i].0 {
                best[i] = (tpi, kb);
            }
            print!(" {tpi:>38.2}");
        }
        println!();
    }

    println!("\noptimum single-level size per model:");
    for ((name, _), (tpi, kb)) in models.iter().zip(&best) {
        println!("  {name:<40} {kb:>4}KB at {tpi:.2} ns");
    }
    println!(
        "\nWith a multicycle L1 the optimum moves to larger caches (big L1s stop\n\
         taxing the cycle time), which is exactly why §10 expects the technique\n\
         to reduce the appeal of an on-chip L2."
    );
}
