//! Shared context for figure regeneration.

use tlc_area::AreaModel;
use tlc_core::experiment::SimBudget;
use tlc_core::runner;
use tlc_timing::TimingModel;

/// Models plus simulation budget shared by every figure.
#[derive(Debug)]
pub struct Harness {
    /// The access/cycle-time model (paper 0.5µm operating point).
    pub timing: TimingModel,
    /// The rbe area model.
    pub area: AreaModel,
    /// Simulation length per configuration.
    pub budget: SimBudget,
    /// Worker threads for configuration sweeps.
    pub threads: usize,
}

impl Harness {
    /// Standard harness: 1M measured instructions per configuration.
    pub fn standard() -> Self {
        Harness {
            timing: TimingModel::paper(),
            area: AreaModel::new(),
            budget: SimBudget::standard(),
            threads: runner::default_threads(),
        }
    }

    /// Quick harness for tests and smoke runs (120K instructions).
    pub fn quick() -> Self {
        Harness { budget: SimBudget::quick(), ..Self::standard() }
    }

    /// Overrides the simulation budget (builder style).
    pub fn with_budget(mut self, budget: SimBudget) -> Self {
        self.budget = budget;
        self
    }
}

impl Default for Harness {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let h = Harness::standard();
        assert_eq!(h.budget.instructions, 1_500_000);
        assert!(h.threads >= 1);
        let q = Harness::quick();
        assert!(q.budget.instructions < h.budget.instructions);
        let c =
            Harness::standard().with_budget(SimBudget { instructions: 42, warmup_instructions: 7 });
        assert_eq!(c.budget.instructions, 42);
    }
}
