//! Command-line driver regenerating the paper's tables and figures.
//!
//! ```text
//! repro all                 # every exhibit at the standard budget
//! repro fig5 fig23          # specific exhibits
//! repro --quick all         # 120K-instruction smoke run
//! repro --instr 4000000 fig5  # custom measured-instruction budget
//! repro --list              # list exhibit ids
//! ```

use tlc_bench::figures::{run, ALL_IDS};
use tlc_bench::sweepbench::{sweep_benchmark_json, SweepBenchConfig};
use tlc_bench::Harness;
use tlc_core::configspace::{full_space, SpaceOptions};
use tlc_core::experiment::{capture_benchmark, SimBudget};
use tlc_core::report::points_csv;
use tlc_core::runner::sweep_arena_threads;
use tlc_core::L2Policy;
use tlc_obs::manifest::{build_span_tree, span_line, RunManifest, RunMeta};
use tlc_trace::spec::SpecBenchmark;

fn usage() -> ! {
    eprintln!(
        "usage: repro [--quick] [--instr N] [--warmup N] [--metrics out.json] [--list] <exhibit ids | all>\n\
       \u{20}      repro [--quick|--instr N] csv <output-dir>\n\
       \u{20}      repro [--quick|--instr N] bench-sweep <output.json>\n\
         exhibits: {}\n\
         csv: writes the full design-space scatter (50ns & 200ns, conventional &\n\
       \u{20}     exclusive) for every workload as CSV files for external plotting\n\
         bench-sweep: times the streaming vs arena sweep engines over the full\n\
       \u{20}     space and writes a machine-readable comparison",
        ALL_IDS.join(" ")
    );
    std::process::exit(2);
}

/// Dumps the design-space scatters as CSV files into `dir`.
///
/// Each benchmark's stream is captured into a [`tlc_trace::TraceArena`]
/// once and shared by all four (off-chip latency × L2 policy) sweeps.
fn dump_csv(dir: &std::path::Path, harness: &Harness) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for b in SpecBenchmark::ALL {
        let arena = capture_benchmark(b, harness.budget);
        for offchip in [50.0, 200.0] {
            for (policy, policy_name) in
                [(L2Policy::Conventional, "conventional"), (L2Policy::Exclusive, "exclusive")]
            {
                let opts = SpaceOptions {
                    offchip_ns: offchip,
                    l2_policy: policy,
                    ..SpaceOptions::baseline()
                };
                let configs = full_space(&opts);
                let points = sweep_arena_threads(
                    &configs,
                    &arena,
                    harness.budget,
                    &harness.timing,
                    &harness.area,
                    harness.threads,
                );
                let name = format!("{}_{}ns_{}.csv", b.name(), offchip as u32, policy_name);
                let path = dir.join(&name);
                std::fs::write(&path, points_csv(&points))?;
                eprintln!("# wrote {}", path.display());
            }
        }
    }
    Ok(())
}

/// Prints a span-tree node and its children to stderr in the shared
/// `span_line` format (the same one `tlc sweep --metrics` renders).
fn print_span(node: &tlc_obs::manifest::SpanNode, depth: usize) {
    eprintln!("{}", span_line(node, depth));
    for child in &node.children {
        print_span(child, depth + 1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut budget = SimBudget::standard();
    let mut ids: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut bench_out: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "csv" => {
                csv_dir = Some(it.next().unwrap_or_else(|| usage()));
            }
            "bench-sweep" => {
                bench_out = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--metrics" => {
                metrics_path = Some(it.next().unwrap_or_else(|| usage()));
            }
            "--quick" => budget = SimBudget::quick(),
            "--instr" => {
                let n = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                budget.instructions = n;
            }
            "--warmup" => {
                let n = it.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                budget.warmup_instructions = n;
            }
            "--list" => {
                for id in ALL_IDS {
                    println!("{id}");
                }
                return;
            }
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => ids.push(id.to_string()),
            _ => usage(),
        }
    }
    if ids.is_empty() && csv_dir.is_none() && bench_out.is_none() {
        usage();
    }

    let harness = Harness::standard().with_budget(budget);
    if let Some(path) = bench_out {
        let json = sweep_benchmark_json(&SweepBenchConfig::from_harness(&harness));
        if let Err(e) = std::fs::write(&path, &json) {
            eprintln!("bench-sweep export failed: {e}");
            std::process::exit(1);
        }
        eprintln!("# wrote {path}");
        if ids.is_empty() && csv_dir.is_none() {
            return;
        }
    }
    if let Some(dir) = csv_dir {
        if let Err(e) = dump_csv(std::path::Path::new(&dir), &harness) {
            eprintln!("csv export failed: {e}");
            std::process::exit(1);
        }
        if ids.is_empty() {
            return;
        }
    }
    eprintln!(
        "# {} exhibit(s), {} measured instructions (+{} warm-up) per configuration, {} threads",
        ids.len(),
        harness.budget.instructions,
        harness.budget.warmup_instructions,
        harness.threads
    );
    tlc_obs::reset();
    let wall = std::time::Instant::now();
    let mut all_spans = Vec::new();
    let exhibit_ids = ids.clone();
    for id in ids {
        let start = std::time::Instant::now();
        let report = {
            let _span = tlc_obs::PhaseSpan::enter_with("exhibit", || id.clone());
            run(&id, &harness)
        };
        match report {
            Some(report) => {
                println!("==================== {id} ====================");
                println!("{report}");
                // Per-exhibit timing comes from the same span tree the
                // sweep manifest renders, in the same format. Drained
                // incrementally so each exhibit's spans print as it
                // finishes; the records feed the manifest at the end.
                let spans = tlc_obs::take_spans();
                if spans.is_empty() {
                    // Uninstrumented build: fall back to wall-clock only.
                    eprintln!("# {id} done in {:.1}s", start.elapsed().as_secs_f64());
                } else {
                    for node in build_span_tree(spans.clone()) {
                        print_span(&node, 0);
                    }
                    all_spans.extend(spans);
                }
            }
            None => {
                eprintln!("unknown exhibit id: {id}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = metrics_path {
        let meta = RunMeta {
            command: "repro".to_string(),
            benchmark: exhibit_ids.join(","),
            engine: "mixed".to_string(),
            threads: harness.threads as u64,
            configs: tlc_obs::counters().get(tlc_obs::Counter::RunnerConfigsCompleted),
            config_space_hash: "n/a".to_string(),
            wall_s: wall.elapsed().as_secs_f64(),
        };
        let manifest = RunManifest::from_parts(
            meta,
            all_spans,
            tlc_obs::take_events(),
            tlc_obs::counters().snapshot(),
        );
        if let Err(e) = std::fs::write(&path, manifest.to_json()) {
            eprintln!("metrics export failed: {e}");
            std::process::exit(1);
        }
        eprintln!("# wrote {path}");
    }
}
