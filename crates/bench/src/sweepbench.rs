//! Machine-readable sweep-engine benchmark: legacy vs streaming vs arena
//! vs miss-stream filtered vs family-batched.
//!
//! Times five engines over the same configuration space:
//!
//! 1. **legacy** — regenerate per configuration, `Box<dyn MemorySystem>`
//!    dispatch (the engine every sweep used before this one; the speedup
//!    baseline);
//! 2. **streaming** — regenerate per configuration, devirtualized
//!    [`SystemKind`](tlc_cache::SystemKind) dispatch (the memory-lean
//!    fallback);
//! 3. **arena** — capture once, replay the packed buffer per
//!    configuration;
//! 4. **filtered** — capture once, simulate each distinct L1 once over
//!    the arena, then fan every L2 over its L1's miss-stream events only;
//! 5. **family** — filtered, plus one event pass per (L1, policy, ways)
//!    family drives every L2 size at once (the sweep fast path).
//!
//! All five must produce bit-identical design points. Because the
//! filtered and family engines' whole advantage is on configurations
//! that *share* an L1, the report also times the arena, filtered and
//! family engines on the two-level subset of the space in isolation
//! (`twolevel_*` fields) — those ratios are the "simulate the L1 once"
//! and "decode the events once per family" wins with the single-level
//! legs excluded (`twolevel_family_speedup` ≥ 1.5× is the family
//! engine's acceptance bar). The report is rendered as JSON (committed
//! as `BENCH_sweep.json` at the repository root; regenerate with
//! `repro bench-sweep <path>`).

use crate::Harness;
use serde::Serialize;
use std::time::Instant;
use tlc_core::configspace::{full_space, SpaceOptions};
use tlc_core::experiment::{capture_benchmark, SimBudget};
use tlc_core::runner::{
    sweep_arena_threads, sweep_dyn_threads, sweep_family_arena_threads,
    sweep_filtered_arena_threads, sweep_streaming_threads,
};
use tlc_core::{L2Policy, MachineConfig};
use tlc_obs::manifest::{build_span_tree, SpanNode};
use tlc_trace::spec::SpecBenchmark;

/// What to measure: the configuration space, budget, and thread count.
#[derive(Debug)]
pub struct SweepBenchConfig {
    /// Configurations evaluated per benchmark (conventional + exclusive
    /// full spaces; ≥ 64 distinct configurations).
    pub configs: Vec<MachineConfig>,
    /// Simulation length per configuration.
    pub budget: SimBudget,
    /// Worker threads, as in the sweeps being compared.
    pub threads: usize,
}

impl SweepBenchConfig {
    /// Measures the full design space (both L2 policies) at the
    /// harness's budget and thread count.
    pub fn from_harness(harness: &Harness) -> Self {
        let mut configs = full_space(&SpaceOptions::baseline());
        configs.extend(full_space(&SpaceOptions {
            l2_policy: L2Policy::Exclusive,
            ..SpaceOptions::baseline()
        }));
        SweepBenchConfig { configs, budget: harness.budget, threads: harness.threads }
    }
}

/// One benchmark's timing comparison.
#[derive(Debug, Serialize)]
pub struct SweepBenchRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Wall-clock seconds for the legacy (regenerate + vtable) sweep.
    pub legacy_s: f64,
    /// Wall-clock seconds for the devirtualized streaming sweep.
    pub streaming_s: f64,
    /// Wall-clock seconds to capture the arena.
    pub capture_s: f64,
    /// Wall-clock seconds for the arena-replay sweep.
    pub replay_s: f64,
    /// Wall-clock seconds for the miss-stream-filtered sweep (per-L1
    /// capture plus per-configuration event replay; arena capture not
    /// included, as for `replay_s`).
    pub filtered_s: f64,
    /// Wall-clock seconds for the family-batched sweep (per-L1 capture
    /// plus one event pass per (L1, policy, ways) family; arena capture
    /// not included, as for `replay_s`).
    pub family_s: f64,
    /// Of `family_s`, the wall seconds spent in the per-L1-group capture
    /// phase (the `l1_capture` span). Zero when the build carries no
    /// instrumentation (`obs_enabled` false in the report header).
    pub family_l1_capture_s: f64,
    /// Of `family_s`, the wall seconds spent fanning families over their
    /// miss streams (the `fan_out` span). Zero when uninstrumented.
    pub family_fanout_s: f64,
    /// Miss-stream events replayed by the family sweep (the
    /// `l2.events_replayed` counter delta). Zero when uninstrumented.
    pub family_events_replayed: u64,
    /// Arena resident size in bytes.
    pub arena_bytes: u64,
    /// `legacy_s / (capture_s + replay_s)` — the arena engine's speedup.
    pub speedup: f64,
    /// `streaming_s / (capture_s + replay_s)`.
    pub speedup_vs_streaming: f64,
    /// `legacy_s / (capture_s + filtered_s)` — the filtered engine's
    /// headline speedup.
    pub speedup_filtered: f64,
    /// `legacy_s / (capture_s + family_s)` — the family engine's
    /// headline speedup.
    pub speedup_family: f64,
    /// Wall-clock seconds for the arena engine on the two-level subset
    /// of the space only.
    pub twolevel_arena_s: f64,
    /// Wall-clock seconds for the filtered engine on the two-level
    /// subset only.
    pub twolevel_filtered_s: f64,
    /// `twolevel_arena_s / twolevel_filtered_s` — the additional speedup
    /// miss-stream filtering buys over arena replay where L1s are shared
    /// (the acceptance metric: ≥ 2×).
    pub twolevel_speedup: f64,
    /// Wall-clock seconds for the family engine on the two-level subset
    /// only.
    pub twolevel_family_s: f64,
    /// `twolevel_filtered_s / twolevel_family_s` — the additional
    /// speedup family batching buys over per-configuration filtered
    /// replay (the acceptance metric: ≥ 1.5×).
    pub twolevel_family_speedup: f64,
    /// Whether all five engines produced bit-identical design points.
    pub identical: bool,
}

/// The full machine-readable report.
#[derive(Debug, Serialize)]
pub struct SweepBenchReport {
    /// Report format identifier.
    pub schema: String,
    /// Configurations per benchmark.
    pub configs: u64,
    /// Measured instructions per configuration.
    pub measured_instructions: u64,
    /// Warm-up instructions per configuration.
    pub warmup_instructions: u64,
    /// Worker threads.
    pub threads: u64,
    /// Per-benchmark comparisons.
    pub benchmarks: Vec<SweepBenchRow>,
    /// Total wall-clock seconds for all legacy sweeps.
    pub total_legacy_s: f64,
    /// Total wall-clock seconds for all streaming sweeps.
    pub total_streaming_s: f64,
    /// Total wall-clock seconds for all captures plus replay sweeps.
    pub total_arena_s: f64,
    /// Total wall-clock seconds for all captures plus filtered sweeps.
    pub total_filtered_s: f64,
    /// Total wall-clock seconds for all captures plus family sweeps.
    pub total_family_s: f64,
    /// `total_legacy_s / total_arena_s` — the arena engine's speedup.
    pub total_speedup: f64,
    /// `total_legacy_s / total_filtered_s` — the filtered engine's
    /// headline speedup.
    pub total_speedup_filtered: f64,
    /// `total_legacy_s / total_family_s` — the family engine's headline
    /// speedup.
    pub total_speedup_family: f64,
    /// Total two-level-subset seconds for the arena engine.
    pub total_twolevel_arena_s: f64,
    /// Total two-level-subset seconds for the filtered engine.
    pub total_twolevel_filtered_s: f64,
    /// `total_twolevel_arena_s / total_twolevel_filtered_s` — the
    /// additional two-level speedup of miss-stream filtering (≥ 2× is
    /// the acceptance bar).
    pub total_twolevel_speedup: f64,
    /// Total two-level-subset seconds for the family engine.
    pub total_twolevel_family_s: f64,
    /// `total_twolevel_filtered_s / total_twolevel_family_s` — the
    /// additional two-level speedup of family batching over filtered
    /// replay (≥ 1.5× is the acceptance bar).
    pub total_twolevel_family_speedup: f64,
    /// Whether every benchmark's engines agreed bit-for-bit.
    pub all_identical: bool,
    /// Whether the producing build carried live instrumentation (the
    /// per-phase `family_*` columns are all zero when this is false).
    pub obs_enabled: bool,
}

/// Total wall seconds attributed to spans named `name` anywhere in the
/// tree (phase names are unique per engine run, so this is the phase's
/// wall time).
fn span_wall_s(nodes: &[SpanNode], name: &str) -> f64 {
    fn walk(nodes: &[SpanNode], name: &str) -> u64 {
        nodes
            .iter()
            .map(|n| {
                let own = if n.name == name { n.wall_ns } else { 0 };
                own + walk(&n.children, name)
            })
            .sum()
    }
    walk(nodes, name) as f64 / 1e9
}

/// Runs the comparison over all seven benchmarks.
pub fn run_sweep_benchmark(cfg: &SweepBenchConfig) -> SweepBenchReport {
    let timing = tlc_timing::TimingModel::paper();
    let area = tlc_area::AreaModel::new();
    let twolevel: Vec<MachineConfig> =
        cfg.configs.iter().copied().filter(|c| c.l2.is_some()).collect();
    let mut rows = Vec::new();
    for b in SpecBenchmark::ALL {
        eprintln!("# bench-sweep: {} ({} configs)...", b.name(), cfg.configs.len());
        let t0 = Instant::now();
        let legacy = sweep_dyn_threads(&cfg.configs, b, cfg.budget, &timing, &area, cfg.threads);
        let legacy_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let streamed =
            sweep_streaming_threads(&cfg.configs, b, cfg.budget, &timing, &area, cfg.threads);
        let streaming_s = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let arena = capture_benchmark(b, cfg.budget);
        let capture_s = t2.elapsed().as_secs_f64();

        let t3 = Instant::now();
        let replayed =
            sweep_arena_threads(&cfg.configs, &arena, cfg.budget, &timing, &area, cfg.threads);
        let replay_s = t3.elapsed().as_secs_f64();

        let t4 = Instant::now();
        let filtered = sweep_filtered_arena_threads(
            &cfg.configs,
            &arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let filtered_s = t4.elapsed().as_secs_f64();

        // Per-phase attribution for the family engine: discard spans the
        // earlier engines accumulated, then drain exactly this run's.
        let _ = tlc_obs::take_spans();
        let events_before = tlc_obs::counters().get(tlc_obs::Counter::L2EventsReplayed);
        let t4b = Instant::now();
        let family = sweep_family_arena_threads(
            &cfg.configs,
            &arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let family_s = t4b.elapsed().as_secs_f64();
        let family_spans = build_span_tree(tlc_obs::take_spans());
        let family_events_replayed =
            tlc_obs::counters().get(tlc_obs::Counter::L2EventsReplayed) - events_before;

        // The two-level subset in isolation: the filtered and family
        // engines' win with the unshared single-level legs excluded.
        let t5 = Instant::now();
        let twolevel_arena =
            sweep_arena_threads(&twolevel, &arena, cfg.budget, &timing, &area, cfg.threads);
        let twolevel_arena_s = t5.elapsed().as_secs_f64();

        let t6 = Instant::now();
        let twolevel_filtered = sweep_filtered_arena_threads(
            &twolevel,
            &arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let twolevel_filtered_s = t6.elapsed().as_secs_f64();

        let t7 = Instant::now();
        let twolevel_family =
            sweep_family_arena_threads(&twolevel, &arena, cfg.budget, &timing, &area, cfg.threads);
        let twolevel_family_s = t7.elapsed().as_secs_f64();

        rows.push(SweepBenchRow {
            benchmark: b.name().to_string(),
            legacy_s,
            streaming_s,
            capture_s,
            replay_s,
            filtered_s,
            family_s,
            family_l1_capture_s: span_wall_s(&family_spans, "l1_capture"),
            family_fanout_s: span_wall_s(&family_spans, "fan_out"),
            family_events_replayed,
            arena_bytes: arena.bytes() as u64,
            speedup: legacy_s / (capture_s + replay_s),
            speedup_vs_streaming: streaming_s / (capture_s + replay_s),
            speedup_filtered: legacy_s / (capture_s + filtered_s),
            speedup_family: legacy_s / (capture_s + family_s),
            twolevel_arena_s,
            twolevel_filtered_s,
            twolevel_speedup: twolevel_arena_s / twolevel_filtered_s,
            twolevel_family_s,
            twolevel_family_speedup: twolevel_filtered_s / twolevel_family_s,
            identical: legacy == replayed
                && streamed == replayed
                && filtered == replayed
                && family == replayed
                && twolevel_arena == twolevel_filtered
                && twolevel_family == twolevel_filtered,
        });
    }
    let total_legacy_s: f64 = rows.iter().map(|r| r.legacy_s).sum();
    let total_streaming_s: f64 = rows.iter().map(|r| r.streaming_s).sum();
    let total_arena_s: f64 = rows.iter().map(|r| r.capture_s + r.replay_s).sum();
    let total_filtered_s: f64 = rows.iter().map(|r| r.capture_s + r.filtered_s).sum();
    let total_family_s: f64 = rows.iter().map(|r| r.capture_s + r.family_s).sum();
    let total_twolevel_arena_s: f64 = rows.iter().map(|r| r.twolevel_arena_s).sum();
    let total_twolevel_filtered_s: f64 = rows.iter().map(|r| r.twolevel_filtered_s).sum();
    let total_twolevel_family_s: f64 = rows.iter().map(|r| r.twolevel_family_s).sum();
    SweepBenchReport {
        schema: "tlc-sweep-bench/4".to_string(),
        configs: cfg.configs.len() as u64,
        measured_instructions: cfg.budget.instructions,
        warmup_instructions: cfg.budget.warmup_instructions,
        threads: cfg.threads as u64,
        total_speedup: total_legacy_s / total_arena_s,
        total_speedup_filtered: total_legacy_s / total_filtered_s,
        total_speedup_family: total_legacy_s / total_family_s,
        total_twolevel_speedup: total_twolevel_arena_s / total_twolevel_filtered_s,
        total_twolevel_family_speedup: total_twolevel_filtered_s / total_twolevel_family_s,
        all_identical: rows.iter().all(|r| r.identical),
        obs_enabled: tlc_obs::ENABLED,
        benchmarks: rows,
        total_legacy_s,
        total_streaming_s,
        total_arena_s,
        total_filtered_s,
        total_family_s,
        total_twolevel_arena_s,
        total_twolevel_filtered_s,
        total_twolevel_family_s,
    }
}

/// [`run_sweep_benchmark`] rendered as pretty JSON (with newline).
pub fn sweep_benchmark_json(cfg: &SweepBenchConfig) -> String {
    let report = run_sweep_benchmark(cfg);
    let mut json = serde_json::to_string_pretty(&report).expect("report serialises");
    json.push('\n');
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_and_engines_agree() {
        // A deliberately tiny instance: 3 configs, short budget. Two of
        // them must share an L1 (same size, differing L2) so the family
        // path — and its event attribution — actually engages rather
        // than every group falling back as a singleton.
        let mut cfg = SweepBenchConfig::from_harness(&Harness::quick());
        let shared_l1: Vec<MachineConfig> = {
            let first = cfg
                .configs
                .iter()
                .find(|c| c.l2.is_some())
                .copied()
                .expect("space has two-level configs");
            cfg.configs
                .iter()
                .filter(|c| c.l2.is_some() && c.l1_size_bytes == first.l1_size_bytes)
                .take(2)
                .copied()
                .collect()
        };
        assert_eq!(shared_l1.len(), 2, "need two configs sharing an L1");
        cfg.configs.truncate(1);
        cfg.configs.extend(shared_l1);
        cfg.budget = SimBudget { instructions: 4_000, warmup_instructions: 1_000 };
        cfg.threads = 2;
        let report = run_sweep_benchmark(&cfg);
        assert_eq!(report.benchmarks.len(), 7);
        assert!(report.all_identical, "engines must agree bit-for-bit");
        assert!(report.total_streaming_s > 0.0 && report.total_arena_s > 0.0);
        assert!(report.total_filtered_s > 0.0 && report.total_twolevel_filtered_s > 0.0);
        assert!(report.total_family_s > 0.0 && report.total_twolevel_family_s > 0.0);
        if tlc_obs::ENABLED {
            assert!(
                report.benchmarks.iter().all(|r| r.family_events_replayed > 0),
                "instrumented builds must attribute family events"
            );
        }
        let json = serde_json::to_string_pretty(&report).expect("serialises");
        assert!(json.contains("\"schema\": \"tlc-sweep-bench/4\""));
        assert!(json.contains("\"filtered_s\""));
        assert!(json.contains("\"family_s\""));
        assert!(json.contains("\"family_l1_capture_s\""));
        assert!(json.contains("\"family_fanout_s\""));
        assert!(json.contains("\"family_events_replayed\""));
        assert!(json.contains("\"obs_enabled\""));
        assert!(json.contains("\"twolevel_speedup\""));
        assert!(json.contains("\"twolevel_family_speedup\""));
        assert!(json.contains("\"all_identical\": true"));
    }

    #[test]
    fn full_space_pair_exceeds_sixty_four_configs() {
        let cfg = SweepBenchConfig::from_harness(&Harness::quick());
        assert!(cfg.configs.len() >= 64, "only {} configs", cfg.configs.len());
    }
}
