//! Machine-readable sweep-engine benchmark: legacy vs streaming vs arena
//! vs miss-stream filtered vs family-batched.
//!
//! Times five engines over the same configuration space:
//!
//! 1. **legacy** — regenerate per configuration, `Box<dyn MemorySystem>`
//!    dispatch (the engine every sweep used before this one; the speedup
//!    baseline);
//! 2. **streaming** — regenerate per configuration, devirtualized
//!    [`SystemKind`](tlc_cache::SystemKind) dispatch (the memory-lean
//!    fallback);
//! 3. **arena** — capture once, replay the packed buffer per
//!    configuration;
//! 4. **filtered** — capture once, simulate each distinct L1 once over
//!    the arena, then fan every L2 over its L1's miss-stream events only;
//! 5. **family** — filtered, plus one event pass per (L1, policy, ways)
//!    family drives every L2 size at once (the sweep fast path);
//! 6. **predict** — one reuse-distance profiling pass per L1 group
//!    answers every conventional L2 point analytically (exclusive
//!    members replay through the family engine). The only engine that
//!    is *approximate*: the report records whether it met its ε
//!    contract (`predict_within_epsilon`) rather than folding it into
//!    `identical`, and a scaling section (`predict_scaling`) times it
//!    against family replay on 90- and 450-point conventional spaces
//!    (acceptance bar: ≥ 5× at 450).
//!
//! The five replay engines must produce bit-identical design points.
//! Because the
//! filtered and family engines' whole advantage is on configurations
//! that *share* an L1, the report also times the arena, filtered and
//! family engines on the two-level subset of the space in isolation
//! (`twolevel_*` fields) — those ratios are the "simulate the L1 once"
//! and "decode the events once per family" wins with the single-level
//! legs excluded (`twolevel_family_speedup` ≥ 1.5× is the family
//! engine's acceptance bar).
//!
//! A final section (`sampled_scaling`) times the second approximate
//! path: SimPoint-style phase sampling with stitched warming
//! (`tlc_core::sampling`) against full family replay on a stream 8×
//! longer than the per-benchmark rows tolerate. The sampled pipeline is
//! timed end to end — signature pass, slice capture, weighted sweep —
//! and the observed reconstruction error is recorded against
//! `SAMPLED_MISS_RATIO_EPSILON` (acceptance bar: ≥ 5× at the committed
//! report's scale). The report is rendered as JSON (committed as
//! `BENCH_sweep.json` at the repository root; regenerate with
//! `repro bench-sweep <path>`).

use crate::Harness;
use serde::Serialize;
use std::time::Instant;
use tlc_cache::{miss_ratio_error, MISS_RATIO_EPSILON};
use tlc_core::configspace::{full_space, SpaceOptions};
use tlc_core::experiment::{capture_benchmark, DesignPoint, SimBudget};
use tlc_core::runner::{
    sweep_arena_threads, sweep_dyn_threads, sweep_family_arena_threads,
    sweep_filtered_arena_threads, sweep_predict_arena_threads, sweep_sampled_threads,
    sweep_streaming_threads,
};
use tlc_core::sampling::{
    capture_phase_slices, sample_source, SampleOptions, SAMPLED_MISS_RATIO_EPSILON,
};
use tlc_core::{L2Policy, MachineConfig};
use tlc_obs::manifest::{build_span_tree, SpanNode};
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::{ReplaySource, TraceArena};

/// What to measure: the configuration space, budget, and thread count.
#[derive(Debug)]
pub struct SweepBenchConfig {
    /// Configurations evaluated per benchmark (conventional + exclusive
    /// full spaces; ≥ 64 distinct configurations).
    pub configs: Vec<MachineConfig>,
    /// Simulation length per configuration.
    pub budget: SimBudget,
    /// Worker threads, as in the sweeps being compared.
    pub threads: usize,
}

impl SweepBenchConfig {
    /// Measures the full design space (both L2 policies) at the
    /// harness's budget and thread count.
    pub fn from_harness(harness: &Harness) -> Self {
        let mut configs = full_space(&SpaceOptions::baseline());
        configs.extend(full_space(&SpaceOptions {
            l2_policy: L2Policy::Exclusive,
            ..SpaceOptions::baseline()
        }));
        SweepBenchConfig { configs, budget: harness.budget, threads: harness.threads }
    }
}

/// One benchmark's timing comparison.
#[derive(Debug, Serialize)]
pub struct SweepBenchRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Wall-clock seconds for the legacy (regenerate + vtable) sweep.
    pub legacy_s: f64,
    /// Wall-clock seconds for the devirtualized streaming sweep.
    pub streaming_s: f64,
    /// Wall-clock seconds to capture the arena.
    pub capture_s: f64,
    /// Wall-clock seconds for the arena-replay sweep.
    pub replay_s: f64,
    /// Wall-clock seconds for the miss-stream-filtered sweep (per-L1
    /// capture plus per-configuration event replay; arena capture not
    /// included, as for `replay_s`).
    pub filtered_s: f64,
    /// Wall-clock seconds for the family-batched sweep (per-L1 capture
    /// plus one event pass per (L1, policy, ways) family; arena capture
    /// not included, as for `replay_s`).
    pub family_s: f64,
    /// Of `family_s`, the wall seconds spent in the per-L1-group capture
    /// phase (the `l1_capture` span). Zero when the build carries no
    /// instrumentation (`obs_enabled` false in the report header).
    pub family_l1_capture_s: f64,
    /// Of `family_s`, the wall seconds spent fanning families over their
    /// miss streams (the `fan_out` span). Zero when uninstrumented.
    pub family_fanout_s: f64,
    /// Miss-stream events replayed by the family sweep (the
    /// `l2.events_replayed` counter delta). Zero when uninstrumented.
    pub family_events_replayed: u64,
    /// Arena resident size in bytes.
    pub arena_bytes: u64,
    /// `legacy_s / (capture_s + replay_s)` — the arena engine's speedup.
    pub speedup: f64,
    /// `streaming_s / (capture_s + replay_s)`.
    pub speedup_vs_streaming: f64,
    /// `legacy_s / (capture_s + filtered_s)` — the filtered engine's
    /// headline speedup.
    pub speedup_filtered: f64,
    /// `legacy_s / (capture_s + family_s)` — the family engine's
    /// headline speedup.
    pub speedup_family: f64,
    /// Wall-clock seconds for the arena engine on the two-level subset
    /// of the space only.
    pub twolevel_arena_s: f64,
    /// Wall-clock seconds for the filtered engine on the two-level
    /// subset only.
    pub twolevel_filtered_s: f64,
    /// `twolevel_arena_s / twolevel_filtered_s` — the additional speedup
    /// miss-stream filtering buys over arena replay where L1s are shared
    /// (the acceptance metric: ≥ 2×).
    pub twolevel_speedup: f64,
    /// Wall-clock seconds for the family engine on the two-level subset
    /// only.
    pub twolevel_family_s: f64,
    /// `twolevel_filtered_s / twolevel_family_s` — the additional
    /// speedup family batching buys over per-configuration filtered
    /// replay (the acceptance metric: ≥ 1.5×).
    pub twolevel_family_speedup: f64,
    /// Wall-clock seconds for the analytical predict sweep (per-L1
    /// profiling pass plus closed-form evaluation; exclusive members
    /// replay through the family engine; arena capture not included, as
    /// for `replay_s`).
    pub predict_s: f64,
    /// `legacy_s / (capture_s + predict_s)` — the predict engine's
    /// headline speedup.
    pub speedup_predict: f64,
    /// Whether the predicted design points met the accuracy contract
    /// against the family replay: single-level and exclusive members
    /// bit-identical, direct-mapped hit/miss counts exact, and
    /// set-associative local miss ratios within
    /// `tlc_cache::MISS_RATIO_EPSILON`. (The predict engine is the one
    /// engine excluded from `identical`.)
    pub predict_within_epsilon: bool,
    /// Whether all five replay engines produced bit-identical design
    /// points.
    pub identical: bool,
}

/// One point of the predict-vs-family scaling comparison: the same
/// conventional configuration space timed through both engines.
#[derive(Debug, Serialize)]
pub struct PredictScalingPoint {
    /// Design points in the space.
    pub configs: u64,
    /// Wall-clock seconds for the family-batched replay sweep.
    pub family_s: f64,
    /// Wall-clock seconds for the analytical predict sweep.
    pub predict_s: f64,
    /// `family_s / predict_s` — replay cost grows with the number of L2
    /// points per family while prediction is dominated by the one
    /// profiling pass per L1 group, so this ratio must widen with the
    /// space (the acceptance bar: ≥ 5× at 450 configurations).
    pub speedup: f64,
}

/// The sampled-vs-full comparison: one long stream swept in full
/// through the family engine and once through phase sampling.
#[derive(Debug, Serialize)]
pub struct SampledScalingReport {
    /// Benchmark the stream was generated from.
    pub benchmark: String,
    /// Instructions in the stream (8× the per-benchmark row budget).
    pub stream_instructions: u64,
    /// Sampling interval in instructions.
    pub interval: u64,
    /// Intervals the stream divides into.
    pub intervals: u64,
    /// Phases selected (K after empty-cluster pruning).
    pub phases: u64,
    /// Per-slice warm-up prefix in instructions (discarded before each
    /// representative's measured window).
    pub warmup_instructions: u64,
    /// Design points swept by both pipelines.
    pub configs: u64,
    /// Wall-clock seconds for the full pipeline: arena capture plus
    /// family replay of the whole stream.
    pub full_s: f64,
    /// Wall-clock seconds for the sampled pipeline end to end:
    /// signature pass, slice capture, and the weighted sampled sweep.
    pub sampled_s: f64,
    /// `full_s / sampled_s` (the acceptance bar: ≥ 5× at the committed
    /// report's scale).
    pub speedup: f64,
    /// Instructions the sampled pipeline actually simulated (selected
    /// slices plus their warm-up prefixes).
    pub replayed_instructions: u64,
    /// Largest local L2 miss-ratio error of the weighted reconstruction
    /// against full replay across the swept points.
    pub max_miss_ratio_error: f64,
    /// Whether `max_miss_ratio_error` met the sampled engine's
    /// documented contract (`SAMPLED_MISS_RATIO_EPSILON`). Only
    /// meaningful at parameter scales within the contract's guidance —
    /// the committed report's scale qualifies; tiny smoke budgets do
    /// not.
    pub within_epsilon: bool,
}

/// The full machine-readable report.
#[derive(Debug, Serialize)]
pub struct SweepBenchReport {
    /// Report format identifier.
    pub schema: String,
    /// Configurations per benchmark.
    pub configs: u64,
    /// Measured instructions per configuration.
    pub measured_instructions: u64,
    /// Warm-up instructions per configuration.
    pub warmup_instructions: u64,
    /// Worker threads.
    pub threads: u64,
    /// Per-benchmark comparisons.
    pub benchmarks: Vec<SweepBenchRow>,
    /// Total wall-clock seconds for all legacy sweeps.
    pub total_legacy_s: f64,
    /// Total wall-clock seconds for all streaming sweeps.
    pub total_streaming_s: f64,
    /// Total wall-clock seconds for all captures plus replay sweeps.
    pub total_arena_s: f64,
    /// Total wall-clock seconds for all captures plus filtered sweeps.
    pub total_filtered_s: f64,
    /// Total wall-clock seconds for all captures plus family sweeps.
    pub total_family_s: f64,
    /// `total_legacy_s / total_arena_s` — the arena engine's speedup.
    pub total_speedup: f64,
    /// `total_legacy_s / total_filtered_s` — the filtered engine's
    /// headline speedup.
    pub total_speedup_filtered: f64,
    /// `total_legacy_s / total_family_s` — the family engine's headline
    /// speedup.
    pub total_speedup_family: f64,
    /// Total two-level-subset seconds for the arena engine.
    pub total_twolevel_arena_s: f64,
    /// Total two-level-subset seconds for the filtered engine.
    pub total_twolevel_filtered_s: f64,
    /// `total_twolevel_arena_s / total_twolevel_filtered_s` — the
    /// additional two-level speedup of miss-stream filtering (≥ 2× is
    /// the acceptance bar).
    pub total_twolevel_speedup: f64,
    /// Total two-level-subset seconds for the family engine.
    pub total_twolevel_family_s: f64,
    /// `total_twolevel_filtered_s / total_twolevel_family_s` — the
    /// additional two-level speedup of family batching over filtered
    /// replay (≥ 1.5× is the acceptance bar).
    pub total_twolevel_family_speedup: f64,
    /// Total wall-clock seconds for all captures plus predict sweeps.
    pub total_predict_s: f64,
    /// `total_legacy_s / total_predict_s` — the predict engine's
    /// headline speedup.
    pub total_speedup_predict: f64,
    /// Whether every benchmark's predicted points met the ε contract.
    pub all_predict_within_epsilon: bool,
    /// Benchmark used for the predict-vs-family scaling comparison.
    pub predict_scaling_benchmark: String,
    /// Predict-vs-family timings on growing conventional spaces (90 and
    /// 450 distinct (L1, L2 size, ways) points).
    pub predict_scaling: Vec<PredictScalingPoint>,
    /// Phase-sampling vs full-replay comparison on a long stream.
    pub sampled_scaling: SampledScalingReport,
    /// Whether every benchmark's replay engines agreed bit-for-bit.
    pub all_identical: bool,
    /// Whether the producing build carried live instrumentation (the
    /// per-phase `family_*` columns are all zero when this is false).
    pub obs_enabled: bool,
}

/// Checks the predict engine's accuracy contract against family-replay
/// ground truth over a mixed space: single-level and exclusive members
/// bit-identical (the latter replay through the family engine inside
/// the predict sweep), direct-mapped hit/miss counts exact, and
/// set-associative local miss ratios within [`MISS_RATIO_EPSILON`].
fn predict_contract_ok(
    cfgs: &[MachineConfig],
    predicted: &[DesignPoint],
    truth: &[DesignPoint],
) -> bool {
    cfgs.iter().zip(predicted).zip(truth).all(|((c, p), t)| match c.l2 {
        None => p == t,
        Some(s) if s.policy == L2Policy::Exclusive => p == t,
        Some(s) if s.ways == 1 => {
            (p.stats.l2_hits, p.stats.l2_misses) == (t.stats.l2_hits, t.stats.l2_misses)
        }
        Some(_) => miss_ratio_error(&p.stats, &t.stats) <= MISS_RATIO_EPSILON,
    })
}

/// A conventional space of `n` genuinely distinct (L1, L2 size, ways)
/// points for the scaling comparison — distinct geometry, not latency
/// clones, so the family engine's per-size dedup cannot collapse the
/// replay work. The grid deliberately piles many L2 points onto few L1
/// groups (L2 sizes 256 B – 64 MB, associativities 1–256 where the
/// geometry admits them): both engines pay the same per-group
/// miss-stream capture, and what the comparison isolates is replay
/// cost, which grows with the L2 points per group, versus the
/// predictor's single profiling pass.
fn predict_scaling_space(n: usize) -> Vec<MachineConfig> {
    let mut v = Vec::new();
    'grid: for l1_kb in [1u64, 2, 4] {
        for i in 0..19u32 {
            let l2_bytes = 256u64 << i; // 256 B .. 64 MB
            for ways in [1u32, 2, 4, 8, 16, 32, 64, 128, 256] {
                if u64::from(ways) <= l2_bytes / 16 {
                    let mut c =
                        MachineConfig::two_level(l1_kb, 1, ways, L2Policy::Conventional, 50.0);
                    c.l2.as_mut().expect("two-level").size_bytes = l2_bytes;
                    v.push(c);
                    if v.len() == 450 {
                        break 'grid;
                    }
                }
            }
        }
    }
    assert_eq!(v.len(), 450, "the scaling grid must hold exactly 450 points");
    // Sample a stride so every space size spans the same L1 groups:
    // the point of the comparison is L2 points per group, with the
    // shared per-group capture cost held constant.
    assert_eq!(450 % n, 0, "scaling sizes must divide 450");
    let stride = 450 / n;
    v.into_iter().step_by(stride).collect()
}

/// The design points for the sampled-vs-full comparison: one
/// representative per hierarchy shape plus extra conventional L2 sizes,
/// so the family fast path engages on both sides and the 128KB point —
/// the slowest L2 to warm, hence the sampled engine's documented worst
/// case — is present.
fn sampled_scaling_space() -> Vec<MachineConfig> {
    vec![
        MachineConfig::single_level(4, 50.0),
        MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0),
        MachineConfig::two_level(4, 64, 4, L2Policy::Conventional, 50.0),
        MachineConfig::two_level(4, 128, 4, L2Policy::Conventional, 50.0),
        MachineConfig::two_level(4, 64, 4, L2Policy::Exclusive, 50.0),
    ]
}

/// Total wall seconds attributed to spans named `name` anywhere in the
/// tree (phase names are unique per engine run, so this is the phase's
/// wall time).
fn span_wall_s(nodes: &[SpanNode], name: &str) -> f64 {
    fn walk(nodes: &[SpanNode], name: &str) -> u64 {
        nodes
            .iter()
            .map(|n| {
                let own = if n.name == name { n.wall_ns } else { 0 };
                own + walk(&n.children, name)
            })
            .sum()
    }
    walk(nodes, name) as f64 / 1e9
}

/// Runs the comparison over all seven benchmarks.
pub fn run_sweep_benchmark(cfg: &SweepBenchConfig) -> SweepBenchReport {
    let timing = tlc_timing::TimingModel::paper();
    let area = tlc_area::AreaModel::new();
    let twolevel: Vec<MachineConfig> =
        cfg.configs.iter().copied().filter(|c| c.l2.is_some()).collect();
    let mut rows = Vec::new();
    for b in SpecBenchmark::ALL {
        eprintln!("# bench-sweep: {} ({} configs)...", b.name(), cfg.configs.len());
        let t0 = Instant::now();
        let legacy = sweep_dyn_threads(&cfg.configs, b, cfg.budget, &timing, &area, cfg.threads);
        let legacy_s = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let streamed =
            sweep_streaming_threads(&cfg.configs, b, cfg.budget, &timing, &area, cfg.threads);
        let streaming_s = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let arena = capture_benchmark(b, cfg.budget);
        let capture_s = t2.elapsed().as_secs_f64();

        let t3 = Instant::now();
        let replayed =
            sweep_arena_threads(&cfg.configs, &arena, cfg.budget, &timing, &area, cfg.threads);
        let replay_s = t3.elapsed().as_secs_f64();

        let t4 = Instant::now();
        let filtered = sweep_filtered_arena_threads(
            &cfg.configs,
            &arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let filtered_s = t4.elapsed().as_secs_f64();

        // Per-phase attribution for the family engine: discard spans the
        // earlier engines accumulated, then drain exactly this run's.
        let _ = tlc_obs::take_spans();
        let events_before = tlc_obs::counters().get(tlc_obs::Counter::L2EventsReplayed);
        let t4b = Instant::now();
        let family = sweep_family_arena_threads(
            &cfg.configs,
            &arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let family_s = t4b.elapsed().as_secs_f64();
        let family_spans = build_span_tree(tlc_obs::take_spans());
        let family_events_replayed =
            tlc_obs::counters().get(tlc_obs::Counter::L2EventsReplayed) - events_before;

        // The two-level subset in isolation: the filtered and family
        // engines' win with the unshared single-level legs excluded.
        let t5 = Instant::now();
        let twolevel_arena =
            sweep_arena_threads(&twolevel, &arena, cfg.budget, &timing, &area, cfg.threads);
        let twolevel_arena_s = t5.elapsed().as_secs_f64();

        let t6 = Instant::now();
        let twolevel_filtered = sweep_filtered_arena_threads(
            &twolevel,
            &arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let twolevel_filtered_s = t6.elapsed().as_secs_f64();

        let t7 = Instant::now();
        let twolevel_family =
            sweep_family_arena_threads(&twolevel, &arena, cfg.budget, &timing, &area, cfg.threads);
        let twolevel_family_s = t7.elapsed().as_secs_f64();

        let t8 = Instant::now();
        let predicted = sweep_predict_arena_threads(
            &cfg.configs,
            &arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let predict_s = t8.elapsed().as_secs_f64();

        rows.push(SweepBenchRow {
            benchmark: b.name().to_string(),
            legacy_s,
            streaming_s,
            capture_s,
            replay_s,
            filtered_s,
            family_s,
            family_l1_capture_s: span_wall_s(&family_spans, "l1_capture"),
            family_fanout_s: span_wall_s(&family_spans, "fan_out"),
            family_events_replayed,
            arena_bytes: arena.bytes() as u64,
            speedup: legacy_s / (capture_s + replay_s),
            speedup_vs_streaming: streaming_s / (capture_s + replay_s),
            speedup_filtered: legacy_s / (capture_s + filtered_s),
            speedup_family: legacy_s / (capture_s + family_s),
            twolevel_arena_s,
            twolevel_filtered_s,
            twolevel_speedup: twolevel_arena_s / twolevel_filtered_s,
            twolevel_family_s,
            twolevel_family_speedup: twolevel_filtered_s / twolevel_family_s,
            predict_s,
            speedup_predict: legacy_s / (capture_s + predict_s),
            predict_within_epsilon: predict_contract_ok(&cfg.configs, &predicted, &family),
            identical: legacy == replayed
                && streamed == replayed
                && filtered == replayed
                && family == replayed
                && twolevel_arena == twolevel_filtered
                && twolevel_family == twolevel_filtered,
        });
    }
    // Predict-vs-family scaling: the same conventional space at growing
    // point counts. Family replay probes every member per event, so its
    // cost grows with the space; prediction pays one profiling pass per
    // L1 group and answers each point in closed form, so its wall-clock
    // stays roughly flat and the ratio widens.
    let scaling_benchmark = SpecBenchmark::Eqntott;
    let scaling_arena = capture_benchmark(scaling_benchmark, cfg.budget);
    let mut predict_scaling = Vec::new();
    let mut scaling_within_epsilon = true;
    for n in [90usize, 450] {
        eprintln!(
            "# bench-sweep: predict scaling on {} ({n} configs)...",
            scaling_benchmark.name()
        );
        let space = predict_scaling_space(n);
        let tf = Instant::now();
        let fam = sweep_family_arena_threads(
            &space,
            &scaling_arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let family_s = tf.elapsed().as_secs_f64();
        let tp = Instant::now();
        let pred = sweep_predict_arena_threads(
            &space,
            &scaling_arena,
            cfg.budget,
            &timing,
            &area,
            cfg.threads,
        );
        let predict_s = tp.elapsed().as_secs_f64();
        scaling_within_epsilon &= predict_contract_ok(&space, &pred, &fam);
        predict_scaling.push(PredictScalingPoint {
            configs: n as u64,
            family_s,
            predict_s,
            speedup: family_s / predict_s,
        });
    }

    // Sampled-vs-full: a stream 8× longer than the per-benchmark rows',
    // swept once in full (arena capture + family replay) and once
    // through phase sampling. Both sides are timed end to end from the
    // same in-memory records, so the sampled figure pays for its two
    // extra decode passes (interval signatures, slice capture) — the
    // honest cost of the pipeline a user runs with `tlc sweep --trace
    // FILE --sample phases.json`. The interval is budget/10, giving 80
    // intervals of which K = 5 representatives replay: a 16× reduction
    // in simulated instructions that the decode overhead erodes to the
    // reported speedup.
    let sampled_benchmark = SpecBenchmark::Eqntott;
    let sampled_stream = cfg.budget.instructions * 8;
    let sampled_opts =
        SampleOptions { interval: (cfg.budget.instructions / 10).max(1), phases: 5, seed: 0xC1 };
    let sampled_warm = sampled_opts.interval / 2;
    let sampled_space = sampled_scaling_space();
    eprintln!(
        "# bench-sweep: sampled sweep on {} ({sampled_stream} instructions)...",
        sampled_benchmark.name()
    );
    let records = sampled_benchmark.workload().take_instructions(sampled_stream as usize);

    let tf = Instant::now();
    let full_arena = TraceArena::capture(
        &mut ReplaySource::new(sampled_benchmark.name(), records.clone()),
        sampled_stream,
    );
    let full_budget = SimBudget { instructions: sampled_stream, warmup_instructions: 0 };
    let sampled_truth = sweep_family_arena_threads(
        &sampled_space,
        &full_arena,
        full_budget,
        &timing,
        &area,
        cfg.threads,
    );
    let sampled_full_s = tf.elapsed().as_secs_f64();
    drop(full_arena);

    let ts = Instant::now();
    let sample = sample_source(
        &mut ReplaySource::new(sampled_benchmark.name(), records.clone()),
        &sampled_opts,
    );
    let slices = capture_phase_slices(
        &mut ReplaySource::new(sampled_benchmark.name(), records),
        &sample,
        sampled_warm,
    );
    let sampled_points =
        sweep_sampled_threads(&sampled_space, &slices, &timing, &area, cfg.threads);
    let sampled_s = ts.elapsed().as_secs_f64();

    let replayed_instructions: u64 =
        slices.iter().map(|s| s.budget.warmup_instructions + s.budget.instructions).sum();
    let max_miss_ratio_error = sampled_truth
        .iter()
        .zip(&sampled_points)
        .map(|(f, s)| miss_ratio_error(&f.stats, &s.stats))
        .fold(0.0f64, f64::max);
    let sampled_scaling = SampledScalingReport {
        benchmark: sampled_benchmark.name().to_string(),
        stream_instructions: sampled_stream,
        interval: sampled_opts.interval,
        intervals: sample.intervals,
        phases: sample.phases.len() as u64,
        warmup_instructions: sampled_warm,
        configs: sampled_space.len() as u64,
        full_s: sampled_full_s,
        sampled_s,
        speedup: sampled_full_s / sampled_s,
        replayed_instructions,
        max_miss_ratio_error,
        within_epsilon: max_miss_ratio_error <= SAMPLED_MISS_RATIO_EPSILON,
    };

    let total_legacy_s: f64 = rows.iter().map(|r| r.legacy_s).sum();
    let total_streaming_s: f64 = rows.iter().map(|r| r.streaming_s).sum();
    let total_arena_s: f64 = rows.iter().map(|r| r.capture_s + r.replay_s).sum();
    let total_filtered_s: f64 = rows.iter().map(|r| r.capture_s + r.filtered_s).sum();
    let total_family_s: f64 = rows.iter().map(|r| r.capture_s + r.family_s).sum();
    let total_twolevel_arena_s: f64 = rows.iter().map(|r| r.twolevel_arena_s).sum();
    let total_twolevel_filtered_s: f64 = rows.iter().map(|r| r.twolevel_filtered_s).sum();
    let total_twolevel_family_s: f64 = rows.iter().map(|r| r.twolevel_family_s).sum();
    let total_predict_s: f64 = rows.iter().map(|r| r.capture_s + r.predict_s).sum();
    SweepBenchReport {
        schema: "tlc-sweep-bench/6".to_string(),
        configs: cfg.configs.len() as u64,
        measured_instructions: cfg.budget.instructions,
        warmup_instructions: cfg.budget.warmup_instructions,
        threads: cfg.threads as u64,
        total_speedup: total_legacy_s / total_arena_s,
        total_speedup_filtered: total_legacy_s / total_filtered_s,
        total_speedup_family: total_legacy_s / total_family_s,
        total_twolevel_speedup: total_twolevel_arena_s / total_twolevel_filtered_s,
        total_twolevel_family_speedup: total_twolevel_filtered_s / total_twolevel_family_s,
        total_speedup_predict: total_legacy_s / total_predict_s,
        all_predict_within_epsilon: scaling_within_epsilon
            && rows.iter().all(|r| r.predict_within_epsilon),
        predict_scaling_benchmark: scaling_benchmark.name().to_string(),
        predict_scaling,
        sampled_scaling,
        all_identical: rows.iter().all(|r| r.identical),
        obs_enabled: tlc_obs::ENABLED,
        benchmarks: rows,
        total_legacy_s,
        total_streaming_s,
        total_arena_s,
        total_filtered_s,
        total_family_s,
        total_predict_s,
        total_twolevel_arena_s,
        total_twolevel_filtered_s,
        total_twolevel_family_s,
    }
}

/// [`run_sweep_benchmark`] rendered as pretty JSON (with newline).
pub fn sweep_benchmark_json(cfg: &SweepBenchConfig) -> String {
    let report = run_sweep_benchmark(cfg);
    let mut json = serde_json::to_string_pretty(&report).expect("report serialises");
    json.push('\n');
    json
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_and_engines_agree() {
        // A deliberately tiny instance: 3 configs, short budget. Two of
        // them must share an L1 (same size, differing L2) so the family
        // path — and its event attribution — actually engages rather
        // than every group falling back as a singleton.
        let mut cfg = SweepBenchConfig::from_harness(&Harness::quick());
        let shared_l1: Vec<MachineConfig> = {
            let first = cfg
                .configs
                .iter()
                .find(|c| c.l2.is_some())
                .copied()
                .expect("space has two-level configs");
            cfg.configs
                .iter()
                .filter(|c| c.l2.is_some() && c.l1_size_bytes == first.l1_size_bytes)
                .take(2)
                .copied()
                .collect()
        };
        assert_eq!(shared_l1.len(), 2, "need two configs sharing an L1");
        cfg.configs.truncate(1);
        cfg.configs.extend(shared_l1);
        cfg.budget = SimBudget { instructions: 4_000, warmup_instructions: 1_000 };
        cfg.threads = 2;
        let report = run_sweep_benchmark(&cfg);
        assert_eq!(report.benchmarks.len(), 7);
        assert!(report.all_identical, "engines must agree bit-for-bit");
        assert!(report.total_streaming_s > 0.0 && report.total_arena_s > 0.0);
        assert!(report.total_filtered_s > 0.0 && report.total_twolevel_filtered_s > 0.0);
        assert!(report.total_family_s > 0.0 && report.total_twolevel_family_s > 0.0);
        if tlc_obs::ENABLED {
            assert!(
                report.benchmarks.iter().all(|r| r.family_events_replayed > 0),
                "instrumented builds must attribute family events"
            );
        }
        assert!(report.all_predict_within_epsilon, "predicted points must meet the ε contract");
        assert_eq!(report.predict_scaling.len(), 2);
        assert_eq!(report.predict_scaling[0].configs, 90);
        assert_eq!(report.predict_scaling[1].configs, 450);
        assert!(report.total_predict_s > 0.0);
        // The sampled section must have run both pipelines over the 8×
        // stream; its ε verdict is only asserted at report scale (the
        // smoke interval here is far below the contract's guidance), so
        // check structure and arithmetic only.
        let s = &report.sampled_scaling;
        assert_eq!(s.stream_instructions, cfg.budget.instructions * 8);
        assert!(s.phases as usize <= 5 && s.phases > 0);
        assert!(s.replayed_instructions > 0 && s.replayed_instructions < s.stream_instructions);
        assert!(s.full_s > 0.0 && s.sampled_s > 0.0 && s.speedup > 0.0);
        assert!(s.max_miss_ratio_error.is_finite());
        let json = serde_json::to_string_pretty(&report).expect("serialises");
        assert!(json.contains("\"schema\": \"tlc-sweep-bench/6\""));
        assert!(json.contains("\"filtered_s\""));
        assert!(json.contains("\"family_s\""));
        assert!(json.contains("\"family_l1_capture_s\""));
        assert!(json.contains("\"family_fanout_s\""));
        assert!(json.contains("\"family_events_replayed\""));
        assert!(json.contains("\"obs_enabled\""));
        assert!(json.contains("\"twolevel_speedup\""));
        assert!(json.contains("\"twolevel_family_speedup\""));
        assert!(json.contains("\"predict_s\""));
        assert!(json.contains("\"predict_within_epsilon\""));
        assert!(json.contains("\"predict_scaling\""));
        assert!(json.contains("\"sampled_scaling\""));
        assert!(json.contains("\"max_miss_ratio_error\""));
        assert!(json.contains("\"all_identical\": true"));
    }

    #[test]
    fn scaling_space_is_distinct_geometry() {
        let space = predict_scaling_space(450);
        assert_eq!(space.len(), 450);
        let mut keys: Vec<_> =
            space.iter().map(|c| (c.l1_size_bytes, c.l2.map(|s| (s.size_bytes, s.ways)))).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 450, "family size-dedup would collapse clone points");
    }

    #[test]
    fn full_space_pair_exceeds_sixty_four_configs() {
        let cfg = SweepBenchConfig::from_harness(&Harness::quick());
        assert!(cfg.configs.len() >= 64, "only {} configs", cfg.configs.len());
    }
}
