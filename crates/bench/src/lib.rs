//! # tlc-bench — the figure/table reproduction harness
//!
//! One function per exhibit of Jouppi & Wilton (WRL 93/3): `figures::fig1`
//! through `figures::fig26` and `figures::table1` each regenerate the data
//! behind the corresponding figure or table as an aligned text report.
//! The `repro` binary drives them from the command line:
//!
//! ```text
//! cargo run --release -p tlc-bench --bin repro -- all
//! cargo run --release -p tlc-bench --bin repro -- fig5 fig23 --quick
//! ```
//!
//! Absolute numbers differ from the paper (the workloads are synthetic
//! reconstructions — see `DESIGN.md`), but the harness reproduces the
//! *shape* of every exhibit: who wins, by what factor, and where the
//! crossovers fall. `EXPERIMENTS.md` records a full run against the
//! paper's claims.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures;
pub mod harness;
pub mod sweepbench;

pub use harness::Harness;
