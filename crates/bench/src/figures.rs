//! Regeneration of every table and figure in the paper.
//!
//! Each `figN` function reproduces the data behind the corresponding
//! exhibit of WRL 93/3 and renders it as a text report; [`run`] dispatches
//! by exhibit id (`"table1"`, `"fig1"` … `"fig26"`). See `DESIGN.md` for
//! the per-experiment index and `EXPERIMENTS.md` for a recorded run.

use crate::harness::Harness;
use std::fmt::Write as _;
use tlc_area::{CacheGeometry, CellKind};
use tlc_cache::{Associativity, CacheConfig, DuplicationReport, ExclusiveTwoLevel, MemorySystem};
use tlc_core::configspace::{full_space, single_level_configs, SpaceOptions};
use tlc_core::envelope::{envelope_at, mean_improvement};
use tlc_core::report::{envelope_of, envelope_table, points_table};
use tlc_core::runner::sweep_threads;
use tlc_core::{DesignPoint, L2Policy, MachineConfig};
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::{Addr, MemRef};

/// Every exhibit id: the paper's exhibits in paper order, then the
/// extension studies (`power` for §1's fifth advantage, `future` for the
/// §10 future-work conjectures, `policies` for the
/// inclusive/conventional/exclusive ablation).
pub const ALL_IDS: [&str; 41] = [
    "table1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "fig21",
    "fig22",
    "fig23",
    "fig24",
    "fig25",
    "fig26",
    "power",
    "future",
    "policies",
    "missrates",
    "replacement",
    "victim",
    "sensitivity",
    "board",
    "multiprog",
    "banking",
    "prefetch",
    "l1assoc",
    "writes",
    "timingmodels",
];

/// Runs one exhibit by id. Returns `None` for an unknown id.
pub fn run(id: &str, h: &Harness) -> Option<String> {
    Some(match id {
        "table1" => table1(h),
        "fig1" => fig1(h),
        "fig2" => fig2(h),
        "fig3" => fig3(h),
        "fig4" => fig4(h),
        "fig5" => fig5(h),
        "fig6" => fig6(h),
        "fig7" => fig7(h),
        "fig8" => fig8(h),
        "fig9" => fig9(h),
        "fig10" => fig_dual(h, SpecBenchmark::Gcc1, 10),
        "fig11" => fig_dual(h, SpecBenchmark::Espresso, 11),
        "fig12" => fig_dual(h, SpecBenchmark::Doduc, 12),
        "fig13" => fig_dual(h, SpecBenchmark::Fpppp, 13),
        "fig14" => fig_dual(h, SpecBenchmark::Li, 14),
        "fig15" => fig_dual(h, SpecBenchmark::Eqntott, 15),
        "fig16" => fig_dual(h, SpecBenchmark::Tomcatv, 16),
        "fig17" => fig17(h),
        "fig18" => fig_200(h, &[SpecBenchmark::Doduc, SpecBenchmark::Espresso], 18),
        "fig19" => fig_200(h, &[SpecBenchmark::Fpppp, SpecBenchmark::Li], 19),
        "fig20" => fig_200(h, &[SpecBenchmark::Tomcatv, SpecBenchmark::Eqntott], 20),
        "fig21" => fig21(),
        "fig22" => fig22(h),
        "fig23" => fig23(h),
        "fig24" => fig_exclusive_pair(h, &[SpecBenchmark::Doduc, SpecBenchmark::Espresso], 24),
        "fig25" => fig_exclusive_pair(h, &[SpecBenchmark::Fpppp, SpecBenchmark::Li], 25),
        "fig26" => fig_exclusive_pair(h, &[SpecBenchmark::Eqntott, SpecBenchmark::Tomcatv], 26),
        "power" => power_study(h),
        "future" => future_study(h),
        "policies" => policy_ablation(h),
        "missrates" => miss_ratio_curves(h),
        "replacement" => replacement_ablation(h),
        "victim" => victim_cache_study(h),
        "sensitivity" => sensitivity_study(h),
        "board" => board_cache_study(h),
        "multiprog" => multiprogramming_study(h),
        "banking" => banking_study(h),
        "prefetch" => prefetch_study(h),
        "l1assoc" => l1_associativity_study(h),
        "writes" => write_traffic_study(h),
        "timingmodels" => timing_models_study(h),
        _ => return None,
    })
}

fn sweep_points(
    h: &Harness,
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
) -> Vec<DesignPoint> {
    sweep_threads(configs, benchmark, h.budget, &h.timing, &h.area, h.threads)
}

/// Appends the two-envelope comparison (best overall vs single-level
/// only) the paper draws as solid and dotted lines.
fn compare_envelopes(out: &mut String, all: &[DesignPoint], singles: &[DesignPoint]) {
    let env_all = envelope_of(all);
    let env_single = envelope_of(singles);
    let gain = mean_improvement(&env_all, &env_single);
    let _ = writeln!(
        out,
        "mean TPI improvement of best config over single-level-only envelope: {:.1}%",
        gain * 100.0
    );
    // The improvement concentrates at large areas; report the endpoint
    // too (the paper's "marginally preferable for larger available
    // areas", §4).
    if let (Some(last_all), Some(last_single)) = (env_all.last(), env_single.last()) {
        let best_single = last_single.tpi;
        let best_all = envelope_at(&env_all, last_all.area).unwrap_or(best_single);
        let _ = writeln!(
            out,
            "TPI at maximum area: best {:.2}ns vs single-level-only {:.2}ns ({:+.1}%)",
            best_all,
            best_single,
            (best_all / best_single - 1.0) * 100.0
        );
    }
    // Where does a two-level configuration first enter the envelope?
    let first_two_level = envelope_of(all)
        .iter()
        .map(|e| &all[e.index])
        .find(|p| p.machine.l2.is_some())
        .map(|p| (p.label.clone(), p.area_rbe));
    match first_two_level {
        Some((label, area)) => {
            let _ = writeln!(
                out,
                "first two-level configuration on the envelope: {label} at {area:.0} rbe"
            );
        }
        None => {
            let _ = writeln!(out, "no two-level configuration reaches the envelope");
        }
    }
}

/// Table 1: test program references.
pub fn table1(h: &Harness) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1: Test program references");
    let _ = writeln!(
        out,
        "(paper counts from the WRL traces; synthetic counts for this run's budget of {} measured instructions)",
        h.budget.instructions
    );
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>12} {:>12} | {:>11} {:>11} {:>11}",
        "program", "paper instr", "paper data", "paper total", "syn instr", "syn data", "syn total"
    );
    for b in SpecBenchmark::ALL {
        let p = b.paper_refs();
        // Sample the synthetic stream's achieved mix.
        let mut w = b.workload();
        let sample = 50_000u64;
        let mut data = 0u64;
        for _ in 0..sample {
            if w.next_instruction().data.is_some() {
                data += 1;
            }
        }
        let dpi = data as f64 / sample as f64;
        let n = h.budget.instructions as f64;
        let _ = writeln!(
            out,
            "{:>9} {:>11.1}M {:>11.1}M {:>11.1}M | {:>11} {:>11.0} {:>11.0}",
            b.name(),
            p.instr_m,
            p.data_m,
            p.total_m(),
            h.budget.instructions,
            n * dpi,
            n * (1.0 + dpi),
        );
    }
    out
}

/// Figure 1: first-level cache access and cycle times (and area) for
/// direct-mapped split pairs from 1KB to 256KB.
pub fn fig1(h: &Harness) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1: First-level cache access and cycle times (split I+D pair)");
    let _ = writeln!(
        out,
        "{:>6} {:>12} {:>11} {:>10} {:>30}",
        "L1", "pair (rbe)", "access(ns)", "cycle(ns)", "organisation"
    );
    let mut first = None;
    let mut last = None;
    for kb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
        let g = CacheGeometry::paper(kb * 1024, 1);
        let t = h.timing.optimal(&g, CellKind::SinglePorted);
        let a = h.area.total_area(&g, &t.org, CellKind::SinglePorted);
        let _ = writeln!(
            out,
            "{:>5}K {:>12.0} {:>11.2} {:>10.2} {:>30}",
            kb,
            2.0 * a.value(),
            t.access_ns,
            t.cycle_ns,
            t.org.to_string()
        );
        first.get_or_insert(t.cycle_ns);
        last = Some(t.cycle_ns);
    }
    let (f, l) = (first.expect("nonempty"), last.expect("nonempty"));
    let _ = writeln!(out, "cycle-time spread 1KB -> 256KB: {:.2}x (paper: about 1.8x)", l / f);
    out
}

/// Figure 2: L2 access and cycle times (ns and L1 cycles) with 4KB L1
/// caches.
pub fn fig2(h: &Harness) -> String {
    let l1 = h.timing.optimal(&CacheGeometry::paper(4 * 1024, 1), CellKind::SinglePorted);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 2: L2 access and cycle times with 4KB L1 caches");
    let _ = writeln!(out, "(4KB L1 cycle = {:.2}ns; L2 4-way set-associative)", l1.cycle_ns);
    let _ = writeln!(
        out,
        "{:>6} {:>11} {:>10} {:>14} {:>14}",
        "L2", "access(ns)", "cycle(ns)", "access(L1cyc)", "cycle(L1cyc)"
    );
    for kb in [8u64, 16, 32, 64, 128, 256] {
        let t = h.timing.optimal(&CacheGeometry::paper(kb * 1024, 4), CellKind::SinglePorted);
        let _ = writeln!(
            out,
            "{:>5}K {:>11.2} {:>10.2} {:>14} {:>14}",
            kb,
            t.access_ns,
            t.cycle_ns,
            (t.access_ns / l1.cycle_ns).ceil() as u32,
            (t.cycle_ns / l1.cycle_ns).ceil() as u32,
        );
    }
    let _ = writeln!(
        out,
        "(the paper's worked example: an L2 hit costs 2 x L2cyc + 1 = 5 CPU cycles here)"
    );
    out
}

fn fig_singles(h: &Harness, workloads: &[SpecBenchmark], title: &str) -> String {
    let opts = SpaceOptions::baseline();
    let singles = single_level_configs(&opts);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for &b in workloads {
        let pts = sweep_points(h, &singles, b);
        let _ = write!(out, "{}", points_table(&format!("-- {} --", b.name()), &pts));
        // Locate the TPI minimum.
        let best = pts
            .iter()
            .min_by(|a, b| a.tpi_ns.partial_cmp(&b.tpi_ns).expect("no NaN"))
            .expect("nonempty");
        let _ = writeln!(
            out,
            "minimum TPI {:.2}ns at {} (paper: minima fall between 8KB and 128KB)\n",
            best.tpi_ns, best.label
        );
    }
    out
}

/// Figure 3: single-level TPI vs area, gcc1/espresso/doduc/fpppp, 50ns.
pub fn fig3(h: &Harness) -> String {
    fig_singles(
        h,
        &[SpecBenchmark::Gcc1, SpecBenchmark::Espresso, SpecBenchmark::Doduc, SpecBenchmark::Fpppp],
        "Figure 3: gcc1, espresso, doduc, fpppp: 50ns off-chip service time, L1 only",
    )
}

/// Figure 4: single-level TPI vs area, li/eqntott/tomcatv, 50ns.
pub fn fig4(h: &Harness) -> String {
    fig_singles(
        h,
        &[SpecBenchmark::Li, SpecBenchmark::Eqntott, SpecBenchmark::Tomcatv],
        "Figure 4: li, eqntott, tomcatv: 50ns off-chip service time, L1 only",
    )
}

fn fig_full_scatter(
    h: &Harness,
    benchmark: SpecBenchmark,
    opts: SpaceOptions,
    title: &str,
) -> String {
    let all_cfgs = full_space(&opts);
    let pts = sweep_points(h, &all_cfgs, benchmark);
    let singles: Vec<DesignPoint> =
        pts.iter().filter(|p| p.machine.l2.is_none()).cloned().collect();
    let mut out = points_table(title, &pts);
    let _ = writeln!(out);
    out.push_str(&envelope_table("best 2-level-allowed envelope:", &pts));
    out.push_str(&envelope_table("1-level-only envelope:", &singles));
    compare_envelopes(&mut out, &pts, &singles);
    out
}

fn fig_envelopes_multi(
    h: &Harness,
    workloads: &[SpecBenchmark],
    opts: SpaceOptions,
    title: &str,
) -> String {
    let all_cfgs = full_space(&opts);
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for &b in workloads {
        let pts = sweep_points(h, &all_cfgs, b);
        let singles: Vec<DesignPoint> =
            pts.iter().filter(|p| p.machine.l2.is_none()).cloned().collect();
        out.push_str(&envelope_table(&format!("-- {}: best envelope --", b.name()), &pts));
        out.push_str(&envelope_table(
            &format!("-- {}: 1-level-only envelope --", b.name()),
            &singles,
        ));
        compare_envelopes(&mut out, &pts, &singles);
        let _ = writeln!(out);
    }
    out
}

/// Figure 5: gcc1, 50ns off-chip, 4-way set-associative L2 — the full
/// scatter of configurations with the best-performance envelope.
pub fn fig5(h: &Harness) -> String {
    fig_full_scatter(
        h,
        SpecBenchmark::Gcc1,
        SpaceOptions::baseline(),
        "Figure 5: gcc1: 50ns off-chip, L2 4-way set-associative",
    )
}

/// Figure 6: doduc and espresso, 50ns, 4-way L2 (envelopes).
pub fn fig6(h: &Harness) -> String {
    fig_envelopes_multi(
        h,
        &[SpecBenchmark::Doduc, SpecBenchmark::Espresso],
        SpaceOptions::baseline(),
        "Figure 6: doduc and espresso: 50ns off-chip, L2 4-way set-associative",
    )
}

/// Figure 7: fpppp and li, 50ns, 4-way L2 (envelopes).
pub fn fig7(h: &Harness) -> String {
    fig_envelopes_multi(
        h,
        &[SpecBenchmark::Fpppp, SpecBenchmark::Li],
        SpaceOptions::baseline(),
        "Figure 7: fpppp and li: 50ns off-chip, L2 4-way set-associative",
    )
}

/// Figure 8: tomcatv and eqntott, 50ns, 4-way L2 (envelopes).
pub fn fig8(h: &Harness) -> String {
    fig_envelopes_multi(
        h,
        &[SpecBenchmark::Tomcatv, SpecBenchmark::Eqntott],
        SpaceOptions::baseline(),
        "Figure 8: tomcatv and eqntott: 50ns off-chip, L2 4-way set-associative",
    )
}

/// Figure 9: gcc1, 50ns, direct-mapped L2.
pub fn fig9(h: &Harness) -> String {
    let opts = SpaceOptions { l2_ways: 1, ..SpaceOptions::baseline() };
    fig_full_scatter(
        h,
        SpecBenchmark::Gcc1,
        opts,
        "Figure 9: gcc1: 50ns off-chip, L2 direct-mapped",
    )
}

/// Figures 10–16: dual-ported first-level caches (2× area, 2× issue
/// rate), one workload per figure.
pub fn fig_dual(h: &Harness, benchmark: SpecBenchmark, number: u32) -> String {
    let base_opts = SpaceOptions::baseline();
    let dual_opts = SpaceOptions { l1_cell: CellKind::DualPorted, ..base_opts };

    let singles_base = sweep_points(h, &single_level_configs(&base_opts), benchmark);
    let singles_dual = sweep_points(h, &single_level_configs(&dual_opts), benchmark);
    let two_level_dual = sweep_points(h, &full_space(&dual_opts), benchmark);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure {number}: {}: 50ns, 4-way, 2X L1 area, 2X instruction issue rate",
        benchmark.name()
    );
    out.push_str(&envelope_table("1-level, base (single-ported) cell:", &singles_base));
    out.push_str(&envelope_table("1-level, dual-ported cell:", &singles_dual));
    out.push_str(&envelope_table(
        "best 2-level (dual-ported L1, single-ported L2):",
        &two_level_dual,
    ));

    // Cross-over: smallest area where the dual-ported single-level
    // envelope beats the base-cell one (paper: 50K–400K rbe).
    let env_base = envelope_of(&singles_base);
    let env_dual = envelope_of(&singles_dual);
    let crossover = env_dual
        .iter()
        .find(|p| envelope_at(&env_base, p.area).is_some_and(|base_tpi| p.tpi < base_tpi));
    match crossover {
        Some(p) => {
            let _ = writeln!(
                out,
                "dual-ported cell overtakes the base cell at {:.0} rbe (paper: 50K-400K rbe)",
                p.area
            );
        }
        None => {
            let _ = writeln!(out, "dual-ported cell never overtakes the base cell in range");
        }
    }
    // How many single-level points survive on the combined envelope?
    let mut combined = two_level_dual.clone();
    combined.extend(singles_base.iter().cloned());
    let survivors =
        envelope_of(&combined).iter().filter(|e| combined[e.index].machine.l2.is_none()).count();
    let _ = writeln!(
        out,
        "single-level configurations on the combined envelope: {survivors} (paper: few when dual-ported cells are available)"
    );
    out
}

/// Figure 17: gcc1, 200ns off-chip, 4-way L2.
pub fn fig17(h: &Harness) -> String {
    let opts = SpaceOptions { offchip_ns: 200.0, ..SpaceOptions::baseline() };
    fig_full_scatter(
        h,
        SpecBenchmark::Gcc1,
        opts,
        "Figure 17: gcc1: 200ns off-chip, L2 4-way set-associative",
    )
}

/// Figures 18–20: remaining workloads at 200ns off-chip.
pub fn fig_200(h: &Harness, workloads: &[SpecBenchmark], number: u32) -> String {
    let opts = SpaceOptions { offchip_ns: 200.0, ..SpaceOptions::baseline() };
    let names: Vec<&str> = workloads.iter().map(|b| b.name()).collect();
    fig_envelopes_multi(
        h,
        workloads,
        opts,
        &format!("Figure {number}: {}: 200ns off-chip, L2 4-way", names.join(" and ")),
    )
}

/// Figure 21: exclusion vs inclusion during swapping — the deterministic
/// behavioural scenario on a 4-line L1 / 16-line L2 direct-mapped pair.
pub fn fig21() -> String {
    let l1 = CacheConfig::paper(64, Associativity::Direct).expect("valid");
    let l2 = CacheConfig::paper(256, Associativity::Direct).expect("valid");
    let mut out = String::new();
    let _ =
        writeln!(out, "Figure 21: Exclusion vs. inclusion during swapping, direct-mapped caches");
    let _ = writeln!(out, "(4-line L1 data cache, 16-line L2, 16-byte lines)\n");

    let show = |out: &mut String, sys: &ExclusiveTwoLevel, step: &str| {
        let named = |line: tlc_trace::LineAddr| match line.0 {
            0x00 => "A".to_string(),
            0x10 => "E".to_string(),
            0x04 => "B".to_string(),
            0x08 => "C".to_string(),
            0x0C => "D".to_string(),
            other => format!("L{other:x}"),
        };
        let l1: Vec<String> = sys.l1d().iter_lines().map(named).collect();
        let l2: Vec<String> = sys.l2().iter_lines().map(named).collect();
        let _ = writeln!(out, "{step:<24} L1 = {{{}}}  L2 = {{{}}}", l1.join(","), l2.join(","));
    };

    // (a) Second-level conflict => exclusion. A = line 0, E = line 16
    // (0x100): same L1 line, same L2 line.
    let _ = writeln!(out, "(a) second-level cache conflict => exclusion");
    let mut sys = ExclusiveTwoLevel::new(l1, l2);
    let a = Addr::new(0x000);
    let e = Addr::new(0x100);
    sys.access(MemRef::load(a));
    show(&mut out, &sys, "ref A (off-chip)");
    sys.access(MemRef::load(e));
    show(&mut out, &sys, "ref E (off-chip, swap A)");
    for (label, addr) in [("ref A (on-chip swap)", a), ("ref E (on-chip swap)", e)] {
        sys.access(MemRef::load(addr));
        show(&mut out, &sys, label);
    }
    let _ = writeln!(
        out,
        "A and E conflict in both levels yet both stay on-chip — each lives in exactly one level.\n"
    );

    // (b) First-level-only conflict => inclusion. A = line 0, B = line 4
    // (0x040): same L1 line, different L2 lines.
    let _ = writeln!(out, "(b) first-level cache conflict => inclusion");
    let mut sys = ExclusiveTwoLevel::new(l1, l2);
    let b = Addr::new(0x040);
    sys.access(MemRef::load(a));
    show(&mut out, &sys, "ref A (off-chip)");
    sys.access(MemRef::load(b));
    show(&mut out, &sys, "ref B (off-chip, A->L2)");
    sys.access(MemRef::load(a));
    show(&mut out, &sys, "ref A (L2 hit)");
    sys.access(MemRef::load(b));
    show(&mut out, &sys, "ref B (L2 hit)");
    let report = DuplicationReport::measure(sys.l1i(), sys.l1d(), sys.l2());
    let _ = writeln!(
        out,
        "A maps to its own L2 line, so its copy stays there: inclusion persists ({} duplicated line(s)).",
        report.duplicated
    );
    out
}

fn fig_exclusive_scatter(
    h: &Harness,
    benchmark: SpecBenchmark,
    l2_ways: u32,
    title: &str,
) -> String {
    let opts = SpaceOptions { l2_policy: L2Policy::Exclusive, l2_ways, ..SpaceOptions::baseline() };
    let conv_opts = SpaceOptions { l2_policy: L2Policy::Conventional, ..opts };
    let mut out = fig_full_scatter(h, benchmark, opts, title);
    // Compare against the conventional policy at identical geometry.
    let excl = sweep_points(h, &full_space(&opts), benchmark);
    let conv = sweep_points(h, &full_space(&conv_opts), benchmark);
    let gain = mean_improvement(&envelope_of(&excl), &envelope_of(&conv));
    let _ = writeln!(
        out,
        "mean envelope TPI improvement of exclusive over conventional: {:.1}%",
        gain * 100.0
    );
    out
}

/// Figure 22: gcc1, 50ns, exclusive direct-mapped L2.
pub fn fig22(h: &Harness) -> String {
    fig_exclusive_scatter(
        h,
        SpecBenchmark::Gcc1,
        1,
        "Figure 22: gcc1: 50ns off-chip, exclusive direct-mapped L2",
    )
}

/// Figure 23: gcc1, 50ns, exclusive 4-way L2.
pub fn fig23(h: &Harness) -> String {
    fig_exclusive_scatter(
        h,
        SpecBenchmark::Gcc1,
        4,
        "Figure 23: gcc1: 50ns off-chip, exclusive 4-way L2",
    )
}

/// Figures 24–26: the remaining workloads with an exclusive 4-way L2.
pub fn fig_exclusive_pair(h: &Harness, workloads: &[SpecBenchmark], number: u32) -> String {
    let opts = SpaceOptions { l2_policy: L2Policy::Exclusive, ..SpaceOptions::baseline() };
    let names: Vec<&str> = workloads.iter().map(|b| b.name()).collect();
    let mut out = fig_envelopes_multi(
        h,
        workloads,
        opts,
        &format!("Figure {number}: {}: 50ns off-chip, exclusive 4-way L2", names.join(" and ")),
    );
    // Exclusive-vs-conventional deltas per workload.
    let conv_opts = SpaceOptions { l2_policy: L2Policy::Conventional, ..opts };
    for &b in workloads {
        let excl = sweep_points(h, &full_space(&opts), b);
        let conv = sweep_points(h, &full_space(&conv_opts), b);
        let gain = mean_improvement(&envelope_of(&excl), &envelope_of(&conv));
        let _ = writeln!(
            out,
            "{}: mean envelope TPI improvement of exclusive over conventional: {:.1}%",
            b.name(),
            gain * 100.0
        );
    }
    out
}

/// Extension exhibit `power`: energy per instruction, single-level vs
/// two-level at comparable area — the paper's §1 fifth advantage made
/// quantitative.
pub fn power_study(h: &Harness) -> String {
    use tlc_core::energy::energy_per_instruction;
    use tlc_timing::EnergyModel;

    let em = EnergyModel::new();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: energy per instruction (paper §1, advantage 5)\n\
         (arbitrary energy units; only ratios are meaningful)\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>8} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "workload", "config", "area(rbe)", "L1 eu", "L2 eu", "EPI eu", "offchip"
    );
    for b in [SpecBenchmark::Espresso, SpecBenchmark::Gcc1, SpecBenchmark::Li] {
        // Comparable-area pair: 64KB single-level pair vs 8KB pair + 128KB L2.
        let configs = [
            MachineConfig::single_level(64, 50.0),
            MachineConfig::two_level(8, 128, 4, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(8, 128, 4, L2Policy::Exclusive, 50.0),
        ];
        for cfg in configs {
            let p = tlc_core::evaluate(&cfg, b, h.budget, &h.timing, &h.area);
            let e = energy_per_instruction(&cfg, &p.stats, &h.timing, &em);
            let _ = writeln!(
                out,
                "{:>9} {:>8} {:>12.0} {:>10.1} {:>10.1} {:>10.1} {:>7.1}%",
                b.name(),
                p.label,
                p.area_rbe,
                e.l1_access_eu,
                e.l2_access_eu,
                e.epi_eu,
                e.offchip_fraction * 100.0,
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "expectation: the two-level rows spend far less on-chip energy per instruction\n\
         (most accesses hit a small L1) and the exclusive row goes off-chip least."
    );
    out
}

/// Extension exhibit `future`: the §10 future-work conjectures under the
/// extended execution-time model.
pub fn future_study(h: &Harness) -> String {
    use tlc_core::future::{tpi_extended, FutureWorkModel};
    use tlc_core::machine::MachineTiming;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: §10 future work — multicycle pipelined L1s and non-blocking loads\n"
    );
    let b = SpecBenchmark::Gcc1;
    // The fixed datapath cycle: what the fastest (1KB) L1 would allow.
    let datapath =
        h.timing.optimal(&tlc_area::CacheGeometry::paper(1024, 1), CellKind::SinglePorted).cycle_ns;
    let models: [(&str, FutureWorkModel); 4] = [
        ("baseline (§2.5)", FutureWorkModel::baseline()),
        ("multicycle L1", FutureWorkModel::multicycle(datapath, 0.3)),
        ("non-blocking", FutureWorkModel::baseline().with_miss_overlap(0.5)),
        ("multicycle+nb", FutureWorkModel::multicycle(datapath, 0.3).with_miss_overlap(0.5)),
    ];

    // Representative single-level and two-level machines across sizes.
    let configs: Vec<MachineConfig> = vec![
        MachineConfig::single_level(8, 50.0),
        MachineConfig::single_level(64, 50.0),
        MachineConfig::single_level(256, 50.0),
        MachineConfig::two_level(8, 128, 4, L2Policy::Conventional, 50.0),
        MachineConfig::two_level(8, 256, 4, L2Policy::Conventional, 50.0),
    ];
    let _ = write!(out, "{:>28}", "TPI(ns) per model:");
    for c in &configs {
        let _ = write!(out, " {:>9}", c.label());
    }
    let _ = writeln!(out);
    let points: Vec<_> = configs
        .iter()
        .map(|c| {
            let p = tlc_core::evaluate(c, b, h.budget, &h.timing, &h.area);
            let t = MachineTiming::derive(c, &h.timing, &h.area);
            (p, t)
        })
        .collect();
    for (name, m) in &models {
        let _ = write!(out, "{name:>28}");
        for (p, t) in &points {
            let _ = write!(out, " {:>9.2}", tpi_extended(&p.stats, t, m));
        }
        let _ = writeln!(out);
    }

    // The two conjectures, made explicit.
    let tpi_of = |cfg_idx: usize, m: &FutureWorkModel| {
        let (p, t) = &points[cfg_idx];
        tpi_extended(&p.stats, t, m)
    };
    // Conjecture 1: multicycle shrinks the big-single-level penalty,
    // reducing the two-level advantage. Compare 8:128 vs 256:0 under
    // baseline and multicycle.
    let adv_base = tpi_of(2, &models[0].1) / tpi_of(3, &models[0].1);
    let adv_multi = tpi_of(2, &models[1].1) / tpi_of(3, &models[1].1);
    let _ = writeln!(
        out,
        "\nconjecture 1 (multicycle reduces the two-level edge): 256:0 / 8:128 TPI ratio\n\
         baseline {adv_base:.3} -> multicycle {adv_multi:.3} ({})",
        if adv_multi < adv_base { "confirmed" } else { "NOT confirmed" }
    );
    // Conjecture 2: non-blocking keeps the two-level system ahead while
    // compressing everyone's stalls.
    let nb = &models[2].1;
    let _ = writeln!(
        out,
        "conjecture 2 (non-blocking, two-level stays ahead): 8:128 {:.2}ns vs 8:0 {:.2}ns ({})",
        tpi_of(3, nb),
        tpi_of(0, nb),
        if tpi_of(3, nb) < tpi_of(0, nb) { "confirmed" } else { "NOT confirmed" }
    );

    // Measured (not assumed) overlap: MSHR-limited clustering of the
    // actual miss stream upper-bounds what non-blocking loads can hide.
    use tlc_core::overlap::estimate_overlap;
    let _ = writeln!(
        out,
        "\nmeasured miss overlap for 8:128 on {} (MSHR-limited upper bound):",
        b.name()
    );
    let _ = writeln!(
        out,
        "{:>7} {:>10} {:>14} {:>14} {:>16}",
        "MSHRs", "misses", "mean gap", "clustered", "hidden latency"
    );
    for mshrs in [1usize, 2, 4, 8] {
        let r = estimate_overlap(&configs[3], b, h.budget, mshrs, &h.timing, &h.area);
        let _ = writeln!(
            out,
            "{:>7} {:>10} {:>13.1}i {:>13.1}% {:>15.1}%",
            mshrs,
            r.misses,
            r.mean_miss_gap_instr,
            r.clustered_fraction * 100.0,
            r.overlap_fraction * 100.0,
        );
        if mshrs == 4 {
            let m = FutureWorkModel::baseline().with_miss_overlap(r.overlap_fraction);
            let _ = writeln!(
                out,
                "        -> TPI with measured overlap ({:.0}%): {:.2}ns (blocking {:.2}ns)",
                r.overlap_fraction * 100.0,
                tpi_of(3, &m),
                tpi_of(3, &models[0].1),
            );
        }
    }
    out
}

/// Extension exhibit `policies`: inclusive vs conventional vs exclusive
/// at identical geometry — the full policy spectrum around the paper's
/// §8 contribution.
pub fn policy_ablation(h: &Harness) -> String {
    use tlc_cache::InclusiveTwoLevel;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: L2 fill-policy ablation (inclusive / conventional / exclusive)\n\
         4KB L1s, 4-way L2, gcc1; off-chip misses and on-chip duplication per policy\n"
    );
    let _ =
        writeln!(out, "{:>6} {:>24} {:>24} {:>24}", "L2", "inclusive", "conventional", "exclusive");
    let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct).expect("valid");
    for l2_kb in [8u64, 16, 32, 64, 128] {
        let l2 = CacheConfig::paper(l2_kb * 1024, Associativity::SetAssoc(4)).expect("valid");
        let mut systems: Vec<Box<dyn MemorySystem + Send>> = vec![
            Box::new(InclusiveTwoLevel::new(l1, l2)),
            Box::new(tlc_cache::ConventionalTwoLevel::new(l1, l2)),
            Box::new(ExclusiveTwoLevel::new(l1, l2)),
        ];
        let mut cells = Vec::new();
        for sys in &mut systems {
            let mut w = SpecBenchmark::Gcc1.workload();
            for _ in 0..h.budget.warmup_instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            sys.reset_stats();
            for _ in 0..h.budget.instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            cells.push(format!("{} misses", sys.stats().l2_misses));
        }
        let _ = writeln!(out, "{:>5}K {:>24} {:>24} {:>24}", l2_kb, cells[0], cells[1], cells[2]);
    }
    let _ = writeln!(
        out,
        "\nexpectation: misses fall monotonically left to right — enforced inclusion\n\
         wastes capacity on duplicates, exclusion reclaims it (paper §8)."
    );
    out
}

/// Extension exhibit `missrates`: single-pass (Mattson) fully-associative
/// LRU miss-ratio curves per workload — the calibration backbone behind
/// the figures, and the anchors quoted in the paper's §3.
pub fn miss_ratio_curves(h: &Harness) -> String {
    use tlc_cache::StackDistanceProfiler;

    let sizes_kb = [1u64, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: fully-associative LRU miss-ratio curves (one Mattson pass per workload)\n\
         (split profiling: instruction and data streams each against their own capacity)\n"
    );
    let _ = write!(out, "{:>9}", "workload");
    for kb in sizes_kb {
        let _ = write!(out, " {:>7}K", kb);
    }
    let _ = writeln!(out);
    for b in SpecBenchmark::ALL {
        let mut w = b.workload();
        let mut pi = StackDistanceProfiler::new();
        let mut pd = StackDistanceProfiler::new();
        let n = h.budget.instructions.min(800_000);
        for _ in 0..n {
            let rec = w.next_instruction();
            pi.record(rec.fetch.line(16));
            if let Some(d) = rec.data {
                pd.record(d.addr.line(16));
            }
        }
        let _ = write!(out, "{:>9}", b.name());
        for kb in sizes_kb {
            let lines = kb * 1024 / 16;
            // Combined miss rate per reference with split caches of this
            // size each.
            let misses = pi.misses_at_capacity(lines) + pd.misses_at_capacity(lines);
            let refs = pi.accesses() + pd.accesses();
            let _ = write!(out, " {:>8.4}", misses as f64 / refs as f64);
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "\npaper anchors (§3, direct-mapped): espresso 0.0100 and eqntott 0.0149 at 32KB;\n\
         tomcatv 0.109 at 32KB and nearly flat. (FA-LRU curves sit slightly below the\n\
         direct-mapped rates the figures use — no conflict misses.)"
    );
    out
}

/// Extension exhibit `replacement`: what the paper's choice of
/// pseudo-random L2 replacement (§2.1) cost relative to LRU, FIFO, and
/// tree-PLRU.
pub fn replacement_ablation(h: &Harness) -> String {
    use tlc_cache::{ConventionalTwoLevel, ReplacementKind};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: L2 replacement-policy ablation (4KB L1s, 64KB 4-way conventional L2)\n\
         The paper used pseudo-random replacement in its set-associative L2s (§2.1).\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>14} {:>14} {:>14} {:>14}",
        "workload", "LRU", "FIFO", "pseudo-random", "tree-PLRU"
    );
    let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct).expect("valid");
    for b in SpecBenchmark::ALL {
        let mut cells = Vec::new();
        for repl in [
            ReplacementKind::Lru,
            ReplacementKind::Fifo,
            ReplacementKind::PseudoRandom,
            ReplacementKind::TreePlru,
        ] {
            let l2 =
                CacheConfig::new(64 * 1024, 16, Associativity::SetAssoc(4), repl).expect("valid");
            let mut sys = ConventionalTwoLevel::new(l1, l2);
            let mut w = b.workload();
            for _ in 0..h.budget.warmup_instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            sys.reset_stats();
            for _ in 0..h.budget.instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            cells.push(sys.stats().l2_misses);
        }
        let _ = writeln!(
            out,
            "{:>9} {:>14} {:>14} {:>14} {:>14}",
            b.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    let _ = writeln!(
        out,
        "\nexpectation: differences of a few percent — §5's conclusion that policy detail\n\
         matters far less than capacity and the level structure."
    );
    out
}

/// Extension exhibit `victim`: the `y < x` degenerate case of exclusive
/// caching — "the configuration becomes a shared direct-mapped victim
/// cache \[4\]" (§8). Compares a small fully-associative victim buffer
/// against no buffer at all, per workload.
pub fn victim_cache_study(h: &Harness) -> String {
    use tlc_cache::{SingleLevel, VictimCacheSystem};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: victim caching — the y < x limit of exclusive caching (§8 / Jouppi 1990)\n\
         4KB direct-mapped L1s; off-chip misses without and with a shared victim buffer\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "workload", "no buffer", "2 lines", "4 lines", "8 lines", "16 lines"
    );
    let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct).expect("valid");
    for b in SpecBenchmark::ALL {
        let mut cells = Vec::new();
        // Baseline: plain single-level.
        {
            let mut sys = SingleLevel::new(l1);
            let mut w = b.workload();
            for _ in 0..h.budget.warmup_instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            sys.reset_stats();
            for _ in 0..h.budget.instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            cells.push(sys.stats().l2_misses);
        }
        for buffer_lines in [2u64, 4, 8, 16] {
            let mut sys = VictimCacheSystem::new(l1, buffer_lines).expect("valid buffer");
            let mut w = b.workload();
            for _ in 0..h.budget.warmup_instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            sys.reset_stats();
            for _ in 0..h.budget.instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            cells.push(sys.stats().l2_misses);
        }
        let _ = writeln!(
            out,
            "{:>9} {:>12} {:>10} {:>10} {:>10} {:>10}",
            b.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }
    let _ = writeln!(
        out,
        "\nexpectation: a handful of victim lines removes a visible slice of conflict\n\
         misses (Jouppi 1990), with diminishing returns per extra line."
    );
    out
}

/// Extension exhibit `sensitivity`: how robust the paper's conclusions
/// are to its two fixed parameters — the off-chip service time (a 50/200
/// dichotomy in the paper; a continuum here) and the 16-byte line size
/// (§2.1).
pub fn sensitivity_study(h: &Harness) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Extension: sensitivity of the conclusions to fixed parameters\n");

    // Part 1: off-chip service time continuum.
    let _ = writeln!(
        out,
        "(a) off-chip service time vs the single-level/two-level crossover (gcc1, 4-way L2)\n"
    );
    let _ =
        writeln!(out, "{:>10} {:>22} {:>22}", "offchip", "first 2-level (rbe)", "endpoint gain");
    for offchip in [25.0f64, 50.0, 100.0, 200.0, 400.0] {
        let opts = SpaceOptions { offchip_ns: offchip, ..SpaceOptions::baseline() };
        let pts = sweep_points(h, &full_space(&opts), SpecBenchmark::Gcc1);
        let singles: Vec<DesignPoint> =
            pts.iter().filter(|p| p.machine.l2.is_none()).cloned().collect();
        let env = envelope_of(&pts);
        let first = env
            .iter()
            .map(|e| &pts[e.index])
            .find(|p| p.machine.l2.is_some())
            .map(|p| format!("{} @ {:.0}", p.label, p.area_rbe))
            .unwrap_or_else(|| "none".to_string());
        let env_single = envelope_of(&singles);
        let endpoint = match (env.last(), env_single.last()) {
            (Some(a), Some(s)) => format!("{:+.1}%", (a.tpi / s.tpi - 1.0) * 100.0),
            _ => "n/a".to_string(),
        };
        let _ = writeln!(out, "{:>8}ns {:>22} {:>22}", offchip, first, endpoint);
    }
    let _ = writeln!(
        out,
        "\nexpectation: the crossover moves to smaller areas and the endpoint gain grows\n\
         monotonically as memory gets slower — §7 generalised to a continuum.\n"
    );

    // Part 2: line size.
    let _ = writeln!(
        out,
        "(b) line size (paper fixes 16B): gcc1 on 8:64 conventional and 32:0 single-level\n"
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>12} {:>10} | {:>10} {:>12} {:>10}",
        "line", "8:64 TPI", "missrate", "L2cyc", "32:0 TPI", "missrate", "cyc(ns)"
    );
    for line_bytes in [16u64, 32, 64] {
        let mut two = MachineConfig::two_level(8, 64, 4, L2Policy::Conventional, 50.0);
        two.line_bytes = line_bytes;
        let mut one = MachineConfig::single_level(32, 50.0);
        one.line_bytes = line_bytes;
        let p2 = tlc_core::evaluate(&two, SpecBenchmark::Gcc1, h.budget, &h.timing, &h.area);
        let p1 = tlc_core::evaluate(&one, SpecBenchmark::Gcc1, h.budget, &h.timing, &h.area);
        let _ = writeln!(
            out,
            "{:>5}B {:>10.2} {:>12.4} {:>10} | {:>10.2} {:>12.4} {:>10.2}",
            line_bytes,
            p2.tpi_ns,
            p2.stats.global_miss_rate(),
            p2.l2_cycles,
            p1.tpi_ns,
            p1.stats.global_miss_rate(),
            p1.l1_cycle_ns,
        );
    }
    let _ = writeln!(
        out,
        "\nexpectation: longer lines cut miss *rates* (spatial locality) but pay more\n\
         refill transfers per miss; the paper's 16B choice is near the sweet spot for\n\
         its 8-byte refill path."
    );
    out
}

/// Extension exhibit `board`: an explicit board-level third cache behind
/// the chip, validating the paper's flat 50ns "with board cache"
/// operating point (§2.1) and exercising the §8 inclusion remark
/// (on-chip lines evicted from the board are purged on-chip).
pub fn board_cache_study(h: &Harness) -> String {
    use tlc_cache::{effective_offchip_ns, BoardCache};
    use tlc_core::experiment::build_system;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: explicit board-level cache (the paper's flat 50ns, unpacked)\n\
         On-chip: 8KB L1s + 64KB 4-way conventional L2; board probed on every\n\
         on-chip miss; board evictions purge on-chip copies (inclusion, §8).\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>8} {:>12} {:>12} {:>14} {:>14}",
        "workload", "board", "hit ratio", "eff. ns", "inclusions", "purged lines"
    );
    let cfg = MachineConfig::two_level(8, 64, 4, L2Policy::Conventional, 50.0);
    for b in [SpecBenchmark::Gcc1, SpecBenchmark::Tomcatv, SpecBenchmark::Espresso] {
        for board_kb in [256u64, 1024, 4096] {
            let mut sys = build_system(&cfg);
            let mut board = BoardCache::new(board_kb * 1024, 2, 16).expect("valid board");
            let mut purged = 0u64;
            let mut w = b.workload();
            let n = h.budget.instructions.min(600_000) + h.budget.warmup_instructions;
            for _ in 0..n {
                let rec = w.next_instruction();
                for r in rec.refs() {
                    if sys.access(r) == tlc_cache::ServiceLevel::Memory {
                        let outcome = board.access(r.addr.line(16));
                        if let Some(evicted) = outcome.evicted {
                            purged += sys.invalidate_line(evicted) as u64;
                        }
                    }
                }
            }
            let hit_ratio = board.stats().hit_rate();
            let _ = writeln!(
                out,
                "{:>9} {:>7}K {:>12.3} {:>11.1}ns {:>14} {:>14}",
                b.name(),
                board_kb,
                hit_ratio,
                effective_offchip_ns(hit_ratio, 50.0, 200.0),
                board.stats().evictions,
                purged,
            );
        }
    }
    let _ = writeln!(
        out,
        "\nexpectation: a megabyte-class board cache pushes the effective service time\n\
         toward the paper's 50ns operating point for cacheable workloads; streaming\n\
         tomcatv stays closer to the 200ns (no-board) point."
    );
    out
}

/// Extension exhibit `multiprog`: multiprogramming effects the paper
/// scoped out (§2.2), in the spirit of the WRL companion study on
/// context switches (Mogul & Borg, TN-16). Two processes time-share one
/// hierarchy; TPI is compared against the processes running alone.
pub fn multiprogramming_study(h: &Harness) -> String {
    use tlc_core::experiment::{simulate_source, SimBudget};
    use tlc_core::machine::MachineTiming;
    use tlc_core::tpi::tpi_ns;
    use tlc_trace::TimeSliced;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: multiprogramming (§2.2 scoped this out; cf. Mogul & Borg TN-16)\n\
         gcc1 + li time-sharing one hierarchy; TPI vs context-switch quantum\n"
    );
    let budget = SimBudget {
        instructions: h.budget.instructions.min(800_000),
        warmup_instructions: h.budget.warmup_instructions.min(200_000),
    };
    for cfg in [
        MachineConfig::single_level(32, 50.0),
        MachineConfig::two_level(8, 64, 4, L2Policy::Conventional, 50.0),
    ] {
        let t = MachineTiming::derive(&cfg, &h.timing, &h.area);
        // Solo baselines.
        let solo: Vec<f64> = [SpecBenchmark::Gcc1, SpecBenchmark::Li]
            .iter()
            .map(|&b| {
                let mut w = b.workload();
                tpi_ns(&simulate_source(&cfg, &mut w, budget), &t)
            })
            .collect();
        let ideal = (solo[0] + solo[1]) / 2.0;
        let _ = writeln!(
            out,
            "{}: solo gcc1 {:.2}ns, solo li {:.2}ns, ideal mix {:.2}ns",
            cfg.label(),
            solo[0],
            solo[1],
            ideal
        );
        let _ = writeln!(out, "{:>12} {:>10} {:>12}", "quantum", "TPI(ns)", "slowdown");
        for quantum in [2_000u64, 10_000, 50_000, 250_000] {
            let mut mp = TimeSliced::new(
                vec![
                    Box::new(SpecBenchmark::Gcc1.workload()),
                    Box::new(SpecBenchmark::Li.workload()),
                ],
                quantum,
            );
            let stats = simulate_source(&cfg, &mut mp, budget);
            let tpi = tpi_ns(&stats, &t);
            let _ = writeln!(
                out,
                "{:>12} {:>10.2} {:>11.1}%",
                quantum,
                tpi,
                (tpi / ideal - 1.0) * 100.0
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "expectation: short quanta inflate TPI (each switch refetches the working\n\
         set); large caches suffer relatively more, echoing TN-16's findings."
    );
    out
}

/// Extension exhibit `banking`: banking vs dual porting for dual-issue
/// bandwidth — the tradeoff §6 delegates to Sohi & Franklin \[8\].
pub fn banking_study(h: &Harness) -> String {
    use tlc_core::banking::{evaluate_banked, BankingParams};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: banking vs dual porting for 2-issue bandwidth (§6 / ref [8])\n\
         32KB single-level L1 pair; banked L1s serialise same-bank reference pairs\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>14} {:>10} {:>8} {:>12} {:>9}",
        "workload", "organisation", "conflict", "issue", "area(rbe)", "TPI(ns)"
    );
    let base = MachineConfig::single_level(32, 50.0);
    for b in [SpecBenchmark::Espresso, SpecBenchmark::Gcc1] {
        // Single-ported and dual-ported reference rows.
        let plain = tlc_core::evaluate(&base, b, h.budget, &h.timing, &h.area);
        let dual = tlc_core::evaluate(
            &base.with_l1_cell(CellKind::DualPorted),
            b,
            h.budget,
            &h.timing,
            &h.area,
        );
        let _ = writeln!(
            out,
            "{:>9} {:>14} {:>10} {:>8.2} {:>12.0} {:>9.2}",
            b.name(),
            "single-port",
            "-",
            1.0,
            plain.area_rbe,
            plain.tpi_ns
        );
        for banks in [2u32, 4, 8] {
            let p =
                evaluate_banked(&base, b, h.budget, BankingParams::new(banks), &h.timing, &h.area);
            let _ = writeln!(
                out,
                "{:>9} {:>12}-bank {:>9.3} {:>8.2} {:>12.0} {:>9.2}",
                b.name(),
                banks,
                p.conflict_rate,
                p.issue_factor,
                p.area_rbe,
                p.tpi_ns
            );
        }
        let _ = writeln!(
            out,
            "{:>9} {:>14} {:>10} {:>8.2} {:>12.0} {:>9.2}",
            b.name(),
            "dual-port",
            "-",
            2.0,
            dual.area_rbe,
            dual.tpi_ns
        );
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "expectation: a few banks recover most of the dual-ported speedup at a\n\
         fraction of its 2x area — the [8] tradeoff."
    );
    out
}

/// Extension exhibit `prefetch`: stream buffers — the prefetch half of
/// the paper's reference \[4\] — against the victim buffer and the plain
/// single-level baseline.
pub fn prefetch_study(h: &Harness) -> String {
    use tlc_cache::{SingleLevel, StreamBufferSystem, VictimCacheSystem};

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: stream buffers vs victim buffer (both from the paper's ref [4])\n\
         4KB direct-mapped L1s; off-chip demand misses per organisation\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>10} {:>12} {:>14} {:>16}",
        "workload", "plain", "victim(8)", "stream(8x4)", "prefetch traffic"
    );
    let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct).expect("valid");
    for b in SpecBenchmark::ALL {
        let drive = |sys: &mut dyn MemorySystem| {
            let mut w = b.workload();
            for _ in 0..h.budget.warmup_instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            sys.reset_stats();
            for _ in 0..h.budget.instructions {
                let i = w.next_instruction();
                sys.access_instruction(&i);
            }
            sys.stats().l2_misses
        };
        let plain = drive(&mut SingleLevel::new(l1));
        let victim = drive(&mut VictimCacheSystem::new(l1, 8).expect("valid"));
        let mut stream_sys = StreamBufferSystem::new(l1, 8, 4);
        let stream = drive(&mut stream_sys);
        let _ = writeln!(
            out,
            "{:>9} {:>10} {:>12} {:>14} {:>16}",
            b.name(),
            plain,
            victim,
            stream,
            stream_sys.prefetches(),
        );
    }
    let _ = writeln!(
        out,
        "\nexpectation: stream buffers demolish sequential misses (tomcatv, fpppp's\n\
         straight-line code) at the cost of prefetch bandwidth; the victim buffer\n\
         targets conflict misses instead — complementary mechanisms, as in [4]."
    );
    out
}

/// Extension exhibit `l1assoc`: Hill's "case for direct-mapped caches"
/// (\[3\]), which the paper's §2.1/§4 design rests on ("direct-mapped
/// caches usually provide the best performance for first-level caches").
/// Set-associative L1s cut misses but lengthen the processor cycle.
pub fn l1_associativity_study(h: &Harness) -> String {
    use tlc_cache::{ReplacementKind, SingleLevel};
    use tlc_core::machine::MachineTiming;
    use tlc_core::tpi::tpi_ns;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: first-level associativity (Hill [3], the basis of §2.1's DM L1s)\n\
         single-level systems, 50ns off-chip; the L1 sets the processor cycle\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>6} {:>6} {:>10} {:>10} {:>9}",
        "workload", "L1", "ways", "cycle(ns)", "missrate", "TPI(ns)"
    );
    for b in [SpecBenchmark::Gcc1, SpecBenchmark::Li] {
        for kb in [8u64, 32] {
            for ways in [1u32, 2, 4] {
                let assoc =
                    if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
                let l1 = CacheConfig::new(kb * 1024, 16, assoc, ReplacementKind::PseudoRandom)
                    .expect("valid");
                let mut sys = SingleLevel::new(l1);
                let mut w = b.workload();
                for _ in 0..h.budget.warmup_instructions {
                    let i = w.next_instruction();
                    sys.access_instruction(&i);
                }
                sys.reset_stats();
                for _ in 0..h.budget.instructions {
                    let i = w.next_instruction();
                    sys.access_instruction(&i);
                }
                // Timing: an L1 of this associativity sets the cycle.
                let geom =
                    CacheGeometry { size_bytes: kb * 1024, line_bytes: 16, ways, addr_bits: 32 };
                let t = h.timing.optimal(&geom, CellKind::SinglePorted);
                let a = h.area.total_area(&geom, &t.org, CellKind::SinglePorted);
                let offchip = (50.0 / t.cycle_ns).ceil() * t.cycle_ns;
                let mt = MachineTiming {
                    l1_cycle_ns: t.cycle_ns,
                    l1_access_ns: t.access_ns,
                    l2_raw_cycle_ns: 0.0,
                    l2_raw_access_ns: 0.0,
                    l2_cycles: 0,
                    offchip_rounded_ns: offchip,
                    area_rbe: 2.0 * a.value(),
                    issue_factor: 1.0,
                    refill_transfers: 2,
                };
                let tpi = tpi_ns(sys.stats(), &mt);
                let _ = writeln!(
                    out,
                    "{:>9} {:>5}K {:>6} {:>10.2} {:>10.4} {:>9.2}",
                    b.name(),
                    kb,
                    ways,
                    t.cycle_ns,
                    sys.stats().l1_miss_rate(),
                    tpi
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "\nexpectation: associativity trims the miss rate at best modestly (pseudo-random\n\
         replacement can even lose to DM's regularity), while the serial tag-compare/\n\
         way-select path lengthens every cycle — direct-mapped wins the TPI at the L1,\n\
         as Hill argued and the paper assumed."
    );
    out
}

/// Extension exhibit `writes`: the write traffic behind §2.2's "write
/// traffic was modeled as read traffic" simplification — what
/// write-through vs write-back would put on the off-chip bus.
pub fn write_traffic_study(h: &Harness) -> String {
    use tlc_core::experiment::simulate_source;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Extension: write traffic (§2.2 models writes as reads; this quantifies the\n\
         bus traffic that choice abstracts away)\n"
    );
    let _ = writeln!(
        out,
        "{:>9} {:>9} {:>14} {:>18} {:>14}",
        "workload", "config", "stores/instr", "writebacks/instr", "WT/WB ratio"
    );
    for b in SpecBenchmark::ALL {
        for cfg in [
            MachineConfig::single_level(8, 50.0),
            MachineConfig::two_level(8, 64, 4, L2Policy::Exclusive, 50.0),
        ] {
            // Count stores from the stream itself.
            let mut w = b.workload();
            let mut stores = 0u64;
            for _ in 0..h.budget.instructions.min(400_000) {
                if let Some(d) = w.next_instruction().data {
                    if d.kind == tlc_trace::AccessKind::Store {
                        stores += 1;
                    }
                }
            }
            let n = h.budget.instructions.min(400_000) as f64;
            let budget = tlc_core::SimBudget {
                instructions: h.budget.instructions.min(400_000),
                warmup_instructions: h.budget.warmup_instructions.min(100_000),
            };
            let mut w = b.workload();
            let st = simulate_source(&cfg, &mut w, budget);
            let wt = stores as f64 / n; // write-through: every store hits the bus
            let wb = st.offchip_writebacks as f64 / st.instructions as f64;
            let _ = writeln!(
                out,
                "{:>9} {:>9} {:>14.4} {:>18.4} {:>14.1}",
                b.name(),
                cfg.label(),
                wt,
                wb,
                if wb > 0.0 { wt / wb } else { f64::INFINITY },
            );
        }
    }
    let _ = writeln!(
        out,
        "\nexpectation: write-back sharply cuts bus writes wherever stores hit cached\n\
         data (everything but pure streaming) — the reason the paper could fold\n\
         writes into its read model without distorting the off-chip picture."
    );
    out
}

/// Extension exhibit `timingmodels`: the calibrated stage-constant model
/// (the repository's default, matched to the paper's published outputs)
/// against the transistor-level Horowitz/RC model (the structure of
/// Wilton–Jouppi TR 93/5), across Figure 1's size sweep.
pub fn timing_models_study(h: &Harness) -> String {
    use tlc_timing::DetailedTimingModel;

    let detailed = DetailedTimingModel::paper();
    let mut out = String::new();
    let _ =
        writeln!(out, "Extension: calibrated vs transistor-level timing model (Figure 1 sweep)\n");
    let _ = writeln!(
        out,
        "{:>6} | {:>11} {:>10} | {:>11} {:>10} {:>9}",
        "L1", "cal access", "cal cycle", "det access", "det cycle", "det/cal"
    );
    let mut firsts = (0.0f64, 0.0f64);
    let mut lasts = (0.0f64, 0.0f64);
    for (i, kb) in [1u64, 2, 4, 8, 16, 32, 64, 128, 256].iter().enumerate() {
        let g = CacheGeometry::paper(kb * 1024, 1);
        let c = h.timing.optimal(&g, CellKind::SinglePorted);
        let d = detailed.optimal(&g, CellKind::SinglePorted);
        let _ = writeln!(
            out,
            "{:>5}K | {:>11.2} {:>10.2} | {:>11.2} {:>10.2} {:>9.2}",
            kb,
            c.access_ns,
            c.cycle_ns,
            d.access_ns,
            d.cycle_ns,
            d.cycle_ns / c.cycle_ns
        );
        if i == 0 {
            firsts = (c.cycle_ns, d.cycle_ns);
        }
        lasts = (c.cycle_ns, d.cycle_ns);
    }
    let _ = writeln!(
        out,
        "\ncycle spread 1KB -> 256KB: calibrated {:.2}x (paper: ~1.8x), transistor-level {:.2}x",
        lasts.0 / firsts.0,
        lasts.1 / firsts.1
    );
    let _ = writeln!(
        out,
        "the transistor-level model charges honest wire lengths for 0.8µm-class\n\
         centimetre arrays, so it grows steeper; the two agree on every ordering\n\
         (cross-checked by tests), which is what the study's conclusions rest on."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatcher_knows_every_id() {
        let h = Harness::quick();
        // Only run the cheap, simulation-free exhibits here; the heavy
        // ones are covered by integration tests and the repro binary.
        for id in ["table1", "fig1", "fig2", "fig21"] {
            let out = run(id, &h).expect("known id");
            assert!(!out.is_empty());
        }
        assert!(run("fig99", &h).is_none());
        assert_eq!(ALL_IDS.len(), 41);
        for id in ALL_IDS {
            assert!(ALL_IDS.contains(&id), "id list and dispatcher out of sync for {id}");
        }
    }

    #[test]
    fn fig1_reports_spread() {
        let out = fig1(&Harness::quick());
        assert!(out.contains("256K"));
        assert!(out.contains("spread"));
    }

    #[test]
    fn fig2_reports_l1_cycles() {
        let out = fig2(&Harness::quick());
        assert!(out.contains("L1cyc"));
        assert!(out.contains("8K"));
    }

    #[test]
    fn fig21_shows_exclusion_and_inclusion() {
        let out = fig21();
        assert!(out.contains("exclusion"));
        assert!(out.contains("inclusion"));
        // Scenario (a): after the warm-up both A and E are on-chip.
        assert!(out.contains("L1 = {E}  L2 = {A}") || out.contains("L1 = {A}  L2 = {E}"));
    }

    #[test]
    fn table1_lists_all_programs() {
        let out = table1(&Harness::quick());
        for b in SpecBenchmark::ALL {
            assert!(out.contains(b.name()), "missing {b}");
        }
        assert!(out.contains("2949.9") || out.contains("2949.90"), "paper total for tomcatv");
    }
}
