//! Miss-stream filtering throughput: how much faster an L2 evaluation
//! gets once the L1 has been simulated out of the loop.
//!
//! Three measurements over one benchmark and one shared L1:
//!
//! 1. `capture_miss_stream` — the one-time cost of running the L1 over
//!    the arena and packing its miss/victim events;
//! 2. `evaluate_filtered` vs `evaluate_arena` — the per-configuration
//!    cost with and without the L1 in the loop (the filtered engine
//!    touches only the events, typically a small fraction of the
//!    references);
//! 3. the end-to-end filtered sweep vs the arena sweep over the
//!    two-level design space, where every configuration shares one of a
//!    few L1 front-ends.
//!
//! For the committed machine-readable comparison, see `BENCH_sweep.json`
//! (regenerate with `repro bench-sweep <path>`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlc_area::AreaModel;
use tlc_core::configspace::{full_space, SpaceOptions};
use tlc_core::experiment::{
    capture_benchmark, capture_miss_stream, evaluate_arena, evaluate_filtered, SimBudget,
};
use tlc_core::runner::{default_threads, sweep_arena_threads, sweep_filtered_arena_threads};
use tlc_core::{L2Policy, MachineConfig};
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;

const BUDGET: SimBudget = SimBudget { instructions: 120_000, warmup_instructions: 30_000 };

fn bench_miss_stream(c: &mut Criterion) {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let threads = default_threads();
    let arena = capture_benchmark(SpecBenchmark::Espresso, BUDGET);
    let refs = BUDGET.warmup_instructions + BUDGET.instructions;

    let mut group = c.benchmark_group("miss_stream_150k_instructions");

    // One-time per-L1 cost: simulate the front-end and pack the events.
    group.throughput(Throughput::Elements(refs));
    group.bench_function("capture_miss_stream_4k", |b| {
        b.iter(|| {
            capture_miss_stream(4 * 1024, 16, &arena, BUDGET, usize::MAX)
                .expect("unbounded capture succeeds")
        })
    });

    // Per-configuration cost: full arena replay (L1 in the loop) vs
    // event replay (L1 simulated out).
    let stream = capture_miss_stream(4 * 1024, 16, &arena, BUDGET, usize::MAX)
        .expect("unbounded capture succeeds");
    for (label, cfg) in [
        ("conventional", MachineConfig::two_level(4, 64, 4, L2Policy::Conventional, 50.0)),
        ("exclusive", MachineConfig::two_level(4, 64, 4, L2Policy::Exclusive, 50.0)),
    ] {
        group.bench_function(BenchmarkId::new("arena_per_config", label), |b| {
            b.iter(|| evaluate_arena(&cfg, &arena, BUDGET, &timing, &area))
        });
        group.bench_function(BenchmarkId::new("filtered_per_config", label), |b| {
            b.iter(|| evaluate_filtered(&cfg, &stream, &timing, &area))
        });
    }

    // End-to-end on the two-level design space, where the filtering pays
    // for itself: every configuration shares one of a few L1 fronts.
    let mut space = full_space(&SpaceOptions::baseline());
    space.extend(full_space(&SpaceOptions {
        l2_policy: L2Policy::Exclusive,
        ..SpaceOptions::baseline()
    }));
    let twolevel: Vec<MachineConfig> = space.into_iter().filter(|c| c.l2.is_some()).collect();
    group.throughput(Throughput::Elements(refs * twolevel.len() as u64));
    group.bench_function(BenchmarkId::new("arena_sweep_twolevel", twolevel.len()), |b| {
        b.iter(|| sweep_arena_threads(&twolevel, &arena, BUDGET, &timing, &area, threads))
    });
    group.bench_function(BenchmarkId::new("filtered_sweep_twolevel", twolevel.len()), |b| {
        b.iter(|| sweep_filtered_arena_threads(&twolevel, &arena, BUDGET, &timing, &area, threads))
    });
    group.finish();
}

criterion_group!(benches, bench_miss_stream);
criterion_main!(benches);
