//! Simulator-throughput micro-benchmarks: accesses per second through a
//! bare cache and through each hierarchy organisation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlc_cache::{
    Associativity, Cache, CacheConfig, ConventionalTwoLevel, ExclusiveTwoLevel, InclusiveTwoLevel,
    MemorySystem, SingleLevel, StackDistanceProfiler, StreamBufferSystem, VictimCacheSystem,
};
use tlc_trace::{Addr, LineAddr, MemRef};

/// A cheap deterministic address stream (xorshift) shared by all benches.
fn addresses(n: usize, span: u64) -> Vec<u64> {
    let mut x = 0x243F_6A88_85A3_08D3u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % span) & !0xF
        })
        .collect()
}

fn bench_bare_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("bare_cache");
    let addrs = addresses(10_000, 1 << 20);
    group.throughput(Throughput::Elements(addrs.len() as u64));
    for (name, assoc) in
        [("direct_mapped_32k", Associativity::Direct), ("4way_32k", Associativity::SetAssoc(4))]
    {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut cache = Cache::new(CacheConfig::paper(32 * 1024, assoc).expect("valid"));
                let mut hits = 0u64;
                for &a in &addrs {
                    let line = LineAddr(a >> 4);
                    if cache.access(line, false) {
                        hits += 1;
                    } else {
                        cache.fill(line, false);
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_hierarchies(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    let addrs = addresses(10_000, 1 << 20);
    group.throughput(Throughput::Elements(addrs.len() as u64));
    let l1 = CacheConfig::paper(8 * 1024, Associativity::Direct).expect("valid");
    let l2 = CacheConfig::paper(64 * 1024, Associativity::SetAssoc(4)).expect("valid");

    let run = |sys: &mut dyn MemorySystem, addrs: &[u64]| {
        for &a in addrs {
            sys.access(MemRef::load(Addr::new(a)));
        }
        sys.stats().l2_misses
    };

    group.bench_function("single_level", |b| b.iter(|| run(&mut SingleLevel::new(l1), &addrs)));
    group.bench_function("conventional_two_level", |b| {
        b.iter(|| run(&mut ConventionalTwoLevel::new(l1, l2), &addrs))
    });
    group.bench_function("exclusive_two_level", |b| {
        b.iter(|| run(&mut ExclusiveTwoLevel::new(l1, l2), &addrs))
    });
    group.bench_function("victim_cache", |b| {
        b.iter(|| run(&mut VictimCacheSystem::new(l1, 8).expect("valid"), &addrs))
    });
    group.bench_function("inclusive_two_level", |b| {
        b.iter(|| run(&mut InclusiveTwoLevel::new(l1, l2), &addrs))
    });
    group.bench_function("stream_buffers", |b| {
        b.iter(|| run(&mut StreamBufferSystem::new(l1, 4, 4), &addrs))
    });
    group.finish();
}

fn bench_mattson_profiler(c: &mut Criterion) {
    let addrs = addresses(10_000, 1 << 20);
    let mut group = c.benchmark_group("mattson_profiler");
    group.throughput(Throughput::Elements(addrs.len() as u64));
    group.bench_function("record_10k", |b| {
        b.iter(|| {
            let mut p = StackDistanceProfiler::new();
            for &a in &addrs {
                p.record(LineAddr(a >> 4));
            }
            p.misses_at_capacity(1024)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bare_cache, bench_hierarchies, bench_mattson_profiler);
criterion_main!(benches);
