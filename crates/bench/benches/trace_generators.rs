//! Workload-generator throughput: instructions per second for each
//! SPEC'89-like preset (the generators must be far faster than the cache
//! simulator to keep sweeps simulator-bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlc_trace::spec::SpecBenchmark;

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_generation");
    const N: u64 = 10_000;
    group.throughput(Throughput::Elements(N));
    for b in SpecBenchmark::ALL {
        group.bench_function(BenchmarkId::from_parameter(b.name()), |bench| {
            bench.iter(|| {
                let mut w = b.workload();
                let mut data_refs = 0u64;
                for _ in 0..N {
                    if w.next_instruction().data.is_some() {
                        data_refs += 1;
                    }
                }
                data_refs
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
