//! Sweep-engine throughput: regenerate-per-configuration streaming vs
//! capture-once/replay-many arena, over a real slice of the design
//! space. The arena's advantage grows with the number of configurations
//! sharing one capture, so the benchmark sweeps the config count too.
//!
//! For the committed machine-readable comparison at the full budget, see
//! `BENCH_sweep.json` (regenerate with `repro bench-sweep <path>`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlc_area::AreaModel;
use tlc_core::configspace::{full_space, SpaceOptions};
use tlc_core::experiment::{capture_benchmark, SimBudget};
use tlc_core::runner::{
    default_threads, sweep_arena_threads, sweep_dyn_threads, sweep_streaming_threads,
};
use tlc_core::L2Policy;
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;

const BUDGET: SimBudget = SimBudget { instructions: 120_000, warmup_instructions: 30_000 };

fn bench_sweep_engines(c: &mut Criterion) {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    // Baseline (conventional) plus the paper's §8 exclusive variant:
    // the 90-configuration space a `repro` policy comparison sweeps.
    let mut space = full_space(&SpaceOptions::baseline());
    space.extend(full_space(&SpaceOptions {
        l2_policy: L2Policy::Exclusive,
        ..SpaceOptions::baseline()
    }));
    let threads = default_threads();
    let mut group = c.benchmark_group("sweep_150k_instructions");

    for n in [8usize, 32, space.len()] {
        let configs = &space[..n.min(space.len())];
        let instructions =
            (BUDGET.warmup_instructions + BUDGET.instructions) * configs.len() as u64;
        group.throughput(Throughput::Elements(instructions));
        group.bench_function(BenchmarkId::new("legacy_dyn", configs.len()), |b| {
            b.iter(|| {
                sweep_dyn_threads(configs, SpecBenchmark::Espresso, BUDGET, &timing, &area, threads)
            })
        });
        group.bench_function(BenchmarkId::new("streaming", configs.len()), |b| {
            b.iter(|| {
                sweep_streaming_threads(
                    configs,
                    SpecBenchmark::Espresso,
                    BUDGET,
                    &timing,
                    &area,
                    threads,
                )
            })
        });
        group.bench_function(BenchmarkId::new("arena_capture_and_replay", configs.len()), |b| {
            b.iter(|| {
                let arena = capture_benchmark(SpecBenchmark::Espresso, BUDGET);
                sweep_arena_threads(configs, &arena, BUDGET, &timing, &area, threads)
            })
        });
    }

    // Replay alone, against a pre-built capture: the steady-state cost
    // when one arena is shared across several sweeps (CSV export does
    // four sweeps per capture).
    let arena = capture_benchmark(SpecBenchmark::Espresso, BUDGET);
    let configs = &space[..];
    group.throughput(Throughput::Elements(
        (BUDGET.warmup_instructions + BUDGET.instructions) * configs.len() as u64,
    ));
    group.bench_function(BenchmarkId::new("arena_replay_only", configs.len()), |b| {
        b.iter(|| sweep_arena_threads(configs, &arena, BUDGET, &timing, &area, threads))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_engines);
criterion_main!(benches);
