//! Family-batched replay throughput: how much faster a two-level sweep
//! gets once each (L1, policy, ways) family's miss stream is decoded
//! once for every L2 size instead of once per configuration.
//!
//! Three measurements over one benchmark and one shared L1:
//!
//! 1. `evaluate_family` vs per-configuration `evaluate_filtered` over a
//!    full nested-size family — the decode-sharing win in isolation;
//! 2. the same comparison for the direct-mapped fast path, where the
//!    whole family is answered from one "smallest hitting size"
//!    threshold per event;
//! 3. the end-to-end family sweep vs the filtered sweep over the
//!    two-level design space, single-threaded so the comparison is pure
//!    engine work (this is the `BENCH_sweep.json` acceptance ratio).
//!
//! For the committed machine-readable comparison, see `BENCH_sweep.json`
//! (regenerate with `repro bench-sweep <path>`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tlc_area::AreaModel;
use tlc_core::configspace::{full_space, SpaceOptions, L2_SIZES_KB};
use tlc_core::experiment::{
    capture_benchmark, capture_miss_stream, evaluate_family, evaluate_filtered, SimBudget,
};
use tlc_core::runner::{sweep_family_arena_threads, sweep_filtered_arena_threads};
use tlc_core::{L2Policy, MachineConfig};
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;

const BUDGET: SimBudget = SimBudget { instructions: 120_000, warmup_instructions: 30_000 };

fn bench_family(c: &mut Criterion) {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let arena = capture_benchmark(SpecBenchmark::Espresso, BUDGET);
    let refs = BUDGET.warmup_instructions + BUDGET.instructions;
    let stream = capture_miss_stream(4 * 1024, 16, &arena, BUDGET, usize::MAX)
        .expect("unbounded capture succeeds");

    let mut group = c.benchmark_group("family_150k_instructions");

    // Per-family cost: one batched pass over the events vs one filtered
    // replay per member, for every policy/associativity shape.
    for (label, ways, policy) in [
        ("conventional_4way", 4, L2Policy::Conventional),
        ("conventional_dm", 1, L2Policy::Conventional),
        ("exclusive_4way", 4, L2Policy::Exclusive),
    ] {
        let family: Vec<MachineConfig> = L2_SIZES_KB
            .iter()
            .filter(|&&kb| kb >= 8)
            .map(|&kb| MachineConfig::two_level(4, kb, ways, policy, 50.0))
            .collect();
        group.throughput(Throughput::Elements(family.len() as u64));
        group.bench_function(BenchmarkId::new("filtered_per_member", label), |b| {
            b.iter(|| {
                family
                    .iter()
                    .map(|cfg| evaluate_filtered(cfg, &stream, &timing, &area))
                    .collect::<Vec<_>>()
            })
        });
        group.bench_function(BenchmarkId::new("family_batched", label), |b| {
            b.iter(|| evaluate_family(&family, &stream, &timing, &area))
        });
    }

    // End-to-end on the two-level design space, single-threaded: the
    // acceptance comparison from BENCH_sweep.json in miniature.
    let mut space = full_space(&SpaceOptions::baseline());
    space.extend(full_space(&SpaceOptions {
        l2_policy: L2Policy::Exclusive,
        ..SpaceOptions::baseline()
    }));
    let twolevel: Vec<MachineConfig> = space.into_iter().filter(|c| c.l2.is_some()).collect();
    group.throughput(Throughput::Elements(refs * twolevel.len() as u64));
    group.bench_function(BenchmarkId::new("filtered_sweep_twolevel", twolevel.len()), |b| {
        b.iter(|| sweep_filtered_arena_threads(&twolevel, &arena, BUDGET, &timing, &area, 1))
    });
    group.bench_function(BenchmarkId::new("family_sweep_twolevel", twolevel.len()), |b| {
        b.iter(|| sweep_family_arena_threads(&twolevel, &arena, BUDGET, &timing, &area, 1))
    });
    group.finish();
}

criterion_group!(benches, bench_family);
criterion_main!(benches);
