//! End-to-end pipeline benchmarks: one full §2 evaluation (simulate +
//! time + area + TPI) per policy, plus an ablation comparing the
//! conventional and exclusive policies at identical geometry — the
//! design choice §8 argues for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlc_area::AreaModel;
use tlc_core::experiment::{evaluate, SimBudget};
use tlc_core::{L2Policy, MachineConfig};
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;

fn bench_evaluate(c: &mut Criterion) {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let budget = SimBudget { instructions: 30_000, warmup_instructions: 5_000 };
    let mut group = c.benchmark_group("evaluate_30k_instructions");
    let cases = [
        ("single_level_32k", MachineConfig::single_level(32, 50.0)),
        ("conventional_8k_64k", MachineConfig::two_level(8, 64, 4, L2Policy::Conventional, 50.0)),
        ("exclusive_8k_64k", MachineConfig::two_level(8, 64, 4, L2Policy::Exclusive, 50.0)),
    ];
    for (name, cfg) in cases {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| evaluate(&cfg, SpecBenchmark::Gcc1, budget, &timing, &area))
        });
    }
    group.finish();
}

/// Ablation: policy head-to-head across the L2/L1 capacity ratio. Not a
/// speed benchmark — it prints the off-chip miss reduction the exclusive
/// policy buys at each ratio, then times one representative point so the
/// data regenerates on every `cargo bench` run.
fn bench_policy_ablation(c: &mut Criterion) {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let budget = SimBudget { instructions: 60_000, warmup_instructions: 20_000 };
    println!("\npolicy ablation (gcc1): off-chip misses, conventional vs exclusive");
    for (l1, l2) in [(4u64, 8u64), (4, 16), (4, 32), (4, 64), (4, 128)] {
        let conv = evaluate(
            &MachineConfig::two_level(l1, l2, 4, L2Policy::Conventional, 50.0),
            SpecBenchmark::Gcc1,
            budget,
            &timing,
            &area,
        );
        let excl = evaluate(
            &MachineConfig::two_level(l1, l2, 4, L2Policy::Exclusive, 50.0),
            SpecBenchmark::Gcc1,
            budget,
            &timing,
            &area,
        );
        println!(
            "  {l1}:{l2}  conv {:>6}  excl {:>6}  ({:+.1}%)",
            conv.stats.l2_misses,
            excl.stats.l2_misses,
            (excl.stats.l2_misses as f64 / conv.stats.l2_misses as f64 - 1.0) * 100.0
        );
    }
    let cfg = MachineConfig::two_level(4, 32, 4, L2Policy::Exclusive, 50.0);
    c.bench_function("ablation_exclusive_4k_32k", |b| {
        b.iter(|| evaluate(&cfg, SpecBenchmark::Gcc1, budget, &timing, &area))
    });
}

criterion_group!(benches, bench_evaluate, bench_policy_ablation);
criterion_main!(benches);
