//! Timing-model benchmarks: cost of the organisation search per cache
//! geometry (the §2.3 "iterate through the delay expressions" loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tlc_area::{AreaModel, CacheGeometry, CellKind};
use tlc_timing::TimingModel;

fn bench_optimal_search(c: &mut Criterion) {
    let model = TimingModel::paper();
    let mut group = c.benchmark_group("timing_optimal");
    for (name, kb, ways) in [("4k_dm", 4u64, 1u32), ("64k_4way", 64, 4), ("256k_dm", 256, 1)] {
        let geom = CacheGeometry::paper(kb * 1024, ways);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| model.optimal(&geom, CellKind::SinglePorted))
        });
    }
    group.finish();
}

fn bench_area_model(c: &mut Criterion) {
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let geom = CacheGeometry::paper(64 * 1024, 4);
    let org = timing.optimal(&geom, CellKind::SinglePorted).org;
    c.bench_function("area_cache_area_64k_4way", |b| {
        b.iter(|| area.cache_area(&geom, &org, CellKind::SinglePorted).total())
    });
}

criterion_group!(benches, bench_optimal_search, bench_area_model);
criterion_main!(benches);
