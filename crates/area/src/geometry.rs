//! Physical description of a cache: logical geometry, array organisation,
//! and RAM cell type.
//!
//! These types are shared between the area model (this crate) and the
//! access-time model (`tlc-timing`): the time model searches over
//! [`ArrayOrg`] values for the fastest organisation, and the area model
//! prices exactly that organisation — reproducing the paper's coupling
//! ("based on the memory array organization parameters from the time
//! model, we always organized the memories to give the highest
//! performance", §2.4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical geometry of one cache, as both models see it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Capacity in bytes (power of two).
    pub size_bytes: u64,
    /// Line length in bytes (power of two).
    pub line_bytes: u64,
    /// Ways per set (1 = direct-mapped).
    pub ways: u32,
    /// Physical address width in bits (32 for the paper's machines).
    pub addr_bits: u32,
}

impl CacheGeometry {
    /// The paper's standard geometry: 16-byte lines, 32-bit addresses.
    ///
    /// # Panics
    ///
    /// Panics if `size_bytes` is not a power of two, `ways` is zero / not
    /// a power of two, or the cache holds fewer than one line per way.
    pub fn paper(size_bytes: u64, ways: u32) -> Self {
        let g = CacheGeometry { size_bytes, line_bytes: 16, ways, addr_bits: 32 };
        g.validate();
        g
    }

    fn validate(&self) {
        assert!(self.size_bytes.is_power_of_two(), "size must be a power of two");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(
            self.ways > 0 && self.ways.is_power_of_two(),
            "ways must be a positive power of two"
        );
        assert!(self.lines() >= self.ways as u64, "fewer lines than ways");
        assert!(self.addr_bits >= 8 && self.addr_bits <= 64, "implausible address width");
    }

    /// Total lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.lines() / self.ways as u64
    }

    /// Tag width in bits: address bits minus set-index and line-offset
    /// bits.
    pub fn tag_bits(&self) -> u32 {
        let offset_bits = self.line_bytes.trailing_zeros();
        let index_bits = self.sets().trailing_zeros();
        self.addr_bits.saturating_sub(offset_bits + index_bits)
    }

    /// Status bits per line (valid + dirty, as in Mulder's model).
    pub fn status_bits(&self) -> u32 {
        2
    }

    /// Bits in the data array.
    pub fn data_bits(&self) -> u64 {
        self.size_bytes * 8
    }

    /// Bits in the tag array (tag + status per line).
    pub fn tag_array_bits(&self) -> u64 {
        self.lines() * (self.tag_bits() + self.status_bits()) as u64
    }
}

impl fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}KB/{}B-line/{}-way",
            self.size_bytes as f64 / 1024.0,
            self.line_bytes,
            self.ways
        )
    }
}

/// Array-organisation parameters, in the Wada / Wilton–Jouppi style:
///
/// * `ndwl` — times the data array is split with vertical cut lines
///   (reduces wordline length);
/// * `ndbl` — times it is split with horizontal cut lines (reduces
///   bitline length);
/// * `nspd` — sets mapped to a single wordline (widens rows, shortens
///   columns);
/// * `ntwl`, `ntbl`, `ntspd` — the same for the tag array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ArrayOrg {
    /// Data-array wordline divisions.
    pub ndwl: u32,
    /// Data-array bitline divisions.
    pub ndbl: u32,
    /// Sets per data wordline.
    pub nspd: u32,
    /// Tag-array wordline divisions.
    pub ntwl: u32,
    /// Tag-array bitline divisions.
    pub ntbl: u32,
    /// Sets per tag wordline.
    pub ntspd: u32,
}

impl ArrayOrg {
    /// The trivial organisation: one monolithic array each for data and
    /// tags.
    pub const UNIT: ArrayOrg = ArrayOrg { ndwl: 1, ndbl: 1, nspd: 1, ntwl: 1, ntbl: 1, ntspd: 1 };

    /// Number of data subarrays.
    pub fn data_subarrays(&self) -> u32 {
        self.ndwl * self.ndbl
    }

    /// Number of tag subarrays.
    pub fn tag_subarrays(&self) -> u32 {
        self.ntwl * self.ntbl
    }

    /// Rows per data subarray for `geom`, as in the Wada model:
    /// `C / (B · A · Ndbl · Nspd)`.
    pub fn data_rows(&self, geom: &CacheGeometry) -> f64 {
        geom.size_bytes as f64
            / (geom.line_bytes as f64 * geom.ways as f64 * self.ndbl as f64 * self.nspd as f64)
    }

    /// Columns (bitline pairs) per data subarray:
    /// `8 · B · A · Nspd / Ndwl`.
    pub fn data_cols(&self, geom: &CacheGeometry) -> f64 {
        8.0 * geom.line_bytes as f64 * geom.ways as f64 * self.nspd as f64 / self.ndwl as f64
    }

    /// Rows per tag subarray.
    pub fn tag_rows(&self, geom: &CacheGeometry) -> f64 {
        geom.sets() as f64 / (self.ntbl as f64 * self.ntspd as f64)
    }

    /// Columns per tag subarray.
    pub fn tag_cols(&self, geom: &CacheGeometry) -> f64 {
        (geom.tag_bits() + geom.status_bits()) as f64 * geom.ways as f64 * self.ntspd as f64
            / self.ntwl as f64
    }

    /// Whether this organisation is physically meaningful for `geom`
    /// (at least one full row and column in each subarray, and splits
    /// that do not exceed the array's extent).
    pub fn is_valid_for(&self, geom: &CacheGeometry) -> bool {
        let all_pow2 = [self.ndwl, self.ndbl, self.nspd, self.ntwl, self.ntbl, self.ntspd]
            .iter()
            .all(|&x| x > 0 && x.is_power_of_two());
        all_pow2
            && self.data_rows(geom) >= 1.0
            && self.data_cols(geom) >= 1.0
            && self.tag_rows(geom) >= 1.0
            && self.tag_cols(geom) >= 1.0
    }
}

impl fmt::Display for ArrayOrg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ndwl={} Ndbl={} Nspd={} | Ntwl={} Ntbl={} Ntspd={}",
            self.ndwl, self.ndbl, self.nspd, self.ntwl, self.ntbl, self.ntspd
        )
    }
}

/// RAM cell type of a cache (paper §6 studies dual-ported first levels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellKind {
    /// Standard 6-transistor single-ported cell: one read *or* write per
    /// cycle.
    SinglePorted,
    /// Dual-ported cell: "requires twice the area but can support twice
    /// the access bandwidth" (§6).
    DualPorted,
}

impl CellKind {
    /// Area multiplier relative to the single-ported cell ("A cache with
    /// two ports typically requires twice the area of a cache with one
    /// port", §6).
    pub fn area_factor(self) -> f64 {
        match self {
            CellKind::SinglePorted => 1.0,
            CellKind::DualPorted => 2.0,
        }
    }

    /// Linear dimension multiplier: a 2× area cell is √2 longer on each
    /// side, which lengthens wordlines and bitlines in the time model.
    pub fn wire_factor(self) -> f64 {
        match self {
            CellKind::SinglePorted => 1.0,
            CellKind::DualPorted => std::f64::consts::SQRT_2,
        }
    }

    /// Relative access bandwidth (issue-rate multiplier in §6).
    pub fn bandwidth_factor(self) -> f64 {
        match self {
            CellKind::SinglePorted => 1.0,
            CellKind::DualPorted => 2.0,
        }
    }
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CellKind::SinglePorted => "single-ported",
            CellKind::DualPorted => "dual-ported",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_derivations() {
        let g = CacheGeometry::paper(32 * 1024, 1);
        assert_eq!(g.lines(), 2048);
        assert_eq!(g.sets(), 2048);
        // 32-bit address, 4 offset bits, 11 index bits → 17 tag bits.
        assert_eq!(g.tag_bits(), 17);
        assert_eq!(g.data_bits(), 262_144);
        assert_eq!(g.tag_array_bits(), 2048 * 19);
    }

    #[test]
    fn set_assoc_has_wider_tags() {
        let dm = CacheGeometry::paper(64 * 1024, 1);
        let sa = CacheGeometry::paper(64 * 1024, 4);
        // 4-way: 2 fewer index bits → 2 more tag bits.
        assert_eq!(sa.tag_bits(), dm.tag_bits() + 2);
        assert_eq!(sa.sets(), dm.sets() / 4);
    }

    #[test]
    fn unit_org_dimensions() {
        let g = CacheGeometry::paper(4 * 1024, 1);
        let o = ArrayOrg::UNIT;
        assert_eq!(o.data_rows(&g), 256.0); // 4KB/16B lines = 256 sets
        assert_eq!(o.data_cols(&g), 128.0); // 16B × 8 bits
        assert_eq!(o.tag_rows(&g), 256.0);
        assert_eq!(o.tag_cols(&g), (g.tag_bits() + 2) as f64);
        assert!(o.is_valid_for(&g));
    }

    #[test]
    fn org_splits_divide_dimensions() {
        let g = CacheGeometry::paper(16 * 1024, 1);
        let o = ArrayOrg { ndwl: 2, ndbl: 4, nspd: 2, ntwl: 1, ntbl: 2, ntspd: 1 };
        assert_eq!(o.data_rows(&g), 1024.0 / 8.0);
        assert_eq!(o.data_cols(&g), 128.0 * 2.0 / 2.0);
        assert_eq!(o.data_subarrays(), 8);
        assert!(o.is_valid_for(&g));
    }

    #[test]
    fn invalid_orgs_detected() {
        let g = CacheGeometry::paper(1024, 1); // 64 sets, 128 data cols
                                               // Splitting bitlines 128× leaves <1 row per subarray.
        let too_split = ArrayOrg { ndbl: 128, ..ArrayOrg::UNIT };
        assert!(!too_split.is_valid_for(&g));
        let non_pow2 = ArrayOrg { ndwl: 3, ..ArrayOrg::UNIT };
        assert!(!non_pow2.is_valid_for(&g));
    }

    #[test]
    fn cell_kind_factors() {
        assert_eq!(CellKind::SinglePorted.area_factor(), 1.0);
        assert_eq!(CellKind::DualPorted.area_factor(), 2.0);
        assert!((CellKind::DualPorted.wire_factor() - 1.414).abs() < 1e-3);
        assert_eq!(CellKind::DualPorted.bandwidth_factor(), 2.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_size() {
        let _ = CacheGeometry::paper(3000, 1);
    }

    #[test]
    fn displays() {
        assert_eq!(CacheGeometry::paper(2048, 2).to_string(), "2KB/16B-line/2-way");
        assert!(ArrayOrg::UNIT.to_string().contains("Ndwl=1"));
        assert_eq!(CellKind::DualPorted.to_string(), "dual-ported");
    }
}
