//! The rbe area model, after Mulder, Quach & Flynn (1991).
//!
//! The model prices a cache as data array + tag array + comparators +
//! peripheral logic, in technology-independent rbe units:
//!
//! * every data/tag/status **bit** costs one SRAM cell (0.6 rbe);
//! * per **row** of each subarray: wordline driver + row-decoder slice;
//! * per **column**: sense amplifier, precharge devices, column mux;
//! * per **subarray**: a fixed control/timing block;
//! * per **way**: a tag comparator (the paper quotes 6 × 0.6 rbe per
//!   compared bit — "very small when compared to the area required by the
//!   data and tag arrays", §5) and an output mux driver.
//!
//! Splitting an array into more subarrays (the fastest organisations do)
//! duplicates the row/column periphery, reproducing the paper's
//! observation that speed-optimal organisations "increase the area
//! required per bit" (§2.4). Dual-ported caches cost twice the area
//! (§6).

use crate::geometry::{ArrayOrg, CacheGeometry, CellKind};
use crate::rbe::Rbe;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Peripheral-overhead constants of the area model, in rbe.
///
/// The defaults are chosen to reproduce Mulder's overhead ratios: small
/// arrays (≈1 Kbit) pay tens of percent of their core area in periphery,
/// large arrays (≥256 Kbit) under ~15%, and the paper's anchor of
/// ≈0.5 M rbe for a pair of 32KB caches holds (§3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaParams {
    /// Wordline driver area per row.
    pub driver_per_row: f64,
    /// Row-decoder area per row.
    pub decoder_per_row: f64,
    /// Sense-amplifier area per column (bitline pair).
    pub sense_per_col: f64,
    /// Precharge + equalisation devices per column.
    pub precharge_per_col: f64,
    /// Column-mux devices per column.
    pub mux_per_col: f64,
    /// Fixed control/timing area per subarray.
    pub control_per_subarray: f64,
    /// Comparator area per compared tag bit per way (6 × 0.6 rbe in
    /// Mulder's model as quoted in §5).
    pub comparator_per_bit: f64,
    /// Output/mux driver area per data output bit (64-bit refill path).
    pub output_driver_per_bit: f64,
}

impl Default for AreaParams {
    fn default() -> Self {
        AreaParams {
            driver_per_row: 1.2,
            decoder_per_row: 1.0,
            sense_per_col: 4.0,
            precharge_per_col: 1.0,
            mux_per_col: 1.0,
            control_per_subarray: 150.0,
            comparator_per_bit: 3.6,
            output_driver_per_bit: 4.0,
        }
    }
}

/// Width of the refill datapath in bits (8 bytes per transfer, §2.5).
const OUTPUT_BITS: f64 = 64.0;

/// Itemised area of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaBreakdown {
    /// SRAM cells of the data array.
    pub data_core: Rbe,
    /// Row/column/control periphery of the data array.
    pub data_periphery: Rbe,
    /// SRAM cells of the tag array (tags + valid + dirty).
    pub tag_core: Rbe,
    /// Periphery of the tag array.
    pub tag_periphery: Rbe,
    /// Tag comparators (one per way).
    pub comparators: Rbe,
    /// Output and mux drivers.
    pub drivers: Rbe,
}

impl AreaBreakdown {
    /// Total area.
    pub fn total(&self) -> Rbe {
        self.data_core
            + self.data_periphery
            + self.tag_core
            + self.tag_periphery
            + self.comparators
            + self.drivers
    }

    /// Periphery as a fraction of total area.
    pub fn overhead_fraction(&self) -> f64 {
        let periphery = self.data_periphery + self.tag_periphery + self.comparators + self.drivers;
        periphery / self.total()
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "total {} (data {} + periphery {}, tags {} + periphery {}, comparators {}, drivers {})",
            self.total(),
            self.data_core,
            self.data_periphery,
            self.tag_core,
            self.tag_periphery,
            self.comparators,
            self.drivers
        )
    }
}

/// The area model. Construct once (usually with default parameters) and
/// price as many configurations as needed.
///
/// # Examples
///
/// ```
/// use tlc_area::{AreaModel, ArrayOrg, CacheGeometry, CellKind};
///
/// let model = AreaModel::new();
/// let g = CacheGeometry::paper(32 * 1024, 1);
/// let a = model.cache_area(&g, &ArrayOrg::UNIT, CellKind::SinglePorted);
/// // A 32KB cache core alone is 262144 bits × 0.6 rbe ≈ 157K rbe.
/// assert!(a.total().value() > 157_000.0);
/// assert!(a.total().value() < 260_000.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AreaModel {
    params: AreaParams,
}

impl AreaModel {
    /// Model with the default (Mulder-calibrated) parameters.
    pub fn new() -> Self {
        AreaModel { params: AreaParams::default() }
    }

    /// Model with custom parameters.
    pub fn with_params(params: AreaParams) -> Self {
        AreaModel { params }
    }

    /// The parameters in use.
    pub fn params(&self) -> &AreaParams {
        &self.params
    }

    /// Area of one rectangular SRAM subarray's periphery.
    fn subarray_periphery(&self, rows: f64, cols: f64) -> f64 {
        rows * (self.params.driver_per_row + self.params.decoder_per_row)
            + cols
                * (self.params.sense_per_col
                    + self.params.precharge_per_col
                    + self.params.mux_per_col)
            + self.params.control_per_subarray
    }

    /// Itemised area of a cache with geometry `geom`, laid out as `org`,
    /// built from `cell` RAM cells.
    ///
    /// # Panics
    ///
    /// Panics if `org` is not valid for `geom` (see
    /// [`ArrayOrg::is_valid_for`]).
    pub fn cache_area(
        &self,
        geom: &CacheGeometry,
        org: &ArrayOrg,
        cell: CellKind,
    ) -> AreaBreakdown {
        assert!(org.is_valid_for(geom), "organisation {org} invalid for {geom}");
        let p = &self.params;

        let data_core = geom.data_bits() as f64 * Rbe::SRAM_CELL.value();
        let data_periphery = org.data_subarrays() as f64
            * self.subarray_periphery(org.data_rows(geom), org.data_cols(geom));

        let tag_core = geom.tag_array_bits() as f64 * Rbe::SRAM_CELL.value();
        let tag_periphery = org.tag_subarrays() as f64
            * self.subarray_periphery(org.tag_rows(geom), org.tag_cols(geom));

        let comparators = geom.ways as f64 * geom.tag_bits() as f64 * p.comparator_per_bit;
        // Output drivers for the 64-bit refill path, plus (in the
        // set-associative case) one mux-driver bank per way.
        let drivers = OUTPUT_BITS * p.output_driver_per_bit * geom.ways.max(1) as f64;

        // Dual porting doubles everything: cells grow 2× and the second
        // port needs its own decoders, wordlines, bitlines and sense amps
        // (§6: "A cache with two ports typically requires twice the area").
        let f = cell.area_factor();
        AreaBreakdown {
            data_core: Rbe::new(data_core * f),
            data_periphery: Rbe::new(data_periphery * f),
            tag_core: Rbe::new(tag_core * f),
            tag_periphery: Rbe::new(tag_periphery * f),
            comparators: Rbe::new(comparators * f),
            drivers: Rbe::new(drivers * f),
        }
    }

    /// Convenience: total area only.
    pub fn total_area(&self, geom: &CacheGeometry, org: &ArrayOrg, cell: CellKind) -> Rbe {
        self.cache_area(geom, org, cell).total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AreaModel {
        AreaModel::new()
    }

    #[test]
    fn area_grows_monotonically_with_size() {
        let m = model();
        let mut last = 0.0;
        for kb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
            let g = CacheGeometry::paper(kb * 1024, 1);
            let a = m.total_area(&g, &ArrayOrg::UNIT, CellKind::SinglePorted).value();
            assert!(a > last, "{kb}KB not larger than previous: {a} vs {last}");
            last = a;
        }
    }

    #[test]
    fn paper_anchor_32kb_pair_near_half_million_rbe() {
        // §3: the optimum single-level configuration (32KB I + 32KB D)
        // occupies about 500,000 rbe. The paper's figure includes the
        // speed-optimal (subdivided) organisation's extra periphery, so we
        // accept the monolithic layout at the low end of a band around it.
        let m = model();
        let g = CacheGeometry::paper(32 * 1024, 1);
        let mono = 2.0 * m.total_area(&g, &ArrayOrg::UNIT, CellKind::SinglePorted).value();
        assert!(
            (330_000.0..650_000.0).contains(&mono),
            "32KB pair (monolithic) should be ≈0.35–0.65M rbe, got {mono}"
        );
        // A speed-style subdivided organisation costs more, toward 0.5M.
        let split = ArrayOrg { ndwl: 2, ndbl: 4, ntbl: 4, ..ArrayOrg::UNIT };
        let fast = 2.0 * m.total_area(&g, &split, CellKind::SinglePorted).value();
        assert!(fast > mono);
        assert!(fast < 700_000.0, "subdivided 32KB pair implausibly large: {fast}");
    }

    #[test]
    fn dual_ported_doubles_area() {
        let m = model();
        let g = CacheGeometry::paper(8 * 1024, 1);
        let single = m.total_area(&g, &ArrayOrg::UNIT, CellKind::SinglePorted).value();
        let dual = m.total_area(&g, &ArrayOrg::UNIT, CellKind::DualPorted).value();
        assert!((dual / single - 2.0).abs() < 1e-9);
    }

    #[test]
    fn associativity_adds_little_area() {
        // §5: "the extra area required by a set-associative cache does not
        // significantly affect the performance for a given area" — the
        // comparators are tiny next to the arrays.
        let m = model();
        let dm = CacheGeometry::paper(64 * 1024, 1);
        let sa = CacheGeometry::paper(64 * 1024, 4);
        let a_dm = m.total_area(&dm, &ArrayOrg::UNIT, CellKind::SinglePorted).value();
        let a_sa = m.total_area(&sa, &ArrayOrg::UNIT, CellKind::SinglePorted).value();
        // Row/column periphery shifts with the aspect ratio, so the sign
        // of the difference is organisation-dependent; the paper's claim
        // is only that the difference is insignificant.
        let growth = a_sa / a_dm - 1.0;
        assert!(
            growth.abs() < 0.05,
            "4-way area should differ <5%, differs {:.2}%",
            growth * 100.0
        );
        // The comparator term itself is positive and tiny.
        let b_sa = m.cache_area(&sa, &ArrayOrg::UNIT, CellKind::SinglePorted);
        assert!(b_sa.comparators.value() > 0.0);
        assert!(b_sa.comparators.value() / b_sa.total().value() < 0.01);
    }

    #[test]
    fn more_subarrays_cost_more_area() {
        let m = model();
        let g = CacheGeometry::paper(64 * 1024, 1);
        let mono = m.total_area(&g, &ArrayOrg::UNIT, CellKind::SinglePorted).value();
        let split = ArrayOrg { ndwl: 4, ndbl: 4, ntwl: 2, ntbl: 2, ..ArrayOrg::UNIT };
        let split_area = m.total_area(&g, &split, CellKind::SinglePorted).value();
        assert!(split_area > mono, "subdivision should add periphery area");
    }

    #[test]
    fn overhead_shrinks_with_size() {
        // Mulder: small RAMs pay proportionally more periphery.
        let m = model();
        let small = CacheGeometry::paper(1024, 1);
        let large = CacheGeometry::paper(256 * 1024, 1);
        let o_small =
            m.cache_area(&small, &ArrayOrg::UNIT, CellKind::SinglePorted).overhead_fraction();
        let o_large =
            m.cache_area(&large, &ArrayOrg::UNIT, CellKind::SinglePorted).overhead_fraction();
        assert!(o_small > 2.0 * o_large, "small {o_small:.3} vs large {o_large:.3}");
        assert!(o_small > 0.1, "1KB cache should pay >10% overhead, pays {o_small:.3}");
        assert!(o_large < 0.15, "256KB cache should pay <15% overhead, pays {o_large:.3}");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = model();
        let g = CacheGeometry::paper(16 * 1024, 2);
        let b = m.cache_area(&g, &ArrayOrg::UNIT, CellKind::SinglePorted);
        let manual = b.data_core
            + b.data_periphery
            + b.tag_core
            + b.tag_periphery
            + b.comparators
            + b.drivers;
        assert!((manual.value() - b.total().value()).abs() < 1e-9);
        assert!(b.to_string().contains("total"));
    }

    #[test]
    #[should_panic(expected = "invalid for")]
    fn rejects_invalid_org() {
        let g = CacheGeometry::paper(1024, 1);
        let bad = ArrayOrg { ndbl: 256, ..ArrayOrg::UNIT };
        let _ = model().cache_area(&g, &bad, CellKind::SinglePorted);
    }
}
