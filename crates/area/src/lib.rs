//! # tlc-area — register-bit-equivalent cache area model
//!
//! Area-model substrate for the reproduction of Jouppi & Wilton,
//! *Tradeoffs in Two-Level On-Chip Caching* (WRL 93/3 / ISCA 1994),
//! following Mulder, Quach & Flynn, *An Area Model for On-Chip Memories
//! and its Application* (IEEE JSSC 26(2), 1991).
//!
//! Areas are expressed in technology-independent **register-bit
//! equivalents** ([`Rbe`]); a 6-transistor SRAM cell is 0.6 rbe. The model
//! prices data and tag arrays, comparators, sense amps, drivers and
//! control for any [`CacheGeometry`] laid out as a given [`ArrayOrg`] —
//! the same organisation the `tlc-timing` crate selects for speed, so the
//! area/time coupling of the paper's §2.4 is preserved.
//!
//! ```
//! use tlc_area::{AreaModel, ArrayOrg, CacheGeometry, CellKind};
//!
//! let model = AreaModel::new();
//! let l1 = CacheGeometry::paper(8 * 1024, 1);
//! let area = model.cache_area(&l1, &ArrayOrg::UNIT, CellKind::SinglePorted);
//! println!("8KB direct-mapped cache: {}", area.total());
//! assert!(area.overhead_fraction() < 0.5);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod geometry;
mod model;
mod rbe;

pub use geometry::{ArrayOrg, CacheGeometry, CellKind};
pub use model::{AreaBreakdown, AreaModel, AreaParams};
pub use rbe::Rbe;
