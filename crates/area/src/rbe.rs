//! The register-bit-equivalent (rbe) area unit.
//!
//! Mulder, Quach & Flynn define the *register bit equivalent*: the area of
//! a one-bit storage cell in a register file, independent of technology.
//! All areas in this study are expressed in rbe; a 6-transistor SRAM cell
//! is 0.6 rbe (paper §2.4).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An area in register-bit equivalents.
///
/// # Examples
///
/// ```
/// use tlc_area::Rbe;
///
/// let cell = Rbe::SRAM_CELL;
/// let array = cell * 8192.0;
/// assert!((array.value() - 4915.2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Rbe(f64);

impl Rbe {
    /// Area of one 6-transistor single-ported SRAM cell (paper §2.4).
    pub const SRAM_CELL: Rbe = Rbe(0.6);

    /// Area of one register cell — the unit itself.
    pub const REGISTER_CELL: Rbe = Rbe(1.0);

    /// Zero area.
    pub const ZERO: Rbe = Rbe(0.0);

    /// Creates an area from a raw rbe count.
    ///
    /// # Panics
    ///
    /// Panics if `value` is negative or not finite.
    pub fn new(value: f64) -> Self {
        assert!(value.is_finite() && value >= 0.0, "area must be a finite non-negative number");
        Rbe(value)
    }

    /// The raw rbe count.
    pub const fn value(self) -> f64 {
        self.0
    }
}

impl Add for Rbe {
    type Output = Rbe;
    fn add(self, rhs: Rbe) -> Rbe {
        Rbe(self.0 + rhs.0)
    }
}

impl AddAssign for Rbe {
    fn add_assign(&mut self, rhs: Rbe) {
        self.0 += rhs.0;
    }
}

impl Sub for Rbe {
    type Output = Rbe;
    fn sub(self, rhs: Rbe) -> Rbe {
        Rbe((self.0 - rhs.0).max(0.0))
    }
}

impl Mul<f64> for Rbe {
    type Output = Rbe;
    fn mul(self, rhs: f64) -> Rbe {
        Rbe(self.0 * rhs)
    }
}

impl Div<f64> for Rbe {
    type Output = Rbe;
    fn div(self, rhs: f64) -> Rbe {
        Rbe(self.0 / rhs)
    }
}

impl Div for Rbe {
    type Output = f64;
    fn div(self, rhs: Rbe) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for Rbe {
    fn sum<I: Iterator<Item = Rbe>>(iter: I) -> Rbe {
        Rbe(iter.map(|r| r.0).sum())
    }
}

impl fmt::Display for Rbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000.0 {
            write!(f, "{:.2}M rbe", self.0 / 1_000_000.0)
        } else if self.0 >= 1_000.0 {
            write!(f, "{:.1}K rbe", self.0 / 1_000.0)
        } else {
            write!(f, "{:.1} rbe", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Rbe::new(10.0);
        let b = Rbe::new(4.0);
        assert_eq!((a + b).value(), 14.0);
        assert_eq!((a - b).value(), 6.0);
        assert_eq!((b - a).value(), 0.0, "subtraction saturates at zero");
        assert_eq!((a * 2.0).value(), 20.0);
        assert_eq!((a / 2.0).value(), 5.0);
        assert_eq!(a / b, 2.5);
        let mut c = a;
        c += b;
        assert_eq!(c.value(), 14.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Rbe = (0..4).map(|i| Rbe::new(i as f64)).sum();
        assert_eq!(total.value(), 6.0);
    }

    #[test]
    fn constants() {
        assert_eq!(Rbe::SRAM_CELL.value(), 0.6);
        assert_eq!(Rbe::REGISTER_CELL.value(), 1.0);
        assert_eq!(Rbe::ZERO.value(), 0.0);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(Rbe::new(12.34).to_string(), "12.3 rbe");
        assert_eq!(Rbe::new(12_340.0).to_string(), "12.3K rbe");
        assert_eq!(Rbe::new(12_340_000.0).to_string(), "12.34M rbe");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative() {
        let _ = Rbe::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = Rbe::new(f64::NAN);
    }
}
