//! SPEC'89-like workload presets.
//!
//! The paper gathered miss rates from traces of seven SPEC benchmarks
//! (Table 1). Those traces are unobtainable, so each preset here is a
//! synthetic model assembled from the generators in [`crate::gen`], with
//! parameters chosen to reproduce the published per-benchmark behaviour:
//!
//! * reference mix (instruction/data ratio) straight from Table 1;
//! * the miss-rate anchors the paper quotes (espresso ≈ 0.0100 and
//!   eqntott ≈ 0.0149 at 32KB; tomcatv ≈ 0.109 at 32KB and nearly flat);
//! * the qualitative descriptions (fpppp's huge instruction footprint,
//!   li's pointer-heavy heap, tomcatv's streaming arrays, espresso's tiny
//!   working set).
//!
//! Every preset is seeded; constructing the same benchmark twice yields
//! bit-identical streams.

use crate::addr::{Addr, AddrRange};
use crate::gen::chase::PermutationChase;
use crate::gen::loops::{CodeParams, CodeWalker};
use crate::gen::mixture::{MixEntry, Mixture};
use crate::gen::regions::{Region, RegionSet};
use crate::gen::stream::{StreamArray, StreamWalker};
use crate::gen::AddrSource;
use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Base of the simulated code segment.
const CODE_BASE: u64 = 0x0040_0000;
/// Base of the simulated static/stack data.
const DATA_BASE: u64 = 0x1000_0000;
/// Base of the simulated heap.
const HEAP_BASE: u64 = 0x4000_0000;
/// Base of the simulated large-array segment.
const ARRAY_BASE: u64 = 0x7000_0000;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The seven benchmarks of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpecBenchmark {
    /// GNU C compiler, first pass: large code + mixed data working sets.
    Gcc1,
    /// Logic minimiser: small, hot working set; very low miss rates.
    Espresso,
    /// Quantum-chemistry kernel: enormous straight-line code footprint.
    Fpppp,
    /// Monte-carlo nuclear-reactor model: medium code and data sets.
    Doduc,
    /// XLisp interpreter: small code, pointer-chased heap.
    Li,
    /// Truth-table generator: tiny code, low data miss rate with a
    /// random-probe tail.
    Eqntott,
    /// Vectorised mesh generator: streaming sweeps over large arrays;
    /// high, flat miss rate.
    Tomcatv,
}

impl SpecBenchmark {
    /// All seven benchmarks, in the paper's Table 1 order.
    pub const ALL: [SpecBenchmark; 7] = [
        SpecBenchmark::Gcc1,
        SpecBenchmark::Espresso,
        SpecBenchmark::Fpppp,
        SpecBenchmark::Doduc,
        SpecBenchmark::Li,
        SpecBenchmark::Eqntott,
        SpecBenchmark::Tomcatv,
    ];

    /// The benchmark's conventional name.
    pub fn name(self) -> &'static str {
        match self {
            SpecBenchmark::Gcc1 => "gcc1",
            SpecBenchmark::Espresso => "espresso",
            SpecBenchmark::Fpppp => "fpppp",
            SpecBenchmark::Doduc => "doduc",
            SpecBenchmark::Li => "li",
            SpecBenchmark::Eqntott => "eqntott",
            SpecBenchmark::Tomcatv => "tomcatv",
        }
    }

    /// Parses a benchmark name as printed by [`SpecBenchmark::name`].
    pub fn from_name(name: &str) -> Option<SpecBenchmark> {
        Self::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// Reference counts reported in the paper's Table 1 (millions).
    pub fn paper_refs(self) -> PaperRefCounts {
        match self {
            SpecBenchmark::Gcc1 => PaperRefCounts { instr_m: 22.7, data_m: 7.2 },
            SpecBenchmark::Espresso => PaperRefCounts { instr_m: 135.3, data_m: 31.8 },
            SpecBenchmark::Fpppp => PaperRefCounts { instr_m: 244.1, data_m: 136.2 },
            SpecBenchmark::Doduc => PaperRefCounts { instr_m: 283.6, data_m: 108.2 },
            SpecBenchmark::Li => PaperRefCounts { instr_m: 1247.1, data_m: 452.8 },
            SpecBenchmark::Eqntott => PaperRefCounts { instr_m: 1484.7, data_m: 293.6 },
            SpecBenchmark::Tomcatv => PaperRefCounts { instr_m: 1986.3, data_m: 963.6 },
        }
    }

    /// Data references per instruction, derived from Table 1.
    pub fn data_per_instr(self) -> f64 {
        let r = self.paper_refs();
        r.data_m / r.instr_m
    }

    /// Fraction of data references that are stores. The paper models
    /// writes as reads (§2.2), so this only affects bookkeeping; the
    /// values are typical RISC store shares per benchmark class.
    pub fn store_fraction(self) -> f64 {
        match self {
            SpecBenchmark::Gcc1 => 0.35,
            SpecBenchmark::Espresso => 0.20,
            SpecBenchmark::Fpppp => 0.40,
            SpecBenchmark::Doduc => 0.30,
            SpecBenchmark::Li => 0.40,
            SpecBenchmark::Eqntott => 0.10,
            SpecBenchmark::Tomcatv => 0.45,
        }
    }

    /// Deterministic seed for this benchmark's stream.
    pub fn seed(self) -> u64 {
        0x93_03 << 8 | self as u64
    }

    /// Builds the benchmark's synthetic workload.
    pub fn workload(self) -> Workload {
        let mut layout_rng = StdRng::seed_from_u64(self.seed() ^ 0xD1CE);
        let instr = self.instr_source(&mut layout_rng);
        let data = self.data_source(&mut layout_rng);
        Workload::new(
            self.name(),
            self.seed(),
            instr,
            data,
            self.data_per_instr(),
            self.store_fraction(),
        )
    }

    fn instr_source(self, rng: &mut StdRng) -> Box<dyn AddrSource> {
        let base = Addr::new(CODE_BASE);
        let params = match self {
            // gcc: big compiler binary; many moderately hot loops spread
            // over a large footprint, frequent excursions into cold code.
            SpecBenchmark::Gcc1 => CodeParams {
                footprint_bytes: 160 * KB,
                n_sites: 100,
                body_min_bytes: 64,
                body_max_bytes: 768,
                mean_iters: 5.0,
                zipf_theta: 0.9,
                p_excursion: 0.03,
                excursion_bytes: 1536,
            },
            // espresso: small hot kernel loops.
            SpecBenchmark::Espresso => CodeParams {
                footprint_bytes: 40 * KB,
                n_sites: 36,
                body_min_bytes: 64,
                body_max_bytes: 320,
                mean_iters: 10.0,
                zipf_theta: 1.1,
                p_excursion: 0.015,
                excursion_bytes: 768,
            },
            // fpppp: famous for enormous straight-line basic blocks; the
            // instruction working set alone exceeds 100KB.
            SpecBenchmark::Fpppp => CodeParams {
                footprint_bytes: 192 * KB,
                n_sites: 10,
                body_min_bytes: 12 * KB,
                body_max_bytes: 28 * KB,
                mean_iters: 24.0,
                zipf_theta: 0.6,
                p_excursion: 0.02,
                excursion_bytes: 2048,
            },
            // doduc: mid-sized numeric code with many routines.
            SpecBenchmark::Doduc => CodeParams {
                footprint_bytes: 96 * KB,
                n_sites: 64,
                body_min_bytes: 192,
                body_max_bytes: 2 * KB,
                mean_iters: 6.0,
                zipf_theta: 0.9,
                p_excursion: 0.03,
                excursion_bytes: 1024,
            },
            // li: small interpreter dispatch loop plus builtins.
            SpecBenchmark::Li => CodeParams {
                footprint_bytes: 28 * KB,
                n_sites: 30,
                body_min_bytes: 64,
                body_max_bytes: 384,
                mean_iters: 5.0,
                zipf_theta: 1.0,
                p_excursion: 0.01,
                excursion_bytes: 512,
            },
            // eqntott: nearly all time in one tiny comparison loop.
            SpecBenchmark::Eqntott => CodeParams {
                footprint_bytes: 10 * KB,
                n_sites: 8,
                body_min_bytes: 64,
                body_max_bytes: 256,
                mean_iters: 16.0,
                zipf_theta: 1.2,
                p_excursion: 0.004,
                excursion_bytes: 512,
            },
            // tomcatv: a few vector loops.
            SpecBenchmark::Tomcatv => CodeParams {
                footprint_bytes: 8 * KB,
                n_sites: 6,
                body_min_bytes: 512,
                body_max_bytes: 2 * KB,
                mean_iters: 40.0,
                zipf_theta: 0.8,
                p_excursion: 0.002,
                excursion_bytes: 512,
            },
        };
        Box::new(CodeWalker::new(params, base, rng))
    }

    fn data_source(self, rng: &mut StdRng) -> Box<dyn AddrSource> {
        match self {
            SpecBenchmark::Gcc1 => {
                // Hot stack + symbol tables + cold AST storage.
                Box::new(RegionSet::new(vec![
                    Region::new(AddrRange::new(Addr::new(DATA_BASE), 6 * KB), 0.50, 6.0),
                    Region::new(AddrRange::new(Addr::new(DATA_BASE + MB), 48 * KB), 0.30, 4.0),
                    Region::new(AddrRange::new(Addr::new(HEAP_BASE), 192 * KB), 0.16, 3.0),
                    Region::new(AddrRange::new(Addr::new(HEAP_BASE + 16 * MB), MB), 0.04, 3.0),
                ]))
            }
            SpecBenchmark::Espresso => {
                // Tiny hot cube tables; very low residual traffic.
                Box::new(RegionSet::new(vec![
                    Region::new(AddrRange::new(Addr::new(DATA_BASE), 3 * KB), 0.64, 5.0),
                    Region::new(AddrRange::new(Addr::new(DATA_BASE + MB), 20 * KB), 0.31, 4.0),
                    Region::new(AddrRange::new(Addr::new(HEAP_BASE), 128 * KB), 0.05, 3.0),
                ]))
            }
            SpecBenchmark::Fpppp => {
                // Moderate data set: Fock-matrix blocks, mostly resident.
                Box::new(RegionSet::new(vec![
                    Region::new(AddrRange::new(Addr::new(DATA_BASE), 8 * KB), 0.45, 6.0),
                    Region::new(AddrRange::new(Addr::new(DATA_BASE + MB), 48 * KB), 0.40, 5.0),
                    Region::new(AddrRange::new(Addr::new(HEAP_BASE), 256 * KB), 0.15, 4.0),
                ]))
            }
            SpecBenchmark::Doduc => Box::new(RegionSet::new(vec![
                Region::new(AddrRange::new(Addr::new(DATA_BASE), 8 * KB), 0.48, 6.0),
                Region::new(AddrRange::new(Addr::new(DATA_BASE + MB), 72 * KB), 0.34, 4.0),
                Region::new(AddrRange::new(Addr::new(HEAP_BASE), 384 * KB), 0.18, 3.0),
            ])),
            SpecBenchmark::Li => {
                // Hot stack/environment + pointer-chased cons heap.
                let hot = RegionSet::new(vec![
                    Region::new(AddrRange::new(Addr::new(DATA_BASE), 4 * KB), 0.70, 3.0),
                    Region::new(AddrRange::new(Addr::new(DATA_BASE + MB), 24 * KB), 0.30, 2.0),
                ]);
                let heap = PermutationChase::new(
                    AddrRange::new(Addr::new(HEAP_BASE), 160 * KB),
                    0.004,
                    rng,
                );
                Box::new(Mixture::new(vec![
                    MixEntry::new(0.72, 24.0, Box::new(hot)),
                    MixEntry::new(0.28, 8.0, Box::new(heap)),
                ]))
            }
            SpecBenchmark::Eqntott => {
                // Small hot vectors plus occasional probes of big bit
                // tables: low overall miss rate that barely improves with
                // larger caches.
                let hot = RegionSet::new(vec![
                    Region::new(AddrRange::new(Addr::new(DATA_BASE), 2 * KB), 0.75, 6.0),
                    Region::new(AddrRange::new(Addr::new(DATA_BASE + MB), 12 * KB), 0.25, 4.0),
                ]);
                let probes =
                    PermutationChase::new(AddrRange::new(Addr::new(HEAP_BASE), 2 * MB), 0.02, rng);
                Box::new(Mixture::new(vec![
                    MixEntry::new(0.90, 32.0, Box::new(hot)),
                    MixEntry::new(0.10, 4.0, Box::new(probes)),
                ]))
            }
            SpecBenchmark::Tomcatv => {
                // Four 0.5MB arrays swept with small strides
                // (double-precision mesh vectors) plus three mid-size
                // boundary/coefficient arrays (96/64/48KB) that a large
                // on-chip cache can capture — the real tomcatv's residual
                // decline between 32KB and 256KB that puts 16:64-style
                // two-level configurations on the paper's Figure 8/20
                // envelopes while the small-cache miss rate stays high
                // and flat.
                // Array bases are staggered by an odd multiple of the
                // line size so the lockstep streams do not alias to the
                // same cache sets at any studied cache size.
                let arrays = (0..7)
                    .map(|i| {
                        StreamArray::new(
                            AddrRange::new(
                                Addr::new(ARRAY_BASE + i * 8 * MB + i * 4112),
                                match i {
                                    4 => 96 * KB,
                                    5 => 64 * KB,
                                    6 => 48 * KB,
                                    _ => 512 * KB,
                                },
                            ),
                            if i % 2 == 0 { 8 } else { 4 },
                        )
                    })
                    .collect();
                let stream = StreamWalker::new(arrays);
                let scalars = RegionSet::new(vec![Region::new(
                    AddrRange::new(Addr::new(DATA_BASE), 2 * KB),
                    1.0,
                    4.0,
                )]);
                Box::new(Mixture::new(vec![
                    MixEntry::new(0.80, 32.0, Box::new(stream)),
                    MixEntry::new(0.20, 16.0, Box::new(scalars)),
                ]))
            }
        }
    }
}

impl fmt::Display for SpecBenchmark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Reference counts from the paper's Table 1, in millions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperRefCounts {
    /// Instruction references (millions).
    pub instr_m: f64,
    /// Data references (millions).
    pub data_m: f64,
}

impl PaperRefCounts {
    /// Total references (millions).
    pub fn total_m(&self) -> f64 {
        self.instr_m + self.data_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_roundtrip_names() {
        for b in SpecBenchmark::ALL {
            assert_eq!(SpecBenchmark::from_name(b.name()), Some(b));
            assert_eq!(b.to_string(), b.name());
        }
        assert_eq!(SpecBenchmark::from_name("nonesuch"), None);
    }

    #[test]
    fn table1_totals() {
        // Table 1 totals as printed in the paper.
        let totals: Vec<f64> =
            SpecBenchmark::ALL.iter().map(|b| b.paper_refs().total_m()).collect();
        let expected = [30.0 - 0.1, 167.1, 380.3, 391.8, 1699.9, 1778.3, 2949.9];
        for (t, e) in totals.iter().zip(expected.iter()) {
            assert!((t - e).abs() < 0.2, "total {t} vs paper {e}");
        }
    }

    #[test]
    fn data_ratios_sane() {
        for b in SpecBenchmark::ALL {
            let dpi = b.data_per_instr();
            assert!(dpi > 0.1 && dpi < 0.7, "{b}: dpi {dpi}");
        }
        // fpppp has the highest data share, eqntott the lowest.
        assert!(SpecBenchmark::Fpppp.data_per_instr() > SpecBenchmark::Gcc1.data_per_instr());
        assert!(SpecBenchmark::Eqntott.data_per_instr() < SpecBenchmark::Espresso.data_per_instr());
    }

    #[test]
    fn workloads_build_and_stream() {
        for b in SpecBenchmark::ALL {
            let mut w = b.workload();
            assert_eq!(w.name(), b.name());
            let recs = w.take_instructions(2000);
            assert_eq!(recs.len(), 2000);
            // Instruction fetches live in the code segment.
            for r in &recs {
                assert!(r.fetch.raw() >= CODE_BASE && r.fetch.raw() < DATA_BASE);
                if let Some(d) = r.data {
                    assert!(d.addr.raw() >= DATA_BASE, "{b}: data ref in code segment");
                }
            }
        }
    }

    #[test]
    fn workloads_deterministic() {
        for b in SpecBenchmark::ALL {
            let a = b.workload().take_instructions(500);
            let c = b.workload().take_instructions(500);
            assert_eq!(a, c, "{b} not deterministic");
        }
    }

    #[test]
    fn observed_data_ratio_tracks_table1() {
        for b in SpecBenchmark::ALL {
            let mut w = b.workload();
            let n = 40_000;
            let data = w.take_instructions(n).iter().filter(|r| r.data.is_some()).count();
            let dpi = data as f64 / n as f64;
            let want = b.data_per_instr();
            assert!((dpi - want).abs() < 0.02, "{b}: observed {dpi}, table {want}");
        }
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = SpecBenchmark::ALL.iter().map(|b| b.seed()).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 7);
    }
}
