//! Declarative workload specifications (JSON-serialisable).
//!
//! The seven built-in presets are Rust code; [`WorkloadSpec`] exposes the
//! same generator algebra as *data*, so users can define their own
//! synthetic workloads in a JSON file and run the whole harness on them
//! without recompiling:
//!
//! ```json
//! {
//!   "name": "mydb",
//!   "seed": 42,
//!   "data_per_instr": 0.35,
//!   "store_fraction": 0.3,
//!   "code": { "footprint_kb": 64, "n_sites": 40, "body_min_bytes": 64,
//!             "body_max_bytes": 512, "mean_iters": 5.0, "zipf_theta": 1.0,
//!             "p_excursion": 0.02, "excursion_bytes": 1024 },
//!   "data": { "mixture": [
//!     { "weight": 0.7, "mean_burst": 16.0,
//!       "source": { "regions": [ { "base": 268435456, "size_kb": 8,
//!                                  "weight": 1.0, "mean_run": 4.0 } ] } },
//!     { "weight": 0.3, "mean_burst": 8.0,
//!       "source": { "chase": { "base": 1073741824, "size_kb": 256,
//!                              "p_restart": 0.005 } } }
//!   ] }
//! }
//! ```

use crate::addr::{Addr, AddrRange};
use crate::gen::chase::PermutationChase;
use crate::gen::loops::{CodeParams, CodeWalker};
use crate::gen::mixture::{MixEntry, Mixture};
use crate::gen::regions::{Region, RegionSet};
use crate::gen::stream::{StreamArray, StreamWalker};
use crate::gen::AddrSource;
use crate::workload::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Error building a workload from a specification.
#[derive(Debug)]
pub enum SpecError {
    /// The JSON failed to parse.
    Parse(serde_json::Error),
    /// The parsed specification is semantically invalid.
    Invalid(String),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "workload spec failed to parse: {e}"),
            SpecError::Invalid(msg) => write!(f, "invalid workload spec: {msg}"),
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecError::Parse(e) => Some(e),
            SpecError::Invalid(_) => None,
        }
    }
}

impl From<serde_json::Error> for SpecError {
    fn from(e: serde_json::Error) -> Self {
        SpecError::Parse(e)
    }
}

/// Code-generator parameters (mirrors
/// [`CodeParams`], sized in KB for
/// convenience).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CodeSpec {
    /// Code footprint in KB.
    pub footprint_kb: u64,
    /// Number of loop sites.
    pub n_sites: usize,
    /// Minimum loop-body length in bytes.
    pub body_min_bytes: u64,
    /// Maximum loop-body length in bytes.
    pub body_max_bytes: u64,
    /// Mean loop iterations per entry.
    pub mean_iters: f64,
    /// Zipf exponent of site popularity.
    pub zipf_theta: f64,
    /// Excursion probability per transition.
    pub p_excursion: f64,
    /// Excursion length in bytes.
    pub excursion_bytes: u64,
    /// Base address of the code segment (default 0x40_0000).
    #[serde(default = "default_code_base")]
    pub base: u64,
}

fn default_code_base() -> u64 {
    0x40_0000
}

/// One weighted region of a region-set data source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionSpec {
    /// Base byte address.
    pub base: u64,
    /// Size in KB.
    pub size_kb: u64,
    /// Selection weight.
    pub weight: f64,
    /// Mean sequential run length (words).
    pub mean_run: f64,
}

/// One array of a streaming data source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamSpec {
    /// Base byte address.
    pub base: u64,
    /// Size in KB.
    pub size_kb: u64,
    /// Stride in bytes.
    pub stride_bytes: u64,
}

/// A pointer-chase data source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaseSpec {
    /// Base byte address.
    pub base: u64,
    /// Size in KB.
    pub size_kb: u64,
    /// Restart probability per access.
    pub p_restart: f64,
}

/// A component of a bursty mixture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixtureEntrySpec {
    /// Selection weight.
    pub weight: f64,
    /// Mean burst length (accesses).
    pub mean_burst: f64,
    /// The underlying source.
    pub source: DataSpec,
}

/// A data-reference source: the generator algebra as data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum DataSpec {
    /// Weighted nested working sets.
    Regions(Vec<RegionSpec>),
    /// Round-robin strided array sweeps.
    Stream(Vec<StreamSpec>),
    /// Pointer chase over a heap region.
    Chase(ChaseSpec),
    /// Bursty weighted mixture of sources.
    Mixture(Vec<MixtureEntrySpec>),
}

impl DataSpec {
    fn build(&self, rng: &mut StdRng) -> Result<Box<dyn AddrSource>, SpecError> {
        match self {
            DataSpec::Regions(rs) => {
                if rs.is_empty() {
                    return Err(SpecError::Invalid("regions list is empty".into()));
                }
                let regions = rs
                    .iter()
                    .map(|r| {
                        if r.size_kb == 0 {
                            return Err(SpecError::Invalid(format!(
                                "region at {:#x} has zero size",
                                r.base
                            )));
                        }
                        if r.mean_run < 1.0 {
                            return Err(SpecError::Invalid("mean_run must be >= 1".into()));
                        }
                        Ok(Region::new(
                            AddrRange::new(Addr::new(r.base), r.size_kb * 1024),
                            r.weight,
                            r.mean_run,
                        ))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(RegionSet::new(regions)))
            }
            DataSpec::Stream(arrays) => {
                if arrays.is_empty() {
                    return Err(SpecError::Invalid("stream array list is empty".into()));
                }
                let arrays = arrays
                    .iter()
                    .map(|a| {
                        if a.stride_bytes == 0 || a.stride_bytes > a.size_kb * 1024 {
                            return Err(SpecError::Invalid(format!(
                                "array at {:#x}: bad stride {}",
                                a.base, a.stride_bytes
                            )));
                        }
                        Ok(StreamArray::new(
                            AddrRange::new(Addr::new(a.base), a.size_kb * 1024),
                            a.stride_bytes,
                        ))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(StreamWalker::new(arrays)))
            }
            DataSpec::Chase(c) => {
                if c.size_kb * 1024 < 32 {
                    return Err(SpecError::Invalid("chase region must hold >= 2 lines".into()));
                }
                if !(0.0..=1.0).contains(&c.p_restart) {
                    return Err(SpecError::Invalid("p_restart must be a probability".into()));
                }
                Ok(Box::new(PermutationChase::new(
                    AddrRange::new(Addr::new(c.base), c.size_kb * 1024),
                    c.p_restart,
                    rng,
                )))
            }
            DataSpec::Mixture(entries) => {
                if entries.is_empty() {
                    return Err(SpecError::Invalid("mixture is empty".into()));
                }
                let entries = entries
                    .iter()
                    .map(|e| {
                        if e.mean_burst < 1.0 {
                            return Err(SpecError::Invalid("mean_burst must be >= 1".into()));
                        }
                        Ok(MixEntry::new(e.weight, e.mean_burst, e.source.build(rng)?))
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Box::new(Mixture::new(entries)))
            }
        }
    }
}

/// A complete declarative workload. See the module docs for the JSON
/// shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Workload name (reports, file stems).
    pub name: String,
    /// RNG seed — same seed, same stream.
    pub seed: u64,
    /// Probability an instruction carries a data reference.
    pub data_per_instr: f64,
    /// Fraction of data references that are stores.
    pub store_fraction: f64,
    /// Instruction-fetch generator.
    pub code: CodeSpec,
    /// Data-reference generator.
    pub data: DataSpec,
}

impl WorkloadSpec {
    /// Parses a specification from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        Ok(serde_json::from_str(json)?)
    }

    /// Serialises the specification to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serialises")
    }

    /// Builds the runnable workload.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Invalid`] if any parameter is out of range.
    pub fn build(&self) -> Result<Workload, SpecError> {
        if !(0.0..=1.0).contains(&self.data_per_instr) {
            return Err(SpecError::Invalid("data_per_instr must be in [0,1]".into()));
        }
        if !(0.0..=1.0).contains(&self.store_fraction) {
            return Err(SpecError::Invalid("store_fraction must be in [0,1]".into()));
        }
        let c = &self.code;
        if c.footprint_kb == 0 || c.n_sites == 0 {
            return Err(SpecError::Invalid(
                "code footprint and site count must be positive".into(),
            ));
        }
        if c.body_min_bytes < 4 || c.body_min_bytes > c.body_max_bytes {
            return Err(SpecError::Invalid("invalid code body bounds".into()));
        }
        if c.body_max_bytes > c.footprint_kb * 1024 {
            return Err(SpecError::Invalid("loop body larger than code footprint".into()));
        }
        if c.mean_iters < 1.0 || !(0.0..=1.0).contains(&c.p_excursion) {
            return Err(SpecError::Invalid("invalid loop parameters".into()));
        }

        let mut layout_rng = StdRng::seed_from_u64(self.seed ^ 0xD1CE);
        let instr = Box::new(CodeWalker::new(
            CodeParams {
                footprint_bytes: c.footprint_kb * 1024,
                n_sites: c.n_sites,
                body_min_bytes: c.body_min_bytes,
                body_max_bytes: c.body_max_bytes,
                mean_iters: c.mean_iters,
                zipf_theta: c.zipf_theta,
                p_excursion: c.p_excursion,
                excursion_bytes: c.excursion_bytes.max(4),
            },
            Addr::new(c.base),
            &mut layout_rng,
        ));
        let data = self.data.build(&mut layout_rng)?;
        Ok(Workload::new(
            self.name.clone(),
            self.seed,
            instr,
            data,
            self.data_per_instr,
            self.store_fraction,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "custom".into(),
            seed: 7,
            data_per_instr: 0.3,
            store_fraction: 0.25,
            code: CodeSpec {
                footprint_kb: 32,
                n_sites: 20,
                body_min_bytes: 64,
                body_max_bytes: 512,
                mean_iters: 5.0,
                zipf_theta: 1.0,
                p_excursion: 0.02,
                excursion_bytes: 512,
                base: default_code_base(),
            },
            data: DataSpec::Mixture(vec![
                MixtureEntrySpec {
                    weight: 0.7,
                    mean_burst: 16.0,
                    source: DataSpec::Regions(vec![RegionSpec {
                        base: 0x1000_0000,
                        size_kb: 8,
                        weight: 1.0,
                        mean_run: 4.0,
                    }]),
                },
                MixtureEntrySpec {
                    weight: 0.3,
                    mean_burst: 8.0,
                    source: DataSpec::Chase(ChaseSpec {
                        base: 0x4000_0000,
                        size_kb: 128,
                        p_restart: 0.005,
                    }),
                },
            ]),
        }
    }

    #[test]
    fn json_roundtrip() {
        let spec = sample_spec();
        let json = spec.to_json();
        let back = WorkloadSpec::from_json(&json).expect("parse");
        assert_eq!(back, spec);
    }

    #[test]
    fn built_workload_is_deterministic_and_respects_mix() {
        let spec = sample_spec();
        let a = spec.build().expect("build").take_instructions(2_000);
        let b = spec.build().expect("build").take_instructions(2_000);
        assert_eq!(a, b);
        let data = a.iter().filter(|r| r.data.is_some()).count();
        let dpi = data as f64 / a.len() as f64;
        assert!((dpi - 0.3).abs() < 0.05, "data per instr {dpi}");
    }

    #[test]
    fn built_workload_addresses_stay_in_declared_regions() {
        let spec = sample_spec();
        let recs = spec.build().expect("build").take_instructions(5_000);
        for r in recs {
            assert!(
                r.fetch.raw() >= 0x40_0000 && r.fetch.raw() < 0x40_0000 + 32 * 1024,
                "fetch {:#x} outside code footprint",
                r.fetch.raw()
            );
            if let Some(d) = r.data {
                let a = d.addr.raw();
                let in_regions = (0x1000_0000..0x1000_0000 + 8 * 1024).contains(&a);
                let in_chase = (0x4000_0000..0x4000_0000 + 128 * 1024).contains(&a);
                assert!(in_regions || in_chase, "data {a:#x} outside declared regions");
            }
        }
    }

    #[test]
    fn stream_spec_builds() {
        let spec = WorkloadSpec {
            data: DataSpec::Stream(vec![
                StreamSpec { base: 0x7000_0000, size_kb: 64, stride_bytes: 8 },
                StreamSpec { base: 0x7100_0000, size_kb: 64, stride_bytes: 4 },
            ]),
            ..sample_spec()
        };
        let mut w = spec.build().expect("build");
        assert_eq!(w.name(), "custom");
        let _ = w.take_instructions(100);
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut spec = sample_spec();
        spec.data_per_instr = 1.5;
        assert!(matches!(spec.build(), Err(SpecError::Invalid(_))));

        let mut spec = sample_spec();
        spec.code.body_min_bytes = 1024;
        spec.code.body_max_bytes = 64;
        assert!(matches!(spec.build(), Err(SpecError::Invalid(_))));

        let spec2 = WorkloadSpec { data: DataSpec::Regions(vec![]), ..sample_spec() };
        assert!(matches!(spec2.build(), Err(SpecError::Invalid(_))));

        let spec3 = WorkloadSpec {
            data: DataSpec::Stream(vec![StreamSpec { base: 0, size_kb: 1, stride_bytes: 0 }]),
            ..sample_spec()
        };
        assert!(matches!(spec3.build(), Err(SpecError::Invalid(_))));
    }

    #[test]
    fn parse_error_is_reported() {
        let err = WorkloadSpec::from_json("{ not json").unwrap_err();
        assert!(matches!(err, SpecError::Parse(_)));
        assert!(err.to_string().contains("parse"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn documented_example_parses() {
        // The JSON from the module docs must stay valid.
        let json = r#"{
          "name": "mydb",
          "seed": 42,
          "data_per_instr": 0.35,
          "store_fraction": 0.3,
          "code": { "footprint_kb": 64, "n_sites": 40, "body_min_bytes": 64,
                    "body_max_bytes": 512, "mean_iters": 5.0, "zipf_theta": 1.0,
                    "p_excursion": 0.02, "excursion_bytes": 1024 },
          "data": { "mixture": [
            { "weight": 0.7, "mean_burst": 16.0,
              "source": { "regions": [ { "base": 268435456, "size_kb": 8,
                                         "weight": 1.0, "mean_run": 4.0 } ] } },
            { "weight": 0.3, "mean_burst": 8.0,
              "source": { "chase": { "base": 1073741824, "size_kb": 256,
                                     "p_restart": 0.005 } } }
          ] }
        }"#;
        let spec = WorkloadSpec::from_json(json).expect("docs example parses");
        let mut w = spec.build().expect("docs example builds");
        assert_eq!(w.name(), "mydb");
        let _ = w.take_instructions(100);
    }
}
