//! Deterministic delta-debugging minimization for failing traces.
//!
//! When the differential audit finds a divergence, the raw witness is a
//! capture of tens of thousands of events — useless as a regression
//! artifact. [`ddmin`] reduces it to a locally-minimal subsequence that
//! still fails, using Zeller & Hildebrandt's *ddmin* algorithm
//! ("Simplifying and Isolating Failure-Inducing Input", TSE 2002). The
//! procedure is fully deterministic: chunk boundaries depend only on the
//! current length and granularity, candidates are tried in a fixed
//! order, and the first failing candidate wins each round — so re-running
//! the shrinker on the same input with the same predicate reproduces the
//! same minimal trace byte-for-byte, which is what makes committed corpus
//! entries reviewable.

/// Minimizes `items` to a subsequence on which `fails` still returns
/// `true`, preserving the original relative order.
///
/// `fails` must return `true` on the full input (debug-asserted); the
/// result is *1-minimal*: removing any single remaining element makes the
/// predicate pass. The predicate is treated as pure — it is re-invoked
/// freely on candidate subsets.
///
/// Complexity is the classic ddmin worst case, O(n²) predicate calls;
/// audit witnesses (≤ a few 10⁵ events with cheap replay predicates)
/// minimize in well under a second.
///
/// # Examples
///
/// ```
/// use tlc_trace::shrink::ddmin;
///
/// // "Fails" whenever both 3 and 7 survive, in order.
/// let input: Vec<u32> = (0..100).collect();
/// let min = ddmin(&input, |c| {
///     let a = c.iter().position(|&x| x == 3);
///     let b = c.iter().position(|&x| x == 7);
///     matches!((a, b), (Some(i), Some(j)) if i < j)
/// });
/// assert_eq!(min, vec![3, 7]);
/// ```
pub fn ddmin<T: Clone>(items: &[T], mut fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    debug_assert!(fails(&current), "ddmin requires a failing input");
    if current.len() <= 1 {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let bounds: Vec<(usize, usize)> = (0..current.len())
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(current.len())))
            .collect();

        // Reduce to a single subset: a failing chunk becomes the whole
        // input at granularity 2.
        let mut reduced = false;
        for &(s, e) in &bounds {
            let candidate = &current[s..e];
            if candidate.len() < current.len() && fails(candidate) {
                current = candidate.to_vec();
                granularity = 2;
                reduced = true;
                break;
            }
        }
        if reduced {
            continue;
        }

        // Reduce to a complement: drop one chunk, keep the rest.
        if bounds.len() > 2 {
            for &(s, e) in &bounds {
                let mut candidate = Vec::with_capacity(current.len() - (e - s));
                candidate.extend_from_slice(&current[..s]);
                candidate.extend_from_slice(&current[e..]);
                if fails(&candidate) {
                    current = candidate;
                    granularity = (granularity - 1).max(2);
                    reduced = true;
                    break;
                }
            }
        }
        if reduced {
            continue;
        }

        // Refine granularity, or stop at single-element chunks.
        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_single_culprit() {
        let input: Vec<u32> = (0..1000).collect();
        let min = ddmin(&input, |c| c.contains(&617));
        assert_eq!(min, vec![617]);
    }

    #[test]
    fn keeps_interacting_pair_in_order() {
        let input: Vec<u32> = (0..256).collect();
        let min = ddmin(&input, |c| {
            let a = c.iter().position(|&x| x == 10);
            let b = c.iter().position(|&x| x == 200);
            matches!((a, b), (Some(i), Some(j)) if i < j)
        });
        assert_eq!(min, vec![10, 200]);
    }

    #[test]
    fn result_is_one_minimal() {
        // Fails when the subset sums to at least 20.
        let input = vec![9u32, 1, 1, 9, 1, 1, 9, 1, 1, 9];
        let fails = |c: &[u32]| c.iter().sum::<u32>() >= 20;
        let min = ddmin(&input, fails);
        assert!(fails(&min));
        for i in 0..min.len() {
            let mut sub = min.clone();
            sub.remove(i);
            assert!(!fails(&sub), "dropping index {i} of {min:?} should pass");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let input: Vec<u32> = (0..500).map(|i| i * 7 % 501).collect();
        let fails = |c: &[u32]| c.iter().filter(|&&x| x % 13 == 0).count() >= 3;
        let a = ddmin(&input, fails);
        let b = ddmin(&input, fails);
        assert_eq!(a, b);
        assert!(fails(&a));
    }

    #[test]
    fn trivial_inputs_pass_through() {
        assert_eq!(ddmin(&[42u8], |c| !c.is_empty()), vec![42]);
        let empty: Vec<u8> = vec![];
        assert_eq!(ddmin(&empty, |_| true), empty);
    }
}
