//! Nested working-set data generator.
//!
//! Data references of integer codes cluster into working sets of very
//! different sizes and temperatures: a hot stack and a few hot globals, a
//! warm heap, and a cold tail. [`RegionSet`] models this directly as a
//! weighted set of address regions: each *burst* picks a region by weight,
//! picks a uniformly random word inside it, then walks sequentially for a
//! geometric run length (spatial locality).
//!
//! The resulting miss-rate curve for a cache of capacity `C` is roughly
//! `Σ_r w_r · max(0, 1 − C/S_r) / run_r` — i.e. each region contributes
//! misses until the cache grows past its size, giving the smooth declining
//! curves of gcc/doduc/espresso in the paper, with knees at the region
//! sizes.

use super::{sample_burst, AddrSource, WeightedIndex};
use crate::addr::{Addr, AddrRange};
use rand::rngs::StdRng;
use rand::Rng;

/// Bytes per data word used when picking word-aligned addresses.
pub const WORD_BYTES: u64 = 4;

/// One weighted region of a [`RegionSet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// The address range of the region.
    pub range: AddrRange,
    /// Relative probability that a burst targets this region.
    pub weight: f64,
    /// Mean sequential run length (in words) once a location is chosen.
    pub mean_run: f64,
}

impl Region {
    /// Convenience constructor.
    pub fn new(range: AddrRange, weight: f64, mean_run: f64) -> Self {
        Region { range, weight, mean_run }
    }
}

/// Weighted nested working-set generator. See the module docs.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use tlc_trace::gen::{regions::{Region, RegionSet}, AddrSource};
/// use tlc_trace::{Addr, AddrRange};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let hot = Region::new(AddrRange::new(Addr::new(0x1000_0000), 4 << 10), 0.7, 4.0);
/// let cold = Region::new(AddrRange::new(Addr::new(0x2000_0000), 1 << 20), 0.3, 2.0);
/// let mut gen = RegionSet::new(vec![hot, cold]);
/// let a = gen.next_addr(&mut rng);
/// assert_eq!(a.offset_in(4), 0);
/// ```
#[derive(Debug)]
pub struct RegionSet {
    regions: Vec<Region>,
    picker: WeightedIndex,
    /// Current run: next address and accesses remaining.
    run: Option<(Addr, u64, usize)>,
}

impl RegionSet {
    /// Builds the generator from a non-empty list of regions.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is empty, weights are all zero, or any
    /// `mean_run < 1`.
    pub fn new(regions: Vec<Region>) -> Self {
        assert!(!regions.is_empty(), "need at least one region");
        for r in &regions {
            assert!(r.mean_run >= 1.0, "mean_run must be >= 1");
        }
        let picker = WeightedIndex::new(&regions.iter().map(|r| r.weight).collect::<Vec<_>>());
        RegionSet { regions, picker, run: None }
    }

    /// The regions of this generator.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total footprint in bytes (sum of region lengths).
    pub fn footprint_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.range.len()).sum()
    }
}

impl AddrSource for RegionSet {
    fn next_addr(&mut self, rng: &mut StdRng) -> Addr {
        if let Some((addr, left, region)) = self.run {
            let next = addr.add(WORD_BYTES);
            // Stop a run that would walk out of its region.
            if left > 1 && self.regions[region].range.contains(next) {
                self.run = Some((next, left - 1, region));
            } else {
                self.run = None;
            }
            return addr;
        }
        let idx = self.picker.sample(rng);
        let r = self.regions[idx];
        let words = r.range.len() / WORD_BYTES;
        let addr = r.range.start().add(rng.gen_range(0..words) * WORD_BYTES);
        let run = sample_burst(rng, r.mean_run);
        if run > 1 {
            let next = addr.add(WORD_BYTES);
            if r.range.contains(next) {
                self.run = Some((next, run - 1, idx));
            }
        }
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn two_regions() -> RegionSet {
        RegionSet::new(vec![
            Region::new(AddrRange::new(Addr::new(0x1000_0000), 4 << 10), 0.75, 4.0),
            Region::new(AddrRange::new(Addr::new(0x2000_0000), 1 << 20), 0.25, 2.0),
        ])
    }

    #[test]
    fn addresses_fall_in_some_region() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = two_regions();
        let regions = g.regions().to_vec();
        for _ in 0..50_000 {
            let a = g.next_addr(&mut rng);
            assert!(regions.iter().any(|r| r.range.contains(a)), "{a} outside all regions");
            assert_eq!(a.offset_in(WORD_BYTES), 0);
        }
    }

    #[test]
    fn weights_are_respected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = two_regions();
        let hot = g.regions()[0].range;
        let mut in_hot = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if hot.contains(g.next_addr(&mut rng)) {
                in_hot += 1;
            }
        }
        let frac = in_hot as f64 / n as f64;
        // Burst lengths differ per region (4 vs 2), so the access-level hot
        // fraction is weight-of-hot adjusted by run length:
        // 0.75*4 / (0.75*4 + 0.25*2) ≈ 0.857.
        assert!((frac - 0.857).abs() < 0.04, "hot fraction {frac}");
    }

    #[test]
    fn sequential_runs_present() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut g = two_regions();
        let mut seq = 0u32;
        let n = 50_000;
        let mut prev = g.next_addr(&mut rng);
        for _ in 0..n {
            let a = g.next_addr(&mut rng);
            if a.raw() == prev.raw() + WORD_BYTES {
                seq += 1;
            }
            prev = a;
        }
        // Mean run ~3.5 accesses ⇒ roughly (run-1)/run ≈ 0.7 of accesses
        // are sequential continuations.
        let frac = seq as f64 / n as f64;
        assert!(frac > 0.5 && frac < 0.85, "sequential fraction {frac}");
    }

    #[test]
    fn footprint_sums_regions() {
        assert_eq!(two_regions().footprint_bytes(), (4 << 10) + (1 << 20));
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = || {
            let mut rng = StdRng::seed_from_u64(8);
            let mut g = two_regions();
            (0..500).map(|_| g.next_addr(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(stream(), stream());
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn rejects_empty() {
        let _ = RegionSet::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "mean_run")]
    fn rejects_zero_run() {
        let _ = RegionSet::new(vec![Region::new(AddrRange::new(Addr::new(0), 64), 1.0, 0.0)]);
    }
}
