//! Strided array-sweep data generator.
//!
//! Vectorizable numeric codes (tomcatv is the canonical example) sweep a
//! handful of large arrays with unit or small stride, revisiting them pass
//! after pass. Arrays far larger than any on-chip cache make every pass
//! miss on each new line — the miss rate is high and nearly *flat* in
//! cache size, exactly the behaviour the paper reports for tomcatv (0.109
//! at 32KB "but the miss rate does not drop appreciably as the cache size
//! is increased").
//!
//! [`StreamWalker`] interleaves the arrays round-robin (like an inner loop
//! reading `x[i]`, `y[i]`, `rx[i]`, …) and advances each array by its
//! stride after every full round, wrapping at the end of the array.

use super::AddrSource;
use crate::addr::{Addr, AddrRange};
use rand::rngs::StdRng;

/// One array swept by a [`StreamWalker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamArray {
    /// Address range of the array.
    pub range: AddrRange,
    /// Stride in bytes between successive elements touched.
    pub stride_bytes: u64,
}

impl StreamArray {
    /// Convenience constructor.
    ///
    /// # Panics
    ///
    /// Panics if `stride_bytes` is zero or larger than the array.
    pub fn new(range: AddrRange, stride_bytes: u64) -> Self {
        assert!(stride_bytes > 0, "stride must be positive");
        assert!(stride_bytes <= range.len(), "stride larger than array");
        StreamArray { range, stride_bytes }
    }
}

/// Round-robin strided sweep over a set of large arrays. See the module
/// docs.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use tlc_trace::gen::{stream::{StreamArray, StreamWalker}, AddrSource};
/// use tlc_trace::{Addr, AddrRange};
///
/// let mut rng = StdRng::seed_from_u64(0);
/// let a = StreamArray::new(AddrRange::new(Addr::new(0x4000_0000), 1 << 20), 8);
/// let b = StreamArray::new(AddrRange::new(Addr::new(0x4100_0000), 1 << 20), 8);
/// let mut s = StreamWalker::new(vec![a, b]);
/// assert_eq!(s.next_addr(&mut rng), Addr::new(0x4000_0000));
/// assert_eq!(s.next_addr(&mut rng), Addr::new(0x4100_0000));
/// assert_eq!(s.next_addr(&mut rng), Addr::new(0x4000_0008));
/// ```
#[derive(Debug)]
pub struct StreamWalker {
    arrays: Vec<StreamArray>,
    offsets: Vec<u64>,
    next_array: usize,
}

impl StreamWalker {
    /// Builds the walker.
    ///
    /// # Panics
    ///
    /// Panics if `arrays` is empty.
    pub fn new(arrays: Vec<StreamArray>) -> Self {
        assert!(!arrays.is_empty(), "need at least one array");
        let offsets = vec![0; arrays.len()];
        StreamWalker { arrays, offsets, next_array: 0 }
    }

    /// The arrays swept by this walker.
    pub fn arrays(&self) -> &[StreamArray] {
        &self.arrays
    }
}

impl AddrSource for StreamWalker {
    fn next_addr(&mut self, _rng: &mut StdRng) -> Addr {
        let i = self.next_array;
        let a = self.arrays[i];
        let addr = a.range.at_wrapped(self.offsets[i]);
        self.offsets[i] = (self.offsets[i] + a.stride_bytes) % a.range.len();
        self.next_array = (self.next_array + 1) % self.arrays.len();
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn walker() -> StreamWalker {
        StreamWalker::new(vec![
            StreamArray::new(AddrRange::new(Addr::new(0x4000_0000), 256), 8),
            StreamArray::new(AddrRange::new(Addr::new(0x5000_0000), 128), 4),
        ])
    }

    #[test]
    fn round_robin_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = walker();
        let seq: Vec<u64> = (0..6).map(|_| s.next_addr(&mut rng).raw()).collect();
        assert_eq!(
            seq,
            vec![0x4000_0000, 0x5000_0000, 0x4000_0008, 0x5000_0004, 0x4000_0010, 0x5000_0008]
        );
    }

    #[test]
    fn wraps_at_array_end() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s =
            StreamWalker::new(vec![StreamArray::new(AddrRange::new(Addr::new(0x100), 16), 8)]);
        let seq: Vec<u64> = (0..4).map(|_| s.next_addr(&mut rng).raw()).collect();
        assert_eq!(seq, vec![0x100, 0x108, 0x100, 0x108]);
    }

    #[test]
    fn touches_every_line_once_per_pass() {
        // With 8-byte stride over 16-byte lines, each line is touched
        // exactly twice per pass: one compulsory miss per line in a cold
        // cache, i.e. a 50% per-access new-line rate.
        let mut rng = StdRng::seed_from_u64(0);
        let len = 1024u64;
        let mut s = StreamWalker::new(vec![StreamArray::new(AddrRange::new(Addr::new(0), len), 8)]);
        let mut new_lines = 0;
        let mut seen = std::collections::HashSet::new();
        let accesses = len / 8; // one full pass
        for _ in 0..accesses {
            if seen.insert(s.next_addr(&mut rng).line(16)) {
                new_lines += 1;
            }
        }
        assert_eq!(new_lines, len / 16);
    }

    #[test]
    #[should_panic(expected = "at least one array")]
    fn rejects_empty() {
        let _ = StreamWalker::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn rejects_zero_stride() {
        let _ = StreamArray::new(AddrRange::new(Addr::new(0), 64), 0);
    }
}
