//! Pointer-chase data generator.
//!
//! Linked-structure codes (the lisp interpreter `li`, the bit-vector
//! walker `eqntott`) dereference chains of pointers whose targets are
//! scattered across the heap. [`PermutationChase`] models the limit case:
//! a random permutation over the lines of a heap region, walked one hop
//! per access. Every hop lands on a "random" line, so the reuse distance
//! of each line equals the whole region — caches smaller than the region
//! miss on essentially every hop, and caches that hold the region hit on
//! every hop. This produces the sharp knee such workloads show at their
//! heap size.

use super::AddrSource;
use crate::addr::{Addr, AddrRange};
use rand::rngs::StdRng;
use rand::Rng;

/// Line size used to quantise the chase targets. 16 bytes matches the
/// paper's caches, but the generator is usable with any power of two.
const CHASE_GRAIN: u64 = 16;

/// Pointer-chasing walk over a random permutation of a region's lines.
/// See the module docs.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use tlc_trace::gen::{chase::PermutationChase, AddrSource};
/// use tlc_trace::{Addr, AddrRange};
///
/// let mut rng = StdRng::seed_from_u64(11);
/// let heap = AddrRange::new(Addr::new(0x6000_0000), 64 << 10);
/// let mut chase = PermutationChase::new(heap, 0.001, &mut rng);
/// let a = chase.next_addr(&mut rng);
/// assert!(heap.contains(a));
/// ```
#[derive(Debug)]
pub struct PermutationChase {
    region: AddrRange,
    /// `next[i]` is the line index visited after line `i`.
    next: Vec<u32>,
    cur: u32,
    /// Probability per access of restarting the walk at a random line
    /// (models following a different root pointer).
    p_restart: f64,
}

impl PermutationChase {
    /// Builds a chase over `region`, whose permutation is drawn from
    /// `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the region holds fewer than two 16-byte lines or more
    /// than `u32::MAX` lines, or if `p_restart` is not a probability.
    pub fn new(region: AddrRange, p_restart: f64, rng: &mut StdRng) -> Self {
        let lines = region.len() / CHASE_GRAIN;
        assert!(lines >= 2, "chase region must hold at least two lines");
        assert!(lines <= u32::MAX as u64, "chase region too large");
        assert!((0.0..=1.0).contains(&p_restart), "p_restart must be a probability");
        let lines = lines as u32;
        // A single-cycle permutation (Sattolo's algorithm) so the walk
        // visits every line before repeating.
        let mut order: Vec<u32> = (0..lines).collect();
        for i in (1..lines as usize).rev() {
            let j = rng.gen_range(0..i);
            order.swap(i, j);
        }
        let mut next = vec![0u32; lines as usize];
        for w in 0..lines as usize {
            next[order[w] as usize] = order[(w + 1) % lines as usize];
        }
        let cur = rng.gen_range(0..lines);
        PermutationChase { region, next, cur, p_restart }
    }

    /// The heap region being chased.
    pub fn region(&self) -> AddrRange {
        self.region
    }

    /// Number of lines in the chase cycle.
    pub fn line_count(&self) -> usize {
        self.next.len()
    }
}

impl AddrSource for PermutationChase {
    fn next_addr(&mut self, rng: &mut StdRng) -> Addr {
        if self.p_restart > 0.0 && rng.gen_bool(self.p_restart) {
            self.cur = rng.gen_range(0..self.next.len() as u32);
        }
        let addr = self.region.start().add(self.cur as u64 * CHASE_GRAIN);
        self.cur = self.next[self.cur as usize];
        // Touch a word within the line (pointer field position varies).
        addr.add((rng.gen_range(0..CHASE_GRAIN / 4)) * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn visits_all_lines_before_repeating() {
        let mut rng = StdRng::seed_from_u64(21);
        let region = AddrRange::new(Addr::new(0x1000), 64 * CHASE_GRAIN);
        let mut c = PermutationChase::new(region, 0.0, &mut rng);
        let mut seen = HashSet::new();
        for _ in 0..64 {
            let line = c.next_addr(&mut rng).line(CHASE_GRAIN);
            assert!(seen.insert(line), "line repeated before full cycle");
        }
        assert_eq!(seen.len(), 64);
        // The 65th access revisits the first line of the cycle.
        let line = c.next_addr(&mut rng).line(CHASE_GRAIN);
        assert!(seen.contains(&line));
    }

    #[test]
    fn addresses_in_region_and_word_aligned() {
        let mut rng = StdRng::seed_from_u64(22);
        let region = AddrRange::new(Addr::new(0x6000_0000), 32 << 10);
        let mut c = PermutationChase::new(region, 0.01, &mut rng);
        for _ in 0..10_000 {
            let a = c.next_addr(&mut rng);
            assert!(region.contains(a));
            assert_eq!(a.offset_in(4), 0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let stream = || {
            let mut rng = StdRng::seed_from_u64(23);
            let region = AddrRange::new(Addr::new(0), 16 << 10);
            let mut c = PermutationChase::new(region, 0.005, &mut rng);
            (0..500).map(|_| c.next_addr(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(stream(), stream());
    }

    #[test]
    fn line_count() {
        let mut rng = StdRng::seed_from_u64(24);
        let region = AddrRange::new(Addr::new(0), 1 << 10);
        let c = PermutationChase::new(region, 0.0, &mut rng);
        assert_eq!(c.line_count(), 64);
        assert_eq!(c.region(), region);
    }

    #[test]
    #[should_panic(expected = "at least two lines")]
    fn rejects_tiny_region() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = PermutationChase::new(AddrRange::new(Addr::new(0), 16), 0.0, &mut rng);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_bad_restart() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = PermutationChase::new(AddrRange::new(Addr::new(0), 1 << 10), 1.5, &mut rng);
    }
}
