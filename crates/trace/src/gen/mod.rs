//! Synthetic address-stream generators.
//!
//! The paper drove its cache simulations with SPEC'89 address traces
//! captured by the WRL tracing system (Borg et al.) — traces that are no
//! longer obtainable. This module provides the substitute substrate: a
//! small algebra of deterministic, seeded address sources whose composition
//! reproduces the *miss-rate-versus-cache-size shape* of each benchmark
//! (see `DESIGN.md` §2 for the substitution argument).
//!
//! The building blocks:
//!
//! * [`CodeWalker`](loops::CodeWalker) — instruction fetch streams built
//!   from loop sites inside a code footprint.
//! * [`RegionSet`](regions::RegionSet) — nested working sets touched with
//!   spatial runs (stack/global/heap data).
//! * [`StreamWalker`](stream::StreamWalker) — strided sweeps over large
//!   arrays (vectorizable numeric code such as tomcatv).
//! * [`PermutationChase`](chase::PermutationChase) — pointer chasing over a
//!   fixed heap (lisp interpreter style).
//! * [`Mixture`](mixture::Mixture) — bursty weighted mixture of any of the
//!   above.
//!
//! All sources implement [`AddrSource`] and draw randomness only from the
//! caller-supplied RNG, so a fixed seed reproduces a bit-identical stream.

pub mod chase;
pub mod loops;
pub mod mixture;
pub mod regions;
pub mod stream;

use crate::addr::Addr;
use rand::rngs::StdRng;
use rand::Rng;

/// An infinite, deterministic source of byte addresses of one reference
/// class (instruction fetches or data accesses).
///
/// Implementors must be cheap per call — the experiment harness draws tens
/// of millions of addresses per run.
pub trait AddrSource: Send {
    /// Produces the next address in the stream.
    fn next_addr(&mut self, rng: &mut StdRng) -> Addr;
}

impl AddrSource for Box<dyn AddrSource> {
    fn next_addr(&mut self, rng: &mut StdRng) -> Addr {
        (**self).next_addr(rng)
    }
}

/// Samples a geometric-like burst length with the given mean (≥ 1).
///
/// Used by generators for loop iteration counts and spatial run lengths.
/// The distribution is `1 + Geometric(p = 1/mean)`, clamped to
/// `[1, 64 * mean]` so a pathological draw cannot stall a simulation.
pub(crate) fn sample_burst(rng: &mut StdRng, mean: f64) -> u64 {
    debug_assert!(mean >= 1.0, "burst mean must be >= 1");
    if mean <= 1.0 {
        return 1;
    }
    // Mean of 1 + Geometric(p) (number of failures before first success)
    // is 1 + (1-p)/p = 1/p, so p = 1/mean gives the requested mean.
    let p = 1.0 / mean;
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    let g = (u.ln() / (1.0 - p).ln()).floor() as u64;
    (1 + g).min((64.0 * mean) as u64)
}

/// A precomputed discrete distribution sampled by binary search on the
/// cumulative weights. Used for zipf-like loop-site popularity and for
/// mixture component selection.
#[derive(Debug, Clone)]
pub(crate) struct WeightedIndex {
    cumulative: Vec<f64>,
}

impl WeightedIndex {
    /// Builds the sampler from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub(crate) fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0 && w.is_finite(), "weights must be finite and non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not sum to zero");
        WeightedIndex { cumulative }
    }

    /// Samples an index proportional to its weight.
    pub(crate) fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let x: f64 = rng.gen_range(0.0..total);
        // partition_point returns the first index whose cumulative weight
        // exceeds x.
        self.cumulative.partition_point(|&c| c <= x).min(self.cumulative.len() - 1)
    }
}

/// Zipf-like weights `1 / (rank+1)^theta` for `n` items.
pub(crate) fn zipf_weights(n: usize, theta: f64) -> Vec<f64> {
    (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn burst_mean_is_close() {
        let mut rng = StdRng::seed_from_u64(7);
        for &mean in &[1.0, 2.0, 5.0, 20.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| sample_burst(&mut rng, mean)).sum();
            let observed = total as f64 / n as f64;
            assert!(
                (observed - mean).abs() < mean * 0.15 + 0.1,
                "mean {mean}: observed {observed}"
            );
        }
    }

    #[test]
    fn burst_is_at_least_one() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(sample_burst(&mut rng, 3.0) >= 1);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = WeightedIndex::new(&[1.0, 0.0, 3.0]);
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[w.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn weighted_index_rejects_empty() {
        let _ = WeightedIndex::new(&[]);
    }

    #[test]
    #[should_panic(expected = "sum to zero")]
    fn weighted_index_rejects_all_zero() {
        let _ = WeightedIndex::new(&[0.0, 0.0]);
    }

    #[test]
    fn zipf_weights_decrease() {
        let w = zipf_weights(10, 1.0);
        assert_eq!(w.len(), 10);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] - 1.0).abs() < 1e-12);
        assert!((w[9] - 0.1).abs() < 1e-12);
    }
}
