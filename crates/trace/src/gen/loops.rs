//! Instruction-fetch stream generator built from loop sites.
//!
//! Real instruction streams are dominated by loops: short bursts of
//! sequential fetches that repeat, punctuated by transfers to other parts
//! of the code. [`CodeWalker`] models exactly that: a code *footprint* is
//! populated with `n_sites` loop sites; execution walks one site's body
//! sequentially (4-byte instructions), repeats it a geometric number of
//! times, then transfers to another site chosen from a zipf-like popularity
//! distribution (a few sites are hot, most are cold). Occasional
//! *excursions* — one-shot sequential runs at a random spot in the
//! footprint — model initialization and rarely-executed code.
//!
//! The resulting instruction-cache behaviour: caches that hold the hot
//! sites have near-zero miss rates; smaller caches miss on every site
//! transition; the cold tail and excursions produce the slowly-decaying
//! component that makes bigger instruction caches keep paying off for
//! large-footprint codes (gcc, fpppp).

use super::{sample_burst, zipf_weights, AddrSource, WeightedIndex};
use crate::addr::{Addr, AddrRange};
use rand::rngs::StdRng;
use rand::Rng;

/// Size of one instruction in bytes (RISC, as in the paper's DECStation
/// traces).
pub const INSTR_BYTES: u64 = 4;

/// Parameters of a [`CodeWalker`].
#[derive(Debug, Clone, PartialEq)]
pub struct CodeParams {
    /// Total code footprint in bytes.
    pub footprint_bytes: u64,
    /// Number of loop sites scattered in the footprint.
    pub n_sites: usize,
    /// Minimum loop-body length in bytes.
    pub body_min_bytes: u64,
    /// Maximum loop-body length in bytes.
    pub body_max_bytes: u64,
    /// Mean number of iterations each time a site is entered.
    pub mean_iters: f64,
    /// Zipf exponent for site popularity (0 = uniform; 1 ≈ classic zipf).
    pub zipf_theta: f64,
    /// Probability that a site transition first detours through an
    /// excursion (one-shot sequential run at a random footprint location).
    pub p_excursion: f64,
    /// Length of an excursion in bytes.
    pub excursion_bytes: u64,
}

impl CodeParams {
    fn validate(&self) {
        assert!(self.footprint_bytes >= INSTR_BYTES, "footprint too small");
        assert!(self.n_sites > 0, "need at least one loop site");
        assert!(
            self.body_min_bytes >= INSTR_BYTES && self.body_min_bytes <= self.body_max_bytes,
            "invalid body length bounds"
        );
        assert!(self.body_max_bytes <= self.footprint_bytes, "loop body larger than footprint");
        assert!(self.mean_iters >= 1.0, "mean iterations must be >= 1");
        assert!((0.0..=1.0).contains(&self.p_excursion), "p_excursion must be a probability");
        assert!(self.excursion_bytes >= INSTR_BYTES, "excursion too short");
    }
}

#[derive(Debug, Clone, Copy)]
struct LoopSite {
    start: Addr,
    body_bytes: u64,
}

#[derive(Debug, Clone, Copy)]
enum Mode {
    /// Walking a loop body: offset within body, iterations remaining.
    Looping { site: usize, offset: u64, iters_left: u64 },
    /// One-shot excursion run: current address, bytes remaining.
    Excursion { pc: Addr, bytes_left: u64 },
}

/// Loop-site based instruction-fetch generator. See the module docs.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use tlc_trace::gen::{loops::{CodeParams, CodeWalker}, AddrSource};
/// use tlc_trace::Addr;
///
/// let mut rng = StdRng::seed_from_u64(42);
/// let mut walker = CodeWalker::new(
///     CodeParams {
///         footprint_bytes: 16 * 1024,
///         n_sites: 8,
///         body_min_bytes: 64,
///         body_max_bytes: 256,
///         mean_iters: 4.0,
///         zipf_theta: 1.0,
///         p_excursion: 0.01,
///         excursion_bytes: 512,
///     },
///     Addr::new(0x0010_0000),
///     &mut rng,
/// );
/// let a = walker.next_addr(&mut rng);
/// let b = walker.next_addr(&mut rng);
/// assert_eq!(b.raw(), a.raw() + 4); // sequential within a loop body
/// ```
#[derive(Debug)]
pub struct CodeWalker {
    footprint: AddrRange,
    sites: Vec<LoopSite>,
    popularity: WeightedIndex,
    mean_iters: f64,
    p_excursion: f64,
    excursion_bytes: u64,
    mode: Mode,
}

impl CodeWalker {
    /// Builds a walker whose footprint starts at `base`. Site placement is
    /// drawn from `rng`, so the layout is reproducible from the seed.
    ///
    /// # Panics
    ///
    /// Panics if the parameters are inconsistent (see [`CodeParams`]).
    pub fn new(params: CodeParams, base: Addr, rng: &mut StdRng) -> Self {
        params.validate();
        let footprint = AddrRange::new(base.align_down(INSTR_BYTES), params.footprint_bytes);
        let sites: Vec<LoopSite> = (0..params.n_sites)
            .map(|_| {
                let body_bytes = rng.gen_range(params.body_min_bytes..=params.body_max_bytes)
                    / INSTR_BYTES
                    * INSTR_BYTES;
                let body_bytes = body_bytes.max(INSTR_BYTES);
                let max_start = params.footprint_bytes.saturating_sub(body_bytes);
                let start_off = if max_start == 0 {
                    0
                } else {
                    rng.gen_range(0..=max_start) / INSTR_BYTES * INSTR_BYTES
                };
                LoopSite { start: footprint.start().add(start_off), body_bytes }
            })
            .collect();
        let popularity = WeightedIndex::new(&zipf_weights(sites.len(), params.zipf_theta));
        let first = popularity.sample(rng);
        let iters = sample_burst(rng, params.mean_iters);
        CodeWalker {
            footprint,
            sites,
            popularity,
            mean_iters: params.mean_iters,
            p_excursion: params.p_excursion,
            excursion_bytes: params.excursion_bytes,
            mode: Mode::Looping { site: first, offset: 0, iters_left: iters },
        }
    }

    /// The code footprint this walker fetches from.
    pub fn footprint(&self) -> AddrRange {
        self.footprint
    }

    fn transition(&mut self, rng: &mut StdRng) {
        if rng.gen_bool(self.p_excursion) {
            let max_start = self.footprint.len().saturating_sub(self.excursion_bytes);
            let start_off = if max_start == 0 {
                0
            } else {
                rng.gen_range(0..=max_start) / INSTR_BYTES * INSTR_BYTES
            };
            self.mode = Mode::Excursion {
                pc: self.footprint.start().add(start_off),
                bytes_left: self.excursion_bytes,
            };
        } else {
            let site = self.popularity.sample(rng);
            let iters = sample_burst(rng, self.mean_iters);
            self.mode = Mode::Looping { site, offset: 0, iters_left: iters };
        }
    }
}

impl AddrSource for CodeWalker {
    fn next_addr(&mut self, rng: &mut StdRng) -> Addr {
        loop {
            match self.mode {
                Mode::Looping { site, ref mut offset, ref mut iters_left } => {
                    let s = self.sites[site];
                    if *offset < s.body_bytes {
                        let a = s.start.add(*offset);
                        *offset += INSTR_BYTES;
                        return a;
                    }
                    if *iters_left > 1 {
                        *iters_left -= 1;
                        *offset = 0;
                    } else {
                        self.transition(rng);
                    }
                }
                Mode::Excursion { ref mut pc, ref mut bytes_left } => {
                    if *bytes_left > 0 {
                        let a = *pc;
                        *pc = pc.add(INSTR_BYTES);
                        *bytes_left -= INSTR_BYTES;
                        return a;
                    }
                    self.transition(rng);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::HashSet;

    fn small_params() -> CodeParams {
        CodeParams {
            footprint_bytes: 8 * 1024,
            n_sites: 6,
            body_min_bytes: 64,
            body_max_bytes: 256,
            mean_iters: 4.0,
            zipf_theta: 1.0,
            p_excursion: 0.05,
            excursion_bytes: 256,
        }
    }

    #[test]
    fn addresses_stay_in_footprint() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut w = CodeWalker::new(small_params(), Addr::new(0x10_0000), &mut rng);
        let fp = w.footprint();
        for _ in 0..50_000 {
            let a = w.next_addr(&mut rng);
            assert!(fp.contains(a), "address {a} outside footprint");
            assert_eq!(a.offset_in(INSTR_BYTES), 0, "fetch not instruction-aligned");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let gen_stream = || {
            let mut rng = StdRng::seed_from_u64(99);
            let mut w = CodeWalker::new(small_params(), Addr::new(0x10_0000), &mut rng);
            (0..1000).map(|_| w.next_addr(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen_stream(), gen_stream());
    }

    #[test]
    fn mostly_sequential() {
        // A loopy instruction stream should advance by exactly 4 bytes most
        // of the time.
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = CodeWalker::new(small_params(), Addr::new(0), &mut rng);
        let mut seq = 0u32;
        let n = 20_000;
        let mut prev = w.next_addr(&mut rng);
        for _ in 0..n {
            let a = w.next_addr(&mut rng);
            if a.raw() == prev.raw() + INSTR_BYTES {
                seq += 1;
            }
            prev = a;
        }
        assert!(seq as f64 / n as f64 > 0.9, "only {seq}/{n} sequential");
    }

    #[test]
    fn hot_sites_dominate() {
        // With zipf popularity the busiest line should be touched far more
        // often than the median line.
        let mut rng = StdRng::seed_from_u64(3);
        let mut w = CodeWalker::new(small_params(), Addr::new(0), &mut rng);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..100_000 {
            *counts.entry(w.next_addr(&mut rng).line(16)).or_insert(0u32) += 1;
        }
        let mut values: Vec<u32> = counts.values().copied().collect();
        values.sort_unstable();
        let max = *values.last().unwrap();
        let median = values[values.len() / 2];
        assert!(max > median * 4, "max {max}, median {median}");
    }

    #[test]
    fn footprint_mostly_covered_over_time() {
        // Excursions plus cold sites should eventually touch a decent
        // fraction of the footprint's lines.
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = small_params();
        p.p_excursion = 0.2;
        let mut w = CodeWalker::new(p.clone(), Addr::new(0), &mut rng);
        let mut lines = HashSet::new();
        for _ in 0..400_000 {
            lines.insert(w.next_addr(&mut rng).line(16));
        }
        let total_lines = p.footprint_bytes / 16;
        assert!(
            lines.len() as u64 > total_lines / 3,
            "covered {} of {} lines",
            lines.len(),
            total_lines
        );
    }

    #[test]
    #[should_panic(expected = "body length bounds")]
    fn rejects_inverted_body_bounds() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = small_params();
        p.body_min_bytes = 512;
        p.body_max_bytes = 256;
        let _ = CodeWalker::new(p, Addr::new(0), &mut rng);
    }

    #[test]
    #[should_panic(expected = "larger than footprint")]
    fn rejects_body_bigger_than_footprint() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut p = small_params();
        p.body_max_bytes = p.footprint_bytes * 2;
        let _ = CodeWalker::new(p, Addr::new(0), &mut rng);
    }
}
