//! Bursty weighted mixture of address sources.
//!
//! Real reference streams interleave behaviours in *phases*, not access by
//! access: a pointer chase runs for a while, then the stack is hot for a
//! while. [`Mixture`] composes any set of [`AddrSource`]s with weights and
//! per-component mean burst lengths; a component is selected by weight and
//! then retained for a geometric number of accesses.

use super::{sample_burst, AddrSource, WeightedIndex};
use crate::addr::Addr;
use rand::rngs::StdRng;

/// One component of a [`Mixture`].
pub struct MixEntry {
    /// Relative probability of selecting this component at a phase change.
    pub weight: f64,
    /// Mean number of consecutive accesses served by this component.
    pub mean_burst: f64,
    /// The underlying source.
    pub source: Box<dyn AddrSource>,
}

impl MixEntry {
    /// Convenience constructor.
    pub fn new(weight: f64, mean_burst: f64, source: Box<dyn AddrSource>) -> Self {
        MixEntry { weight, mean_burst, source }
    }
}

impl std::fmt::Debug for MixEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixEntry")
            .field("weight", &self.weight)
            .field("mean_burst", &self.mean_burst)
            .finish_non_exhaustive()
    }
}

/// Bursty weighted mixture of sources. See the module docs.
///
/// The effective access-level share of component `i` is
/// `weight_i * mean_burst_i / Σ_j weight_j * mean_burst_j`.
///
/// # Examples
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use tlc_trace::gen::{mixture::{MixEntry, Mixture}, regions::{Region, RegionSet}, AddrSource};
/// use tlc_trace::{Addr, AddrRange};
///
/// let mut rng = StdRng::seed_from_u64(5);
/// let hot = RegionSet::new(vec![Region::new(
///     AddrRange::new(Addr::new(0x1000_0000), 4 << 10), 1.0, 4.0)]);
/// let cold = RegionSet::new(vec![Region::new(
///     AddrRange::new(Addr::new(0x2000_0000), 1 << 20), 1.0, 2.0)]);
/// let mut mix = Mixture::new(vec![
///     MixEntry::new(0.8, 16.0, Box::new(hot)),
///     MixEntry::new(0.2, 4.0, Box::new(cold)),
/// ]);
/// let _ = mix.next_addr(&mut rng);
/// ```
#[derive(Debug)]
pub struct Mixture {
    entries: Vec<MixEntry>,
    picker: WeightedIndex,
    current: usize,
    burst_left: u64,
}

impl Mixture {
    /// Builds the mixture.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is empty, all weights are zero, or any
    /// `mean_burst < 1`.
    pub fn new(entries: Vec<MixEntry>) -> Self {
        assert!(!entries.is_empty(), "need at least one mixture component");
        for e in &entries {
            assert!(e.mean_burst >= 1.0, "mean_burst must be >= 1");
        }
        let picker = WeightedIndex::new(&entries.iter().map(|e| e.weight).collect::<Vec<_>>());
        Mixture { entries, picker, current: 0, burst_left: 0 }
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.entries.len()
    }
}

impl AddrSource for Mixture {
    fn next_addr(&mut self, rng: &mut StdRng) -> Addr {
        if self.burst_left == 0 {
            self.current = self.picker.sample(rng);
            self.burst_left = sample_burst(rng, self.entries[self.current].mean_burst);
        }
        self.burst_left -= 1;
        self.entries[self.current].source.next_addr(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::AddrRange;
    use crate::gen::regions::{Region, RegionSet};
    use rand::SeedableRng;

    fn region_source(base: u64, len: u64) -> Box<dyn AddrSource> {
        Box::new(RegionSet::new(vec![Region::new(AddrRange::new(Addr::new(base), len), 1.0, 1.0)]))
    }

    #[test]
    fn burst_share_matches_weight_times_burst() {
        let mut rng = StdRng::seed_from_u64(31);
        let mut mix = Mixture::new(vec![
            MixEntry::new(0.5, 8.0, region_source(0x1000_0000, 1 << 10)),
            MixEntry::new(0.5, 2.0, region_source(0x2000_0000, 1 << 10)),
        ]);
        let mut first = 0u32;
        let n = 100_000;
        for _ in 0..n {
            if mix.next_addr(&mut rng).raw() < 0x2000_0000 {
                first += 1;
            }
        }
        let frac = first as f64 / n as f64;
        // 0.5*8 / (0.5*8 + 0.5*2) = 0.8
        assert!((frac - 0.8).abs() < 0.03, "first-component share {frac}");
    }

    #[test]
    fn bursts_are_contiguous() {
        let mut rng = StdRng::seed_from_u64(32);
        let mut mix = Mixture::new(vec![
            MixEntry::new(0.5, 10.0, region_source(0x1000_0000, 1 << 10)),
            MixEntry::new(0.5, 10.0, region_source(0x2000_0000, 1 << 10)),
        ]);
        // Count component switches: with mean burst 10, switches should be
        // roughly n/10, far fewer than the n/2 an unbursty mixture gives.
        let n = 50_000;
        let mut switches = 0;
        let mut prev = mix.next_addr(&mut rng).raw() < 0x2000_0000;
        for _ in 0..n {
            let cur = mix.next_addr(&mut rng).raw() < 0x2000_0000;
            if cur != prev {
                switches += 1;
            }
            prev = cur;
        }
        let rate = switches as f64 / n as f64;
        assert!(rate < 0.2, "switch rate {rate}");
    }

    #[test]
    fn component_count() {
        let mix = Mixture::new(vec![MixEntry::new(1.0, 1.0, region_source(0, 64))]);
        assert_eq!(mix.component_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one mixture component")]
    fn rejects_empty() {
        let _ = Mixture::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "mean_burst")]
    fn rejects_zero_burst() {
        let _ = Mixture::new(vec![MixEntry::new(1.0, 0.5, region_source(0, 64))]);
    }
}
