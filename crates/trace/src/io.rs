//! Trace serialisation.
//!
//! Several interchange formats are provided so generated streams can be
//! inspected, archived, or replayed without re-running the generators:
//!
//! * **binary** — 9 bytes per reference (1 kind byte + little-endian u64
//!   address), preceded by an 8-byte magic; compact and fast;
//! * **text** — one `K 0xADDR` line per reference (`K` ∈ `I`/`L`/`S`),
//!   greppable and diffable;
//! * **compact** — the delta/varint-encoded `TLCTRC01` instruction
//!   format, which lives in [`crate::compact`] together with its
//!   streaming reader and external-format importer.
//!
//! Readers are strict: malformed input is a typed [`TraceIoError`]
//! carrying the byte offset and expected magic, never a panic and never
//! a silent skip.

use crate::addr::Addr;
use crate::record::{AccessKind, MemRef};
use std::io::{self, BufRead, Read, Write};

/// Magic bytes identifying a flat binary reference stream.
///
/// (Historically this magic read `TLCTRC01`; that name now identifies
/// the versioned compact instruction format in [`crate::compact`], so
/// the flat per-reference stream carries `TLCREF01` instead.)
pub const BINARY_MAGIC: &[u8; 8] = b"TLCREF01";

/// Magic bytes identifying an instruction-record trace stream.
pub const INSTR_MAGIC: &[u8; 8] = b"TLCITR01";

/// Magic bytes identifying a miss-event trace stream (a serialized
/// [`EventArena`](crate::EventArena), as archived by the audit corpus).
pub const EVENT_MAGIC: &[u8; 8] = b"TLCEVT01";

/// Typed error for every trace *reading* path in this crate.
///
/// Writers keep plain [`io::Result`]; readers return this so corrupt or
/// truncated input produces a diagnostic naming the byte offset and, for
/// header mismatches, the expected magic. Converts into [`io::Error`]
/// (as `InvalidData`) so callers already plumbing `io::Result` keep
/// working with `?`.
#[derive(Debug)]
pub enum TraceIoError {
    /// An underlying I/O failure (not a format violation).
    Io(io::Error),
    /// The stream did not start with the expected 8-byte magic.
    BadMagic {
        /// The bytes actually found at the start of the stream.
        found: [u8; 8],
        /// The magic the reader expected.
        expected: &'static [u8; 8],
    },
    /// The header carried a format version this build does not know.
    UnknownVersion {
        /// The version byte found in the header.
        found: u8,
        /// The newest version this reader understands.
        supported: u8,
    },
    /// The stream violated the format's encoding rules.
    Corrupt {
        /// Byte offset of the offending record or field.
        offset: u64,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The stream ended in the middle of a header or record.
    Truncated {
        /// Byte offset at which the stream was cut short.
        offset: u64,
        /// Human-readable description of what was being read.
        detail: String,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::BadMagic { found, expected } => write!(
                f,
                "bad trace magic {:?} at offset 0, expected {:?}",
                found.escape_ascii().to_string(),
                expected.escape_ascii().to_string(),
            ),
            TraceIoError::UnknownVersion { found, supported } => {
                write!(f, "unknown trace format version {found} (supported: <= {supported})")
            }
            TraceIoError::Corrupt { offset, detail } => {
                write!(f, "corrupt trace at byte offset {offset}: {detail}")
            }
            TraceIoError::Truncated { offset, detail } => {
                write!(f, "truncated trace at byte offset {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

impl From<TraceIoError> for io::Error {
    fn from(e: TraceIoError) -> Self {
        match e {
            TraceIoError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Reads and checks an 8-byte magic, reporting truncation and mismatch
/// as typed errors.
pub(crate) fn expect_magic<R: Read>(
    input: &mut R,
    expected: &'static [u8; 8],
) -> Result<(), TraceIoError> {
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Truncated {
                offset: 0,
                detail: format!(
                    "stream ended inside the 8-byte magic (expected {:?})",
                    expected.escape_ascii().to_string()
                ),
            }
        } else {
            TraceIoError::Io(e)
        }
    })?;
    if &magic != expected {
        return Err(TraceIoError::BadMagic { found: magic, expected });
    }
    Ok(())
}

/// Writes references to a binary trace stream.
///
/// The header is written on construction; call [`BinaryTraceWriter::write`]
/// per reference. A mutable reference to any `Write` may be passed.
///
/// # Examples
///
/// ```
/// use tlc_trace::io::{read_binary_trace, BinaryTraceWriter};
/// use tlc_trace::{Addr, MemRef};
///
/// # fn main() -> std::io::Result<()> {
/// let mut buf = Vec::new();
/// let mut w = BinaryTraceWriter::new(&mut buf)?;
/// w.write(MemRef::fetch(Addr::new(0x100)))?;
/// w.write(MemRef::store(Addr::new(0x2000)))?;
/// drop(w);
/// let refs = read_binary_trace(&buf[..])?;
/// assert_eq!(refs.len(), 2);
/// assert_eq!(refs[1], MemRef::store(Addr::new(0x2000)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct BinaryTraceWriter<W: Write> {
    out: W,
    written: u64,
}

impl<W: Write> BinaryTraceWriter<W> {
    /// Creates the writer and emits the stream header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(BINARY_MAGIC)?;
        Ok(BinaryTraceWriter { out, written: 0 })
    }

    /// Appends one reference.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&mut self, r: MemRef) -> io::Result<()> {
        let kind = match r.kind {
            AccessKind::InstrFetch => 0u8,
            AccessKind::Load => 1,
            AccessKind::Store => 2,
        };
        self.out.write_all(&[kind])?;
        self.out.write_all(&r.addr.raw().to_le_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Number of references written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing.
    pub fn into_inner(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Reads an entire binary trace stream produced by [`BinaryTraceWriter`].
///
/// # Errors
///
/// Returns a [`TraceIoError`] on a bad magic, an unknown kind byte, or a
/// truncated record, and propagates I/O errors.
pub fn read_binary_trace<R: Read>(mut input: R) -> Result<Vec<MemRef>, TraceIoError> {
    expect_magic(&mut input, BINARY_MAGIC)?;
    let mut refs = Vec::new();
    loop {
        let offset = 8 + refs.len() as u64 * 9;
        // A record may legitimately be absent (clean EOF before the kind
        // byte) but never partial: once the kind byte exists, the 8-byte
        // address must follow.
        let mut kind_byte = [0u8; 1];
        match input.read_exact(&mut kind_byte) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(TraceIoError::Io(e)),
        }
        let kind = match kind_byte[0] {
            0 => AccessKind::InstrFetch,
            1 => AccessKind::Load,
            2 => AccessKind::Store,
            k => {
                return Err(TraceIoError::Corrupt {
                    offset,
                    detail: format!("unknown reference kind byte {k}"),
                })
            }
        };
        let mut addr = [0u8; 8];
        input.read_exact(&mut addr).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceIoError::Truncated {
                    offset,
                    detail: format!("reference record {} cut short", refs.len()),
                }
            } else {
                TraceIoError::Io(e)
            }
        })?;
        refs.push(MemRef { addr: Addr::new(u64::from_le_bytes(addr)), kind });
    }
    Ok(refs)
}

/// Writes references in the text format, one `K 0xADDR` line each.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_text_trace<W: Write>(mut out: W, refs: &[MemRef]) -> io::Result<()> {
    for r in refs {
        writeln!(out, "{} {:#x}", r.kind.code(), r.addr.raw())?;
    }
    Ok(())
}

/// Parses the text format produced by [`write_text_trace`].
///
/// # Errors
///
/// Returns [`TraceIoError::Corrupt`] naming the offending line number on
/// any malformed line; blank lines and `#` comments are permitted.
pub fn read_text_trace<R: BufRead>(input: R) -> Result<Vec<MemRef>, TraceIoError> {
    let mut refs = Vec::new();
    let mut offset = 0u64;
    for (lineno, line) in input.lines().enumerate() {
        let line = line?;
        let line_offset = offset;
        offset += line.len() as u64 + 1;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        refs.push(parse_text_ref(t, lineno, line_offset)?);
    }
    Ok(refs)
}

/// Parses one non-blank, non-comment `K 0xADDR` text-trace line.
pub(crate) fn parse_text_ref(t: &str, lineno: usize, offset: u64) -> Result<MemRef, TraceIoError> {
    let bad = || TraceIoError::Corrupt {
        offset,
        detail: format!("malformed trace line {}: {t:?}", lineno + 1),
    };
    let (kind_s, addr_s) = t.split_once(' ').ok_or_else(bad)?;
    let kind_c = {
        let mut chars = kind_s.chars();
        let c = chars.next().ok_or_else(bad)?;
        if chars.next().is_some() {
            return Err(bad());
        }
        c
    };
    let kind = AccessKind::from_code(kind_c).ok_or_else(bad)?;
    let addr_s = addr_s.trim().strip_prefix("0x").ok_or_else(bad)?;
    let addr = u64::from_str_radix(addr_s, 16).map_err(|_| bad())?;
    Ok(MemRef { addr: Addr::new(addr), kind })
}

/// Writes [`InstructionRecord`](crate::InstructionRecord)s in a compact
/// binary format: the [`INSTR_MAGIC`] header, then per record one flags
/// byte (`bit0` = has data ref, `bit1` = data ref is a store), the fetch
/// address (LE u64), and — when present — the data address (LE u64).
///
/// # Errors
///
/// Propagates I/O errors.
///
/// # Examples
///
/// ```
/// use tlc_trace::io::{read_instruction_trace, write_instruction_trace};
/// use tlc_trace::spec::SpecBenchmark;
///
/// # fn main() -> std::io::Result<()> {
/// let recs = SpecBenchmark::Li.workload().take_instructions(100);
/// let mut buf = Vec::new();
/// write_instruction_trace(&mut buf, &recs)?;
/// assert_eq!(read_instruction_trace(&buf[..])?, recs);
/// # Ok(())
/// # }
/// ```
pub fn write_instruction_trace<W: Write>(
    mut out: W,
    records: &[crate::InstructionRecord],
) -> io::Result<()> {
    out.write_all(INSTR_MAGIC)?;
    for r in records {
        let (flags, data_addr) = match r.data {
            None => (0u8, None),
            Some(d) => (1 | ((d.kind == AccessKind::Store) as u8) << 1, Some(d.addr.raw())),
        };
        out.write_all(&[flags])?;
        out.write_all(&r.fetch.raw().to_le_bytes())?;
        if let Some(a) = data_addr {
            out.write_all(&a.to_le_bytes())?;
        }
    }
    out.flush()
}

/// Parses a stream produced by [`write_instruction_trace`].
///
/// # Errors
///
/// Returns a [`TraceIoError`] on a bad magic, unknown flag bits, or a
/// truncated record, and propagates I/O errors.
pub fn read_instruction_trace<R: Read>(
    mut input: R,
) -> Result<Vec<crate::InstructionRecord>, TraceIoError> {
    expect_magic(&mut input, INSTR_MAGIC)?;
    let mut out = Vec::new();
    let mut offset = 8u64;
    loop {
        let record_offset = offset;
        let mut flags = [0u8; 1];
        match input.read_exact(&mut flags) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(TraceIoError::Io(e)),
        }
        offset += 1;
        let flags = flags[0];
        if flags & !0b11 != 0 {
            return Err(TraceIoError::Corrupt {
                offset: record_offset,
                detail: format!("unknown instruction-record flags {flags:#04x}"),
            });
        }
        let truncated = |e: io::Error| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceIoError::Truncated {
                    offset: record_offset,
                    detail: format!("instruction record {} cut short", out.len()),
                }
            } else {
                TraceIoError::Io(e)
            }
        };
        let mut fetch = [0u8; 8];
        input.read_exact(&mut fetch).map_err(truncated)?;
        offset += 8;
        let fetch = Addr::new(u64::from_le_bytes(fetch));
        let data = if flags & 1 != 0 {
            let mut a = [0u8; 8];
            input.read_exact(&mut a).map_err(truncated)?;
            offset += 8;
            let addr = Addr::new(u64::from_le_bytes(a));
            Some(if flags & 2 != 0 { MemRef::store(addr) } else { MemRef::load(addr) })
        } else {
            None
        };
        out.push(crate::InstructionRecord { fetch, data });
    }
    Ok(out)
}

/// Writes an [`EventArena`](crate::EventArena) miss/victim stream: the
/// [`EVENT_MAGIC`] header, an event count (LE u64), then per event one
/// flags byte (the [`MissEvent::flags`](crate::MissEvent::flags)
/// encoding), the line address (LE u64), and the victim line (LE u64;
/// zero when the flags carry no victim) — a fixed 17 bytes per event,
/// mirroring the arena's resident layout.
///
/// # Errors
///
/// Propagates I/O errors.
///
/// # Examples
///
/// ```
/// use tlc_trace::io::{read_event_trace, write_event_trace};
/// use tlc_trace::{AccessKind, EventArena, LineAddr, MissEvent, VictimLine};
///
/// # fn main() -> std::io::Result<()> {
/// let mut arena = EventArena::new();
/// arena.push(MissEvent {
///     kind: AccessKind::Store,
///     line: LineAddr(7),
///     victim: Some(VictimLine { line: LineAddr(3), written: true }),
/// });
/// let mut buf = Vec::new();
/// write_event_trace(&mut buf, &arena)?;
/// let back = read_event_trace(&buf[..])?;
/// assert_eq!(back.iter().collect::<Vec<_>>(), arena.iter().collect::<Vec<_>>());
/// # Ok(())
/// # }
/// ```
pub fn write_event_trace<W: Write>(mut out: W, events: &crate::EventArena) -> io::Result<()> {
    out.write_all(EVENT_MAGIC)?;
    out.write_all(&events.len().to_le_bytes())?;
    for chunk in events.chunks() {
        for i in 0..chunk.len() {
            out.write_all(&[chunk.flags[i]])?;
            out.write_all(&chunk.line[i].to_le_bytes())?;
            out.write_all(&chunk.victim[i].to_le_bytes())?;
        }
    }
    out.flush()
}

/// Parses a stream produced by [`write_event_trace`].
///
/// # Errors
///
/// Returns a [`TraceIoError`] on a bad magic, unknown flag bits, a
/// non-zero victim word without the victim flag, or a truncated stream,
/// and propagates I/O errors.
pub fn read_event_trace<R: Read>(mut input: R) -> Result<crate::EventArena, TraceIoError> {
    use crate::events::{
        EVENT_HAS_VICTIM, EVENT_KIND_MASK, EVENT_KIND_STORE, EVENT_VICTIM_WRITTEN,
    };
    use crate::{LineAddr, MissEvent, VictimLine};
    expect_magic(&mut input, EVENT_MAGIC)?;
    let mut count = [0u8; 8];
    input.read_exact(&mut count).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceIoError::Truncated {
                offset: 8,
                detail: "stream ended inside the event-count header".into(),
            }
        } else {
            TraceIoError::Io(e)
        }
    })?;
    let count = u64::from_le_bytes(count);
    let mut arena = crate::EventArena::new();
    let mut rec = [0u8; 17];
    for i in 0..count {
        let offset = 16 + i * 17;
        input.read_exact(&mut rec).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceIoError::Truncated {
                    offset,
                    detail: format!("event trace truncated at record {i} of {count}"),
                }
            } else {
                TraceIoError::Io(e)
            }
        })?;
        let flags = rec[0];
        let known = EVENT_KIND_MASK | EVENT_HAS_VICTIM | EVENT_VICTIM_WRITTEN;
        if flags & !known != 0 || flags & EVENT_KIND_MASK > EVENT_KIND_STORE {
            return Err(TraceIoError::Corrupt {
                offset,
                detail: format!("unknown event flags {flags:#04x} at record {i}"),
            });
        }
        let line = u64::from_le_bytes(rec[1..9].try_into().expect("slice of 8"));
        let victim_word = u64::from_le_bytes(rec[9..17].try_into().expect("slice of 8"));
        let victim = if flags & EVENT_HAS_VICTIM != 0 {
            Some(VictimLine {
                line: LineAddr(victim_word),
                written: flags & EVENT_VICTIM_WRITTEN != 0,
            })
        } else {
            if victim_word != 0 || flags & EVENT_VICTIM_WRITTEN != 0 {
                return Err(TraceIoError::Corrupt {
                    offset,
                    detail: format!("victim payload without victim flag at record {i}"),
                });
            }
            None
        };
        let kind = match flags & EVENT_KIND_MASK {
            0 => AccessKind::InstrFetch,
            1 => AccessKind::Load,
            _ => AccessKind::Store,
        };
        arena.push(MissEvent { kind, line: LineAddr(line), victim });
    }
    // The count header is authoritative; trailing bytes mean the stream
    // was not produced by `write_event_trace`.
    let mut trailing = [0u8; 1];
    match input.read_exact(&mut trailing) {
        Ok(()) => Err(TraceIoError::Corrupt {
            offset: 16 + count * 17,
            detail: "trailing bytes after event trace".into(),
        }),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Ok(arena),
        Err(e) => Err(TraceIoError::Io(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_refs() -> Vec<MemRef> {
        vec![
            MemRef::fetch(Addr::new(0x0040_0000)),
            MemRef::load(Addr::new(0x1000_0010)),
            MemRef::store(Addr::new(0xFFFF_FFFF_FFFF_FFF0)),
        ]
    }

    #[test]
    fn binary_roundtrip() {
        let mut buf = Vec::new();
        let mut w = BinaryTraceWriter::new(&mut buf).unwrap();
        for r in sample_refs() {
            w.write(r).unwrap();
        }
        assert_eq!(w.written(), 3);
        w.into_inner().unwrap();
        assert_eq!(read_binary_trace(&buf[..]).unwrap(), sample_refs());
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let buf = b"NOTMAGIC".to_vec();
        assert!(read_binary_trace(&buf[..]).is_err());
    }

    #[test]
    fn binary_rejects_unknown_kind() {
        let mut buf = Vec::new();
        buf.extend_from_slice(BINARY_MAGIC);
        buf.push(9); // bad kind
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_binary_trace(&buf[..]).is_err());
    }

    #[test]
    fn text_roundtrip() {
        let mut buf = Vec::new();
        write_text_trace(&mut buf, &sample_refs()).unwrap();
        let parsed = read_text_trace(&buf[..]).unwrap();
        assert_eq!(parsed, sample_refs());
    }

    #[test]
    fn text_allows_comments_and_blanks() {
        let src = "# header\n\nI 0x100\n  L 0x200  \n";
        let parsed = read_text_trace(src.as_bytes()).unwrap();
        assert_eq!(parsed, vec![MemRef::fetch(Addr::new(0x100)), MemRef::load(Addr::new(0x200))]);
    }

    #[test]
    fn text_rejects_malformed() {
        for bad in ["X 0x100", "I 100", "I", "II 0x100", "I 0xZZ"] {
            let err = read_text_trace(bad.as_bytes()).unwrap_err();
            assert!(matches!(err, TraceIoError::Corrupt { .. }), "{bad:?} should fail: {err}");
        }
    }

    #[test]
    fn errors_carry_offset_and_expected_magic() {
        let err = read_binary_trace(&b"NOTMAGIC"[..]).unwrap_err();
        match &err {
            TraceIoError::BadMagic { found, expected } => {
                assert_eq!(found, b"NOTMAGIC");
                assert_eq!(*expected, BINARY_MAGIC);
            }
            other => panic!("expected BadMagic, got {other}"),
        }
        assert!(err.to_string().contains("TLCREF01"), "{err}");

        // A truncated record reports the byte offset where it began.
        let mut buf = Vec::new();
        {
            let mut w = BinaryTraceWriter::new(&mut buf).unwrap();
            w.write(MemRef::load(Addr::new(0x42))).unwrap();
        }
        buf.truncate(buf.len() - 2);
        match read_binary_trace(&buf[..]).unwrap_err() {
            TraceIoError::Truncated { offset, .. } => assert_eq!(offset, 8),
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn trace_io_error_converts_to_io_error() {
        let err: io::Error = TraceIoError::Corrupt { offset: 3, detail: "x".into() }.into();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let inner = io::Error::new(io::ErrorKind::PermissionDenied, "nope");
        let err: io::Error = TraceIoError::Io(inner).into();
        assert_eq!(err.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn into_inner_flushes() {
        let w = BinaryTraceWriter::new(Vec::new()).unwrap();
        let inner = w.into_inner().unwrap();
        assert_eq!(&inner[..8], BINARY_MAGIC);
    }

    #[test]
    fn instruction_trace_roundtrip() {
        use crate::InstructionRecord;
        let recs = vec![
            InstructionRecord::fetch_only(Addr::new(0x100)),
            InstructionRecord::with_data(Addr::new(0x104), MemRef::load(Addr::new(0x2000))),
            InstructionRecord::with_data(Addr::new(0x108), MemRef::store(Addr::new(0x3000))),
        ];
        let mut buf = Vec::new();
        write_instruction_trace(&mut buf, &recs).unwrap();
        assert_eq!(read_instruction_trace(&buf[..]).unwrap(), recs);
    }

    #[test]
    fn instruction_trace_rejects_bad_magic_and_flags() {
        assert!(read_instruction_trace(&b"WRONGMAG"[..]).is_err());
        let mut buf = Vec::new();
        buf.extend_from_slice(INSTR_MAGIC);
        buf.push(0b100); // unknown flag bit
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(read_instruction_trace(&buf[..]).is_err());
    }

    #[test]
    fn instruction_trace_rejects_truncation() {
        let recs =
            vec![crate::InstructionRecord::with_data(Addr::new(4), MemRef::load(Addr::new(8)))];
        let mut buf = Vec::new();
        write_instruction_trace(&mut buf, &recs).unwrap();
        buf.truncate(buf.len() - 3); // chop the data address
        assert!(read_instruction_trace(&buf[..]).is_err());
    }

    #[test]
    fn event_trace_roundtrip_across_chunk_boundary() {
        use crate::{EventArena, LineAddr, MissEvent, VictimLine};
        let mut arena = EventArena::with_chunk_len(8);
        for i in 0..37u64 {
            arena.push(MissEvent {
                kind: match i % 3 {
                    0 => AccessKind::InstrFetch,
                    1 => AccessKind::Load,
                    _ => AccessKind::Store,
                },
                line: LineAddr(i * 31),
                victim: (i % 4 == 1)
                    .then(|| VictimLine { line: LineAddr(i + 1000), written: i % 8 == 1 }),
            });
        }
        let mut buf = Vec::new();
        write_event_trace(&mut buf, &arena).unwrap();
        assert_eq!(buf.len(), 8 + 8 + 37 * 17);
        let back = read_event_trace(&buf[..]).unwrap();
        assert_eq!(back.iter().collect::<Vec<_>>(), arena.iter().collect::<Vec<_>>());
    }

    #[test]
    fn event_trace_rejects_bad_magic_flags_truncation_and_trailing() {
        use crate::{EventArena, LineAddr, MissEvent};
        assert!(read_event_trace(&b"WRONGMAG"[..]).is_err());

        let mut arena = EventArena::new();
        arena.push(MissEvent { kind: AccessKind::Load, line: LineAddr(5), victim: None });
        let mut buf = Vec::new();
        write_event_trace(&mut buf, &arena).unwrap();

        let mut bad_flags = buf.clone();
        bad_flags[16] = 0b0001_0000; // unknown flag bit
        assert!(read_event_trace(&bad_flags[..]).is_err());
        bad_flags[16] = 0b0000_0011; // kind 3 does not exist
        assert!(read_event_trace(&bad_flags[..]).is_err());
        bad_flags[16] = EVENT_MAGIC[0]; // arbitrary garbage
        assert!(read_event_trace(&bad_flags[..]).is_err());

        let mut orphan_victim = buf.clone();
        orphan_victim[25] = 9; // non-zero victim word without the victim flag
        assert!(read_event_trace(&orphan_victim[..]).is_err());

        let mut truncated = buf.clone();
        truncated.truncate(buf.len() - 4);
        assert!(read_event_trace(&truncated[..]).is_err());

        let mut trailing = buf.clone();
        trailing.push(0);
        assert!(read_event_trace(&trailing[..]).is_err());
    }

    #[test]
    fn empty_event_trace_roundtrip() {
        use crate::EventArena;
        let mut buf = Vec::new();
        write_event_trace(&mut buf, &EventArena::new()).unwrap();
        assert!(read_event_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn empty_instruction_trace() {
        let mut buf = Vec::new();
        write_instruction_trace(&mut buf, &[]).unwrap();
        assert!(read_instruction_trace(&buf[..]).unwrap().is_empty());
    }
}
