//! [`TraceArena`]: a benchmark's instruction stream, materialised once
//! and replayed many times.
//!
//! Design-space sweeps evaluate dozens of cache configurations against
//! the *same* workload. Regenerating the synthetic stream for every
//! configuration pays the full generator cost (two `Box<dyn AddrSource>`
//! virtual calls plus up to three RNG draws per instruction) once per
//! *configuration*; capturing it into an arena pays that cost once per
//! *benchmark* and turns every subsequent replay into a linear scan over
//! packed slices.
//!
//! ## Memory layout
//!
//! Records are stored structure-of-arrays in fixed-size chunks:
//! fetch address (`u64`), data address (`u64`), and a one-byte flag
//! (none/load/store) — 17 bytes per instruction. A standard-budget
//! capture (500 K warmup + 1.5 M measured) is therefore ≈ 34 MB, shared
//! by every configuration and thread in the sweep. Chunked allocation
//! keeps capture cost linear (no doubling copies of a multi-gigabyte
//! `Vec`) and gives the sweep scheduler natural work granules.
//!
//! ## Example
//!
//! ```
//! use tlc_trace::spec::SpecBenchmark;
//! use tlc_trace::{InstructionSource, TraceArena};
//!
//! let arena = TraceArena::capture(&mut SpecBenchmark::Li.workload(), 10_000);
//! assert_eq!(arena.len(), 10_000);
//!
//! // Replays are cheap, independent cursors over the shared buffer.
//! let mut a = arena.replay();
//! let mut b = arena.replay();
//! assert_eq!(a.next_instruction_opt(), b.next_instruction_opt());
//! ```

use crate::addr::Addr;
use crate::record::{InstructionRecord, MemRef};
use crate::source::InstructionSource;

/// Flag value for an instruction with no data reference.
pub const FLAG_NONE: u8 = 0;
/// Flag value for an instruction carrying a data load.
pub const FLAG_LOAD: u8 = 1;
/// Flag value for an instruction carrying a data store.
pub const FLAG_STORE: u8 = 2;

/// Instructions per chunk (64 Ki): large enough that per-chunk overhead
/// vanishes, small enough to be a useful parallel work granule.
pub const DEFAULT_CHUNK_LEN: usize = 1 << 16;

/// One structure-of-arrays block of captured instructions.
#[derive(Debug, Default)]
struct Chunk {
    fetch: Vec<u64>,
    data_addr: Vec<u64>,
    flags: Vec<u8>,
}

impl Chunk {
    fn with_capacity(n: usize) -> Self {
        Chunk {
            fetch: Vec::with_capacity(n),
            data_addr: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
        }
    }

    fn len(&self) -> usize {
        self.fetch.len()
    }
}

/// A borrowed, read-only view of one arena chunk's packed columns.
///
/// The three slices always have equal length; index `i` across them
/// describes one instruction. `data_addr[i]` is meaningful only when
/// `flags[i] != FLAG_NONE` (it is zero otherwise).
#[derive(Debug, Clone, Copy)]
pub struct ChunkView<'a> {
    /// Instruction-fetch byte addresses.
    pub fetch: &'a [u64],
    /// Data-reference byte addresses (zero where `flags` is `FLAG_NONE`).
    pub data_addr: &'a [u64],
    /// Per-instruction data-reference class: [`FLAG_NONE`],
    /// [`FLAG_LOAD`], or [`FLAG_STORE`].
    pub flags: &'a [u8],
}

impl ChunkView<'_> {
    /// Instructions in this chunk.
    pub fn len(&self) -> usize {
        self.fetch.len()
    }

    /// Whether the chunk holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.fetch.is_empty()
    }

    /// Decodes one instruction (for tests and generic consumers; the
    /// simulator fast path reads the columns directly).
    pub fn record(&self, i: usize) -> InstructionRecord {
        let fetch = Addr::new(self.fetch[i]);
        let data = match self.flags[i] {
            FLAG_NONE => None,
            FLAG_LOAD => Some(MemRef::load(Addr::new(self.data_addr[i]))),
            FLAG_STORE => Some(MemRef::store(Addr::new(self.data_addr[i]))),
            other => unreachable!("corrupt arena flag {other}"),
        };
        InstructionRecord { fetch, data }
    }
}

/// A benchmark's instruction stream, captured once into packed
/// structure-of-arrays chunks and replayed arbitrarily many times.
///
/// Arenas are immutable after capture and safely shared across threads
/// (`&TraceArena` / `Arc<TraceArena>`); each replay is an independent
/// cursor.
#[derive(Debug)]
pub struct TraceArena {
    name: String,
    chunks: Vec<Chunk>,
    len: u64,
}

impl TraceArena {
    /// Captures up to `len` instructions from `source` using the default
    /// chunk size. Stops early (with a shorter arena) if the source is
    /// exhausted first; synthetic [`Workload`](crate::Workload)s never
    /// exhaust.
    pub fn capture<S: InstructionSource + ?Sized>(source: &mut S, len: u64) -> Self {
        Self::capture_chunked(source, len, DEFAULT_CHUNK_LEN)
    }

    /// [`TraceArena::capture`] with an explicit chunk size (exposed so
    /// tests can prove results are chunking-invariant).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn capture_chunked<S: InstructionSource + ?Sized>(
        source: &mut S,
        len: u64,
        chunk_len: usize,
    ) -> Self {
        assert!(chunk_len > 0, "chunk_len must be positive");
        let name = source.source_name().to_string();
        let mut chunks = Vec::new();
        let mut captured = 0u64;
        'outer: while captured < len {
            let want = usize::try_from((len - captured).min(chunk_len as u64))
                .expect("chunk fits in usize");
            let mut chunk = Chunk::with_capacity(want);
            for _ in 0..want {
                let Some(rec) = source.next_instruction_opt() else {
                    if chunk.len() > 0 {
                        captured += chunk.len() as u64;
                        chunks.push(chunk);
                    }
                    break 'outer;
                };
                chunk.fetch.push(rec.fetch.raw());
                match rec.data {
                    None => {
                        chunk.data_addr.push(0);
                        chunk.flags.push(FLAG_NONE);
                    }
                    Some(d) => {
                        chunk.data_addr.push(d.addr.raw());
                        chunk.flags.push(if d.kind == crate::record::AccessKind::Store {
                            FLAG_STORE
                        } else {
                            FLAG_LOAD
                        });
                    }
                }
            }
            captured += chunk.len() as u64;
            chunks.push(chunk);
        }
        let arena = TraceArena { name, chunks, len: captured };
        tlc_obs::obs_count!(tlc_obs::Counter::TraceInstructions, arena.len);
        tlc_obs::obs_count!(tlc_obs::Counter::TraceChunks, arena.chunks.len() as u64);
        tlc_obs::obs_count!(tlc_obs::Counter::TraceBytesPacked, arena.bytes() as u64);
        arena
    }

    /// The captured source's name (e.g. `"gcc1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Instructions captured.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the arena holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate resident size of the packed buffers, in bytes.
    pub fn bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| {
                c.fetch.capacity() * std::mem::size_of::<u64>()
                    + c.data_addr.capacity() * std::mem::size_of::<u64>()
                    + c.flags.capacity()
            })
            .sum()
    }

    /// Iterates over the arena's chunks as packed column views.
    pub fn chunks(&self) -> impl ExactSizeIterator<Item = ChunkView<'_>> {
        self.chunks.iter().map(|c| ChunkView {
            fetch: &c.fetch,
            data_addr: &c.data_addr,
            flags: &c.flags,
        })
    }

    /// A fresh replay cursor over the whole arena.
    pub fn replay(&self) -> ArenaReplay<'_> {
        ArenaReplay { arena: self, chunk: 0, offset: 0 }
    }
}

/// A cursor replaying a [`TraceArena`] as an [`InstructionSource`].
///
/// Ends (returns `None`) after the arena's last captured instruction.
#[derive(Debug, Clone)]
pub struct ArenaReplay<'a> {
    arena: &'a TraceArena,
    chunk: usize,
    offset: usize,
}

impl InstructionSource for ArenaReplay<'_> {
    fn next_instruction_opt(&mut self) -> Option<InstructionRecord> {
        loop {
            let chunk = self.arena.chunks.get(self.chunk)?;
            if self.offset < chunk.len() {
                let view = ChunkView {
                    fetch: &chunk.fetch,
                    data_addr: &chunk.data_addr,
                    flags: &chunk.flags,
                };
                let rec = view.record(self.offset);
                self.offset += 1;
                return Some(rec);
            }
            self.chunk += 1;
            self.offset = 0;
        }
    }

    fn source_name(&self) -> &str {
        &self.arena.name
    }
}

impl Iterator for ArenaReplay<'_> {
    type Item = InstructionRecord;

    fn next(&mut self) -> Option<InstructionRecord> {
        self.next_instruction_opt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::ReplaySource;
    use crate::spec::SpecBenchmark;

    #[test]
    fn capture_matches_generator_stream() {
        let expected = SpecBenchmark::Eqntott.workload().take_instructions(3000);
        let arena = TraceArena::capture_chunked(
            &mut SpecBenchmark::Eqntott.workload(),
            3000,
            257, // deliberately odd, non-dividing chunk size
        );
        assert_eq!(arena.len(), 3000);
        assert_eq!(arena.name(), "eqntott");
        let replayed: Vec<_> = arena.replay().collect();
        assert_eq!(replayed, expected);
    }

    #[test]
    fn chunk_size_does_not_change_contents() {
        let a = TraceArena::capture_chunked(&mut SpecBenchmark::Li.workload(), 1000, 64);
        let b = TraceArena::capture_chunked(&mut SpecBenchmark::Li.workload(), 1000, 1000);
        let va: Vec<_> = a.replay().collect();
        let vb: Vec<_> = b.replay().collect();
        assert_eq!(va, vb);
        assert_eq!(a.chunks().len(), 16, "1000/64 rounds up to 16 chunks");
        assert_eq!(b.chunks().len(), 1);
    }

    #[test]
    fn chunk_views_cover_all_records_in_order() {
        let arena = TraceArena::capture_chunked(&mut SpecBenchmark::Fpppp.workload(), 500, 128);
        let mut replay = arena.replay();
        let mut total = 0usize;
        for view in arena.chunks() {
            assert_eq!(view.fetch.len(), view.data_addr.len());
            assert_eq!(view.fetch.len(), view.flags.len());
            for i in 0..view.len() {
                assert_eq!(Some(view.record(i)), replay.next_instruction_opt());
            }
            total += view.len();
        }
        assert_eq!(total as u64, arena.len());
        assert_eq!(replay.next_instruction_opt(), None);
    }

    #[test]
    fn capture_stops_at_exhausted_source() {
        let records = SpecBenchmark::Doduc.workload().take_instructions(100);
        let mut short = ReplaySource::new("short", records.clone());
        let arena = TraceArena::capture_chunked(&mut short, 1000, 32);
        assert_eq!(arena.len(), 100);
        let replayed: Vec<_> = arena.replay().collect();
        assert_eq!(replayed, records);
    }

    #[test]
    fn empty_capture_is_well_formed() {
        let mut empty = ReplaySource::new("empty", Vec::new());
        let arena = TraceArena::capture(&mut empty, 1000);
        assert!(arena.is_empty());
        assert_eq!(arena.len(), 0);
        assert_eq!(arena.replay().next_instruction_opt(), None);
    }

    #[test]
    fn bytes_reflects_packed_layout() {
        let arena = TraceArena::capture_chunked(&mut SpecBenchmark::Gcc1.workload(), 4096, 1024);
        // 17 bytes per record, exact because every chunk fills completely.
        assert_eq!(arena.bytes(), 4096 * 17);
    }

    #[test]
    fn replay_cursors_are_independent() {
        let arena = TraceArena::capture(&mut SpecBenchmark::Tomcatv.workload(), 200);
        let mut a = arena.replay();
        let first = a.next_instruction_opt();
        let mut b = arena.replay();
        assert_eq!(b.next_instruction_opt(), first, "fresh cursor starts at the beginning");
    }

    #[test]
    fn flags_round_trip_all_kinds() {
        use crate::record::AccessKind;
        let arena = TraceArena::capture(&mut SpecBenchmark::Gcc1.workload(), 20_000);
        let mut seen = [false; 3];
        for rec in arena.replay() {
            match rec.data.map(|d| d.kind) {
                None => seen[0] = true,
                Some(AccessKind::Load) => seen[1] = true,
                Some(AccessKind::Store) => seen[2] = true,
                Some(AccessKind::InstrFetch) => unreachable!("fetch in data slot"),
            }
        }
        assert_eq!(seen, [true; 3], "capture exercises none/load/store flags");
    }
}
