//! # tlc-trace — synthetic memory-reference traces
//!
//! Trace-generation substrate for the reproduction of Jouppi & Wilton,
//! *Tradeoffs in Two-Level On-Chip Caching* (WRL 93/3 / ISCA 1994).
//!
//! The paper drove its cache simulations with SPEC'89 address traces that
//! are no longer obtainable; this crate replaces them with deterministic,
//! seeded synthetic workloads whose miss-rate-versus-cache-size behaviour
//! matches the published anchors (see `DESIGN.md` at the repository root
//! for the substitution argument and the calibration targets).
//!
//! ## Quick start
//!
//! ```
//! use tlc_trace::spec::SpecBenchmark;
//!
//! // A seeded, infinite instruction stream for the gcc1-like workload.
//! let mut workload = SpecBenchmark::Gcc1.workload();
//! let mut stats = tlc_trace::TraceStats::new(16);
//! for _ in 0..10_000 {
//!     let instr = workload.next_instruction();
//!     stats.record_instruction(&instr);
//! }
//! assert_eq!(stats.instr_refs(), 10_000);
//! assert!(stats.data_refs() > 0);
//! ```
//!
//! ## Layout
//!
//! * [`Addr`], [`LineAddr`], [`AddrRange`] — address arithmetic.
//! * [`MemRef`], [`InstructionRecord`] — reference records.
//! * [`gen`] — composable address-stream generators.
//! * [`Workload`] — instruction+data stream with a reference mix.
//! * [`TraceArena`] — a stream captured once into packed chunks and
//!   replayed by every configuration of a design-space sweep.
//! * [`EventArena`] — an L1 front-end's miss/victim event stream,
//!   captured once and fanned over every L2 configuration sharing it.
//! * [`spec`] — the seven SPEC'89-like presets of the paper's Table 1.
//! * [`TraceStats`] — Table-1-style counters and footprints.
//! * [`io`] — binary and text trace serialisation.
//! * [`compact`] — the `TLCTRC01` delta/varint on-disk format, its
//!   streaming reader, and the external-trace importer.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod addr;
pub mod arena;
pub mod compact;
pub mod events;
pub mod gen;
pub mod io;
mod record;
pub mod shrink;
mod source;
pub mod spec;
pub mod specfile;
mod stats;
mod timeslice;
mod workload;

pub use addr::{Addr, AddrRange, LineAddr};
pub use arena::{ArenaReplay, ChunkView, TraceArena};
pub use compact::{CompactTraceWriter, ImportFormat, TraceReader};
pub use events::{EventArena, EventChunkView, MissEvent, VictimLine};
pub use io::TraceIoError;
pub use record::{AccessKind, InstructionRecord, MemRef};
pub use source::{InstructionSource, ReplaySource};
pub use stats::{TraceStats, TraceSummary};
pub use timeslice::TimeSliced;
pub use workload::Workload;
