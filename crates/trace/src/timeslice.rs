//! Time-sliced multiprogramming of instruction sources.
//!
//! The paper scopes multiprogramming out ("Effects of multiprogramming
//! and system references were beyond the scope of this study", §2.2),
//! citing the WRL companion work on context-switch effects (Mogul & Borg,
//! TN-16). [`TimeSliced`] provides the substrate to study it anyway: it
//! round-robins between several instruction sources with a fixed quantum,
//! modelling processes sharing one cache hierarchy. Address-space
//! separation comes for free — each synthetic workload occupies its own
//! regions — so the shared caches see genuine inter-process interference.

use crate::record::InstructionRecord;
use crate::source::InstructionSource;

/// Round-robin multiprogramming of instruction sources. See the module
/// docs.
///
/// # Examples
///
/// ```
/// use tlc_trace::spec::SpecBenchmark;
/// use tlc_trace::{InstructionSource, TimeSliced};
///
/// let mut mp = TimeSliced::new(
///     vec![
///         Box::new(SpecBenchmark::Gcc1.workload()),
///         Box::new(SpecBenchmark::Li.workload()),
///     ],
///     1000, // context switch every 1000 instructions
/// );
/// for _ in 0..5000 {
///     assert!(mp.next_instruction_opt().is_some());
/// }
/// assert_eq!(mp.context_switches(), 4);
/// ```
pub struct TimeSliced {
    name: String,
    sources: Vec<Box<dyn InstructionSource>>,
    quantum: u64,
    current: usize,
    issued_in_quantum: u64,
    context_switches: u64,
}

impl std::fmt::Debug for TimeSliced {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimeSliced")
            .field("name", &self.name)
            .field("processes", &self.sources.len())
            .field("quantum", &self.quantum)
            .field("context_switches", &self.context_switches)
            .finish_non_exhaustive()
    }
}

impl TimeSliced {
    /// Builds the scheduler. `quantum` is the context-switch interval in
    /// instructions.
    ///
    /// # Panics
    ///
    /// Panics if `sources` is empty or `quantum` is zero.
    pub fn new(sources: Vec<Box<dyn InstructionSource>>, quantum: u64) -> Self {
        assert!(!sources.is_empty(), "need at least one process");
        assert!(quantum > 0, "quantum must be positive");
        let name = format!(
            "timesliced[{}]",
            sources.iter().map(|s| s.source_name()).collect::<Vec<_>>().join("+")
        );
        TimeSliced { name, sources, quantum, current: 0, issued_in_quantum: 0, context_switches: 0 }
    }

    /// Context switches performed so far.
    pub fn context_switches(&self) -> u64 {
        self.context_switches
    }

    /// Number of scheduled processes.
    pub fn process_count(&self) -> usize {
        self.sources.len()
    }

    /// The process currently scheduled.
    pub fn current_process(&self) -> usize {
        self.current
    }
}

impl InstructionSource for TimeSliced {
    fn next_instruction_opt(&mut self) -> Option<InstructionRecord> {
        if self.issued_in_quantum >= self.quantum {
            self.issued_in_quantum = 0;
            if self.sources.len() > 1 {
                self.current = (self.current + 1) % self.sources.len();
                self.context_switches += 1;
            }
        }
        // If the current process is exhausted, fall through to the next
        // live one (finite replays can end).
        for _ in 0..self.sources.len() {
            if let Some(rec) = self.sources[self.current].next_instruction_opt() {
                self.issued_in_quantum += 1;
                return Some(rec);
            }
            self.current = (self.current + 1) % self.sources.len();
            self.issued_in_quantum = 0;
        }
        None
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::source::ReplaySource;
    use crate::spec::SpecBenchmark;

    #[test]
    fn alternates_with_quantum() {
        // Two tiny replays with distinguishable addresses.
        let a = ReplaySource::new(
            "a",
            (0..10).map(|i| InstructionRecord::fetch_only(Addr::new(0x1000 + i * 4))).collect(),
        );
        let b = ReplaySource::new(
            "b",
            (0..10).map(|i| InstructionRecord::fetch_only(Addr::new(0x2000 + i * 4))).collect(),
        );
        let mut mp = TimeSliced::new(vec![Box::new(a), Box::new(b)], 3);
        let origins: Vec<u64> = std::iter::from_fn(|| mp.next_instruction_opt())
            .map(|r| r.fetch.raw() & 0xF000)
            .collect();
        assert_eq!(origins.len(), 20, "all instructions of both processes issued");
        assert_eq!(&origins[..6], &[0x1000, 0x1000, 0x1000, 0x2000, 0x2000, 0x2000]);
        assert!(mp.context_switches() >= 6);
    }

    #[test]
    fn single_process_never_switches() {
        let mut mp = TimeSliced::new(vec![Box::new(SpecBenchmark::Li.workload())], 100);
        for _ in 0..1000 {
            assert!(mp.next_instruction_opt().is_some());
        }
        assert_eq!(mp.context_switches(), 0);
        assert_eq!(mp.process_count(), 1);
    }

    #[test]
    fn exhausted_process_is_skipped() {
        let a = ReplaySource::new("a", vec![InstructionRecord::fetch_only(Addr::new(0x1000))]);
        let b = ReplaySource::new(
            "b",
            (0..5).map(|i| InstructionRecord::fetch_only(Addr::new(0x2000 + i * 4))).collect(),
        );
        let mut mp = TimeSliced::new(vec![Box::new(a), Box::new(b)], 2);
        let total = std::iter::from_fn(|| mp.next_instruction_opt()).count();
        assert_eq!(total, 6);
        assert!(mp.next_instruction_opt().is_none());
    }

    #[test]
    fn name_lists_processes() {
        let mp = TimeSliced::new(
            vec![
                Box::new(SpecBenchmark::Gcc1.workload()),
                Box::new(SpecBenchmark::Tomcatv.workload()),
            ],
            1000,
        );
        assert_eq!(mp.source_name(), "timesliced[gcc1+tomcatv]");
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn rejects_empty() {
        let _ = TimeSliced::new(vec![], 100);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn rejects_zero_quantum() {
        let _ = TimeSliced::new(vec![Box::new(SpecBenchmark::Li.workload())], 0);
    }
}
