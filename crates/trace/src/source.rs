//! The [`InstructionSource`] abstraction: anything that can feed
//! instructions to the experiment harness.
//!
//! Synthetic [`Workload`](crate::Workload)s are infinite; recorded traces
//! ([`ReplaySource`]) end. The harness treats both uniformly through
//! `next_instruction() -> Option<InstructionRecord>`.

use crate::record::InstructionRecord;
use crate::workload::Workload;

/// A stream of instructions for the simulator. Implemented by the
/// synthetic workloads (never exhausts) and by trace replays (finite).
pub trait InstructionSource: Send {
    /// Produces the next instruction, or `None` when the source is
    /// exhausted.
    fn next_instruction_opt(&mut self) -> Option<InstructionRecord>;

    /// A short name for reports.
    fn source_name(&self) -> &str;
}

impl InstructionSource for Workload {
    fn next_instruction_opt(&mut self) -> Option<InstructionRecord> {
        Some(self.next_instruction())
    }

    fn source_name(&self) -> &str {
        self.name()
    }
}

/// Replays a pre-recorded sequence of instructions (e.g. parsed from a
/// trace file via [`crate::io::read_instruction_trace`]).
///
/// # Examples
///
/// ```
/// use tlc_trace::{Addr, InstructionRecord, InstructionSource, MemRef, ReplaySource};
///
/// let recs = vec![
///     InstructionRecord::fetch_only(Addr::new(0x100)),
///     InstructionRecord::with_data(Addr::new(0x104), MemRef::load(Addr::new(0x2000))),
/// ];
/// let mut replay = ReplaySource::new("mytrace", recs);
/// assert!(replay.next_instruction_opt().is_some());
/// assert!(replay.next_instruction_opt().is_some());
/// assert!(replay.next_instruction_opt().is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ReplaySource {
    name: String,
    records: Vec<InstructionRecord>,
    position: usize,
}

impl ReplaySource {
    /// Wraps a recorded instruction sequence.
    pub fn new(name: impl Into<String>, records: Vec<InstructionRecord>) -> Self {
        ReplaySource { name: name.into(), records, position: 0 }
    }

    /// Records remaining to replay.
    pub fn remaining(&self) -> usize {
        self.records.len() - self.position
    }

    /// Total records in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Rewinds to the beginning (replay the same trace again).
    pub fn rewind(&mut self) {
        self.position = 0;
    }
}

impl InstructionSource for ReplaySource {
    fn next_instruction_opt(&mut self) -> Option<InstructionRecord> {
        let r = self.records.get(self.position).copied();
        if r.is_some() {
            self.position += 1;
        }
        r
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::record::MemRef;
    use crate::spec::SpecBenchmark;

    #[test]
    fn workload_is_infinite_source() {
        let mut w = SpecBenchmark::Li.workload();
        for _ in 0..100 {
            assert!(w.next_instruction_opt().is_some());
        }
        assert_eq!(w.source_name(), "li");
    }

    #[test]
    fn replay_exhausts_and_rewinds() {
        let recs = vec![
            InstructionRecord::fetch_only(Addr::new(0)),
            InstructionRecord::with_data(Addr::new(4), MemRef::store(Addr::new(0x100))),
        ];
        let mut r = ReplaySource::new("t", recs.clone());
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.next_instruction_opt(), Some(recs[0]));
        assert_eq!(r.remaining(), 1);
        assert_eq!(r.next_instruction_opt(), Some(recs[1]));
        assert_eq!(r.next_instruction_opt(), None);
        assert_eq!(r.next_instruction_opt(), None, "stays exhausted");
        r.rewind();
        assert_eq!(r.next_instruction_opt(), Some(recs[0]));
    }

    #[test]
    fn replay_of_workload_matches_workload() {
        let recorded: Vec<InstructionRecord> =
            SpecBenchmark::Espresso.workload().take_instructions(500);
        let mut replay = ReplaySource::new("espresso-replay", recorded.clone());
        let mut live = SpecBenchmark::Espresso.workload();
        for rec in &recorded {
            assert_eq!(replay.next_instruction_opt().as_ref(), Some(rec));
            assert_eq!(live.next_instruction(), *rec);
        }
    }
}
