//! A [`Workload`] pairs an instruction source with a data source and the
//! per-instruction reference mix, producing the [`InstructionRecord`]
//! stream the experiment harness consumes.

use crate::gen::AddrSource;
use crate::record::{InstructionRecord, MemRef};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named, seeded, infinite instruction stream.
///
/// Each produced [`InstructionRecord`] carries one instruction fetch plus
/// — with probability `data_per_instr` — one data reference, of which a
/// `store_fraction` are stores. The ratios for the SPEC'89-like presets
/// come from Table 1 of the paper (see [`crate::spec`]).
///
/// # Examples
///
/// ```
/// use tlc_trace::spec::SpecBenchmark;
///
/// let mut w = SpecBenchmark::Li.workload();
/// let rec = w.next_instruction();
/// assert_eq!(rec.fetch.offset_in(4), 0);
/// ```
pub struct Workload {
    name: String,
    rng: StdRng,
    instr: Box<dyn AddrSource>,
    data: Box<dyn AddrSource>,
    data_per_instr: f64,
    store_fraction: f64,
    instructions_emitted: u64,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("data_per_instr", &self.data_per_instr)
            .field("store_fraction", &self.store_fraction)
            .field("instructions_emitted", &self.instructions_emitted)
            .finish_non_exhaustive()
    }
}

impl Workload {
    /// Assembles a workload.
    ///
    /// # Panics
    ///
    /// Panics if `data_per_instr` or `store_fraction` is not in `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        seed: u64,
        instr: Box<dyn AddrSource>,
        data: Box<dyn AddrSource>,
        data_per_instr: f64,
        store_fraction: f64,
    ) -> Self {
        assert!((0.0..=1.0).contains(&data_per_instr), "data_per_instr must be in [0,1]");
        assert!((0.0..=1.0).contains(&store_fraction), "store_fraction must be in [0,1]");
        Workload {
            name: name.into(),
            rng: StdRng::seed_from_u64(seed),
            instr,
            data,
            data_per_instr,
            store_fraction,
            instructions_emitted: 0,
        }
    }

    /// The workload's name (e.g. `"gcc1"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Expected data references per instruction.
    pub fn data_per_instr(&self) -> f64 {
        self.data_per_instr
    }

    /// Instructions produced so far.
    pub fn instructions_emitted(&self) -> u64 {
        self.instructions_emitted
    }

    /// Produces the next instruction of the stream.
    pub fn next_instruction(&mut self) -> InstructionRecord {
        self.instructions_emitted += 1;
        let fetch = self.instr.next_addr(&mut self.rng);
        let data = if self.data_per_instr > 0.0 && self.rng.gen_bool(self.data_per_instr) {
            let addr = self.data.next_addr(&mut self.rng);
            Some(if self.store_fraction > 0.0 && self.rng.gen_bool(self.store_fraction) {
                MemRef::store(addr)
            } else {
                MemRef::load(addr)
            })
        } else {
            None
        };
        InstructionRecord { fetch, data }
    }

    /// Collects the next `n` instructions into a vector (convenient for
    /// tests and trace dumps; experiments stream instead).
    pub fn take_instructions(&mut self, n: usize) -> Vec<InstructionRecord> {
        (0..n).map(|_| self.next_instruction()).collect()
    }
}

impl Iterator for Workload {
    type Item = InstructionRecord;

    fn next(&mut self) -> Option<InstructionRecord> {
        Some(self.next_instruction())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Addr, AddrRange};
    use crate::gen::regions::{Region, RegionSet};
    use crate::record::AccessKind;

    fn tiny_workload(data_per_instr: f64, store_fraction: f64) -> Workload {
        let instr = RegionSet::new(vec![Region::new(
            AddrRange::new(Addr::new(0x10_0000), 4 << 10),
            1.0,
            8.0,
        )]);
        let data = RegionSet::new(vec![Region::new(
            AddrRange::new(Addr::new(0x1000_0000), 4 << 10),
            1.0,
            2.0,
        )]);
        Workload::new("tiny", 77, Box::new(instr), Box::new(data), data_per_instr, store_fraction)
    }

    #[test]
    fn data_ratio_matches() {
        let mut w = tiny_workload(0.4, 0.3);
        let n = 50_000;
        let mut data_refs = 0u64;
        let mut stores = 0u64;
        for _ in 0..n {
            let rec = w.next_instruction();
            if let Some(d) = rec.data {
                data_refs += 1;
                if d.kind == AccessKind::Store {
                    stores += 1;
                }
            }
        }
        let dpi = data_refs as f64 / n as f64;
        assert!((dpi - 0.4).abs() < 0.02, "data per instr {dpi}");
        let sf = stores as f64 / data_refs as f64;
        assert!((sf - 0.3).abs() < 0.03, "store fraction {sf}");
        assert_eq!(w.instructions_emitted(), n);
    }

    #[test]
    fn no_data_refs_when_ratio_zero() {
        let mut w = tiny_workload(0.0, 0.0);
        for _ in 0..1000 {
            assert!(w.next_instruction().data.is_none());
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || tiny_workload(0.5, 0.5).take_instructions(500);
        assert_eq!(run(), run());
    }

    #[test]
    fn iterator_is_infinite() {
        let w = tiny_workload(0.2, 0.0);
        assert_eq!(w.take(10).count(), 10);
    }

    #[test]
    #[should_panic(expected = "data_per_instr")]
    fn rejects_bad_ratio() {
        let _ = tiny_workload(1.5, 0.0);
    }
}
