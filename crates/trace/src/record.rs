//! Memory-reference records produced by workloads and consumed by the
//! cache simulator.
//!
//! The machine model of the paper (§2.1) issues one instruction fetch per
//! cycle plus at most one data reference, so the natural unit of work is an
//! [`InstructionRecord`]: an instruction-fetch address optionally paired
//! with one data access. A flat [`MemRef`] view is also provided for
//! consumers (trace files, single-cache experiments) that do not care about
//! the instruction/data pairing.

use crate::addr::Addr;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The class of a memory reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// An instruction fetch (goes to the L1 instruction cache).
    InstrFetch,
    /// A data load (goes to the L1 data cache).
    Load,
    /// A data store. The paper models write traffic as read traffic
    /// (write-allocate, fetch-on-write; §2.2), so stores behave like loads
    /// for miss accounting but are tracked separately for statistics.
    Store,
}

impl AccessKind {
    /// Whether this reference targets the data side of the split L1.
    pub fn is_data(self) -> bool {
        !matches!(self, AccessKind::InstrFetch)
    }

    /// One-letter code used by the text trace format (`I`, `L`, `S`).
    pub fn code(self) -> char {
        match self {
            AccessKind::InstrFetch => 'I',
            AccessKind::Load => 'L',
            AccessKind::Store => 'S',
        }
    }

    /// Parses a one-letter code produced by [`AccessKind::code`].
    pub fn from_code(c: char) -> Option<AccessKind> {
        match c {
            'I' => Some(AccessKind::InstrFetch),
            'L' => Some(AccessKind::Load),
            'S' => Some(AccessKind::Store),
            _ => None,
        }
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::InstrFetch => "ifetch",
            AccessKind::Load => "load",
            AccessKind::Store => "store",
        })
    }
}

/// A single memory reference: an address plus its class.
///
/// # Examples
///
/// ```
/// use tlc_trace::{AccessKind, Addr, MemRef};
///
/// let r = MemRef::load(Addr::new(0x1000));
/// assert!(r.kind.is_data());
/// assert_eq!(r.addr, Addr::new(0x1000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemRef {
    /// Byte address referenced.
    pub addr: Addr,
    /// Reference class.
    pub kind: AccessKind,
}

impl MemRef {
    /// Creates an instruction-fetch reference.
    pub fn fetch(addr: Addr) -> Self {
        MemRef { addr, kind: AccessKind::InstrFetch }
    }

    /// Creates a data-load reference.
    pub fn load(addr: Addr) -> Self {
        MemRef { addr, kind: AccessKind::Load }
    }

    /// Creates a data-store reference.
    pub fn store(addr: Addr) -> Self {
        MemRef { addr, kind: AccessKind::Store }
    }
}

impl fmt::Display for MemRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.kind.code(), self.addr)
    }
}

/// One simulated instruction: an instruction fetch plus an optional data
/// reference issued in the same cycle (paper §2.1: "a pipelined RISC
/// architecture which allows the issue of an instruction and data
/// reference each cycle").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct InstructionRecord {
    /// Address of the instruction fetch.
    pub fetch: Addr,
    /// The data reference carried by this instruction, if any.
    pub data: Option<MemRef>,
}

impl InstructionRecord {
    /// Creates a record with no data reference.
    pub fn fetch_only(fetch: Addr) -> Self {
        InstructionRecord { fetch, data: None }
    }

    /// Creates a record with a data reference.
    ///
    /// # Panics
    ///
    /// Panics if `data.kind` is [`AccessKind::InstrFetch`]; the data slot
    /// of an instruction only carries loads and stores.
    pub fn with_data(fetch: Addr, data: MemRef) -> Self {
        assert!(data.kind.is_data(), "data slot of an instruction must be a load or store");
        InstructionRecord { fetch, data: Some(data) }
    }

    /// Number of memory references this instruction issues (1 or 2).
    pub fn ref_count(&self) -> u64 {
        1 + self.data.is_some() as u64
    }

    /// Iterates over the individual references of this instruction,
    /// fetch first.
    pub fn refs(&self) -> impl Iterator<Item = MemRef> + '_ {
        std::iter::once(MemRef::fetch(self.fetch)).chain(self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_classification() {
        assert!(!AccessKind::InstrFetch.is_data());
        assert!(AccessKind::Load.is_data());
        assert!(AccessKind::Store.is_data());
    }

    #[test]
    fn kind_codes_roundtrip() {
        for k in [AccessKind::InstrFetch, AccessKind::Load, AccessKind::Store] {
            assert_eq!(AccessKind::from_code(k.code()), Some(k));
        }
        assert_eq!(AccessKind::from_code('X'), None);
    }

    #[test]
    fn memref_constructors() {
        assert_eq!(MemRef::fetch(Addr::new(4)).kind, AccessKind::InstrFetch);
        assert_eq!(MemRef::load(Addr::new(4)).kind, AccessKind::Load);
        assert_eq!(MemRef::store(Addr::new(4)).kind, AccessKind::Store);
    }

    #[test]
    fn instruction_ref_iteration() {
        let i = InstructionRecord::with_data(Addr::new(0x100), MemRef::store(Addr::new(0x2000)));
        let refs: Vec<MemRef> = i.refs().collect();
        assert_eq!(refs.len(), 2);
        assert_eq!(refs[0], MemRef::fetch(Addr::new(0x100)));
        assert_eq!(refs[1], MemRef::store(Addr::new(0x2000)));
        assert_eq!(i.ref_count(), 2);

        let j = InstructionRecord::fetch_only(Addr::new(0x104));
        assert_eq!(j.ref_count(), 1);
        assert_eq!(j.refs().count(), 1);
    }

    #[test]
    #[should_panic(expected = "load or store")]
    fn instruction_rejects_fetch_in_data_slot() {
        let _ = InstructionRecord::with_data(Addr::new(0), MemRef::fetch(Addr::new(4)));
    }

    #[test]
    fn display() {
        let r = MemRef::load(Addr::new(0x40));
        assert_eq!(r.to_string(), "L 0x00000040");
        assert_eq!(AccessKind::Store.to_string(), "store");
    }
}
