//! The `TLCTRC01` compact on-disk instruction-trace format.
//!
//! This is the interchange format for *real* traces: a versioned header
//! followed by delta/varint-encoded instruction records, typically 3–5
//! bytes per instruction against 9–17 for the flat formats in
//! [`crate::io`]. The module provides:
//!
//! * [`CompactTraceWriter`] / [`write_compact_trace`] — encoding;
//! * [`TraceReader`] — a streaming decoder that implements
//!   [`InstructionSource`](crate::InstructionSource), so a trace file can
//!   feed [`TraceArena::capture`](crate::TraceArena::capture)
//!   chunk-by-chunk under a bounded memory budget without ever holding
//!   the decoded stream in memory;
//! * [`import_to_compact`] — a streaming importer that converts the
//!   other formats this crate knows (flat text/binary reference streams,
//!   `TLCITR01`, plain address lists) into `TLCTRC01`.
//!
//! ## Encoding
//!
//! Header: the 8-byte magic [`COMPACT_MAGIC`] then a single version byte
//! ([`COMPACT_VERSION`]). Per record:
//!
//! * one control byte — `bit0` = instruction carries a data reference,
//!   `bit1` = that data reference is a store (only valid with `bit0`);
//!   all other bits are reserved and must be zero;
//! * the fetch address as a zigzag-varint delta against the previous
//!   record's fetch address (first record deltas against 0);
//! * when `bit0` is set, the data address as a zigzag-varint delta
//!   against the previous data address (first data ref deltas against 0).
//!
//! The stream is EOF-delimited: a clean end is only legal at a record
//! boundary; anything else is a typed
//! [`TraceIoError::Truncated`](crate::io::TraceIoError) with the byte
//! offset where the record began.

use crate::addr::Addr;
use crate::io::{self, TraceIoError};
use crate::record::{AccessKind, MemRef};
use crate::source::InstructionSource;
use crate::InstructionRecord;
use std::io::{BufRead, Read, Write};

/// Magic bytes identifying a compact instruction trace.
pub const COMPACT_MAGIC: &[u8; 8] = b"TLCTRC01";

/// Newest compact-format version this build reads and writes.
pub const COMPACT_VERSION: u8 = 1;

/// Control-byte bit: the instruction carries a data reference.
const CTRL_HAS_DATA: u8 = 1;
/// Control-byte bit: the data reference is a store.
const CTRL_STORE: u8 = 2;

fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a LEB128 varint to `buf`, returning the bytes used.
fn push_uvarint(buf: &mut [u8], mut v: u64) -> usize {
    let mut n = 0;
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf[n] = byte;
            return n + 1;
        }
        buf[n] = byte | 0x80;
        n += 1;
    }
}

/// Writes [`InstructionRecord`]s in the compact `TLCTRC01` format.
///
/// The header is written on construction; call
/// [`CompactTraceWriter::write`] per record.
///
/// # Examples
///
/// ```
/// use tlc_trace::compact::{read_compact_trace, CompactTraceWriter};
/// use tlc_trace::{Addr, InstructionRecord, MemRef};
///
/// # fn main() -> std::io::Result<()> {
/// let recs = vec![
///     InstructionRecord::fetch_only(Addr::new(0x100)),
///     InstructionRecord::with_data(Addr::new(0x104), MemRef::load(Addr::new(0x2000))),
/// ];
/// let mut buf = Vec::new();
/// let mut w = CompactTraceWriter::new(&mut buf)?;
/// for r in &recs {
///     w.write(r)?;
/// }
/// drop(w);
/// assert_eq!(read_compact_trace(&buf[..])?, recs);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct CompactTraceWriter<W: Write> {
    out: W,
    prev_fetch: u64,
    prev_data: u64,
    written: u64,
}

impl<W: Write> CompactTraceWriter<W> {
    /// Creates the writer and emits the magic + version header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut out: W) -> std::io::Result<Self> {
        out.write_all(COMPACT_MAGIC)?;
        out.write_all(&[COMPACT_VERSION])?;
        Ok(CompactTraceWriter { out, prev_fetch: 0, prev_data: 0, written: 0 })
    }

    /// Appends one instruction record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&mut self, r: &InstructionRecord) -> std::io::Result<()> {
        // Worst case: control byte + two 10-byte varints.
        let mut buf = [0u8; 21];
        let mut n = 1;
        buf[0] = match r.data {
            None => 0,
            Some(d) => CTRL_HAS_DATA | if d.kind == AccessKind::Store { CTRL_STORE } else { 0 },
        };
        let fetch = r.fetch.raw();
        n += push_uvarint(&mut buf[n..], zigzag(fetch.wrapping_sub(self.prev_fetch) as i64));
        self.prev_fetch = fetch;
        if let Some(d) = r.data {
            let addr = d.addr.raw();
            n += push_uvarint(&mut buf[n..], zigzag(addr.wrapping_sub(self.prev_data) as i64));
            self.prev_data = addr;
        }
        self.out.write_all(&buf[..n])?;
        self.written += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying writer.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from flushing.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Writes a whole slice of records as a compact trace.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_compact_trace<W: Write>(out: W, records: &[InstructionRecord]) -> std::io::Result<()> {
    let mut w = CompactTraceWriter::new(out)?;
    for r in records {
        w.write(r)?;
    }
    w.into_inner().map(|_| ())
}

/// Streaming decoder for the compact `TLCTRC01` format.
///
/// Decodes one record at a time, so a multi-gigabyte trace never has to
/// exist in memory: wrap the file in a `BufReader`, then hand the reader
/// to [`TraceArena::capture_chunked`](crate::TraceArena::capture_chunked)
/// (which packs it 17 bytes/record, chunk-by-chunk) or walk it manually
/// with [`TraceReader::try_next`].
///
/// As an [`InstructionSource`] the reader cannot surface decode errors
/// through `next_instruction_opt`; a corrupt or truncated tail instead
/// ends the stream and parks the error, which callers **must** check via
/// [`TraceReader::error`] (or [`TraceReader::take_error`]) after capture.
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    input: R,
    name: String,
    offset: u64,
    prev_fetch: u64,
    prev_data: u64,
    decoded: u64,
    error: Option<TraceIoError>,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a compact trace stream, validating the magic and version.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceIoError`] on a short or mismatched header or an
    /// unknown version byte.
    pub fn new(mut input: R, name: impl Into<String>) -> Result<Self, TraceIoError> {
        io::expect_magic(&mut input, COMPACT_MAGIC)?;
        let mut version = [0u8; 1];
        input.read_exact(&mut version).map_err(|e| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                TraceIoError::Truncated {
                    offset: 8,
                    detail: "stream ended before the version byte".into(),
                }
            } else {
                TraceIoError::Io(e)
            }
        })?;
        if version[0] != COMPACT_VERSION {
            return Err(TraceIoError::UnknownVersion {
                found: version[0],
                supported: COMPACT_VERSION,
            });
        }
        Ok(TraceReader {
            input,
            name: name.into(),
            offset: 9,
            prev_fetch: 0,
            prev_data: 0,
            decoded: 0,
            error: None,
            done: false,
        })
    }

    /// Records decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Byte offset of the next unread byte.
    pub fn byte_offset(&self) -> u64 {
        self.offset
    }

    /// The decode error the source-driven interface swallowed, if any.
    pub fn error(&self) -> Option<&TraceIoError> {
        self.error.as_ref()
    }

    /// Takes ownership of the parked decode error, if any.
    pub fn take_error(&mut self) -> Option<TraceIoError> {
        self.error.take()
    }

    fn read_uvarint(&mut self, record_offset: u64) -> Result<u64, TraceIoError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let mut byte = [0u8; 1];
            self.input.read_exact(&mut byte).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    TraceIoError::Truncated {
                        offset: record_offset,
                        detail: format!("record {} cut short inside a varint", self.decoded),
                    }
                } else {
                    TraceIoError::Io(e)
                }
            })?;
            self.offset += 1;
            let byte = byte[0];
            if shift == 63 && byte > 1 {
                return Err(TraceIoError::Corrupt {
                    offset: record_offset,
                    detail: format!("varint overflows u64 in record {}", self.decoded),
                });
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift > 63 {
                return Err(TraceIoError::Corrupt {
                    offset: record_offset,
                    detail: format!("varint longer than 10 bytes in record {}", self.decoded),
                });
            }
        }
    }

    /// Decodes the next record, `Ok(None)` at a clean end of stream.
    ///
    /// # Errors
    ///
    /// Returns a [`TraceIoError`] on corrupt or truncated input; the same
    /// error is also parked for [`TraceReader::error`], and the stream
    /// yields nothing further.
    pub fn try_next(&mut self) -> Result<Option<InstructionRecord>, TraceIoError> {
        if self.done {
            return Ok(None);
        }
        match self.decode_next() {
            Ok(Some(rec)) => Ok(Some(rec)),
            Ok(None) => {
                self.done = true;
                Ok(None)
            }
            Err(e) => {
                self.done = true;
                let parked = match &e {
                    TraceIoError::Io(inner) => {
                        TraceIoError::Io(std::io::Error::new(inner.kind(), inner.to_string()))
                    }
                    TraceIoError::BadMagic { found, expected } => {
                        TraceIoError::BadMagic { found: *found, expected }
                    }
                    TraceIoError::UnknownVersion { found, supported } => {
                        TraceIoError::UnknownVersion { found: *found, supported: *supported }
                    }
                    TraceIoError::Corrupt { offset, detail } => {
                        TraceIoError::Corrupt { offset: *offset, detail: detail.clone() }
                    }
                    TraceIoError::Truncated { offset, detail } => {
                        TraceIoError::Truncated { offset: *offset, detail: detail.clone() }
                    }
                };
                self.error = Some(parked);
                Err(e)
            }
        }
    }

    fn decode_next(&mut self) -> Result<Option<InstructionRecord>, TraceIoError> {
        let record_offset = self.offset;
        let mut ctrl = [0u8; 1];
        match self.input.read_exact(&mut ctrl) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(TraceIoError::Io(e)),
        }
        self.offset += 1;
        let ctrl = ctrl[0];
        if ctrl & !(CTRL_HAS_DATA | CTRL_STORE) != 0 || ctrl == CTRL_STORE {
            return Err(TraceIoError::Corrupt {
                offset: record_offset,
                detail: format!("invalid control byte {ctrl:#04x} in record {}", self.decoded),
            });
        }
        let delta = unzigzag(self.read_uvarint(record_offset)?);
        self.prev_fetch = self.prev_fetch.wrapping_add(delta as u64);
        let data = if ctrl & CTRL_HAS_DATA != 0 {
            let delta = unzigzag(self.read_uvarint(record_offset)?);
            self.prev_data = self.prev_data.wrapping_add(delta as u64);
            let addr = Addr::new(self.prev_data);
            Some(if ctrl & CTRL_STORE != 0 { MemRef::store(addr) } else { MemRef::load(addr) })
        } else {
            None
        };
        self.decoded += 1;
        Ok(Some(InstructionRecord { fetch: Addr::new(self.prev_fetch), data }))
    }
}

impl<R: Read + Send> InstructionSource for TraceReader<R> {
    fn next_instruction_opt(&mut self) -> Option<InstructionRecord> {
        self.try_next().ok().flatten()
    }

    fn source_name(&self) -> &str {
        &self.name
    }
}

/// Reads an entire compact trace into memory.
///
/// Convenience for tests and small files; large traces should stream
/// through [`TraceReader`] instead.
///
/// # Errors
///
/// Returns a [`TraceIoError`] on any header or record violation.
pub fn read_compact_trace<R: Read>(input: R) -> Result<Vec<InstructionRecord>, TraceIoError> {
    let mut reader = TraceReader::new(input, "compact")?;
    let mut out = Vec::new();
    while let Some(rec) = reader.try_next()? {
        out.push(rec);
    }
    Ok(out)
}

/// External formats [`import_to_compact`] can ingest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImportFormat {
    /// A compact `TLCTRC01` trace (re-encoded, e.g. to apply a limit).
    Compact,
    /// A flat `TLCITR01` instruction trace.
    Instr,
    /// A flat `TLCREF01` binary reference stream.
    Refs,
    /// The `K 0xADDR` text trace format.
    Text,
    /// A plain text address list: one `[R|W] ADDR` per line, address in
    /// `0x` hex or decimal, the tag defaulting to a read.
    AddrText,
    /// A raw binary address list: little-endian u64 addresses, all
    /// treated as reads.
    AddrBinary,
}

impl ImportFormat {
    /// Parses a user-facing format name.
    pub fn parse(s: &str) -> Option<ImportFormat> {
        match s {
            "compact" | "trc" => Some(ImportFormat::Compact),
            "instr" | "itr" => Some(ImportFormat::Instr),
            "refs" | "ref" => Some(ImportFormat::Refs),
            "text" => Some(ImportFormat::Text),
            "addr-text" | "addrs" => Some(ImportFormat::AddrText),
            "addr-bin" => Some(ImportFormat::AddrBinary),
            _ => None,
        }
    }

    /// The user-facing name [`ImportFormat::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            ImportFormat::Compact => "compact",
            ImportFormat::Instr => "instr",
            ImportFormat::Refs => "refs",
            ImportFormat::Text => "text",
            ImportFormat::AddrText => "addr-text",
            ImportFormat::AddrBinary => "addr-bin",
        }
    }

    /// Guesses the format from the first bytes of a stream.
    ///
    /// Magic-bearing formats are recognised exactly; otherwise mostly
    /// printable content is treated as text (`K 0xADDR` lines when the
    /// first payload line starts with a kind code, a plain address list
    /// otherwise) and anything else as a raw binary address list.
    pub fn detect(prefix: &[u8]) -> ImportFormat {
        if prefix.starts_with(COMPACT_MAGIC) {
            return ImportFormat::Compact;
        }
        if prefix.starts_with(io::INSTR_MAGIC) {
            return ImportFormat::Instr;
        }
        if prefix.starts_with(io::BINARY_MAGIC) {
            return ImportFormat::Refs;
        }
        let printable = prefix
            .iter()
            .all(|&b| b == b'\n' || b == b'\r' || b == b'\t' || (0x20..0x7f).contains(&b));
        if !prefix.is_empty() && printable {
            let text = String::from_utf8_lossy(prefix);
            for line in text.lines() {
                let t = line.trim();
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                let mut chars = t.chars();
                let first = chars.next().unwrap_or(' ');
                if matches!(first, 'I' | 'L' | 'S') && chars.next() == Some(' ') {
                    return ImportFormat::Text;
                }
                return ImportFormat::AddrText;
            }
            return ImportFormat::AddrText;
        }
        ImportFormat::AddrBinary
    }
}

/// Base of the synthetic fetch loop used for data-only address lists:
/// sixteen 4-byte PCs inside one 64-byte line, so the synthesised
/// instruction stream is trivially cacheable and the data stream
/// dominates, as it should for a data-address trace.
const SYNTHETIC_FETCH_BASE: u64 = 0x1000;

fn synthetic_fetch(n: u64) -> Addr {
    Addr::new(SYNTHETIC_FETCH_BASE + (n % 16) * 4)
}

/// Folds a flat `I`/`L`/`S` reference stream into instruction records:
/// a fetch opens a record, the next data reference completes it, and a
/// data reference with no open record gets a synthetic fetch.
#[derive(Debug, Default)]
struct RefFolder {
    pending: Option<InstructionRecord>,
    emitted: u64,
}

impl RefFolder {
    fn push(&mut self, r: MemRef) -> Option<InstructionRecord> {
        match r.kind {
            AccessKind::InstrFetch => {
                let done = self.pending.take();
                self.pending = Some(InstructionRecord::fetch_only(r.addr));
                if done.is_some() {
                    self.emitted += 1;
                }
                done
            }
            AccessKind::Load | AccessKind::Store => {
                let rec = match self.pending.take() {
                    Some(open) => InstructionRecord { fetch: open.fetch, data: Some(r) },
                    None => {
                        InstructionRecord { fetch: synthetic_fetch(self.emitted), data: Some(r) }
                    }
                };
                self.emitted += 1;
                Some(rec)
            }
        }
    }

    fn finish(&mut self) -> Option<InstructionRecord> {
        let done = self.pending.take();
        if done.is_some() {
            self.emitted += 1;
        }
        done
    }
}

fn parse_addr_list_line(t: &str, lineno: usize, offset: u64) -> Result<MemRef, TraceIoError> {
    let bad = |detail: String| TraceIoError::Corrupt { offset, detail };
    let (kind, addr_s) = match t.split_once(char::is_whitespace) {
        Some((tag, rest)) => {
            let kind = match tag {
                "R" | "r" | "L" | "l" => AccessKind::Load,
                "W" | "w" | "S" | "s" => AccessKind::Store,
                other => {
                    return Err(bad(format!(
                        "unknown access tag {other:?} on address-list line {}",
                        lineno + 1
                    )))
                }
            };
            (kind, rest.trim())
        }
        None => (AccessKind::Load, t),
    };
    let addr = match addr_s.strip_prefix("0x").or_else(|| addr_s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => addr_s.parse(),
    }
    .map_err(|_| bad(format!("bad address {addr_s:?} on address-list line {}", lineno + 1)))?;
    Ok(MemRef { addr: Addr::new(addr), kind })
}

/// Streams an external trace into the compact `TLCTRC01` format.
///
/// Converts record-at-a-time, so input and output sizes are unbounded by
/// memory. `limit` caps the number of instruction records written.
/// Returns the number of records written.
///
/// # Errors
///
/// Returns a [`TraceIoError`] on malformed input and propagates I/O
/// errors from either side.
pub fn import_to_compact<R: BufRead, W: Write>(
    format: ImportFormat,
    mut input: R,
    out: W,
    limit: Option<u64>,
) -> Result<u64, TraceIoError> {
    let limit = limit.unwrap_or(u64::MAX);
    let mut writer = CompactTraceWriter::new(out)?;
    match format {
        ImportFormat::Compact => {
            let mut reader = TraceReader::new(input, "import")?;
            while writer.written() < limit {
                match reader.try_next()? {
                    Some(rec) => writer.write(&rec)?,
                    None => break,
                }
            }
        }
        ImportFormat::Instr => {
            // TLCITR01 is an in-memory archival format; whole-file decode
            // keeps the reader single-sourced in `io`.
            for rec in io::read_instruction_trace(input)? {
                if writer.written() >= limit {
                    break;
                }
                writer.write(&rec)?;
            }
        }
        ImportFormat::Refs => {
            io::expect_magic(&mut input, io::BINARY_MAGIC)?;
            let mut folder = RefFolder::default();
            let mut index = 0u64;
            'refs: loop {
                let offset = 8 + index * 9;
                let mut kind_byte = [0u8; 1];
                match input.read_exact(&mut kind_byte) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => break,
                    Err(e) => return Err(TraceIoError::Io(e)),
                }
                let kind = match kind_byte[0] {
                    0 => AccessKind::InstrFetch,
                    1 => AccessKind::Load,
                    2 => AccessKind::Store,
                    k => {
                        return Err(TraceIoError::Corrupt {
                            offset,
                            detail: format!("unknown reference kind byte {k}"),
                        })
                    }
                };
                let mut addr = [0u8; 8];
                input.read_exact(&mut addr).map_err(|e| {
                    if e.kind() == std::io::ErrorKind::UnexpectedEof {
                        TraceIoError::Truncated {
                            offset,
                            detail: format!("reference record {index} cut short"),
                        }
                    } else {
                        TraceIoError::Io(e)
                    }
                })?;
                index += 1;
                let r = MemRef { addr: Addr::new(u64::from_le_bytes(addr)), kind };
                if let Some(rec) = folder.push(r) {
                    if writer.written() >= limit {
                        break 'refs;
                    }
                    writer.write(&rec)?;
                }
            }
            if let Some(rec) = folder.finish() {
                if writer.written() < limit {
                    writer.write(&rec)?;
                }
            }
        }
        ImportFormat::Text | ImportFormat::AddrText => {
            let mut folder = RefFolder::default();
            let mut offset = 0u64;
            let mut line = String::new();
            let mut lineno = 0usize;
            'lines: loop {
                line.clear();
                if input.read_line(&mut line)? == 0 {
                    break;
                }
                let line_offset = offset;
                offset += line.len() as u64;
                let t = line.trim();
                lineno += 1;
                if t.is_empty() || t.starts_with('#') {
                    continue;
                }
                let r = if format == ImportFormat::Text {
                    io::parse_text_ref(t, lineno - 1, line_offset)?
                } else {
                    parse_addr_list_line(t, lineno - 1, line_offset)?
                };
                if let Some(rec) = folder.push(r) {
                    if writer.written() >= limit {
                        break 'lines;
                    }
                    writer.write(&rec)?;
                }
            }
            if let Some(rec) = folder.finish() {
                if writer.written() < limit {
                    writer.write(&rec)?;
                }
            }
        }
        ImportFormat::AddrBinary => {
            let mut folder = RefFolder::default();
            let mut index = 0u64;
            loop {
                let mut addr = [0u8; 8];
                match input.read_exact(&mut addr) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                        // Raw address lists have no header to anchor a
                        // record boundary, so a trailing partial word is
                        // still a truncation worth naming.
                        break;
                    }
                    Err(e) => return Err(TraceIoError::Io(e)),
                }
                if writer.written() >= limit {
                    break;
                }
                let r = MemRef::load(Addr::new(u64::from_le_bytes(addr)));
                if let Some(rec) = folder.push(r) {
                    writer.write(&rec)?;
                }
                index += 1;
            }
            let _ = index;
            if let Some(rec) = folder.finish() {
                if writer.written() < limit {
                    writer.write(&rec)?;
                }
            }
        }
    }
    let written = writer.written();
    writer.into_inner()?;
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<InstructionRecord> {
        vec![
            InstructionRecord::fetch_only(Addr::new(0x4000)),
            InstructionRecord::with_data(Addr::new(0x4004), MemRef::load(Addr::new(0x1_0000))),
            InstructionRecord::with_data(
                Addr::new(0x4008),
                MemRef::store(Addr::new(0xFFFF_FFFF_FFFF_FFF0)),
            ),
            InstructionRecord::with_data(Addr::new(0x3FF0), MemRef::load(Addr::new(0x0))),
        ]
    }

    #[test]
    fn compact_roundtrip() {
        let mut buf = Vec::new();
        write_compact_trace(&mut buf, &sample_records()).unwrap();
        assert_eq!(read_compact_trace(&buf[..]).unwrap(), sample_records());
        // Sequential records are a few bytes each, not 9–17.
        assert!(buf.len() < 9 + sample_records().len() * 15, "compact too big: {}", buf.len());
    }

    #[test]
    fn compact_rejects_bad_header() {
        match read_compact_trace(&b"WRONGMAG\x01"[..]).unwrap_err() {
            TraceIoError::BadMagic { expected, .. } => assert_eq!(expected, COMPACT_MAGIC),
            other => panic!("expected BadMagic, got {other}"),
        }
        let mut buf = Vec::new();
        buf.extend_from_slice(COMPACT_MAGIC);
        buf.push(9);
        match read_compact_trace(&buf[..]).unwrap_err() {
            TraceIoError::UnknownVersion { found: 9, supported } => {
                assert_eq!(supported, COMPACT_VERSION)
            }
            other => panic!("expected UnknownVersion, got {other}"),
        }
        match read_compact_trace(&COMPACT_MAGIC[..]).unwrap_err() {
            TraceIoError::Truncated { offset: 8, .. } => {}
            other => panic!("expected Truncated, got {other}"),
        }
    }

    #[test]
    fn compact_rejects_truncated_and_corrupt_records() {
        let mut buf = Vec::new();
        write_compact_trace(&mut buf, &sample_records()).unwrap();
        let mut cut = buf.clone();
        cut.truncate(buf.len() - 1);
        assert!(matches!(
            read_compact_trace(&cut[..]).unwrap_err(),
            TraceIoError::Truncated { .. }
        ));

        let mut bad_ctrl = Vec::new();
        bad_ctrl.extend_from_slice(COMPACT_MAGIC);
        bad_ctrl.push(COMPACT_VERSION);
        bad_ctrl.push(0b100); // reserved control bit
        assert!(matches!(
            read_compact_trace(&bad_ctrl[..]).unwrap_err(),
            TraceIoError::Corrupt { offset: 9, .. }
        ));

        // A store bit without the data bit is meaningless.
        let mut store_only = Vec::new();
        store_only.extend_from_slice(COMPACT_MAGIC);
        store_only.push(COMPACT_VERSION);
        store_only.push(CTRL_STORE);
        store_only.push(0);
        assert!(matches!(
            read_compact_trace(&store_only[..]).unwrap_err(),
            TraceIoError::Corrupt { .. }
        ));

        // An 11-byte varint can never encode a u64.
        let mut long_varint = Vec::new();
        long_varint.extend_from_slice(COMPACT_MAGIC);
        long_varint.push(COMPACT_VERSION);
        long_varint.push(0);
        long_varint.extend_from_slice(&[0x80; 10]);
        long_varint.push(0);
        assert!(matches!(
            read_compact_trace(&long_varint[..]).unwrap_err(),
            TraceIoError::Corrupt { .. }
        ));
    }

    #[test]
    fn reader_parks_error_for_source_interface() {
        let mut buf = Vec::new();
        write_compact_trace(&mut buf, &sample_records()).unwrap();
        buf.truncate(buf.len() - 1);
        let mut reader = TraceReader::new(&buf[..], "cut").unwrap();
        let mut seen = 0;
        while reader.next_instruction_opt().is_some() {
            seen += 1;
        }
        assert_eq!(seen, sample_records().len() - 1);
        assert!(matches!(reader.error(), Some(TraceIoError::Truncated { .. })));
        assert!(reader.take_error().is_some());
        assert!(reader.error().is_none());
    }

    #[test]
    fn zigzag_varint_roundtrip_extremes() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 0x7f, -0x80, 1 << 40] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        let mut buf = [0u8; 10];
        for v in [0u64, 1, 127, 128, u64::MAX] {
            let n = push_uvarint(&mut buf, v);
            assert!(n <= 10);
        }
    }

    #[test]
    fn import_text_trace_folds_refs() {
        let src = "# demo\nI 0x100\nL 0x2000\nI 0x104\nI 0x108\nS 0x2040\n";
        let mut out = Vec::new();
        let n = import_to_compact(ImportFormat::Text, src.as_bytes(), &mut out, None).unwrap();
        assert_eq!(n, 3);
        let recs = read_compact_trace(&out[..]).unwrap();
        assert_eq!(
            recs,
            vec![
                InstructionRecord::with_data(Addr::new(0x100), MemRef::load(Addr::new(0x2000))),
                InstructionRecord::fetch_only(Addr::new(0x104)),
                InstructionRecord::with_data(Addr::new(0x108), MemRef::store(Addr::new(0x2040))),
            ]
        );
    }

    #[test]
    fn import_addr_list_synthesises_fetches() {
        let src = "0x1000\nW 0x2000\n# comment\nR 4096\n";
        let mut out = Vec::new();
        let n = import_to_compact(ImportFormat::AddrText, src.as_bytes(), &mut out, None).unwrap();
        assert_eq!(n, 3);
        let recs = read_compact_trace(&out[..]).unwrap();
        assert_eq!(recs[0].data, Some(MemRef::load(Addr::new(0x1000))));
        assert_eq!(recs[1].data, Some(MemRef::store(Addr::new(0x2000))));
        assert_eq!(recs[2].data, Some(MemRef::load(Addr::new(4096))));
        // Synthetic fetches stay inside one 64-byte line.
        for r in &recs {
            assert_eq!(r.fetch.raw() & !63, SYNTHETIC_FETCH_BASE);
        }
    }

    #[test]
    fn import_addr_binary_and_limit() {
        let mut src = Vec::new();
        for a in [0x10u64, 0x20, 0x30, 0x40] {
            src.extend_from_slice(&a.to_le_bytes());
        }
        let mut out = Vec::new();
        let n =
            import_to_compact(ImportFormat::AddrBinary, src.as_slice(), &mut out, Some(2)).unwrap();
        assert_eq!(n, 2);
        let recs = read_compact_trace(&out[..]).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].data, Some(MemRef::load(Addr::new(0x20))));
    }

    #[test]
    fn import_rejects_bad_addr_lines() {
        for bad in ["X 0x100", "0xZZ", "R", "R nope"] {
            let mut out = Vec::new();
            let err = import_to_compact(ImportFormat::AddrText, bad.as_bytes(), &mut out, None)
                .unwrap_err();
            assert!(matches!(err, TraceIoError::Corrupt { .. }), "{bad:?}: {err}");
        }
    }

    #[test]
    fn detect_recognises_all_formats() {
        let mut compact = Vec::new();
        write_compact_trace(&mut compact, &sample_records()).unwrap();
        assert_eq!(ImportFormat::detect(&compact), ImportFormat::Compact);
        assert_eq!(ImportFormat::detect(io::INSTR_MAGIC), ImportFormat::Instr);
        assert_eq!(ImportFormat::detect(io::BINARY_MAGIC), ImportFormat::Refs);
        assert_eq!(ImportFormat::detect(b"# c\nI 0x100\n"), ImportFormat::Text);
        assert_eq!(ImportFormat::detect(b"0x1000\n0x2000\n"), ImportFormat::AddrText);
        assert_eq!(ImportFormat::detect(b"W 0x2000\n"), ImportFormat::AddrText);
        assert_eq!(ImportFormat::detect(&[0u8, 1, 2, 0xff]), ImportFormat::AddrBinary);
        for f in
            [ImportFormat::Compact, ImportFormat::Instr, ImportFormat::Refs, ImportFormat::Text]
        {
            assert_eq!(ImportFormat::parse(f.name()), Some(f));
        }
    }

    #[test]
    fn reader_streams_into_arena_chunks() {
        let recs: Vec<InstructionRecord> = (0..10_000u64)
            .map(|i| {
                InstructionRecord::with_data(
                    Addr::new(0x4000 + (i % 64) * 4),
                    MemRef::load(Addr::new(0x10_0000 + i * 8)),
                )
            })
            .collect();
        let mut buf = Vec::new();
        write_compact_trace(&mut buf, &recs).unwrap();
        let mut reader = TraceReader::new(&buf[..], "stream").unwrap();
        let arena = crate::TraceArena::capture_chunked(&mut reader, u64::MAX, 1024);
        assert!(reader.error().is_none());
        assert_eq!(arena.len(), recs.len() as u64);
        let replayed: Vec<InstructionRecord> = arena.replay().collect();
        assert_eq!(replayed, recs);
    }
}
