//! Byte addresses and alignment helpers.
//!
//! The whole study uses physically-addressed caches with 16-byte lines
//! (paper §2.1), so most of the simulator manipulates *line* addresses.
//! [`Addr`] is a thin newtype over `u64` that keeps byte addresses from
//! being confused with line numbers or set indices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A byte address in the simulated physical address space.
///
/// # Examples
///
/// ```
/// use tlc_trace::Addr;
///
/// let a = Addr::new(0x1234);
/// assert_eq!(a.line(16).0, 0x123);
/// assert_eq!(a.align_down(16), Addr::new(0x1230));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Addr(pub u64);

impl Addr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// Returns the raw byte address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache-line number of this address for the given line size.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `line_bytes` is not a power of two.
    #[inline]
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 >> line_bytes.trailing_zeros())
    }

    /// Rounds this address down to a multiple of `align` (a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> Addr {
        debug_assert!(align.is_power_of_two());
        Addr(self.0 & !(align - 1))
    }

    /// Returns the byte offset of this address within its `align`-byte block.
    #[inline]
    pub fn offset_in(self, align: u64) -> u64 {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1)
    }

    /// Returns this address advanced by `bytes`.
    // Deliberately named like `ops::Add::add`: advancing an address by a
    // byte count is addition, but implementing the operator for
    // `Addr + u64` would invite `Addr + Addr`, which is meaningless.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn add(self, bytes: u64) -> Addr {
        Addr(self.0.wrapping_add(bytes))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> Self {
        a.0
    }
}

/// A cache-line number (a byte address shifted right by `log2(line_bytes)`).
///
/// Line addresses coming from the same [`Addr::line`] call with the same
/// line size are directly comparable; the cache simulator works in this
/// domain exclusively.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Reconstructs the first byte address of this line.
    #[inline]
    pub fn first_byte(self, line_bytes: u64) -> Addr {
        debug_assert!(line_bytes.is_power_of_two());
        Addr(self.0 << line_bytes.trailing_zeros())
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// A half-open address range `[start, start + len)`.
///
/// Used by the synthetic generators to carve the address space into
/// non-overlapping code and data regions.
///
/// # Examples
///
/// ```
/// use tlc_trace::{Addr, AddrRange};
///
/// let r = AddrRange::new(Addr::new(0x1000), 0x100);
/// assert!(r.contains(Addr::new(0x10ff)));
/// assert!(!r.contains(Addr::new(0x1100)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AddrRange {
    start: Addr,
    len: u64,
}

impl AddrRange {
    /// Creates a range starting at `start` spanning `len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn new(start: Addr, len: u64) -> Self {
        assert!(len > 0, "address range must be non-empty");
        AddrRange { start, len }
    }

    /// First byte of the range.
    pub fn start(&self) -> Addr {
        self.start
    }

    /// One past the last byte of the range.
    pub fn end(&self) -> Addr {
        self.start.add(self.len)
    }

    /// Length in bytes.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// A range is never empty (enforced at construction); this always
    /// returns `false` and exists for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `addr` falls inside the range.
    #[inline]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.start.0 && addr.0 < self.start.0 + self.len
    }

    /// The address `offset` bytes into the range, wrapping around the end.
    #[inline]
    pub fn at_wrapped(&self, offset: u64) -> Addr {
        self.start.add(offset % self.len)
    }

    /// Whether this range overlaps `other`.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.start.0 < other.end().0 && other.start.0 < self.end().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_extraction() {
        let a = Addr::new(0xABCD);
        assert_eq!(a.line(16), LineAddr(0xABC));
        assert_eq!(a.line(64), LineAddr(0x2AF));
        assert_eq!(LineAddr(0xABC).first_byte(16), Addr::new(0xABC0));
    }

    #[test]
    fn align_and_offset() {
        let a = Addr::new(0x1237);
        assert_eq!(a.align_down(16), Addr::new(0x1230));
        assert_eq!(a.offset_in(16), 7);
        assert_eq!(a.add(9), Addr::new(0x1240));
    }

    #[test]
    fn range_contains_boundaries() {
        let r = AddrRange::new(Addr::new(0x100), 0x10);
        assert!(r.contains(Addr::new(0x100)));
        assert!(r.contains(Addr::new(0x10f)));
        assert!(!r.contains(Addr::new(0x110)));
        assert!(!r.contains(Addr::new(0xff)));
    }

    #[test]
    fn range_wrapping() {
        let r = AddrRange::new(Addr::new(0x1000), 0x100);
        assert_eq!(r.at_wrapped(0), Addr::new(0x1000));
        assert_eq!(r.at_wrapped(0xff), Addr::new(0x10ff));
        assert_eq!(r.at_wrapped(0x100), Addr::new(0x1000));
        assert_eq!(r.at_wrapped(0x234), Addr::new(0x1034));
    }

    #[test]
    fn range_overlap() {
        let a = AddrRange::new(Addr::new(0x100), 0x100);
        let b = AddrRange::new(Addr::new(0x1ff), 0x10);
        let c = AddrRange::new(Addr::new(0x200), 0x10);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_range_panics() {
        let _ = AddrRange::new(Addr::new(0), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x12).to_string(), "0x00000012");
        assert_eq!(LineAddr(0x12).to_string(), "L0x12");
        assert_eq!(format!("{:x}", Addr::new(0xbeef)), "beef");
    }

    #[test]
    fn conversions() {
        let a: Addr = 5u64.into();
        let r: u64 = a.into();
        assert_eq!(r, 5);
    }
}
