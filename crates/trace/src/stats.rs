//! Trace-stream statistics.
//!
//! [`TraceStats`] accumulates the counts the paper's Table 1 reports
//! (instruction/data/total references) plus footprint measures useful when
//! calibrating the synthetic generators against the published miss-rate
//! anchors.

use crate::addr::LineAddr;
use crate::record::{AccessKind, InstructionRecord, MemRef};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// Accumulated statistics over a reference stream.
///
/// # Examples
///
/// ```
/// use tlc_trace::{Addr, MemRef, TraceStats};
///
/// let mut s = TraceStats::new(16);
/// s.record(MemRef::fetch(Addr::new(0x100)));
/// s.record(MemRef::load(Addr::new(0x2000)));
/// s.record(MemRef::store(Addr::new(0x2004)));
/// assert_eq!(s.total_refs(), 3);
/// assert_eq!(s.data_refs(), 2);
/// assert_eq!(s.data_footprint_lines(), 1); // both data refs share a line
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    line_bytes: u64,
    instr_refs: u64,
    loads: u64,
    stores: u64,
    instr_lines: HashSet<LineAddr>,
    data_lines: HashSet<LineAddr>,
}

impl TraceStats {
    /// Creates an empty accumulator using `line_bytes` for footprint
    /// granularity.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(line_bytes: u64) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        TraceStats { line_bytes, ..Default::default() }
    }

    /// Records one reference.
    pub fn record(&mut self, r: MemRef) {
        let line = r.addr.line(self.line_bytes);
        match r.kind {
            AccessKind::InstrFetch => {
                self.instr_refs += 1;
                self.instr_lines.insert(line);
            }
            AccessKind::Load => {
                self.loads += 1;
                self.data_lines.insert(line);
            }
            AccessKind::Store => {
                self.stores += 1;
                self.data_lines.insert(line);
            }
        }
    }

    /// Records both references of an instruction.
    pub fn record_instruction(&mut self, rec: &InstructionRecord) {
        self.record(MemRef::fetch(rec.fetch));
        if let Some(d) = rec.data {
            self.record(d);
        }
    }

    /// Instruction fetches seen.
    pub fn instr_refs(&self) -> u64 {
        self.instr_refs
    }

    /// Data references seen (loads + stores).
    pub fn data_refs(&self) -> u64 {
        self.loads + self.stores
    }

    /// Loads seen.
    pub fn loads(&self) -> u64 {
        self.loads
    }

    /// Stores seen.
    pub fn stores(&self) -> u64 {
        self.stores
    }

    /// All references seen.
    pub fn total_refs(&self) -> u64 {
        self.instr_refs + self.loads + self.stores
    }

    /// Unique instruction lines touched.
    pub fn instr_footprint_lines(&self) -> u64 {
        self.instr_lines.len() as u64
    }

    /// Unique data lines touched.
    pub fn data_footprint_lines(&self) -> u64 {
        self.data_lines.len() as u64
    }

    /// Unique instruction bytes touched (lines × line size).
    pub fn instr_footprint_bytes(&self) -> u64 {
        self.instr_footprint_lines() * self.line_bytes
    }

    /// Unique data bytes touched (lines × line size).
    pub fn data_footprint_bytes(&self) -> u64 {
        self.data_footprint_lines() * self.line_bytes
    }

    /// A compact serialisable summary.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            instr_refs: self.instr_refs,
            loads: self.loads,
            stores: self.stores,
            instr_footprint_bytes: self.instr_footprint_bytes(),
            data_footprint_bytes: self.data_footprint_bytes(),
        }
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs: {} instr, {} data ({} loads / {} stores); footprint: {} KB code, {} KB data",
            self.instr_refs,
            self.data_refs(),
            self.loads,
            self.stores,
            self.instr_footprint_bytes() / 1024,
            self.data_footprint_bytes() / 1024,
        )
    }
}

/// Plain-data summary of a [`TraceStats`] (serialisable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSummary {
    /// Instruction fetches.
    pub instr_refs: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// Unique instruction bytes touched.
    pub instr_footprint_bytes: u64,
    /// Unique data bytes touched.
    pub data_footprint_bytes: u64,
}

impl TraceSummary {
    /// Total references.
    pub fn total_refs(&self) -> u64 {
        self.instr_refs + self.loads + self.stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;

    #[test]
    fn counts_by_kind() {
        let mut s = TraceStats::new(16);
        s.record(MemRef::fetch(Addr::new(0)));
        s.record(MemRef::fetch(Addr::new(4)));
        s.record(MemRef::load(Addr::new(0x100)));
        s.record(MemRef::store(Addr::new(0x200)));
        assert_eq!(s.instr_refs(), 2);
        assert_eq!(s.loads(), 1);
        assert_eq!(s.stores(), 1);
        assert_eq!(s.data_refs(), 2);
        assert_eq!(s.total_refs(), 4);
    }

    #[test]
    fn footprint_counts_unique_lines() {
        let mut s = TraceStats::new(16);
        // Same instruction line twice, two distinct data lines.
        s.record(MemRef::fetch(Addr::new(0x100)));
        s.record(MemRef::fetch(Addr::new(0x104)));
        s.record(MemRef::load(Addr::new(0x1000)));
        s.record(MemRef::load(Addr::new(0x1010)));
        assert_eq!(s.instr_footprint_lines(), 1);
        assert_eq!(s.data_footprint_lines(), 2);
        assert_eq!(s.instr_footprint_bytes(), 16);
        assert_eq!(s.data_footprint_bytes(), 32);
    }

    #[test]
    fn record_instruction_covers_both() {
        let mut s = TraceStats::new(16);
        let rec = InstructionRecord::with_data(Addr::new(0x40), MemRef::load(Addr::new(0x8000)));
        s.record_instruction(&rec);
        s.record_instruction(&InstructionRecord::fetch_only(Addr::new(0x44)));
        assert_eq!(s.instr_refs(), 2);
        assert_eq!(s.data_refs(), 1);
    }

    #[test]
    fn summary_roundtrip() {
        let mut s = TraceStats::new(16);
        s.record(MemRef::fetch(Addr::new(0)));
        s.record(MemRef::store(Addr::new(0x1000)));
        let sum = s.summary();
        assert_eq!(sum.total_refs(), 2);
        assert_eq!(sum.instr_footprint_bytes, 16);
    }

    #[test]
    fn display_is_nonempty() {
        let s = TraceStats::new(16);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_line_size() {
        let _ = TraceStats::new(24);
    }
}
