//! [`EventArena`]: an L1 miss/victim event stream, captured once per L1
//! front-end and replayed by every L2 configuration sharing that L1.
//!
//! The second level of a hierarchy never sees the full reference stream —
//! only the L1's *misses* (each carrying the requested line and the L1
//! victim it displaced). Because the paper's L1s always fill the
//! requested line on a miss regardless of what lies behind them, that
//! miss/victim stream is independent of the L2 configuration, so a sweep
//! can simulate the L1 once and fan every L2 over the much smaller event
//! stream (1–10% of the references, per Table 1's miss rates). This
//! module provides the packed buffer for that stream; the front-end that
//! produces it and the back-ends that consume it live in `tlc-cache`.
//!
//! ## Memory layout
//!
//! Events are stored structure-of-arrays in fixed-size chunks, mirroring
//! [`TraceArena`](crate::TraceArena): requested line (`u64`), victim line
//! (`u64`, zero when absent), and a one-byte flag — 17 bytes per event.
//! The flag packs the access kind (fetch/load/store) in its low two bits
//! plus "has victim" and "victim written" bits.
//!
//! ## Example
//!
//! ```
//! use tlc_trace::events::{EventArena, MissEvent, VictimLine};
//! use tlc_trace::{AccessKind, LineAddr};
//!
//! let mut events = EventArena::new();
//! events.push(MissEvent {
//!     kind: AccessKind::Load,
//!     line: LineAddr(0x40),
//!     victim: Some(VictimLine { line: LineAddr(0x140), written: true }),
//! });
//! assert_eq!(events.len(), 1);
//! let replayed: Vec<MissEvent> = events.iter().collect();
//! assert_eq!(replayed[0].victim.unwrap().line, LineAddr(0x140));
//! ```

use crate::addr::LineAddr;
use crate::record::AccessKind;

/// Flag bits 0–1: the access kind that missed (instruction fetch).
pub const EVENT_KIND_FETCH: u8 = 0;
/// Flag bits 0–1: the access kind that missed (data load).
pub const EVENT_KIND_LOAD: u8 = 1;
/// Flag bits 0–1: the access kind that missed (data store).
pub const EVENT_KIND_STORE: u8 = 2;
/// Mask selecting the access-kind bits of an event flag.
pub const EVENT_KIND_MASK: u8 = 0b0011;
/// Flag bit 2: the L1 fill displaced a valid line (the `victim` column
/// holds its address).
pub const EVENT_HAS_VICTIM: u8 = 0b0100;
/// Flag bit 3: the displaced line had been written by a store while it
/// was resident in the L1 (store-only dirty; an exclusive back-end adds
/// the filled-from-dirty-L2 component itself).
pub const EVENT_VICTIM_WRITTEN: u8 = 0b1000;

/// Packed bytes per captured event (line `u64` + victim `u64` + flag
/// `u8`); used to bound a capture's footprint.
pub const EVENT_BYTES_PER_RECORD: usize = 17;

/// Events per chunk (64 Ki), matching
/// [`DEFAULT_CHUNK_LEN`](crate::arena::DEFAULT_CHUNK_LEN).
pub const DEFAULT_EVENT_CHUNK_LEN: usize = 1 << 16;

/// The L1 line displaced by a miss fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VictimLine {
    /// The displaced line.
    pub line: LineAddr,
    /// Whether a store wrote it while it was resident in the L1.
    pub written: bool,
}

/// One L1 miss: the access kind that missed, the line the L1 filled, and
/// the victim that fill displaced (if the slot held a valid line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEvent {
    /// The kind of access that missed ([`AccessKind::InstrFetch`],
    /// [`AccessKind::Load`] or [`AccessKind::Store`]).
    pub kind: AccessKind,
    /// The requested (and L1-filled) line.
    pub line: LineAddr,
    /// The displaced line, if the fill evicted one.
    pub victim: Option<VictimLine>,
}

impl MissEvent {
    /// Encodes the flag byte of this event.
    pub fn flags(&self) -> u8 {
        let mut f = match self.kind {
            AccessKind::InstrFetch => EVENT_KIND_FETCH,
            AccessKind::Load => EVENT_KIND_LOAD,
            AccessKind::Store => EVENT_KIND_STORE,
        };
        if let Some(v) = self.victim {
            f |= EVENT_HAS_VICTIM;
            if v.written {
                f |= EVENT_VICTIM_WRITTEN;
            }
        }
        f
    }
}

/// One structure-of-arrays block of captured events.
#[derive(Debug, Default)]
struct EventChunk {
    line: Vec<u64>,
    victim: Vec<u64>,
    flags: Vec<u8>,
}

impl EventChunk {
    fn with_capacity(n: usize) -> Self {
        EventChunk {
            line: Vec::with_capacity(n),
            victim: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
        }
    }

    fn len(&self) -> usize {
        self.line.len()
    }
}

/// A borrowed, read-only view of one event chunk's packed columns.
///
/// The three slices always have equal length; index `i` across them
/// describes one event. `victim[i]` is meaningful only when `flags[i]`
/// has [`EVENT_HAS_VICTIM`] set (it is zero otherwise).
#[derive(Debug, Clone, Copy)]
pub struct EventChunkView<'a> {
    /// Requested (L1-filled) line addresses.
    pub line: &'a [u64],
    /// Victim line addresses (zero where no victim was displaced).
    pub victim: &'a [u64],
    /// Per-event flag bytes (kind bits plus victim bits).
    pub flags: &'a [u8],
}

impl EventChunkView<'_> {
    /// Events in this chunk.
    pub fn len(&self) -> usize {
        self.line.len()
    }

    /// Whether the chunk holds no events.
    pub fn is_empty(&self) -> bool {
        self.line.is_empty()
    }

    /// Decodes one event (for tests and generic consumers; the back-end
    /// fast paths read the columns directly).
    pub fn record(&self, i: usize) -> MissEvent {
        let f = self.flags[i];
        let kind = match f & EVENT_KIND_MASK {
            EVENT_KIND_FETCH => AccessKind::InstrFetch,
            EVENT_KIND_LOAD => AccessKind::Load,
            EVENT_KIND_STORE => AccessKind::Store,
            other => unreachable!("corrupt event kind {other}"),
        };
        let victim = (f & EVENT_HAS_VICTIM != 0).then(|| VictimLine {
            line: LineAddr(self.victim[i]),
            written: f & EVENT_VICTIM_WRITTEN != 0,
        });
        MissEvent { kind, line: LineAddr(self.line[i]), victim }
    }
}

/// An L1 front-end's miss/victim event stream, captured once into packed
/// structure-of-arrays chunks and replayed by every L2 back-end sharing
/// that front-end.
///
/// Arenas are immutable after capture and safely shared across threads by
/// reference; each replay is an independent walk over [`EventArena::chunks`].
#[derive(Debug, Default)]
pub struct EventArena {
    chunks: Vec<EventChunk>,
    chunk_len: usize,
    len: u64,
}

impl EventArena {
    /// An empty arena with the default chunk size.
    pub fn new() -> Self {
        Self::with_chunk_len(DEFAULT_EVENT_CHUNK_LEN)
    }

    /// An empty arena with an explicit chunk size (exposed so tests can
    /// prove replays are chunking-invariant).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len` is zero.
    pub fn with_chunk_len(chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk_len must be positive");
        EventArena { chunks: Vec::new(), chunk_len, len: 0 }
    }

    /// Appends one event.
    #[inline]
    pub fn push(&mut self, ev: MissEvent) {
        let need_new = match self.chunks.last() {
            Some(c) => c.len() >= self.chunk_len,
            None => true,
        };
        if need_new {
            self.chunks.push(EventChunk::with_capacity(self.chunk_len));
        }
        let chunk = self.chunks.last_mut().expect("chunk just ensured");
        chunk.line.push(ev.line.0);
        chunk.victim.push(ev.victim.map_or(0, |v| v.line.0));
        chunk.flags.push(ev.flags());
        self.len += 1;
    }

    /// Events captured.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the arena holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate resident size of the packed buffers, in bytes.
    pub fn bytes(&self) -> usize {
        self.chunks
            .iter()
            .map(|c| {
                c.line.capacity() * std::mem::size_of::<u64>()
                    + c.victim.capacity() * std::mem::size_of::<u64>()
                    + c.flags.capacity()
            })
            .sum()
    }

    /// Iterates over the arena's chunks as packed column views.
    pub fn chunks(&self) -> impl ExactSizeIterator<Item = EventChunkView<'_>> {
        self.chunks.iter().map(|c| EventChunkView {
            line: &c.line,
            victim: &c.victim,
            flags: &c.flags,
        })
    }

    /// Iterates over all events in capture order (decoded; tests and
    /// generic consumers — back-ends walk [`EventArena::chunks`] instead).
    pub fn iter(&self) -> impl Iterator<Item = MissEvent> + '_ {
        self.chunks().flat_map(|view| (0..view.len()).map(move |i| view.record(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: AccessKind, line: u64, victim: Option<(u64, bool)>) -> MissEvent {
        MissEvent {
            kind,
            line: LineAddr(line),
            victim: victim.map(|(l, w)| VictimLine { line: LineAddr(l), written: w }),
        }
    }

    #[test]
    fn round_trips_all_kinds_and_victim_states() {
        let cases = [
            ev(AccessKind::InstrFetch, 0x10, None),
            ev(AccessKind::Load, 0x20, Some((0x120, false))),
            ev(AccessKind::Store, 0x30, Some((0x130, true))),
            ev(AccessKind::InstrFetch, 0, Some((0, true))),
        ];
        let mut arena = EventArena::new();
        for &e in &cases {
            arena.push(e);
        }
        assert_eq!(arena.len(), cases.len() as u64);
        let got: Vec<MissEvent> = arena.iter().collect();
        assert_eq!(got, cases);
    }

    #[test]
    fn chunking_preserves_order_and_len() {
        let mut arena = EventArena::with_chunk_len(3);
        let events: Vec<MissEvent> = (0..10)
            .map(|i| {
                ev(AccessKind::Load, i, if i % 2 == 0 { Some((i + 100, i % 4 == 0)) } else { None })
            })
            .collect();
        for &e in &events {
            arena.push(e);
        }
        assert_eq!(arena.chunks().len(), 4, "10 events / 3 per chunk");
        let got: Vec<MissEvent> = arena.iter().collect();
        assert_eq!(got, events);
        // Chunk views cover exactly the stream.
        let total: usize = arena.chunks().map(|c| c.len()).sum();
        assert_eq!(total as u64, arena.len());
    }

    #[test]
    fn flags_pack_kind_and_victim_bits() {
        let e = ev(AccessKind::Store, 1, Some((2, true)));
        assert_eq!(e.flags(), EVENT_KIND_STORE | EVENT_HAS_VICTIM | EVENT_VICTIM_WRITTEN);
        let e = ev(AccessKind::InstrFetch, 1, None);
        assert_eq!(e.flags(), EVENT_KIND_FETCH);
    }

    #[test]
    fn bytes_reflects_packed_layout() {
        let mut arena = EventArena::with_chunk_len(64);
        for i in 0..64 {
            arena.push(ev(AccessKind::Load, i, None));
        }
        // One full chunk: 17 bytes per event, exact.
        assert_eq!(arena.bytes(), 64 * EVENT_BYTES_PER_RECORD);
    }

    #[test]
    fn empty_arena_is_well_formed() {
        let arena = EventArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.bytes(), 0);
        assert_eq!(arena.iter().count(), 0);
    }
}
