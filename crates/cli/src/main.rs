//! `tlc` — command-line front end to the two-level on-chip caching study.
//!
//! ```text
//! tlc evaluate --workload gcc1 --l1 8 --l2 64 --policy exclusive
//! tlc sweep    --workload tomcatv --offchip 200
//! tlc profile  --workload li
//! tlc timing   --size 32 --ways 4 --detailed
//! tlc workload myworkload.json --l1 8 --l2 128
//! ```
//!
//! Run `tlc help` for the full grammar. The paper's figures themselves
//! regenerate through the `repro` binary of the `tlc-bench` crate.

mod args;
mod commands;

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(raw) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
