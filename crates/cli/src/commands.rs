//! The `tlc` subcommand implementations. Each returns its report as a
//! `String` (so they are unit-testable) and takes parsed [`ArgMap`]s.

use crate::args::{ArgError, ArgMap};
use std::fmt::Write as _;
use tlc_area::{AreaModel, CacheGeometry, CellKind};
use tlc_cache::{ReplacementKind, StackDistanceProfiler};
use tlc_core::audit::{run_audit, AuditOptions};
use tlc_core::configspace::{full_space, SpaceOptions};
use tlc_core::experiment::capture_benchmark;
use tlc_core::experiment::{simulate_source, SimBudget};
use tlc_core::report::{envelope_table, points_csv, points_table};
use tlc_core::runner::{
    default_threads, try_sweep_arena_threads, try_sweep_family_arena_threads,
    try_sweep_filtered_arena_threads, try_sweep_predict_arena_threads, try_sweep_sampled_threads,
    try_sweep_streaming_threads, try_sweep_threads, ARENA_BYTES_LIMIT, ARENA_BYTES_PER_RECORD,
};
use tlc_core::sampling::{capture_phase_slices, sample_source, PhaseSample, SampleOptions};
use tlc_core::tpi::tpi_ns;
use tlc_core::{evaluate, L2Policy, MachineConfig, MachineTiming};
use tlc_obs::manifest::{fnv1a64, RunManifest, RunMeta};
use tlc_obs::Counter;
use tlc_timing::{DetailedTimingModel, EnergyModel, TimingModel};
use tlc_trace::compact::import_to_compact;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::specfile::WorkloadSpec;
use tlc_trace::{ImportFormat, InstructionSource, TraceArena, TraceReader, TraceStats};

/// Top-level usage text.
pub fn usage() -> String {
    "tlc — the two-level on-chip caching study (Jouppi & Wilton, WRL 93/3)\n\
     \n\
     usage: tlc <command> [options]\n\
     \n\
     commands:\n\
     \u{20} evaluate   evaluate one configuration on one workload\n\
     \u{20}            --workload gcc1 --l1 8 [--l2 64 --ways 4 --policy conventional|exclusive]\n\
     \u{20}            [--l2-repl lru|fifo|pseudo-random|tree-plru|srrip] [--offchip 50]\n\
     \u{20}            [--instr N] [--warmup N]\n\
     \u{20} sweep      sweep the paper's configuration space on one workload\n\
     \u{20}            --workload gcc1 [--offchip 50] [--ways 4] [--policy ...] [--csv] [--instr N]\n\
     \u{20}            [--l2-repl lru|fifo|pseudo-random|tree-plru|srrip]  L2 replacement policy\n\
     \u{20}            [--engine auto|streaming|arena|filtered|family|predict] [--threads N]\n\
     \u{20}            [--metrics out.json]  write a tlc-run-manifest/2 document\n\
     \u{20}            [--trace-out t.json]  Chrome trace-event timeline (open in ui.perfetto.dev)\n\
     \u{20}            [--progress]          live configs-done/ETA/events-per-second ticker on stderr\n\
     \u{20}            --trace t.trc         sweep a captured TLCTRC01 trace instead of a workload\n\
     \u{20}            --sample phases.json  replay only the trace's representative phases\n\
     \u{20}                                  (weighted recombination; --warmup N primes each slice)\n\
     \u{20} trace      on-disk traces: convert, phase-sample, and inspect\n\
     \u{20}            import IN OUT [--format auto|compact|instr|refs|text|addr-text|addr-bin]\n\
     \u{20}                          [--limit N]  convert IN to the compact TLCTRC01 format\n\
     \u{20}            sample FILE [--interval N] [--k N] [--seed S] [--out phases.json]\n\
     \u{20}                          cluster intervals into K phases (tlc-phase-sample/1)\n\
     \u{20}            info FILE [--interval N]  header, counts, footprint, per-interval summary\n\
     \u{20} profile    single-pass Mattson miss-ratio curve of a workload\n\
     \u{20}            --workload li [--instr N]\n\
     \u{20} timing     access/cycle time, area, and energy of one cache\n\
     \u{20}            --size 32 [--ways 1] [--dual] [--detailed]\n\
     \u{20} workload   run a custom JSON workload spec (see docs/tutorial.md)\n\
     \u{20}            <spec.json> [--l1 8 --l2 64 ...] [--instr N]\n\
     \u{20} compare    every organisation side by side on one workload\n\
     \u{20}            --workload gcc1 [--l1 4] [--l2 32] [--instr N]\n\
     \u{20} audit      differential fuzz of every engine against the naive oracle\n\
     \u{20}            [--seconds N] [--seed S] [--cases N] [--corpus DIR] [--json out.json]\n\
     \u{20}            [--progress]  cases/s, elapsed-vs-budget, and divergences on stderr\n\
     \u{20}            exits non-zero on any divergence; shrunk witnesses land in DIR\n\
     \u{20} runs       registry of sweep manifests with regression diffing\n\
     \u{20}            list [--dir D]       runs filed under D (default .tlc/runs)\n\
     \u{20}            show ID              counters/histograms/span tree of one run\n\
     \u{20}            add manifest.json    file a --metrics manifest into the registry\n\
     \u{20}            diff A B             compare two runs (registry id prefixes or\n\
     \u{20}                                 manifest files; also --baseline/--candidate);\n\
     \u{20}                                 [--tol-wall F] [--tol-counter F] [--tol-quantile F]\n\
     \u{20}                                 [--tol-memory F]; exits non-zero on regression\n\
     \u{20} list       list built-in workloads\n"
        .to_string()
}

fn parse_workload(args: &ArgMap) -> Result<SpecBenchmark, ArgError> {
    let name: String = args.require("workload")?;
    let name = name.as_str();
    SpecBenchmark::from_name(name).ok_or_else(|| {
        ArgError(format!(
            "unknown workload {name:?}; choose one of: {}",
            SpecBenchmark::ALL.map(|b| b.name()).join(" ")
        ))
    })
}

/// `--l2-repl`: the L2 replacement policy, defaulting to the paper's
/// pseudo-random baseline. Unknown names are a typed [`ArgError`], never
/// a silent fallback.
fn parse_l2_repl(args: &ArgMap) -> Result<ReplacementKind, ArgError> {
    match args.get("l2-repl").unwrap_or("pseudo-random") {
        "lru" => Ok(ReplacementKind::Lru),
        "fifo" => Ok(ReplacementKind::Fifo),
        "pseudo-random" => Ok(ReplacementKind::PseudoRandom),
        "tree-plru" => Ok(ReplacementKind::TreePlru),
        "srrip" => Ok(ReplacementKind::Srrip),
        other => Err(ArgError(format!(
            "unknown replacement policy {other:?}; choose lru, fifo, pseudo-random, tree-plru \
             or srrip"
        ))),
    }
}

fn parse_machine(args: &ArgMap) -> Result<MachineConfig, ArgError> {
    let l1: u64 = args.get_or("l1", 8)?;
    let offchip: f64 = args.get_or("offchip", 50.0)?;
    let l2: u64 = args.get_or("l2", 0)?;
    let ways: u32 = args.get_or("ways", 4)?;
    let policy = match args.get("policy").unwrap_or("conventional") {
        "conventional" => L2Policy::Conventional,
        "exclusive" => L2Policy::Exclusive,
        other => return Err(ArgError(format!("unknown policy {other:?}"))),
    };
    let repl = parse_l2_repl(args)?;
    let mut cfg = if l2 == 0 {
        MachineConfig::single_level(l1, offchip)
    } else {
        MachineConfig::two_level(l1, l2, ways, policy, offchip)
    };
    if let Some(spec) = cfg.l2.as_mut() {
        spec.repl = repl;
    }
    if args.flag("dual") {
        cfg = cfg.with_l1_cell(CellKind::DualPorted);
    }
    Ok(cfg)
}

fn parse_budget(args: &ArgMap) -> Result<SimBudget, ArgError> {
    let mut b = SimBudget::standard();
    b.instructions = args.get_or("instr", b.instructions)?;
    b.warmup_instructions = args.get_or("warmup", b.warmup_instructions)?;
    Ok(b)
}

/// `tlc evaluate`.
pub fn cmd_evaluate(args: &ArgMap) -> Result<String, ArgError> {
    let benchmark = parse_workload(args)?;
    let cfg = parse_machine(args)?;
    let budget = parse_budget(args)?;
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let p = evaluate(&cfg, benchmark, budget, &timing, &area);
    let mut out = String::new();
    let _ = writeln!(out, "configuration : {cfg}");
    let _ = writeln!(out, "workload      : {benchmark}");
    let _ = writeln!(out, "area          : {:.0} rbe", p.area_rbe);
    let _ = writeln!(out, "cycle         : {:.2} ns (L2 = {} cycles)", p.l1_cycle_ns, p.l2_cycles);
    let _ = writeln!(out, "stats         : {}", p.stats);
    let _ = writeln!(out, "TPI           : {:.2} ns/instruction (CPI {:.2})", p.tpi_ns, p.cpi);
    Ok(out)
}

/// The stream a sweep replays: a built-in synthetic benchmark, or an
/// on-disk compact trace (optionally reduced to its representative
/// phases).
enum SweepInput {
    Bench(SpecBenchmark),
    Trace {
        reader: Box<TraceReader<std::io::BufReader<std::fs::File>>>,
        sample: Option<PhaseSample>,
    },
}

/// Opens a `TLCTRC01` trace for streaming, named after its file stem.
fn open_trace_reader(
    path: &str,
) -> Result<TraceReader<std::io::BufReader<std::fs::File>>, ArgError> {
    let file =
        std::fs::File::open(path).map_err(|e| ArgError(format!("cannot open {path}: {e}")))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace")
        .to_string();
    TraceReader::new(std::io::BufReader::new(file), name).map_err(|e| {
        ArgError(format!("{path}: {e} (is this a TLCTRC01 file? see `tlc trace import`)"))
    })
}

/// `tlc sweep`.
pub fn cmd_sweep(args: &ArgMap) -> Result<String, ArgError> {
    let trace_path = args.get("trace").map(str::to_string);
    let sample_path = args.get("sample").map(str::to_string);
    if sample_path.is_some() && trace_path.is_none() {
        return Err(ArgError("--sample requires --trace".into()));
    }
    let (input, bench_name, budget) = match &trace_path {
        None => {
            let b = parse_workload(args)?;
            (SweepInput::Bench(b), b.name().to_string(), parse_budget(args)?)
        }
        Some(path) => {
            let reader = open_trace_reader(path)?;
            let name = reader.source_name().to_string();
            let sample = match &sample_path {
                None => None,
                Some(spath) => {
                    let json = std::fs::read_to_string(spath)
                        .map_err(|e| ArgError(format!("cannot read {spath}: {e}")))?;
                    let sample = PhaseSample::from_json(&json)
                        .map_err(|e| ArgError(format!("{spath}: {e}")))?;
                    sample.validate().map_err(|e| ArgError(format!("{spath}: {e}")))?;
                    Some(sample)
                }
            };
            // Trace mode defaults to the whole stream with no warm-up
            // discard; in sampled mode --warmup primes each slice instead.
            let budget = SimBudget {
                instructions: args.get_or("instr", u64::MAX)?,
                warmup_instructions: args.get_or("warmup", 0)?,
            };
            (SweepInput::Trace { reader: Box::new(reader), sample }, name, budget)
        }
    };
    let ways: u32 = args.get_or("ways", 4)?;
    let offchip: f64 = args.get_or("offchip", 50.0)?;
    let policy = match args.get("policy").unwrap_or("conventional") {
        "conventional" => L2Policy::Conventional,
        "exclusive" => L2Policy::Exclusive,
        other => return Err(ArgError(format!("unknown policy {other:?}"))),
    };
    let repl = parse_l2_repl(args)?;
    let cell = if args.flag("dual") { CellKind::DualPorted } else { CellKind::SinglePorted };
    let opts = SpaceOptions {
        offchip_ns: offchip,
        l2_ways: ways,
        l2_policy: policy,
        l2_repl: repl,
        l1_cell: cell,
    };
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let threads: usize = args.get_or("threads", default_threads())?;
    if threads == 0 {
        return Err(ArgError("--threads must be at least 1".into()));
    }
    let engine = args.get("engine").unwrap_or("auto").to_string();
    if !["auto", "streaming", "arena", "filtered", "family", "predict"].contains(&engine.as_str()) {
        return Err(ArgError(format!(
            "unknown engine {engine:?}; choose auto, streaming, arena, filtered, family or \
             predict"
        )));
    }
    match &input {
        SweepInput::Trace { sample: Some(_), .. }
            if !["auto", "family"].contains(&engine.as_str()) =>
        {
            return Err(ArgError(format!(
                "--sample replays phases through the family engine; --engine {engine} does not \
                 apply"
            )));
        }
        SweepInput::Trace { .. } if engine == "streaming" => {
            return Err(ArgError(
                "--engine streaming regenerates a synthetic workload; a --trace sweep always \
                 replays the captured stream (use auto, arena, filtered, family or predict)"
                    .into(),
            ));
        }
        _ => {}
    }
    let metrics_path = args.get("metrics").map(str::to_string);
    let trace_out_path = args.get("trace-out").map(str::to_string);
    let configs = full_space(&opts);

    // One observability epoch per sweep: counters and spans drained by
    // this run's manifest must not include a previous run's.
    tlc_obs::reset();
    let ticker = args.flag("progress").then(|| ProgressTicker::start(configs.len()));
    let start = std::time::Instant::now();
    // Trace decode problems surface *during* capture (the reader parks
    // them); collected here and reported after the ticker is stopped.
    let mut trace_error: Option<String> = None;
    let result = {
        let _span = tlc_obs::obs_span!("sweep");
        match input {
            SweepInput::Bench(benchmark) => {
                let capture = |name: &'static str| {
                    let _span = tlc_obs::PhaseSpan::enter(name);
                    capture_benchmark(benchmark, budget)
                };
                match engine.as_str() {
                    // The default heuristic: family-batched miss-stream
                    // filtering over a captured arena, streaming when the
                    // capture would be enormous.
                    "auto" => {
                        try_sweep_threads(&configs, benchmark, budget, &timing, &area, threads)
                    }
                    "streaming" => try_sweep_streaming_threads(
                        &configs, benchmark, budget, &timing, &area, threads,
                    ),
                    "arena" => {
                        let arena = capture("arena_capture");
                        try_sweep_arena_threads(&configs, &arena, budget, &timing, &area, threads)
                    }
                    "filtered" => {
                        let arena = capture("arena_capture");
                        try_sweep_filtered_arena_threads(
                            &configs, &arena, budget, &timing, &area, threads,
                        )
                    }
                    "family" => {
                        let arena = capture("arena_capture");
                        try_sweep_family_arena_threads(
                            &configs, &arena, budget, &timing, &area, threads,
                        )
                    }
                    // Analytical prediction: one reuse-distance pass per L1
                    // group answers every conventional point; exclusive
                    // members stay on replay. ε-accurate, not bit-identical
                    // (see docs/models.md).
                    "predict" => {
                        let arena = capture("arena_capture");
                        try_sweep_predict_arena_threads(
                            &configs, &arena, budget, &timing, &area, threads,
                        )
                    }
                    _ => unreachable!("engine validated above"),
                }
            }
            SweepInput::Trace { mut reader, sample: Some(sample) } => {
                // Sampled sweep: capture only the representative slices,
                // sweep each with the family engine, recombine weighted.
                let slices = {
                    let _span = tlc_obs::PhaseSpan::enter("slice_capture");
                    capture_phase_slices(&mut *reader, &sample, budget.warmup_instructions)
                };
                match reader.take_error() {
                    Some(e) => {
                        trace_error = Some(e.to_string());
                        Ok(Vec::new())
                    }
                    None => try_sweep_sampled_threads(&configs, &slices, &timing, &area, threads),
                }
            }
            SweepInput::Trace { mut reader, sample: None } => {
                // Full-trace sweep: capture the whole stream (or --instr
                // worth) into an arena, then fan out like any other sweep.
                let cap = if budget.instructions == u64::MAX {
                    (ARENA_BYTES_LIMIT / ARENA_BYTES_PER_RECORD) as u64
                } else {
                    budget.warmup_instructions.saturating_add(budget.instructions)
                };
                let arena = {
                    let _span = tlc_obs::PhaseSpan::enter("trace_capture");
                    TraceArena::capture(&mut *reader, cap)
                };
                if let Some(e) = reader.take_error() {
                    trace_error = Some(e.to_string());
                }
                if trace_error.is_none()
                    && budget.instructions == u64::MAX
                    && arena.len() == cap
                    && reader.try_next().is_ok_and(|r| r.is_some())
                {
                    trace_error = Some(format!(
                        "trace exceeds the {} MiB arena budget; sweep a prefix with --instr N or \
                         sample it first (tlc trace sample + --sample)",
                        ARENA_BYTES_LIMIT >> 20
                    ));
                }
                if trace_error.is_some() {
                    Ok(Vec::new())
                } else {
                    let budget = SimBudget {
                        instructions: arena.len().saturating_sub(budget.warmup_instructions),
                        warmup_instructions: budget.warmup_instructions,
                    };
                    match engine.as_str() {
                        "arena" => try_sweep_arena_threads(
                            &configs, &arena, budget, &timing, &area, threads,
                        ),
                        "filtered" => try_sweep_filtered_arena_threads(
                            &configs, &arena, budget, &timing, &area, threads,
                        ),
                        "predict" => try_sweep_predict_arena_threads(
                            &configs, &arena, budget, &timing, &area, threads,
                        ),
                        // auto == family for a captured trace.
                        _ => try_sweep_family_arena_threads(
                            &configs, &arena, budget, &timing, &area, threads,
                        ),
                    }
                }
            }
        }
    };
    if let Some(t) = ticker {
        t.stop();
    }
    if let Err(e) = &result {
        tlc_obs::record_event("worker.panic", e.to_string());
    }
    // Drain the raw spans once: the Perfetto timeline consumes them
    // per-instance, the manifest aggregates the same records into its
    // span tree.
    let spans = tlc_obs::take_spans();
    let trace_json =
        trace_out_path.as_ref().map(|_| tlc_obs::trace_export::chrome_trace_json(&spans));
    let manifest = RunManifest::from_parts(
        RunMeta {
            command: "sweep".to_string(),
            benchmark: bench_name.clone(),
            engine,
            threads: threads as u64,
            configs: configs.len() as u64,
            config_space_hash: config_space_hash(&configs),
            wall_s: start.elapsed().as_secs_f64(),
        },
        spans,
        tlc_obs::take_events(),
        tlc_obs::counters().snapshot(),
    );
    // The manifest is written even when the sweep failed — the recorded
    // fallbacks and the worker.panic event are exactly what a post-mortem
    // needs.
    if let Some(path) = &metrics_path {
        std::fs::write(path, manifest.to_json())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    }
    if let (Some(path), Some(json)) = (&trace_out_path, trace_json) {
        std::fs::write(path, json).map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    }
    if let Some(e) = trace_error {
        return Err(ArgError(e));
    }
    let points = result.map_err(|e| ArgError(format!("sweep worker thread panicked at {e}")))?;
    if args.flag("csv") {
        return Ok(points_csv(&points));
    }
    let title = format!(
        "{bench_name}: {offchip}ns off-chip, {ways}-way {} L2{}",
        if policy == L2Policy::Exclusive { "exclusive" } else { "conventional" },
        if cell == CellKind::DualPorted { ", dual-ported L1" } else { "" }
    );
    let mut out = points_table(&title, &points);
    out.push('\n');
    out.push_str(&envelope_table("best performance envelope:", &points));
    Ok(out)
}

/// Deterministic identity of a swept configuration space: FNV-1a 64
/// over its JSON serialization, hex-encoded. Ties a manifest to the
/// exact design points it measured (the std hasher is randomly seeded
/// per process, so it cannot serve here).
fn config_space_hash(configs: &[MachineConfig]) -> String {
    let json = serde_json::to_string(&configs.to_vec()).expect("configs serialize");
    format!("{:016x}", fnv1a64(json.as_bytes()))
}

/// The `--progress` stderr ticker: a sampling thread reading the global
/// counters every 200 ms, reporting configs done, elapsed/ETA, and
/// event throughput. In uninstrumented builds the counters never move,
/// so it prints one notice and exits instead of ticking zeros.
struct ProgressTicker {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl ProgressTicker {
    fn start(total: usize) -> ProgressTicker {
        use std::sync::atomic::Ordering;
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let seen = stop.clone();
        let handle = std::thread::spawn(move || {
            if !tlc_obs::ENABLED {
                eprintln!("# progress: this build has instrumentation disabled; no live counters");
                return;
            }
            let start = std::time::Instant::now();
            while !seen.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(200));
                if seen.load(Ordering::Relaxed) {
                    break;
                }
                let done = tlc_obs::counters().get(Counter::RunnerConfigsCompleted);
                let predicted = tlc_obs::counters().get(Counter::PredictConfigsPredicted);
                let events = tlc_obs::counters().get(Counter::FilterEventsDecoded)
                    + tlc_obs::counters().get(Counter::L2EventsReplayed);
                let elapsed = start.elapsed().as_secs_f64();
                // Analytically-predicted configs complete near-instantly;
                // pacing the ETA on them would promise the replayed
                // remainder far too soon. Extrapolate from replay-paced
                // completions only (with no predictions this is `done`).
                let pace_basis = done.saturating_sub(predicted);
                let eta = if pace_basis > 0 {
                    format!(
                        "{:.1}s",
                        elapsed * (total.saturating_sub(done as usize)) as f64 / pace_basis as f64
                    )
                } else {
                    "?".to_string()
                };
                let split = if predicted > 0 {
                    format!(" ({predicted} predicted, {pace_basis} replayed)")
                } else {
                    String::new()
                };
                // The arena/streaming engines feed neither filter nor
                // replay counters; leave throughput off rather than
                // reporting a misleading zero.
                let rate = if events > 0 {
                    format!(", {:.1} M events/s", events as f64 / elapsed / 1e6)
                } else {
                    String::new()
                };
                eprintln!(
                    "# sweep progress: {done}/{total} configs{split}, {elapsed:.1}s elapsed, eta {eta}{rate}"
                );
            }
        });
        ProgressTicker { stop, handle }
    }

    fn stop(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// The `tlc audit --progress` ticker: like [`ProgressTicker`] but paced
/// against the audit's own counters — cases/s, elapsed against the
/// `--seconds` budget, and divergences found so far.
struct AuditTicker {
    stop: std::sync::Arc<std::sync::atomic::AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl AuditTicker {
    fn start(budget_s: f64) -> AuditTicker {
        use std::sync::atomic::Ordering;
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let seen = stop.clone();
        let handle = std::thread::spawn(move || {
            if !tlc_obs::ENABLED {
                eprintln!("# progress: this build has instrumentation disabled; no live counters");
                return;
            }
            let start = std::time::Instant::now();
            while !seen.load(Ordering::Relaxed) {
                std::thread::sleep(std::time::Duration::from_millis(200));
                if seen.load(Ordering::Relaxed) {
                    break;
                }
                let cases = tlc_obs::counters().get(Counter::AuditCases);
                let divergences = tlc_obs::counters().get(Counter::AuditDivergences);
                let elapsed = start.elapsed().as_secs_f64();
                eprintln!(
                    "# audit progress: {cases} cases ({:.0}/s), {elapsed:.1}s of {budget_s:.1}s budget, {divergences} divergence(s)",
                    cases as f64 / elapsed.max(1e-9)
                );
            }
        });
        AuditTicker { stop, handle }
    }

    fn stop(self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        let _ = self.handle.join();
    }
}

/// `tlc profile`.
pub fn cmd_profile(args: &ArgMap) -> Result<String, ArgError> {
    let benchmark = parse_workload(args)?;
    let n: u64 = args.get_or("instr", 500_000)?;
    let mut w = benchmark.workload();
    let mut pi = StackDistanceProfiler::new();
    let mut pd = StackDistanceProfiler::new();
    for _ in 0..n {
        let rec = w.next_instruction();
        pi.record(rec.fetch.line(16));
        if let Some(d) = rec.data {
            pd.record(d.addr.line(16));
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{benchmark}: fully-associative LRU miss ratios from one Mattson pass ({n} instructions)"
    );
    let _ = writeln!(
        out,
        "instr stream: {} refs, {} unique lines; data stream: {} refs, {} unique lines\n",
        pi.accesses(),
        pi.unique_lines(),
        pd.accesses(),
        pd.unique_lines()
    );
    let _ = writeln!(out, "{:>8} {:>12} {:>12} {:>12}", "size", "instr", "data", "combined");
    for kb in [1u64, 2, 4, 8, 16, 32, 64, 128, 256] {
        let lines = kb * 1024 / 16;
        let mi = pi.miss_ratio_at_capacity(lines);
        let md = pd.miss_ratio_at_capacity(lines);
        let combined = (pi.misses_at_capacity(lines) + pd.misses_at_capacity(lines)) as f64
            / (pi.accesses() + pd.accesses()) as f64;
        let _ = writeln!(out, "{kb:>7}K {mi:>12.4} {md:>12.4} {combined:>12.4}");
    }
    Ok(out)
}

/// `tlc timing`.
pub fn cmd_timing(args: &ArgMap) -> Result<String, ArgError> {
    let kb: u64 = args.get_or("size", 32)?;
    let ways: u32 = args.get_or("ways", 1)?;
    if kb == 0 || !kb.is_power_of_two() {
        return Err(ArgError("--size must be a power-of-two KB count".into()));
    }
    let cell = if args.flag("dual") { CellKind::DualPorted } else { CellKind::SinglePorted };
    let geom = CacheGeometry { size_bytes: kb * 1024, line_bytes: 16, ways, addr_bits: 32 };
    if geom.lines() < ways as u64 || !ways.is_power_of_two() {
        return Err(ArgError(format!("a {kb}KB cache cannot be {ways}-way")));
    }
    let area = AreaModel::new();
    let energy = EnergyModel::new();
    let mut out = String::new();
    let _ = writeln!(out, "{kb}KB {ways}-way, {cell} cells:");
    let t = if args.flag("detailed") {
        let m = DetailedTimingModel::paper();
        let _ = writeln!(out, "(transistor-level Horowitz/RC model)");
        m.optimal(&geom, cell)
    } else {
        TimingModel::paper().optimal(&geom, cell)
    };
    let a = area.cache_area(&geom, &t.org, cell);
    let e = energy.access_energy(&geom, &t.org, cell);
    let _ = writeln!(out, "  timing : {t}");
    let _ =
        writeln!(out, "  area   : {} ({:.1}% periphery)", a.total(), a.overhead_fraction() * 100.0);
    let _ = writeln!(out, "  energy : {e}");
    Ok(out)
}

/// `tlc workload <spec.json>`.
pub fn cmd_workload(args: &ArgMap) -> Result<String, ArgError> {
    let path = args
        .positional(1)
        .ok_or_else(|| ArgError("usage: tlc workload <spec.json> [options]".into()))?;
    let json =
        std::fs::read_to_string(path).map_err(|e| ArgError(format!("cannot read {path}: {e}")))?;
    let spec = WorkloadSpec::from_json(&json).map_err(|e| ArgError(e.to_string()))?;
    let mut workload = spec.build().map_err(|e| ArgError(e.to_string()))?;
    let cfg = parse_machine(args)?;
    let budget = parse_budget(args)?;
    let timing = TimingModel::paper();
    let area = AreaModel::new();
    let stats = simulate_source(&cfg, &mut workload, budget);
    let t = MachineTiming::derive(&cfg, &timing, &area);
    let tpi = tpi_ns(&stats, &t);
    let mut out = String::new();
    let _ = writeln!(out, "workload      : {} (from {path})", spec.name);
    let _ = writeln!(out, "configuration : {cfg}");
    let _ = writeln!(out, "area          : {:.0} rbe", t.area_rbe);
    let _ = writeln!(out, "stats         : {stats}");
    let _ = writeln!(out, "TPI           : {tpi:.2} ns/instruction");
    Ok(out)
}

/// `tlc compare`: every cache organisation at one geometry.
pub fn cmd_compare(args: &ArgMap) -> Result<String, ArgError> {
    use tlc_cache::{
        Associativity, CacheConfig, ConventionalTwoLevel, ExclusiveTwoLevel, InclusiveTwoLevel,
        MemorySystem, SingleLevel, StreamBufferSystem, VictimCacheSystem,
    };
    let benchmark = parse_workload(args)?;
    let l1_kb: u64 = args.get_or("l1", 4)?;
    let l2_kb: u64 = args.get_or("l2", 32)?;
    let n: u64 = args.get_or("instr", 300_000)?;
    if !l1_kb.is_power_of_two() || !l2_kb.is_power_of_two() || l2_kb < l1_kb {
        return Err(ArgError("--l1/--l2 must be powers of two with l2 >= l1".into()));
    }
    let l1 = CacheConfig::paper(l1_kb * 1024, Associativity::Direct)
        .map_err(|e| ArgError(e.to_string()))?;
    let l2 = CacheConfig::paper(l2_kb * 1024, Associativity::SetAssoc(4))
        .map_err(|e| ArgError(e.to_string()))?;

    let mut systems: Vec<Box<dyn MemorySystem>> = vec![
        Box::new(SingleLevel::new(l1)),
        Box::new(VictimCacheSystem::new(l1, 8).map_err(|e| ArgError(e.to_string()))?),
        Box::new(StreamBufferSystem::new(l1, 8, 4)),
        Box::new(InclusiveTwoLevel::new(l1, l2)),
        Box::new(ConventionalTwoLevel::new(l1, l2)),
        Box::new(ExclusiveTwoLevel::new(l1, l2)),
    ];
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{benchmark}, {n} instructions; {l1_kb}KB DM L1 pair, {l2_kb}KB 4-way L2 where applicable\n"
    );
    let _ = writeln!(out, "{:>10} {:>10} {:>10}  organisation", "L1 miss", "L2 local", "off-chip");
    for sys in &mut systems {
        let mut w = benchmark.workload();
        for _ in 0..n {
            let rec = w.next_instruction();
            sys.access_instruction(&rec);
        }
        let s = sys.stats();
        let _ = writeln!(
            out,
            "{:>10.4} {:>10.4} {:>10}  {}",
            s.l1_miss_rate(),
            s.l2_local_miss_rate(),
            s.l2_misses,
            sys.describe()
        );
    }
    Ok(out)
}

/// `tlc list`.
pub fn cmd_list() -> String {
    let mut out = String::from("built-in workloads (synthetic SPEC'89-like, Table 1):\n");
    for b in SpecBenchmark::ALL {
        let r = b.paper_refs();
        let _ = writeln!(
            out,
            "  {:<9} paper {:.1}M instr / {:.1}M data refs; data/instr {:.3}",
            b.name(),
            r.instr_m,
            r.data_m,
            b.data_per_instr()
        );
    }
    out.push_str("\npaper exhibits: see `repro --list` (tlc-bench crate)\n");
    out
}

/// `tlc audit` — randomized differential audit of every replay engine
/// against the naive per-access reference oracle.
pub fn cmd_audit(args: &ArgMap) -> Result<String, ArgError> {
    let defaults = AuditOptions::default();
    // Seeds are echoed back in hex (`rerun with --seed 0x…`), so accept
    // both decimal and 0x-prefixed hex on the way in (shared with
    // `trace sample --seed`).
    let seed = args.get_seed_or("seed", defaults.seed)?;
    let opts = AuditOptions {
        seed,
        seconds: args.get_or("seconds", defaults.seconds)?,
        min_cases: args.get_or("cases", defaults.min_cases)?,
        corpus_dir: args.get("corpus").map(std::path::PathBuf::from),
        ..defaults
    };
    // The ticker paces against the `audit.cases`/`audit.divergences`
    // counters, so start them from zero for this run.
    tlc_obs::reset();
    let ticker = args.flag("progress").then(|| AuditTicker::start(opts.seconds));
    let report = run_audit(&opts);
    if let Some(t) = ticker {
        t.stop();
    }
    if let Some(path) = args.get("json") {
        std::fs::write(path, report.to_json())
            .map_err(|e| ArgError(format!("cannot write {path}: {e}")))?;
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "audit: seed {:#018x}, {} cases in {:.1}s across {}",
        report.seed,
        report.cases,
        report.elapsed_seconds,
        report.engines.join("/")
    );
    for c in &report.checks {
        let _ =
            writeln!(out, "  {:<32} {:>7} runs  {:>4} divergences", c.name, c.runs, c.divergences);
    }
    if report.is_clean() {
        out.push_str("clean: every engine agreed with the oracle on every case.\n");
        Ok(out)
    } else {
        for d in &report.divergences {
            let _ = writeln!(
                out,
                "DIVERGENCE case {} [{}] {} on {}: {}{}",
                d.case_index,
                d.check,
                d.config,
                d.workload,
                d.detail,
                d.corpus_entry.as_deref().map(|s| format!(" (corpus: {s})")).unwrap_or_default()
            );
        }
        Err(ArgError(format!(
            "{out}audit found {} divergence(s); rerun with --seed {:#x} to reproduce",
            report.divergences.len(),
            report.seed
        )))
    }
}

/// `tlc runs` — the persisted run registry: `list`, `show`, `add`, and
/// the regression ratchet `diff`.
pub fn cmd_runs(args: &ArgMap) -> Result<String, ArgError> {
    use tlc_obs::registry::{RunRegistry, DEFAULT_DIR};
    let dir = std::path::PathBuf::from(args.get("dir").unwrap_or(DEFAULT_DIR));
    match args.positional(1) {
        Some("list") => {
            let reg = RunRegistry::open(&dir).map_err(ArgError)?;
            let entries = reg.list().map_err(ArgError)?;
            if entries.is_empty() {
                return Ok(format!(
                    "no runs registered under {} (file one with `tlc runs add manifest.json`)\n",
                    dir.display()
                ));
            }
            let mut out = String::new();
            let _ = writeln!(out, "{:<44} {:<10} {:<10} {:>9}", "id", "workload", "engine", "wall");
            for e in &entries {
                let _ = writeln!(
                    out,
                    "{:<44} {:<10} {:<10} {:>8.2}s",
                    e.id, e.benchmark, e.engine, e.wall_s
                );
            }
            let _ = writeln!(out, "{} run(s) under {}", entries.len(), dir.display());
            Ok(out)
        }
        Some("show") => {
            let id = args
                .positional(2)
                .ok_or_else(|| ArgError("usage: tlc runs show ID [--dir D]".into()))?;
            let manifest = resolve_manifest(&dir, id)?;
            Ok(manifest.render_text())
        }
        Some("add") => {
            let path = args
                .positional(2)
                .ok_or_else(|| ArgError("usage: tlc runs add manifest.json [--dir D]".into()))?;
            let manifest = tlc_obs::registry::load_manifest_file(std::path::Path::new(path))
                .map_err(ArgError)?;
            let reg = RunRegistry::open(&dir).map_err(ArgError)?;
            let id = reg.add(&manifest).map_err(ArgError)?;
            Ok(format!("registered {id} under {}\n", dir.display()))
        }
        Some("diff") => cmd_runs_diff(args, &dir),
        _ => Err(ArgError("usage: tlc runs <list|show|add|diff> ... (see tlc help)".into())),
    }
}

/// `tlc runs diff A B` — compare a candidate run against a baseline and
/// fail (non-zero exit) if anything regressed beyond tolerance.
fn cmd_runs_diff(args: &ArgMap, dir: &std::path::Path) -> Result<String, ArgError> {
    use tlc_obs::registry::{diff_manifests, DiffTolerances};
    // Operands can be positional (`diff A B`) or named, which reads
    // better in CI scripts (`diff --baseline ci/baseline.json --candidate m.json`).
    let baseline_ref = args
        .get("baseline")
        .or_else(|| args.positional(2))
        .ok_or_else(|| ArgError("usage: tlc runs diff BASELINE CANDIDATE [--tol-* F]".into()))?
        .to_string();
    let candidate_ref = args
        .get("candidate")
        .or_else(|| {
            // With `--baseline X` the candidate may be the only positional.
            if args.get("baseline").is_some() {
                args.positional(2)
            } else {
                args.positional(3)
            }
        })
        .ok_or_else(|| ArgError("usage: tlc runs diff BASELINE CANDIDATE [--tol-* F]".into()))?
        .to_string();
    let defaults = DiffTolerances::default();
    let tol = DiffTolerances {
        wall_frac: args.get_or("tol-wall", defaults.wall_frac)?,
        counter_frac: args.get_or("tol-counter", defaults.counter_frac)?,
        quantile_frac: args.get_or("tol-quantile", defaults.quantile_frac)?,
        memory_frac: args.get_or("tol-memory", defaults.memory_frac)?,
    };
    let baseline = resolve_manifest(dir, &baseline_ref)?;
    let candidate = resolve_manifest(dir, &candidate_ref)?;
    let report = diff_manifests(&baseline, &candidate, tol);
    let rendered = report.render_text();
    let regressions = report.regressions();
    if regressions.is_empty() {
        Ok(rendered)
    } else {
        Err(ArgError(format!(
            "{rendered}{} metric(s) regressed beyond tolerance ({candidate_ref} vs {baseline_ref})",
            regressions.len()
        )))
    }
}

/// Resolves a diff/show operand: an existing manifest file wins, then a
/// path-looking operand is treated as a file, anything else as a
/// registry id (or unique prefix).
fn resolve_manifest(
    dir: &std::path::Path,
    operand: &str,
) -> Result<tlc_obs::manifest::RunManifest, ArgError> {
    let path = std::path::Path::new(operand);
    if path.is_file() || operand.contains('/') || operand.ends_with(".json") {
        return tlc_obs::registry::load_manifest_file(path).map_err(ArgError);
    }
    let reg = tlc_obs::registry::RunRegistry::open(dir).map_err(ArgError)?;
    reg.load(operand).map_err(ArgError)
}

/// `tlc trace` — on-disk trace utilities: `import`, `sample`, `info`.
pub fn cmd_trace(args: &ArgMap) -> Result<String, ArgError> {
    match args.positional(1) {
        Some("import") => cmd_trace_import(args),
        Some("sample") => cmd_trace_sample(args),
        Some("info") => cmd_trace_info(args),
        _ => Err(ArgError("usage: tlc trace <import|sample|info> ... (see tlc help)".into())),
    }
}

/// `tlc trace import IN OUT` — convert any supported trace format to
/// compact `TLCTRC01`.
fn cmd_trace_import(args: &ArgMap) -> Result<String, ArgError> {
    let input = args.positional(2).ok_or_else(|| {
        ArgError("usage: tlc trace import IN OUT [--format F] [--limit N]".into())
    })?;
    let output = args.positional(3).ok_or_else(|| {
        ArgError("usage: tlc trace import IN OUT [--format F] [--limit N]".into())
    })?;
    let limit = match args.get("limit") {
        None => None,
        Some(_) => Some(args.require::<u64>("limit")?),
    };
    let format = match args.get("format").unwrap_or("auto") {
        "auto" => {
            // Sniff the first bytes; magic formats identify themselves,
            // text formats by their line shape. The window is generous
            // so a text trace's `#` comment header cannot swallow it
            // before the first payload line.
            let mut prefix = [0u8; 4096];
            let mut f = std::fs::File::open(input)
                .map_err(|e| ArgError(format!("cannot open {input}: {e}")))?;
            let mut filled = 0usize;
            while filled < prefix.len() {
                match std::io::Read::read(&mut f, &mut prefix[filled..]) {
                    Ok(0) => break,
                    Ok(n) => filled += n,
                    Err(e) => return Err(ArgError(format!("cannot read {input}: {e}"))),
                }
            }
            ImportFormat::detect(&prefix[..filled])
        }
        other => ImportFormat::parse(other).ok_or_else(|| {
            ArgError(format!(
                "unknown format {other:?}; choose auto, compact, instr, refs, text, addr-text or \
                 addr-bin"
            ))
        })?,
    };
    let reader = std::io::BufReader::new(
        std::fs::File::open(input).map_err(|e| ArgError(format!("cannot open {input}: {e}")))?,
    );
    let writer = std::io::BufWriter::new(
        std::fs::File::create(output)
            .map_err(|e| ArgError(format!("cannot create {output}: {e}")))?,
    );
    let written = import_to_compact(format, reader, writer, limit)
        .map_err(|e| ArgError(format!("{input}: {e}")))?;
    let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "imported {written} instructions from {input} ({}) -> {output} ({bytes} bytes, {:.2} \
         B/instr)\n",
        format.name(),
        if written > 0 { bytes as f64 / written as f64 } else { 0.0 }
    ))
}

/// `tlc trace sample FILE` — cluster the trace's intervals into K
/// representative phases and persist the weighted selection.
fn cmd_trace_sample(args: &ArgMap) -> Result<String, ArgError> {
    let path = args.positional(2).ok_or_else(|| {
        ArgError("usage: tlc trace sample FILE [--interval N] [--k N] [--seed S] [--out F]".into())
    })?;
    let defaults = SampleOptions::default();
    let opts = SampleOptions {
        interval: args.get_or("interval", defaults.interval)?,
        phases: args.get_or("k", defaults.phases)?,
        seed: args.get_seed_or("seed", defaults.seed)?,
    };
    if opts.interval == 0 {
        return Err(ArgError("--interval must be at least 1".into()));
    }
    let mut reader = open_trace_reader(path)?;
    let sample = sample_source(&mut reader, &opts);
    if let Some(e) = reader.take_error() {
        return Err(ArgError(format!("{path}: {e}")));
    }
    sample.validate().map_err(|e| ArgError(format!("{path}: sampling failed: {e}")))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{}: {} instructions in {} intervals of {} -> {} phases (k {}, seed {:#x})",
        sample.trace,
        sample.instructions,
        sample.intervals,
        sample.interval,
        sample.phases.len(),
        sample.k,
        sample.seed
    );
    for p in &sample.phases {
        let _ = writeln!(
            out,
            "  phase @ interval {:>6}: {:>5} member interval(s), weight {:>12} instructions \
             ({:.1}%)",
            p.representative,
            p.members,
            p.weight_instructions,
            100.0 * p.weight_instructions as f64 / sample.instructions as f64
        );
    }
    let replayed: u64 = sample
        .phases
        .iter()
        .map(|p| sample.interval.min(sample.instructions - p.representative * sample.interval))
        .sum();
    let _ = writeln!(
        out,
        "sampled replay covers {replayed} of {} instructions ({:.1}x reduction)",
        sample.instructions,
        sample.instructions as f64 / replayed as f64
    );
    match args.get("out") {
        Some(dest) => {
            std::fs::write(dest, sample.to_json())
                .map_err(|e| ArgError(format!("cannot write {dest}: {e}")))?;
            let _ = writeln!(out, "selection written to {dest} ({PHASE_SAMPLE_USAGE})");
            Ok(out)
        }
        None => Ok(format!("{out}\n{}\n", sample.to_json())),
    }
}

/// How a persisted selection is consumed, for the `sample` report text.
const PHASE_SAMPLE_USAGE: &str = "replay with: tlc sweep --trace FILE --sample <this file>";

/// `tlc trace info FILE` — header, counts, footprint, and per-interval
/// summary, without running any sweep.
fn cmd_trace_info(args: &ArgMap) -> Result<String, ArgError> {
    let path = args
        .positional(2)
        .ok_or_else(|| ArgError("usage: tlc trace info FILE [--interval N]".into()))?;
    let interval: u64 = args.get_or("interval", 100_000)?;
    if interval == 0 {
        return Err(ArgError("--interval must be at least 1".into()));
    }
    let mut reader = open_trace_reader(path)?;
    let mut stats = TraceStats::new(16);
    // Per-interval rollup: instructions, data refs, distinct 4 KiB
    // regions touched (fetch + data).
    struct IntervalRow {
        instructions: u64,
        data_refs: u64,
        regions: std::collections::BTreeSet<u64>,
    }
    let mut rows: Vec<IntervalRow> = Vec::new();
    let mut current =
        IntervalRow { instructions: 0, data_refs: 0, regions: std::collections::BTreeSet::new() };
    while let Some(rec) = reader.try_next().map_err(|e| ArgError(format!("{path}: {e}")))? {
        stats.record_instruction(&rec);
        current.instructions += 1;
        current.regions.insert(rec.fetch.raw() >> 12);
        if let Some(d) = rec.data {
            current.data_refs += 1;
            current.regions.insert(d.addr.raw() >> 12);
        }
        if current.instructions == interval {
            rows.push(std::mem::replace(
                &mut current,
                IntervalRow {
                    instructions: 0,
                    data_refs: 0,
                    regions: std::collections::BTreeSet::new(),
                },
            ));
        }
    }
    if current.instructions > 0 {
        rows.push(current);
    }
    let n = stats.instr_refs();
    let mut out = String::new();
    let _ = writeln!(out, "trace    : {path} (TLCTRC01 v1, {} bytes)", reader.byte_offset());
    let _ = writeln!(
        out,
        "records  : {n} instructions ({:.2} B/instr)",
        if n > 0 { reader.byte_offset() as f64 / n as f64 } else { 0.0 }
    );
    let _ = writeln!(
        out,
        "refs     : {} data ({} loads, {} stores); {:.3} data/instr",
        stats.data_refs(),
        stats.loads(),
        stats.stores(),
        if n > 0 { stats.data_refs() as f64 / n as f64 } else { 0.0 }
    );
    let _ = writeln!(
        out,
        "footprint: instr {} KB, data {} KB (16B lines)",
        stats.instr_footprint_bytes() / 1024,
        stats.data_footprint_bytes() / 1024
    );
    let _ = writeln!(out, "intervals: {} of {} instructions", rows.len(), interval);
    let _ = writeln!(
        out,
        "{:>8} {:>14} {:>12} {:>12}",
        "interval", "instructions", "data refs", "4K regions"
    );
    const MAX_ROWS: usize = 24;
    for (i, row) in rows.iter().take(MAX_ROWS).enumerate() {
        let _ = writeln!(
            out,
            "{i:>8} {:>14} {:>12} {:>12}",
            row.instructions,
            row.data_refs,
            row.regions.len()
        );
    }
    if rows.len() > MAX_ROWS {
        let _ = writeln!(out, "     ... {} more interval(s)", rows.len() - MAX_ROWS);
    }
    Ok(out)
}

/// Dispatches a full command line (without argv\[0\]).
pub fn dispatch(raw: Vec<String>) -> Result<String, ArgError> {
    let flags = ["csv", "dual", "detailed", "quick", "progress"];
    let args = ArgMap::parse(raw, &flags)?;
    let cmd = args.positional(0).unwrap_or("help");
    match cmd {
        "evaluate" => cmd_evaluate(&args),
        "sweep" => cmd_sweep(&args),
        "profile" => cmd_profile(&args),
        "timing" => cmd_timing(&args),
        "workload" => cmd_workload(&args),
        "compare" => cmd_compare(&args),
        "audit" => cmd_audit(&args),
        "runs" => cmd_runs(&args),
        "trace" => cmd_trace(&args),
        "list" => Ok(cmd_list()),
        "help" | "--help" | "-h" => Ok(usage()),
        other => Err(ArgError(format!("unknown command {other:?}\n\n{}", usage()))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(args: &[&str]) -> Result<String, ArgError> {
        // cmd_sweep resets the process-global obs counters, so commands
        // must not run concurrently inside this test binary.
        static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        dispatch(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn help_and_list() {
        assert!(run(&["help"]).expect("help").contains("usage"));
        let l = run(&["list"]).expect("list");
        for b in SpecBenchmark::ALL {
            assert!(l.contains(b.name()));
        }
    }

    #[test]
    fn audit_small_run_is_clean_and_writes_json() {
        let dir = std::env::temp_dir().join(format!("tlc-audit-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let json = dir.join("audit.json");
        let out = run(&[
            "audit",
            "--cases",
            "6",
            "--seed",
            "11",
            "--json",
            json.to_str().expect("utf-8 path"),
        ])
        .expect("audit");
        assert!(out.contains("clean"));
        assert!(out.contains("streaming/dyn/arena/filtered/family/predict"));
        let doc: tlc_core::audit::AuditReport =
            serde_json::from_str(&std::fs::read_to_string(&json).expect("json written"))
                .expect("valid report json");
        assert_eq!(doc.schema, "tlc-audit-report/1");
        assert_eq!(doc.seed, 11);
        assert!(doc.is_clean());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = run(&["frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("usage"));
    }

    #[test]
    fn evaluate_runs() {
        let out = run(&[
            "evaluate",
            "--workload",
            "espresso",
            "--l1",
            "4",
            "--l2",
            "32",
            "--policy",
            "exclusive",
            "--instr",
            "20000",
            "--warmup",
            "5000",
        ])
        .expect("evaluate");
        assert!(out.contains("TPI"));
        assert!(out.contains("exclusive"));
    }

    #[test]
    fn evaluate_accepts_l2_repl() {
        let out = run(&[
            "evaluate",
            "--workload",
            "espresso",
            "--l1",
            "4",
            "--l2",
            "32",
            "--l2-repl",
            "srrip",
            "--instr",
            "20000",
        ])
        .expect("evaluate with srrip L2");
        assert!(out.contains("TPI"));
    }

    #[test]
    fn unknown_l2_repl_is_a_typed_error() {
        let e = run(&[
            "evaluate",
            "--workload",
            "espresso",
            "--l1",
            "4",
            "--l2",
            "32",
            "--l2-repl",
            "clairvoyant",
        ])
        .unwrap_err();
        assert!(e.to_string().contains("clairvoyant"));
        assert!(e.to_string().contains("srrip"));
    }

    #[test]
    fn evaluate_requires_workload() {
        let e = run(&["evaluate", "--l1", "8"]).unwrap_err();
        assert!(e.to_string().contains("--workload"));
    }

    #[test]
    fn timing_reports_all_three_models() {
        let out = run(&["timing", "--size", "8"]).expect("timing");
        assert!(out.contains("timing") && out.contains("area") && out.contains("energy"));
        let det = run(&["timing", "--size", "8", "--detailed"]).expect("detailed");
        assert!(det.contains("transistor-level"));
        assert!(run(&["timing", "--size", "3"]).is_err());
        assert!(run(&["timing", "--size", "1", "--ways", "128"]).is_err());
    }

    #[test]
    fn profile_prints_curve() {
        let out = run(&["profile", "--workload", "eqntott", "--instr", "20000"]).expect("profile");
        assert!(out.contains("Mattson"));
        assert!(out.contains("256K"));
    }

    #[test]
    fn workload_from_json_file() {
        let spec = r#"{
            "name": "tiny", "seed": 1, "data_per_instr": 0.3, "store_fraction": 0.2,
            "code": { "footprint_kb": 8, "n_sites": 6, "body_min_bytes": 64,
                      "body_max_bytes": 256, "mean_iters": 4.0, "zipf_theta": 1.0,
                      "p_excursion": 0.01, "excursion_bytes": 256 },
            "data": { "regions": [ { "base": 268435456, "size_kb": 16,
                                     "weight": 1.0, "mean_run": 4.0 } ] }
        }"#;
        let path = std::env::temp_dir().join("tlc_cli_test_spec.json");
        std::fs::write(&path, spec).expect("write spec");
        let out = run(&[
            "workload",
            path.to_str().expect("utf8 path"),
            "--l1",
            "4",
            "--l2",
            "32",
            "--instr",
            "20000",
            "--warmup",
            "4000",
        ])
        .expect("workload");
        assert!(out.contains("tiny"));
        assert!(out.contains("TPI"));
    }

    #[test]
    fn workload_reports_file_errors() {
        let e = run(&["workload", "/nonexistent/spec.json"]).unwrap_err();
        assert!(e.to_string().contains("cannot read"));
    }

    #[test]
    fn compare_lists_all_organisations() {
        let out = run(&["compare", "--workload", "espresso", "--instr", "30000"]).expect("compare");
        for needle in
            ["single-level", "victim", "stream-buffer", "inclusive", "conventional", "exclusive"]
        {
            assert!(out.contains(needle), "missing {needle}");
        }
        assert!(run(&["compare", "--workload", "espresso", "--l1", "64", "--l2", "4"]).is_err());
    }

    #[test]
    fn sweep_csv_mode() {
        let out = run(&[
            "sweep",
            "--workload",
            "eqntott",
            "--instr",
            "5000",
            "--warmup",
            "1000",
            "--csv",
        ])
        .expect("sweep");
        assert!(out.starts_with("workload,label"));
        assert!(out.lines().count() > 40);
    }

    #[test]
    fn sweep_engines_agree_and_bad_engine_is_rejected() {
        let base = [
            "sweep",
            "--workload",
            "li",
            "--instr",
            "4000",
            "--warmup",
            "1000",
            "--csv",
            "--engine",
        ];
        let mut outputs = Vec::new();
        for engine in ["auto", "streaming", "arena", "filtered", "family"] {
            let mut argv: Vec<&str> = base.to_vec();
            argv.push(engine);
            outputs.push(run(&argv).unwrap_or_else(|e| panic!("engine {engine}: {e:?}")));
        }
        for o in &outputs[1..] {
            assert_eq!(&outputs[0], o, "engines must produce identical sweeps");
        }
        let mut argv: Vec<&str> = base.to_vec();
        argv.push("warp");
        let err = run(&argv).expect_err("unknown engine must be rejected");
        assert!(format!("{err:?}").contains("unknown engine"));
    }

    #[test]
    fn sweep_predict_engine_runs_with_family_shaped_output() {
        // predict is the one approximate engine: it must NOT join the
        // bit-identity loop above, but its CSV must cover exactly the
        // same design points in the same order, and its manifest must
        // account every config as predicted or replayed.
        let path = std::env::temp_dir().join("tlc_cli_test_predict_manifest.json");
        let _ = std::fs::remove_file(&path);
        let base = ["sweep", "--workload", "li", "--instr", "4000", "--warmup", "1000", "--csv"];
        let mut family_argv: Vec<&str> = base.to_vec();
        family_argv.extend(["--engine", "family"]);
        let family = run(&family_argv).expect("family sweep");
        let mut predict_argv: Vec<&str> = base.to_vec();
        predict_argv.extend([
            "--engine",
            "predict",
            "--metrics",
            path.to_str().expect("utf8 path"),
        ]);
        let predict = run(&predict_argv).expect("predict sweep");
        let keys = |csv: &str| -> Vec<String> {
            csv.lines().map(|l| l.split(',').take(2).collect::<Vec<_>>().join(",")).collect()
        };
        assert_eq!(keys(&family), keys(&predict), "same design points, same order");
        let json = std::fs::read_to_string(&path).expect("manifest written");
        let manifest = RunManifest::from_json(&json).expect("manifest parses");
        assert_eq!(manifest.engine, "predict");
        if tlc_obs::ENABLED {
            let predicted = manifest.counter("predict.configs_predicted").unwrap_or(0);
            let replayed = manifest.counter("predict.configs_replayed").unwrap_or(0);
            assert_eq!(
                predicted + replayed,
                manifest.configs,
                "every config is predicted or replayed"
            );
            assert!(predicted > 0, "the conventional space must be predicted");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sweep_metrics_writes_valid_manifest() {
        let path = std::env::temp_dir().join("tlc_cli_test_manifest.json");
        let _ = std::fs::remove_file(&path);
        run(&[
            "sweep",
            "--workload",
            "li",
            "--instr",
            "4000",
            "--warmup",
            "1000",
            "--csv",
            "--engine",
            "family",
            "--threads",
            "2",
            "--metrics",
            path.to_str().expect("utf8 path"),
        ])
        .expect("sweep with --metrics");
        let json = std::fs::read_to_string(&path).expect("manifest written");
        let manifest = RunManifest::from_json(&json).expect("manifest parses");
        manifest.validate().expect("manifest invariants hold");
        assert_eq!(manifest.schema, tlc_obs::manifest::SCHEMA);
        assert_eq!(manifest.command, "sweep");
        assert_eq!(manifest.engine, "family");
        assert_eq!(manifest.threads, 2);
        assert_eq!(manifest.config_space_hash.len(), 16);
        if tlc_obs::ENABLED {
            assert_eq!(
                manifest.counter("runner.configs_completed"),
                Some(manifest.configs),
                "every design point must be counted"
            );
            assert!(!manifest.spans.is_empty(), "span tree must be captured");
            assert!(manifest.spans.iter().any(|s| s.name == "sweep"), "root sweep span missing");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_import_sample_sweep_workflow() {
        // End to end: a flat address list imports to TLCTRC01; info and
        // sample read it; a full-trace sweep and a degenerate sampled
        // sweep (interval >= stream -> one phase, weight 1) agree
        // exactly.
        let dir = std::env::temp_dir().join(format!("tlc-trace-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let addrs = dir.join("addrs.txt");
        let trc = dir.join("trace.trc");
        let phases = dir.join("phases.json");
        let manifest_path = dir.join("manifest.json");
        let mut text = String::new();
        let mut state = 0x2545F4914F6CDD1Du64;
        for i in 0..6000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let tag = if state.is_multiple_of(4) { "W" } else { "R" };
            let addr = 0x10_0000 + (state >> 33) % (1 << 14);
            let _ = writeln!(text, "{tag} {:#x}", addr);
            if i % 3 == 0 {
                let _ = writeln!(text, "R {}", 0x20_0000 + (state >> 17) % (1 << 12));
            }
        }
        std::fs::write(&addrs, text).expect("write addr list");
        let trc_s = trc.to_str().expect("utf8");
        let out = run(&["trace", "import", addrs.to_str().expect("utf8"), trc_s]).expect("import");
        assert!(out.contains("addr-text"), "auto-detect flat list: {out}");
        let info = run(&["trace", "info", trc_s, "--interval", "2000"]).expect("info");
        assert!(info.contains("TLCTRC01"));
        assert!(info.contains("footprint"));
        let sample_out = run(&[
            "trace",
            "sample",
            trc_s,
            "--interval",
            "1000000",
            "--k",
            "3",
            "--seed",
            "0xC1",
            "--out",
            phases.to_str().expect("utf8"),
        ])
        .expect("sample");
        assert!(sample_out.contains("1 phases") || sample_out.contains("-> 1 phases"));
        let doc = PhaseSample::from_json(&std::fs::read_to_string(&phases).expect("json"))
            .expect("parses");
        doc.validate().expect("valid selection");
        assert_eq!(doc.seed, 0xC1);
        let full = run(&["sweep", "--trace", trc_s, "--csv"]).expect("full trace sweep");
        assert!(full.starts_with("workload,label"));
        assert!(full.contains("trace"), "workload column carries the trace name");
        let sampled = run(&[
            "sweep",
            "--trace",
            trc_s,
            "--sample",
            phases.to_str().expect("utf8"),
            "--csv",
            "--metrics",
            manifest_path.to_str().expect("utf8"),
        ])
        .expect("sampled sweep");
        assert_eq!(full, sampled, "single-phase full-weight sampling is exact");
        let manifest =
            RunManifest::from_json(&std::fs::read_to_string(&manifest_path).expect("manifest"))
                .expect("manifest parses");
        manifest.validate().expect("sampled-run invariants hold");
        if tlc_obs::ENABLED {
            assert_eq!(manifest.counter("sample.intervals"), Some(1));
            assert_eq!(manifest.counter("sample.phases"), Some(1));
            assert_eq!(manifest.counter("sample.intervals_skipped"), Some(0));
            assert!(manifest.counter("sample.events_replayed").unwrap_or(0) > 0);
            assert_eq!(
                manifest.counter("runner.configs_completed"),
                Some(manifest.configs),
                "one phase -> one engine run per config"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_sweep_rejects_bad_combinations() {
        let e = run(&["sweep", "--sample", "x.json", "--workload", "li"]).unwrap_err();
        assert!(e.to_string().contains("--trace"));
        let dir = std::env::temp_dir().join(format!("tlc-trace-cli-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let trc = dir.join("t.trc");
        std::fs::write(&trc, b"NOTATRACE").expect("write");
        let e = run(&["sweep", "--trace", trc.to_str().expect("utf8"), "--csv"]).unwrap_err();
        assert!(e.to_string().contains("trace import"), "bad magic advises import: {e}");
        let e = run(&["trace", "frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("import|sample|info"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sweep_thread_count_is_parsed_and_validated() {
        let base = ["sweep", "--workload", "li", "--instr", "4000", "--warmup", "1000", "--csv"];
        let mut outputs = Vec::new();
        for threads in ["1", "2"] {
            let mut argv: Vec<&str> = base.to_vec();
            argv.extend(["--threads", threads]);
            outputs.push(run(&argv).unwrap_or_else(|e| panic!("--threads {threads}: {e:?}")));
        }
        assert_eq!(outputs[0], outputs[1], "thread count must not change results");
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--threads", "0"]);
        let err = run(&argv).expect_err("--threads 0 must be rejected");
        assert!(format!("{err:?}").contains("--threads"));
        let mut argv: Vec<&str> = base.to_vec();
        argv.extend(["--threads", "many"]);
        let err = run(&argv).expect_err("non-numeric --threads must be rejected");
        assert!(format!("{err:?}").contains("--threads"));
    }

    #[test]
    fn sweep_trace_out_writes_chrome_trace_and_v2_manifest() {
        let dir = std::env::temp_dir().join(format!("tlc-traceout-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let manifest_path = dir.join("m.json");
        let trace_path = dir.join("trace.json");
        run(&[
            "sweep",
            "--workload",
            "li",
            "--instr",
            "4000",
            "--warmup",
            "1000",
            "--csv",
            "--engine",
            "family",
            "--threads",
            "2",
            "--metrics",
            manifest_path.to_str().expect("utf8 path"),
            "--trace-out",
            trace_path.to_str().expect("utf8 path"),
        ])
        .expect("sweep with --trace-out");

        let manifest =
            RunManifest::from_json(&std::fs::read_to_string(&manifest_path).expect("manifest"))
                .expect("manifest parses");
        manifest.validate().expect("manifest invariants hold");
        assert_eq!(manifest.schema, tlc_obs::manifest::SCHEMA);

        let trace = std::fs::read_to_string(&trace_path).expect("trace written");
        let doc: serde_json::Value = serde_json::from_str(&trace).expect("trace parses");
        let events =
            doc.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents array present");
        if tlc_obs::ENABLED {
            // At least the sweep root span must show up as a complete event.
            assert!(
                events.iter().any(|e| {
                    e.get("ph").and_then(|p| p.as_str()) == Some("X")
                        && e.get("name").and_then(|n| n.as_str()) == Some("sweep")
                }),
                "root sweep X event missing from {trace}"
            );
            // Distribution sections of the tentpole: >= 3 histograms
            // populated by a plain family sweep, monotone quantiles, and
            // a believable peak-RSS reading.
            let populated: Vec<_> = manifest.histograms.iter().filter(|h| h.count > 0).collect();
            assert!(
                populated.len() >= 3,
                "want >= 3 populated histograms, got {:?}",
                populated.iter().map(|h| h.name.as_str()).collect::<Vec<_>>()
            );
            for h in &populated {
                assert!(
                    h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max,
                    "{}: quantiles not monotone",
                    h.name
                );
            }
            assert!(manifest.memory.peak_rss_bytes > 0, "peak RSS must be read from procfs");
        } else {
            assert!(events.is_empty(), "uninstrumented build must emit an empty timeline");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn runs_registry_workflow_and_regression_diff() {
        let dir = std::env::temp_dir().join(format!("tlc-runs-cli-{}", std::process::id()));
        let reg_dir = dir.join("registry");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let baseline_path = dir.join("baseline.json");
        run(&[
            "sweep",
            "--workload",
            "li",
            "--instr",
            "4000",
            "--warmup",
            "1000",
            "--csv",
            "--engine",
            "family",
            "--metrics",
            baseline_path.to_str().expect("utf8 path"),
        ])
        .expect("baseline sweep");

        // Inject a 2x wall-time regression into an otherwise identical run.
        let mut slow = tlc_obs::registry::load_manifest_file(&baseline_path).expect("baseline");
        slow.wall_s *= 2.0;
        // Keep the injected regression meaningful even on a machine so
        // fast the baseline wall rounds to ~0.
        slow.wall_s += 1.0;
        let slow_path = dir.join("slow.json");
        std::fs::write(&slow_path, slow.to_json()).expect("write slow manifest");

        let reg = reg_dir.to_str().expect("utf8 path");
        let base = baseline_path.to_str().expect("utf8 path");
        let slow = slow_path.to_str().expect("utf8 path");

        // add + list + show round-trip through the registry.
        let added = run(&["runs", "add", base, "--dir", reg]).expect("runs add");
        let id = added.split_whitespace().nth(1).expect("id in add output").to_string();
        let listing = run(&["runs", "list", "--dir", reg]).expect("runs list");
        assert!(listing.contains(&id) && listing.contains("li"), "listing: {listing}");
        let shown = run(&["runs", "show", &id, "--dir", reg]).expect("runs show");
        assert!(
            shown.contains("sweep li") && shown.contains("engine=family"),
            "show renders the manifest: {shown}"
        );
        if tlc_obs::ENABLED {
            assert!(shown.contains("# memory peak_rss="), "show includes memory: {shown}");
        }
        // Idempotent re-add, and prefix loads resolve.
        assert!(run(&["runs", "add", base, "--dir", reg]).expect("re-add").contains(&id));
        assert!(run(&["runs", "show", &id[..12], "--dir", reg]).is_ok());

        // Identical runs pass the ratchet; a 2x wall regression fails it
        // with a non-zero exit (dispatch Err) naming the metric.
        run(&["runs", "diff", base, base, "--dir", reg]).expect("identical runs must pass");
        let err = run(&["runs", "diff", base, slow, "--dir", reg])
            .expect_err("2x wall-time regression must fail the diff");
        let msg = err.to_string();
        assert!(msg.contains("wall_s") && msg.contains("REGRESSED"), "diff error: {msg}");
        // The ratchet is one-directional: the fast run "regressing" from
        // the slow baseline is an improvement and passes.
        run(&["runs", "diff", slow, base, "--dir", reg]).expect("improvement must pass");
        // CI spelling with named operands and a custom tolerance (the
        // injected +1s swamps a sub-second baseline, so it must be huge).
        run(&["runs", "diff", "--baseline", base, "--candidate", slow, "--tol-wall", "1000"])
            .expect("generous tolerance must absorb the regression");

        let e = run(&["runs", "show", "nosuchrun", "--dir", reg]).unwrap_err();
        assert!(e.to_string().contains("no run matching"), "unknown id: {e}");
        let e = run(&["runs", "frobnicate"]).unwrap_err();
        assert!(e.to_string().contains("list|show|add|diff"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn audit_progress_flag_is_accepted() {
        let out =
            run(&["audit", "--cases", "2", "--seed", "7", "--progress"]).expect("audit --progress");
        assert!(out.contains("clean"));
    }
}
