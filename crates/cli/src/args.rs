//! Minimal argument parsing for the `tlc` binary.
//!
//! The study intentionally has no heavy CLI dependency; [`ArgMap`] covers
//! the `--key value` / `--flag` / positional grammar the subcommands need,
//! with typed accessors that produce readable errors.

use std::collections::BTreeMap;
use std::fmt;

/// A parse or validation error, shown to the user as-is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed arguments: positionals in order, `--key value` options, and
/// bare `--flag`s.
#[derive(Debug, Clone, Default)]
pub struct ArgMap {
    positional: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl ArgMap {
    /// Parses raw arguments. `flag_names` lists the options that take no
    /// value; everything else starting with `--` expects one.
    ///
    /// # Errors
    ///
    /// Returns an error for a `--key` with no following value.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        flag_names: &[&str],
    ) -> Result<Self, ArgError> {
        let mut out = ArgMap::default();
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if flag_names.contains(&name) {
                    out.flags.push(name.to_string());
                } else {
                    let v =
                        it.next().ok_or_else(|| ArgError(format!("--{name} expects a value")))?;
                    out.options.insert(name.to_string(), v);
                }
            } else {
                out.positional.push(a);
            }
        }
        Ok(out)
    }

    /// Positional argument `i`.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positional.get(i).map(|s| s.as_str())
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(|s| s.as_str())
    }

    /// Whether a bare flag was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns an error naming the option if the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("--{key}: cannot parse {v:?}"))),
        }
    }

    /// Required typed option.
    ///
    /// # Errors
    ///
    /// Returns an error if the option is missing or unparsable.
    pub fn require<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let v = self.options.get(key).ok_or_else(|| ArgError(format!("--{key} is required")))?;
        v.parse().map_err(|_| ArgError(format!("--{key}: cannot parse {v:?}")))
    }

    /// Seed option accepting `0x`-prefixed hex or plain decimal, shared
    /// by `audit --seed` and `trace sample --seed`.
    ///
    /// # Errors
    ///
    /// Returns an error naming the option if the value parses as neither.
    pub fn get_seed_or(&self, key: &str, default: u64) -> Result<u64, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => parse_seed(v).map_err(|e| ArgError(format!("--{key}: {}", e.0))),
        }
    }
}

/// Parses a seed as `0x`/`0X`-prefixed hexadecimal or plain decimal.
///
/// # Errors
///
/// Returns an error describing the unparsable value.
pub fn parse_seed(s: &str) -> Result<u64, ArgError> {
    let parsed = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| ArgError(format!("cannot parse seed {s:?} (decimal or 0x-hex)")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_positionals_options_flags() {
        let a = ArgMap::parse(sv(&["sweep", "--l1", "8", "--quick", "extra"]), &["quick"])
            .expect("parse");
        assert_eq!(a.positional(0), Some("sweep"));
        assert_eq!(a.positional(1), Some("extra"));
        assert_eq!(a.get("l1"), Some("8"));
        assert!(a.flag("quick"));
        assert!(!a.flag("verbose"));
    }

    #[test]
    fn typed_accessors() {
        let a = ArgMap::parse(sv(&["--l1", "8", "--offchip", "50.0"]), &[]).expect("parse");
        assert_eq!(a.get_or("l1", 4u64).expect("int"), 8);
        assert_eq!(a.get_or("missing", 4u64).expect("default"), 4);
        let off: f64 = a.require("offchip").expect("float");
        assert_eq!(off, 50.0);
        assert!(a.require::<u64>("nope").is_err());
        let b = ArgMap::parse(sv(&["--l1", "zebra"]), &[]).expect("parse");
        assert!(b.get_or("l1", 4u64).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        let e = ArgMap::parse(sv(&["--l1"]), &[]).unwrap_err();
        assert!(e.to_string().contains("--l1"));
    }

    #[test]
    fn seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("42").expect("decimal"), 42);
        assert_eq!(parse_seed("0xC1").expect("hex"), 0xC1);
        assert_eq!(parse_seed("0Xdead_beef".replace('_', "").as_str()).expect("hex"), 0xDEAD_BEEF);
        assert!(parse_seed("zebra").is_err());
        assert!(parse_seed("0xzebra").is_err());
        let a = ArgMap::parse(sv(&["--seed", "0x10"]), &[]).expect("parse");
        assert_eq!(a.get_seed_or("seed", 1).expect("hex option"), 16);
        assert_eq!(a.get_seed_or("missing", 7).expect("default"), 7);
        let b = ArgMap::parse(sv(&["--seed", "x"]), &[]).expect("parse");
        assert!(b.get_seed_or("seed", 1).unwrap_err().to_string().contains("--seed"));
    }
}
