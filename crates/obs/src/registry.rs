//! The run registry: persisted manifests plus run-over-run diffing.
//!
//! A sweep campaign is only trustworthy if drift between runs is
//! visible, so `tlc runs add` files each `--metrics` manifest
//! under `.tlc/runs/`, content-addressed by the identity triple
//! (config-space hash, workload, engine) plus a digest of the full
//! document. Identical re-runs of the same space land at distinct ids
//! (the digest covers timings), while the id *prefix* groups runs of
//! the same experiment — exactly the cache key / resume token shape
//! ROADMAP item 3 needs.
//!
//! [`diff_manifests`] compares two manifests — wall time, counter
//! totals, histogram quantiles, memory — against configurable relative
//! tolerances. Only *increases* count as regressions: this is a
//! performance ratchet, not an equality check, so getting faster or
//! doing less work never fails a build.

use crate::manifest::RunManifest;
use std::fs;
use std::path::{Path, PathBuf};

/// Default registry directory, relative to the working directory.
pub const DEFAULT_DIR: &str = ".tlc/runs";

/// A directory of persisted run manifests, one JSON file per run.
pub struct RunRegistry {
    dir: PathBuf,
}

/// One registry entry: the id is the file stem, loadable via
/// [`RunRegistry::load`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunEntry {
    /// Registry id (`<space-hash>-<benchmark>-<engine>-<digest>`).
    pub id: String,
    /// Workload name recorded in the manifest.
    pub benchmark: String,
    /// Engine recorded in the manifest.
    pub engine: String,
    /// Config-space hash recorded in the manifest.
    pub config_space_hash: String,
    /// Wall time recorded in the manifest.
    pub wall_s: f64,
}

impl RunRegistry {
    /// Opens (creating if needed) a registry rooted at `dir`.
    pub fn open(dir: &Path) -> Result<RunRegistry, String> {
        fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create registry dir {}: {e}", dir.display()))?;
        Ok(RunRegistry { dir: dir.to_path_buf() })
    }

    /// The registry's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Persists a manifest, returning its registry id. Re-adding a
    /// byte-identical manifest is idempotent (same id, same file).
    pub fn add(&self, manifest: &RunManifest) -> Result<String, String> {
        let json = manifest.to_json();
        let id = run_id(manifest, &json);
        let path = self.dir.join(format!("{id}.json"));
        fs::write(&path, &json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(id)
    }

    /// All entries, sorted by id.
    pub fn list(&self) -> Result<Vec<RunEntry>, String> {
        let rd = fs::read_dir(&self.dir)
            .map_err(|e| format!("cannot read registry dir {}: {e}", self.dir.display()))?;
        let mut out = Vec::new();
        for ent in rd {
            let path = ent.map_err(|e| format!("registry read error: {e}"))?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Some(id) = path.file_stem().and_then(|s| s.to_str()).map(String::from) else {
                continue;
            };
            let m = load_manifest_file(&path)?;
            out.push(RunEntry {
                id,
                benchmark: m.benchmark,
                engine: m.engine,
                config_space_hash: m.config_space_hash,
                wall_s: m.wall_s,
            });
        }
        out.sort_by(|a, b| a.id.cmp(&b.id));
        Ok(out)
    }

    /// Loads a manifest by exact id or unique id prefix.
    pub fn load(&self, id_or_prefix: &str) -> Result<RunManifest, String> {
        let exact = self.dir.join(format!("{id_or_prefix}.json"));
        if exact.is_file() {
            return load_manifest_file(&exact);
        }
        let matches: Vec<RunEntry> =
            self.list()?.into_iter().filter(|e| e.id.starts_with(id_or_prefix)).collect();
        match matches.len() {
            0 => Err(format!("no run matching {id_or_prefix:?} in {}", self.dir.display())),
            1 => load_manifest_file(&self.dir.join(format!("{}.json", matches[0].id))),
            n => Err(format!(
                "{id_or_prefix:?} is ambiguous: {n} runs match ({}, ...)",
                matches[0].id
            )),
        }
    }
}

/// Reads and parses one manifest file (any schema that deserializes;
/// the diff warns rather than fails on schema skew).
pub fn load_manifest_file(path: &Path) -> Result<RunManifest, String> {
    let text =
        fs::read_to_string(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    RunManifest::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Registry id: the identity triple, human-readable, then a digest of
/// the whole document so repeated runs of the same space stay distinct.
fn run_id(m: &RunManifest, json: &str) -> String {
    let digest = crate::manifest::fnv1a64(json.as_bytes());
    format!(
        "{}-{}-{}-{:08x}",
        m.config_space_hash,
        sanitize(&m.benchmark),
        sanitize(&m.engine),
        // Fold to 32 bits: 8 hex chars is plenty for per-triple
        // disambiguation and keeps ids terminal-friendly.
        (digest ^ (digest >> 32)) as u32
    )
}

/// File-name-safe slug: alphanumerics kept, everything else `_`.
fn sanitize(s: &str) -> String {
    let slug: String = s.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '_' }).collect();
    if slug.is_empty() {
        "unnamed".to_string()
    } else {
        slug
    }
}

/// Relative tolerances for [`diff_manifests`]. A candidate value `c`
/// regresses against baseline `b` iff `b > 0` and
/// `c > b * (1 + tolerance)`.
#[derive(Debug, Clone, Copy)]
pub struct DiffTolerances {
    /// Wall-time tolerance (fraction, e.g. 0.25 = +25%).
    pub wall_frac: f64,
    /// Counter-total tolerance.
    pub counter_frac: f64,
    /// Histogram-quantile tolerance.
    pub quantile_frac: f64,
    /// Memory-bytes tolerance.
    pub memory_frac: f64,
}

impl Default for DiffTolerances {
    /// Generous defaults sized for CI neighbours-and-noise: shared
    /// runners jitter wall time and tail quantiles wildly, so only
    /// multiple-× blowups should fail a build by default.
    fn default() -> DiffTolerances {
        DiffTolerances { wall_frac: 0.5, counter_frac: 0.1, quantile_frac: 1.0, memory_frac: 0.5 }
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Metric name, e.g. `"wall_s"`, `"counter l2.probes"`,
    /// `"hist replay.family_chunk_ns p99"`.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Candidate value.
    pub candidate: f64,
    /// Tolerance applied (fraction).
    pub tolerance: f64,
    /// Whether the candidate exceeds baseline beyond tolerance.
    pub regressed: bool,
}

impl DiffLine {
    fn compare(metric: String, baseline: f64, candidate: f64, tolerance: f64) -> DiffLine {
        let regressed = baseline > 0.0 && candidate > baseline * (1.0 + tolerance);
        DiffLine { metric, baseline, candidate, tolerance, regressed }
    }
}

/// Outcome of diffing two manifests.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every compared metric, in comparison order.
    pub lines: Vec<DiffLine>,
    /// Identity mismatches (different space/workload/engine/schema) —
    /// the diff still runs, but the comparison may not be meaningful.
    pub warnings: Vec<String>,
}

impl DiffReport {
    /// The metrics that regressed.
    pub fn regressions(&self) -> Vec<&DiffLine> {
        self.lines.iter().filter(|l| l.regressed).collect()
    }

    /// Multi-line human-readable rendering (warnings, regressions,
    /// then in-tolerance changes).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for w in &self.warnings {
            out.push_str(&format!("warning: {w}\n"));
        }
        for l in &self.lines {
            let delta = if l.baseline > 0.0 {
                format!("{:+.1}%", (l.candidate / l.baseline - 1.0) * 100.0)
            } else if l.candidate > 0.0 {
                "new".to_string()
            } else {
                "=".to_string()
            };
            let verdict = if l.regressed { "REGRESSED" } else { "ok" };
            out.push_str(&format!(
                "{verdict:>9}  {}: {} -> {} ({delta}, tol +{:.0}%)\n",
                l.metric,
                fmt_val(l.baseline),
                fmt_val(l.candidate),
                l.tolerance * 100.0
            ));
        }
        let regs = self.regressions().len();
        out.push_str(&format!(
            "{} metrics compared, {regs} regression{}\n",
            self.lines.len(),
            if regs == 1 { "" } else { "s" }
        ));
        out
    }
}

fn fmt_val(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Compares `candidate` against `baseline`: wall time, every counter
/// present in the baseline, per-histogram p50/p90/p99/max, and the
/// memory section. Upward drift beyond tolerance marks the line
/// regressed; identity mismatches become warnings.
pub fn diff_manifests(
    baseline: &RunManifest,
    candidate: &RunManifest,
    tol: DiffTolerances,
) -> DiffReport {
    let mut report = DiffReport::default();
    for (what, b, c) in [
        ("schema", &baseline.schema, &candidate.schema),
        ("config_space_hash", &baseline.config_space_hash, &candidate.config_space_hash),
        ("benchmark", &baseline.benchmark, &candidate.benchmark),
        ("engine", &baseline.engine, &candidate.engine),
    ] {
        if b != c {
            report.warnings.push(format!("{what} differs: baseline {b:?}, candidate {c:?}"));
        }
    }
    if baseline.instrumentation != candidate.instrumentation {
        report.warnings.push(format!(
            "instrumentation differs: baseline {}, candidate {} (counter and histogram \
             comparisons are vacuous)",
            baseline.instrumentation, candidate.instrumentation
        ));
    }

    report.lines.push(DiffLine::compare(
        "wall_s".to_string(),
        baseline.wall_s,
        candidate.wall_s,
        tol.wall_frac,
    ));
    for bc in &baseline.counters {
        let cc = candidate.counter(&bc.name).unwrap_or(0);
        report.lines.push(DiffLine::compare(
            format!("counter {}", bc.name),
            bc.value as f64,
            cc as f64,
            tol.counter_frac,
        ));
    }
    for bh in &baseline.histograms {
        let ch = candidate.histogram(&bh.name);
        for (q, bv) in [("p50", bh.p50), ("p90", bh.p90), ("p99", bh.p99), ("max", bh.max)] {
            let cv = ch
                .map(|h| match q {
                    "p50" => h.p50,
                    "p90" => h.p90,
                    "p99" => h.p99,
                    _ => h.max,
                })
                .unwrap_or(0);
            report.lines.push(DiffLine::compare(
                format!("hist {} {q}", bh.name),
                bv as f64,
                cv as f64,
                tol.quantile_frac,
            ));
        }
    }
    let mems = [
        ("memory peak_rss_bytes", baseline.memory.peak_rss_bytes, candidate.memory.peak_rss_bytes),
        ("memory arena_bytes", baseline.memory.arena_bytes, candidate.memory.arena_bytes),
        (
            "memory event_buffer_bytes",
            baseline.memory.event_buffer_bytes,
            candidate.memory.event_buffer_bytes,
        ),
    ];
    for (name, b, c) in mems {
        report.lines.push(DiffLine::compare(name.to_string(), b as f64, c as f64, tol.memory_frac));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::{HistogramSummary, MemorySection, RunMeta};
    use crate::Counter;

    fn manifest(bench: &str, wall_s: f64) -> RunManifest {
        let mut m = RunManifest::from_parts(
            RunMeta {
                command: "sweep".to_string(),
                benchmark: bench.to_string(),
                engine: "family".to_string(),
                threads: 2,
                configs: 90,
                config_space_hash: "00000000deadbeef".to_string(),
                wall_s,
            },
            Vec::new(),
            Vec::new(),
            [5; Counter::COUNT],
        );
        m.histograms = vec![HistogramSummary {
            name: "replay.family_chunk_ns".to_string(),
            count: 4,
            sum: 40,
            max: 16,
            p50: 10,
            p90: 12,
            p99: 15,
            buckets: Vec::new(),
        }];
        m.memory = MemorySection {
            peak_rss_bytes: 1 << 20,
            current_rss_bytes: 1 << 19,
            arena_bytes: 4096,
            event_buffer_bytes: 1024,
        };
        m
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tlc-registry-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn registry_add_list_load_roundtrip() {
        let dir = tmpdir("roundtrip");
        let reg = RunRegistry::open(&dir).unwrap();
        let m = manifest("paper", 1.5);
        let id = reg.add(&m).unwrap();
        assert!(id.starts_with("00000000deadbeef-paper-family-"), "id shape: {id}");
        // Idempotent re-add.
        assert_eq!(reg.add(&m).unwrap(), id);
        // A different run of the same triple gets a distinct id with
        // the same prefix.
        let id2 = reg.add(&manifest("paper", 9.9)).unwrap();
        assert_ne!(id, id2);
        assert_eq!(
            id.rsplit_once('-').unwrap().0,
            id2.rsplit_once('-').unwrap().0,
            "same experiment, same id prefix"
        );
        let entries = reg.list().unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().any(|e| e.id == id && e.benchmark == "paper"));
        // Exact-id load and unique-prefix load.
        let back = reg.load(&id).unwrap();
        assert_eq!(back.wall_s, 1.5);
        let err = reg.load("00000000deadbeef-paper").unwrap_err();
        assert!(err.contains("ambiguous"), "2 matches must be ambiguous: {err}");
        let unique = &id[..id.len() - 1];
        // A 1-char-short prefix is almost surely unique between the two
        // digests; fall back to exact id if not.
        if reg.load(unique).is_err() {
            assert_eq!(reg.load(&id).unwrap().wall_s, 1.5);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_rejects_unknown_ids() {
        let dir = tmpdir("unknown");
        let reg = RunRegistry::open(&dir).unwrap();
        assert!(reg.load("nope").unwrap_err().contains("no run matching"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_flags_wall_time_regression_and_only_upward_drift() {
        let base = manifest("paper", 1.0);
        // 2x wall time with default (generous) tolerances regresses.
        let slow = manifest("paper", 2.0);
        let report = diff_manifests(&base, &slow, DiffTolerances::default());
        assert!(report.warnings.is_empty());
        let regs = report.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].metric, "wall_s");
        assert!(report.render_text().contains("REGRESSED"));
        // Getting *faster* is never a regression.
        let fast = manifest("paper", 0.1);
        assert!(diff_manifests(&base, &fast, DiffTolerances::default()).regressions().is_empty());
    }

    #[test]
    fn diff_covers_counters_quantiles_and_memory() {
        let base = manifest("paper", 1.0);
        let mut cand = manifest("paper", 1.0);
        cand.counters.iter_mut().find(|c| c.name == "l2.probes").unwrap().value = 50; // 10x
        cand.histograms[0].p99 = 1_000; // way past 2x
        cand.memory.peak_rss_bytes = 1 << 24; // 16x
        let report = diff_manifests(&base, &cand, DiffTolerances::default());
        let names: Vec<_> = report.regressions().iter().map(|l| l.metric.clone()).collect();
        assert!(names.contains(&"counter l2.probes".to_string()), "{names:?}");
        assert!(names.contains(&"hist replay.family_chunk_ns p99".to_string()), "{names:?}");
        assert!(names.contains(&"memory peak_rss_bytes".to_string()), "{names:?}");
        // Tightening a tolerance flips a previously-ok line.
        let tight = DiffTolerances { wall_frac: 0.0, ..DiffTolerances::default() };
        let mut slow = manifest("paper", 1.0);
        slow.wall_s = 1.01;
        assert_eq!(diff_manifests(&base, &slow, tight).regressions().len(), 1);
    }

    #[test]
    fn diff_warns_on_identity_mismatch() {
        let base = manifest("paper", 1.0);
        let mut other = manifest("other", 1.0);
        other.engine = "predict".to_string();
        other.config_space_hash = "1111111111111111".to_string();
        let report = diff_manifests(&base, &other, DiffTolerances::default());
        assert_eq!(report.warnings.len(), 3, "{:?}", report.warnings);
        assert!(report.render_text().contains("warning:"));
    }

    #[test]
    fn sanitize_keeps_ids_file_safe() {
        assert_eq!(sanitize("paper/trace v2"), "paper_trace_v2");
        assert_eq!(sanitize(""), "unnamed");
    }
}
