//! Lock-free log-linear latency histograms.
//!
//! The aggregate span tree answers "where did the wall time go", but a
//! mean hides tails: one slow family chunk inside a hundred fast ones
//! is invisible until it stalls a worker. Each [`Hist`] is a global
//! array of relaxed atomic buckets — recording is one `fetch_add` per
//! sample with no locks, so probes stay legal anywhere except the
//! innermost per-event loops, and per-thread recordings merge by
//! construction (all threads target the same atomics).
//!
//! ## Bucket scheme
//!
//! HDR-style log-linear: values 0..15 get exact unit buckets; above
//! that each power-of-two octave is split into [`SUB_BUCKETS`] linear
//! sub-buckets. With 16 sub-buckets per octave the relative width of
//! any bucket is at most 1/16 = 6.25%, so a quantile read off the
//! bucket upper edge is within one bucket width of the exact sample
//! (see [`HistSnapshot::quantile`]). The full `u64` range maps to
//! [`NUM_BUCKETS`] = 976 buckets (~7.6 KiB of atomics per histogram).
//!
//! With the `enabled` feature off, [`record`] is a no-op, [`HistTimer`]
//! is a zero-sized type with no `Drop`, and [`snapshot_all`] returns
//! nothing — the same zero-overhead contract as the counters.

use serde::{Deserialize, Serialize};

/// Every histogram the pipeline can record into. Discriminants index
/// the global histogram array; [`Hist::name`] gives the dotted name
/// used in manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Wall ns per family-chunk replay (one sample per
    /// `evaluate_family` call in the family and predict sweeps).
    ReplayFamilyChunkNs,
    /// Wall ns per analytically-solved design point in the predict
    /// engine (profile lookup + model evaluation, no replay).
    PredictSolveNs,
    /// Wall ns per phase-slice segment replayed through a family
    /// back-end in sampled sweeps.
    SampleSliceReplayNs,
    /// Work units claimed per worker per fan-out (a *distribution* over
    /// workers: a wide spread is queue imbalance).
    RunnerWorkerItems,
    /// Wall ns per L1-group miss-stream capture.
    CaptureL1GroupNs,
}

impl Hist {
    /// Number of histograms (size of the global array).
    pub const COUNT: usize = 5;

    /// All histograms, in discriminant order.
    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::ReplayFamilyChunkNs,
        Hist::PredictSolveNs,
        Hist::SampleSliceReplayNs,
        Hist::RunnerWorkerItems,
        Hist::CaptureL1GroupNs,
    ];

    /// Dotted manifest name, e.g. `"replay.family_chunk_ns"`.
    pub const fn name(self) -> &'static str {
        match self {
            Hist::ReplayFamilyChunkNs => "replay.family_chunk_ns",
            Hist::PredictSolveNs => "predict.solve_ns",
            Hist::SampleSliceReplayNs => "sample.slice_replay_ns",
            Hist::RunnerWorkerItems => "runner.worker_items",
            Hist::CaptureL1GroupNs => "capture.l1_group_ns",
        }
    }
}

/// Linear sub-buckets per power-of-two octave.
pub const SUB_BUCKETS: usize = 16;

/// Total buckets: 16 exact unit buckets for 0..15, then 16 sub-buckets
/// for each of the 60 octaves `[2^4, 2^5) .. [2^63, 2^64)`.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + 60 * SUB_BUCKETS;

/// Bucket index a value lands in. Values below [`SUB_BUCKETS`] map to
/// exact unit buckets; above, the top four bits after the leading one
/// select the sub-bucket within the value's octave.
#[inline]
pub fn bucket_of(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        SUB_BUCKETS + (msb - 4) * SUB_BUCKETS + ((v >> (msb - 4)) & 15) as usize
    }
}

/// Smallest value that lands in bucket `i` (inverse of [`bucket_of`]).
#[inline]
pub fn bucket_floor(i: usize) -> u64 {
    if i < SUB_BUCKETS {
        i as u64
    } else {
        let oct = (i - SUB_BUCKETS) / SUB_BUCKETS;
        let sub = (i - SUB_BUCKETS) % SUB_BUCKETS;
        ((SUB_BUCKETS + sub) as u64) << oct
    }
}

/// Largest value that lands in bucket `i` (inclusive upper edge).
#[inline]
pub fn bucket_hi(i: usize) -> u64 {
    if i + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_floor(i + 1) - 1
    }
}

/// One populated bucket of a snapshot: `floor` is redundant with
/// `index` ([`bucket_floor`]) but keeps the JSON self-describing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistBucket {
    /// Bucket index (see [`bucket_of`]).
    pub index: u32,
    /// Smallest value the bucket holds.
    pub floor: u64,
    /// Samples recorded into the bucket.
    pub count: u64,
}

/// A point-in-time copy of one histogram: exact `count`/`sum`/`max`
/// plus the sparse non-empty buckets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Dotted histogram name ([`Hist::name`]).
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (exact, not bucketed).
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<HistBucket>,
}

impl HistSnapshot {
    /// The value at quantile `q` in `[0, 1]`: the upper edge of the
    /// bucket holding the `ceil(q * count)`-th sample, clamped to the
    /// exact `max`. The clamp keeps `quantile(1.0) <= max` (the top
    /// sample sits somewhere *inside* its bucket) while the upper edge
    /// keeps quantiles monotone in `q`; either way the reported value
    /// is within one bucket width (<= 6.25% relative) of the exact
    /// order statistic. Returns 0 for an empty snapshot.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for b in &self.buckets {
            seen += b.count;
            if seen >= rank {
                return bucket_hi(b.index as usize).min(self.max);
            }
        }
        self.max
    }
}

#[cfg(feature = "enabled")]
mod live_hist {
    use super::{bucket_of, Hist, HistBucket, HistSnapshot, NUM_BUCKETS};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::Instant;

    /// One lock-free histogram: relaxed atomic buckets plus exact
    /// count/sum/max. Threads record concurrently into the same
    /// atomics, so "merging" per-thread recordings is the identity.
    pub struct AtomicHistogram {
        buckets: [AtomicU64; NUM_BUCKETS],
        count: AtomicU64,
        sum: AtomicU64,
        max: AtomicU64,
    }

    impl AtomicHistogram {
        #[allow(clippy::declare_interior_mutable_const)] // repeat-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);

        const fn new() -> AtomicHistogram {
            AtomicHistogram {
                buckets: [Self::ZERO; NUM_BUCKETS],
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }
        }

        #[inline]
        fn record(&self, v: u64) {
            self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.max.fetch_max(v, Ordering::Relaxed);
        }

        fn snapshot(&self, name: &str) -> HistSnapshot {
            let buckets = self
                .buckets
                .iter()
                .enumerate()
                .filter_map(|(i, b)| {
                    let count = b.load(Ordering::Relaxed);
                    (count > 0).then(|| HistBucket {
                        index: i as u32,
                        floor: super::bucket_floor(i),
                        count,
                    })
                })
                .collect();
            HistSnapshot {
                name: name.to_string(),
                count: self.count.load(Ordering::Relaxed),
                sum: self.sum.load(Ordering::Relaxed),
                max: self.max.load(Ordering::Relaxed),
                buckets,
            }
        }

        fn reset(&self) {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum.store(0, Ordering::Relaxed);
            self.max.store(0, Ordering::Relaxed);
        }
    }

    #[allow(clippy::declare_interior_mutable_const)] // repeat-init seed
    const EMPTY: AtomicHistogram = AtomicHistogram::new();
    static HISTS: [AtomicHistogram; Hist::COUNT] = [EMPTY; Hist::COUNT];

    /// Records one sample (lock-free; safe from any thread).
    #[inline]
    pub fn record(h: Hist, v: u64) {
        HISTS[h as usize].record(v);
    }

    /// Snapshots every histogram, in [`Hist::ALL`] order (empty ones
    /// included; filter on `count` if needed). Call after worker
    /// threads join — a mid-recording snapshot can catch a sample
    /// between its bucket and count increments.
    pub fn snapshot_all() -> Vec<HistSnapshot> {
        Hist::ALL.iter().map(|&h| HISTS[h as usize].snapshot(h.name())).collect()
    }

    /// Zeroes every histogram.
    pub fn reset_hists() {
        for h in &HISTS {
            h.reset();
        }
    }

    /// RAII duration probe: records the wall ns between construction
    /// and drop into `hist`.
    #[must_use = "a timer measures the region it is alive for"]
    pub struct HistTimer {
        hist: Hist,
        start: Instant,
    }

    impl HistTimer {
        /// Starts timing into `hist`.
        #[inline]
        pub fn start(hist: Hist) -> HistTimer {
            HistTimer { hist, start: Instant::now() }
        }
    }

    impl Drop for HistTimer {
        fn drop(&mut self) {
            record(self.hist, self.start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod live_hist {
    use super::{Hist, HistSnapshot};

    /// No-op.
    #[inline(always)]
    pub fn record(_h: Hist, _v: u64) {}

    /// Always empty in uninstrumented builds.
    #[inline(always)]
    pub fn snapshot_all() -> Vec<HistSnapshot> {
        Vec::new()
    }

    /// No-op.
    #[inline(always)]
    pub fn reset_hists() {}

    /// Zero-sized no-op timer: no fields, no `Drop`, so constructing
    /// and dropping one compiles to nothing.
    #[must_use = "a timer measures the region it is alive for"]
    pub struct HistTimer;

    impl HistTimer {
        /// No-op.
        #[inline(always)]
        pub fn start(_hist: Hist) -> HistTimer {
            HistTimer
        }
    }
}

pub use live_hist::{record, reset_hists, snapshot_all, HistTimer};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_names_match_all_order() {
        assert_eq!(Hist::ALL.len(), Hist::COUNT);
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i, "{} out of order", h.name());
        }
    }

    #[test]
    fn bucket_math_round_trips_and_is_monotone() {
        // Every bucket's floor maps back to the bucket, edges align,
        // and the mapping is monotone across bucket boundaries.
        for i in 0..NUM_BUCKETS {
            assert_eq!(bucket_of(bucket_floor(i)), i, "floor of bucket {i}");
            assert_eq!(bucket_of(bucket_hi(i)), i, "hi of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert_eq!(bucket_hi(i) + 1, bucket_floor(i + 1), "buckets {i},{} tile", i + 1);
            }
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(u64::MAX), NUM_BUCKETS - 1);
        // Relative bucket width stays under 1/16 above the linear range.
        for v in [100u64, 1_000, 123_456, 1 << 30, u64::MAX / 3] {
            let i = bucket_of(v);
            let width = bucket_hi(i) - bucket_floor(i) + 1;
            assert!(
                (width as f64) <= (bucket_floor(i) as f64) / 16.0 + 1.0,
                "bucket {i} too wide for {v}"
            );
        }
    }

    #[test]
    fn snapshot_quantiles_are_monotone_and_bounded() {
        // A synthetic snapshot exercises the quantile walk without the
        // global state: 10 samples at 100, 1 sample at 1000.
        let mk = |v: u64, count: u64| HistBucket {
            index: bucket_of(v) as u32,
            floor: bucket_floor(bucket_of(v)),
            count,
        };
        let snap = HistSnapshot {
            name: "t".to_string(),
            count: 11,
            sum: 2000,
            max: 1000,
            buckets: vec![mk(100, 10), mk(1000, 1)],
        };
        let (p50, p90, p99) = (snap.quantile(0.5), snap.quantile(0.9), snap.quantile(0.99));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= snap.max);
        // Quantile error is bounded by the bucket width.
        let b50 = bucket_of(100);
        assert!(p50 >= 100 && p50 <= bucket_hi(b50), "p50 {p50} within 100's bucket");
        assert_eq!(p99, snap.max, "top sample's bucket edge clamps to the exact max");
        assert_eq!(
            HistSnapshot { name: "e".into(), count: 0, sum: 0, max: 0, buckets: vec![] }
                .quantile(0.5),
            0
        );
    }

    #[cfg(not(feature = "enabled"))]
    mod disabled {
        use super::super::*;

        #[test]
        fn timer_is_zero_sized_and_inert() {
            assert_eq!(std::mem::size_of::<HistTimer>(), 0);
            let t = HistTimer::start(Hist::ReplayFamilyChunkNs);
            drop(t);
            record(Hist::ReplayFamilyChunkNs, 42);
            assert!(snapshot_all().is_empty());
        }

        #[test]
        fn obs_hist_macro_does_not_evaluate_arguments() {
            fn boom() -> u64 {
                panic!("hist args must be unevaluated")
            }
            crate::obs_hist!(Hist::PredictSolveNs, boom());
            assert!(snapshot_all().is_empty());
        }
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;
        use std::sync::Mutex;

        // Histograms are process-global; serialize tests touching them.
        static LOCK: Mutex<()> = Mutex::new(());

        #[test]
        fn concurrent_recording_merges_identically_to_serial() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            // Deterministic value stream, split across 4 threads vs
            // recorded serially: the snapshots must be identical (the
            // "merge" is threads sharing one atomic array).
            let values: Vec<u64> =
                (0..8_000u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17)).collect();
            reset_hists();
            for &v in &values {
                record(Hist::SampleSliceReplayNs, v);
            }
            let serial = snapshot_all();
            reset_hists();
            std::thread::scope(|s| {
                for chunk in values.chunks(values.len() / 4) {
                    s.spawn(move || {
                        for &v in chunk {
                            record(Hist::SampleSliceReplayNs, v);
                        }
                    });
                }
            });
            let concurrent = snapshot_all();
            assert_eq!(serial, concurrent, "thread interleaving must not change the histogram");
            reset_hists();
        }

        #[test]
        fn quantile_error_is_bounded_by_bucket_width() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            // Known sorted sample set: compare each reported quantile
            // against the exact order statistic.
            let mut values: Vec<u64> = (0..1_000u64).map(|i| i * i + 17).collect();
            reset_hists();
            for &v in &values {
                record(Hist::PredictSolveNs, v);
            }
            values.sort_unstable();
            let snap = snapshot_all()
                .into_iter()
                .find(|s| s.name == "predict.solve_ns")
                .expect("snapshot present");
            assert_eq!(snap.count, values.len() as u64);
            assert_eq!(snap.max, *values.last().unwrap());
            for q in [0.5, 0.9, 0.99, 1.0] {
                let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
                let exact = values[rank - 1];
                let got = snap.quantile(q);
                let b = bucket_of(exact);
                let width = bucket_hi(b) - bucket_floor(b);
                assert!(
                    got >= exact.saturating_sub(width) && got <= exact + width,
                    "q{q}: got {got}, exact {exact}, bucket width {width}"
                );
            }
            // Monotone across the quantile range.
            let qs: Vec<u64> = (0..=20).map(|k| snap.quantile(k as f64 / 20.0)).collect();
            assert!(qs.windows(2).all(|w| w[0] <= w[1]), "quantiles must be monotone: {qs:?}");
            assert!(snap.quantile(1.0) <= snap.max);
            reset_hists();
        }

        #[test]
        fn timer_records_elapsed_time() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            reset_hists();
            {
                let _t = HistTimer::start(Hist::CaptureL1GroupNs);
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            let snap = snapshot_all()
                .into_iter()
                .find(|s| s.name == "capture.l1_group_ns")
                .expect("snapshot present");
            assert_eq!(snap.count, 1);
            assert!(snap.max >= 2_000_000, "timed at least the 2 ms sleep, got {} ns", snap.max);
            reset_hists();
        }
    }
}
