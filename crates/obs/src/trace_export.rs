//! Chrome trace-event export of raw phase spans.
//!
//! [`chrome_trace_json`] renders the span stream as a [Chrome
//! trace-event format] JSON object — the flat "JSON Object Format" with
//! a `traceEvents` array — which loads directly into Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Each span becomes
//! a complete ("X") duration event on its recording thread's track, so
//! worker queue imbalance and capture/replay overlap are visible as a
//! timeline rather than inferred from aggregate totals.
//!
//! The document is assembled by hand rather than through serde because
//! the format's key casing (`traceEvents`, `displayTimeUnit`) does not
//! match any derive-level rename the vendored serde supports; string
//! escaping still goes through `serde_json` so arbitrary span labels
//! stay well-formed.
//!
//! [Chrome trace-event format]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::SpanRecord;
use std::fmt::Write as _;

/// Process id stamped on every event. The simulator is one process;
/// a constant keeps tracks grouped under a single "tlc" row.
const PID: u64 = 1;

/// Renders spans as a complete Chrome trace-event JSON document.
///
/// Timestamps (`ts`) and durations (`dur`) are microseconds with
/// fractional nanosecond precision, offset from the process obs epoch.
/// Each distinct thread id also gets a `thread_name` metadata record so
/// Perfetto labels the tracks. Span `items` and CPU time ride along in
/// `args`.
pub fn chrome_trace_json(spans: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;

    // Track-naming metadata: one "M" record per distinct thread.
    let mut tids: Vec<u64> = spans.iter().map(|s| s.thread).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let name = if tid == 1 { "main".to_string() } else { format!("worker-{tid}") };
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":{}}}}}",
            escape(&name)
        );
    }

    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        let name = s.path.last().map(String::as_str).unwrap_or("?");
        // Parent path as the category: Perfetto's search/filter box
        // matches on it, recovering the nesting the flat track loses.
        let cat =
            if s.path.len() > 1 { s.path[..s.path.len() - 1].join("/") } else { String::new() };
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"name\":{},\"cat\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"items\":{}",
            s.thread,
            escape(name),
            escape(&cat),
            micros(s.start_ns),
            micros(s.wall_ns),
            s.items,
        );
        if let Some(cpu) = s.cpu_ns {
            let _ = write!(out, ",\"cpu_ns\":{cpu}");
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Nanoseconds → microseconds, keeping sub-µs precision as decimals
/// (the trace format's `ts`/`dur` are double-valued microseconds).
fn micros(ns: u64) -> String {
    if ns.is_multiple_of(1_000) {
        format!("{}", ns / 1_000)
    } else {
        format!("{}.{:03}", ns / 1_000, ns % 1_000)
    }
}

/// JSON string literal (quotes included) via serde_json, so span labels
/// with quotes/backslashes/control characters stay valid JSON.
fn escape(s: &str) -> String {
    serde_json::to_string(&s).expect("string serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(path: &[&str], thread: u64, start_ns: u64, wall_ns: u64) -> SpanRecord {
        SpanRecord {
            path: path.iter().map(|s| s.to_string()).collect(),
            thread,
            start_ns,
            wall_ns,
            cpu_ns: Some(wall_ns / 2),
            items: 3,
        }
    }

    fn ph<'v>(events: &'v [serde_json::Value], kind: &str) -> Vec<&'v serde_json::Value> {
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some(kind)).collect()
    }

    #[test]
    fn export_is_valid_trace_event_json() {
        let spans = vec![
            span(&["sweep"], 1, 0, 5_000_500),
            span(&["sweep", "fan_out", "worker[0]"], 2, 1_000, 2_000_000),
            span(&["sweep", "fan_out", "worker \"odd\"\\label"], 3, 2_000, 1_500),
        ];
        let doc = chrome_trace_json(&spans);
        let v: serde_json::Value = serde_json::from_str(&doc).expect("output parses as JSON");
        assert_eq!(v.get("displayTimeUnit").and_then(|x| x.as_str()), Some("ms"));
        let events = v.get("traceEvents").and_then(|x| x.as_array()).expect("traceEvents array");
        // 3 thread_name metadata records + 3 duration events.
        assert_eq!(events.len(), 6);
        let metas = ph(events, "M");
        assert_eq!(metas.len(), 3);
        for m in &metas {
            assert_eq!(m.get("name").and_then(|x| x.as_str()), Some("thread_name"));
            assert!(m.get("args").and_then(|a| a.get("name")).and_then(|x| x.as_str()).is_some());
        }
        let xs = ph(events, "X");
        assert_eq!(xs.len(), 3);
        for x in &xs {
            for key in ["pid", "tid", "ts", "dur"] {
                assert!(
                    x.get(key).and_then(|v| v.as_f64()).is_some(),
                    "{key} must be numeric in {x:?}"
                );
            }
            assert!(x.get("name").and_then(|v| v.as_str()).is_some());
        }
        // Sub-µs precision survives: 5_000_500 ns = 5000.5 µs.
        assert_eq!(xs[0].get("dur").unwrap().as_f64(), Some(5000.5));
        assert_eq!(xs[0].get("ts").unwrap().as_f64(), Some(0.0));
        // The worker event keeps its parent path as the category and
        // awkward characters in labels survive escaping.
        assert_eq!(xs[1].get("cat").unwrap().as_str(), Some("sweep/fan_out"));
        assert_eq!(xs[2].get("name").unwrap().as_str(), Some("worker \"odd\"\\label"));
        let args = xs[1].get("args").unwrap();
        assert_eq!(args.get("items").unwrap().as_u64(), Some(3));
        assert_eq!(args.get("cpu_ns").unwrap().as_u64(), Some(1_000_000));
    }

    #[test]
    fn empty_span_list_is_still_a_valid_document() {
        let doc = chrome_trace_json(&[]);
        let v: serde_json::Value = serde_json::from_str(&doc).expect("parses");
        assert_eq!(v.get("traceEvents").and_then(|x| x.as_array()).unwrap().len(), 0);
    }
}
