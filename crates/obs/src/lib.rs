//! Instrumentation substrate for the sweep pipeline.
//!
//! The simulator's hot loops (trace capture, L1 filtering, family L2
//! fan-out) run hundreds of millions of iterations per sweep, so the
//! usual logging approaches are off the table: even a branch on a
//! runtime flag per event is measurable. This crate therefore follows
//! the kernel-tracepoint model instead:
//!
//! * With the `enabled` feature **off** (the default), every probe
//!   compiles away. [`ENABLED`] is `const false`, the [`obs_count!`]
//!   and [`obs_event!`] macros expand to `if false { .. }` blocks the
//!   optimizer deletes (arguments are never evaluated), and
//!   [`PhaseSpan`] is a zero-sized type with no `Drop` impl.
//! * With `enabled` **on**, counters are relaxed atomics in one global
//!   [`CounterSet`], and [`PhaseSpan`] records wall/CPU time into a
//!   process-global span list, maintaining a thread-local path stack so
//!   spans nest correctly even across scoped worker threads.
//!
//! Hot-path discipline: probes in per-event code must be *flushed
//! totals* (one `obs_count!` per chunk/replay pass, accumulated in a
//! plain local first), never per-event atomic increments.
//!
//! Beyond counters and spans, the [`hist`] module adds lock-free
//! log-linear latency histograms (tail latency, queue imbalance), the
//! [`trace_export`] module renders raw spans as Chrome trace-event JSON
//! for Perfetto, and the [`registry`] module persists manifests under
//! `.tlc/runs/` and diffs them run-over-run.
//!
//! The [`manifest`] module (always compiled, so `--metrics` keeps
//! working in uninstrumented builds — it just reports
//! `"instrumentation": false`) assembles counters + spans + events +
//! histograms + memory accounting into a versioned `tlc-run-manifest/2`
//! JSON document.
#![warn(missing_docs)]

pub mod hist;
pub mod manifest;
pub mod registry;
pub mod trace_export;

pub use hist::{Hist, HistTimer};

/// `true` iff this build carries live instrumentation (`enabled`
/// feature). A `const` so `if ENABLED { .. }` folds away entirely.
pub const ENABLED: bool = cfg!(feature = "enabled");

/// Cap on retained span records. A big sweep can close millions of
/// fine-grained spans; beyond this the *oldest* are overwritten (ring
/// semantics) so the buffer bounds memory while the tail — usually the
/// interesting part of a stall — survives. Drops are counted
/// ([`spans_dropped`]) and surfaced in the manifest as `spans_dropped`.
pub const SPAN_RING_CAPACITY: usize = 1 << 16;

/// Every counter the pipeline can bump. Discriminants index the
/// [`CounterSet`] array; [`Counter::name`] gives the dotted name used
/// in manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Instructions synthesised into a trace arena.
    TraceInstructions,
    /// Bytes of packed SoA storage allocated by arena capture.
    TraceBytesPacked,
    /// Chunks the arena was split into.
    TraceChunks,
    /// References decoded by L1 front-ends (instruction fetches that
    /// survived the same-line filter, plus data references).
    FilterEventsDecoded,
    /// References that hit in an L1 during filtering.
    FilterL1Hits,
    /// References that missed in an L1 (i.e. miss events emitted).
    FilterL1Misses,
    /// Miss events replayed against L2 back-ends (one per stream event
    /// per replay pass, regardless of family width).
    L2EventsReplayed,
    /// L2 lookups in the measured window (hits + misses), summed over
    /// family members.
    L2Probes,
    /// Measured-window L2 hits, summed over family members.
    L2Hits,
    /// Measured-window L2 misses, summed over family members.
    L2Misses,
    /// LFSR victim draws by pseudo-random L2 replacement (lifetime:
    /// warm-up included, since the LFSR is never reset).
    L2LfsrDraws,
    /// Exclusive-hierarchy L1→L2 victim swaps (fig. 21a path;
    /// lifetime, like [`Counter::L2LfsrDraws`]).
    L2ExclusiveSwaps,
    /// Dirty lines written back out of the L2 in the measured window.
    L2Writebacks,
    /// L2 fill generations started (lifetime, summed over family
    /// members; warm-up included, like [`Counter::L2LfsrDraws`]).
    L2Fills,
    /// Fill generations that ended with zero demand hits
    /// (`l2.dead_on_arrival + l2.live_fills == l2.fills`).
    L2DeadOnArrival,
    /// Fill generations that saw at least one demand hit.
    L2LiveFills,
    /// Fill generations that saw two or more demand hits (a subset of
    /// [`Counter::L2LiveFills`]).
    L2MultiHit,
    /// Design points fully evaluated (TPI + area computed).
    RunnerConfigsCompleted,
    /// L1 groups too small to amortise miss-stream capture, demoted to
    /// plain arena replay.
    RunnerFallbackSingleton,
    /// Miss streams abandoned because they outgrew the byte limit.
    RunnerFallbackByteLimit,
    /// Whole sweeps demoted from arena capture to streaming replay.
    RunnerFallbackStreaming,
    /// Design points answered analytically by the reuse-distance
    /// predictor (no event replay).
    PredictConfigsPredicted,
    /// Design points the predict engine fell back to event replay for
    /// (exclusive hierarchies, uncaptured groups).
    PredictConfigsReplayed,
    /// Events walked by reuse-distance profiling passes (one per stream
    /// event per profiled group).
    PredictEventsProfiled,
    /// L1 groups profiled into reuse-distance histograms.
    PredictGroupsProfiled,
    /// Fixed-length intervals a sampled trace was sliced into.
    SampleIntervals,
    /// Representative phases selected (and replayed) by phase sampling.
    SamplePhases,
    /// Intervals skipped because a representative stands in for them
    /// (`sample.phases + sample.intervals_skipped == sample.intervals`).
    SampleIntervalsSkipped,
    /// Instruction records actually replayed from representative slices
    /// (warm-up prefixes included).
    SampleEventsReplayed,
    /// Bytes of encoded L1 miss events accumulated in filter event
    /// buffers (summed at flush; feeds the manifest `memory` section).
    FilterEventBytes,
    /// Randomised audit cases executed (differential fuzz runs).
    AuditCases,
    /// Audit cases whose engines disagreed with the oracle.
    AuditDivergences,
}

impl Counter {
    /// Number of counters (size of the [`CounterSet`] array).
    pub const COUNT: usize = 32;

    /// All counters, in discriminant order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::TraceInstructions,
        Counter::TraceBytesPacked,
        Counter::TraceChunks,
        Counter::FilterEventsDecoded,
        Counter::FilterL1Hits,
        Counter::FilterL1Misses,
        Counter::L2EventsReplayed,
        Counter::L2Probes,
        Counter::L2Hits,
        Counter::L2Misses,
        Counter::L2LfsrDraws,
        Counter::L2ExclusiveSwaps,
        Counter::L2Writebacks,
        Counter::L2Fills,
        Counter::L2DeadOnArrival,
        Counter::L2LiveFills,
        Counter::L2MultiHit,
        Counter::RunnerConfigsCompleted,
        Counter::RunnerFallbackSingleton,
        Counter::RunnerFallbackByteLimit,
        Counter::RunnerFallbackStreaming,
        Counter::PredictConfigsPredicted,
        Counter::PredictConfigsReplayed,
        Counter::PredictEventsProfiled,
        Counter::PredictGroupsProfiled,
        Counter::SampleIntervals,
        Counter::SamplePhases,
        Counter::SampleIntervalsSkipped,
        Counter::SampleEventsReplayed,
        Counter::FilterEventBytes,
        Counter::AuditCases,
        Counter::AuditDivergences,
    ];

    /// Dotted manifest name, e.g. `"filter.events_decoded"`.
    pub const fn name(self) -> &'static str {
        match self {
            Counter::TraceInstructions => "trace.instructions",
            Counter::TraceBytesPacked => "trace.bytes_packed",
            Counter::TraceChunks => "trace.chunks",
            Counter::FilterEventsDecoded => "filter.events_decoded",
            Counter::FilterL1Hits => "filter.l1_hits",
            Counter::FilterL1Misses => "filter.l1_misses",
            Counter::L2EventsReplayed => "l2.events_replayed",
            Counter::L2Probes => "l2.probes",
            Counter::L2Hits => "l2.hits",
            Counter::L2Misses => "l2.misses",
            Counter::L2LfsrDraws => "l2.lfsr_draws",
            Counter::L2ExclusiveSwaps => "l2.exclusive_swaps",
            Counter::L2Writebacks => "l2.writebacks",
            Counter::L2Fills => "l2.fills",
            Counter::L2DeadOnArrival => "l2.dead_on_arrival",
            Counter::L2LiveFills => "l2.live_fills",
            Counter::L2MultiHit => "l2.multi_hit",
            Counter::RunnerConfigsCompleted => "runner.configs_completed",
            Counter::RunnerFallbackSingleton => "runner.fallback_singleton",
            Counter::RunnerFallbackByteLimit => "runner.fallback_byte_limit",
            Counter::RunnerFallbackStreaming => "runner.fallback_streaming",
            Counter::PredictConfigsPredicted => "predict.configs_predicted",
            Counter::PredictConfigsReplayed => "predict.configs_replayed",
            Counter::PredictEventsProfiled => "predict.events_profiled",
            Counter::PredictGroupsProfiled => "predict.groups_profiled",
            Counter::SampleIntervals => "sample.intervals",
            Counter::SamplePhases => "sample.phases",
            Counter::SampleIntervalsSkipped => "sample.intervals_skipped",
            Counter::SampleEventsReplayed => "sample.events_replayed",
            Counter::FilterEventBytes => "filter.event_bytes",
            Counter::AuditCases => "audit.cases",
            Counter::AuditDivergences => "audit.divergences",
        }
    }
}

/// One finished phase span, as drained by [`take_spans`]. `path` is the
/// full nesting path (`["sweep", "fan_out", "worker[0]"]`); `thread` is
/// a small process-unique id assigned on first span per thread.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Nesting path; last segment is this span's own name.
    pub path: Vec<String>,
    /// Process-unique thread id (1-based, assignment order).
    pub thread: u64,
    /// Start offset in ns from the process obs epoch.
    pub start_ns: u64,
    /// Wall-clock duration in ns.
    pub wall_ns: u64,
    /// Thread CPU time consumed, if the platform exposes it.
    pub cpu_ns: Option<u64>,
    /// Work items attributed via [`PhaseSpan::add_items`].
    pub items: u64,
}

/// A recorded point event (fallbacks, engine selections, worker
/// errors); `kind` is a stable identifier, `detail` free text.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize, PartialEq, Eq)]
pub struct ObsEventRecord {
    /// Stable event kind, e.g. `"fallback.byte_limit"`.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

#[cfg(feature = "enabled")]
mod live {
    use super::{Counter, ObsEventRecord, SpanRecord};
    use std::cell::{Cell, RefCell};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// Process-global array of relaxed atomic counters.
    pub struct CounterSet {
        vals: [AtomicU64; Counter::COUNT],
    }

    impl CounterSet {
        #[allow(clippy::declare_interior_mutable_const)] // repeat-init seed
        const ZERO: AtomicU64 = AtomicU64::new(0);

        /// Empty set, usable in statics.
        pub const fn new() -> Self {
            CounterSet { vals: [Self::ZERO; Counter::COUNT] }
        }

        /// Adds `n` to `c` (relaxed; totals only, no ordering implied).
        #[inline]
        pub fn add(&self, c: Counter, n: u64) {
            self.vals[c as usize].fetch_add(n, Ordering::Relaxed);
        }

        /// Current value of `c`.
        pub fn get(&self, c: Counter) -> u64 {
            self.vals[c as usize].load(Ordering::Relaxed)
        }

        /// Snapshot of all counters, in [`Counter::ALL`] order.
        pub fn snapshot(&self) -> [u64; Counter::COUNT] {
            let mut out = [0u64; Counter::COUNT];
            for (slot, c) in out.iter_mut().zip(Counter::ALL) {
                *slot = self.get(c);
            }
            out
        }

        /// Zeroes every counter.
        pub fn reset(&self) {
            for v in &self.vals {
                v.store(0, Ordering::Relaxed);
            }
        }
    }

    impl Default for CounterSet {
        fn default() -> Self {
            Self::new()
        }
    }

    use super::SPAN_RING_CAPACITY;

    /// Fixed-capacity overwrite-oldest buffer of span records.
    struct SpanRing {
        buf: Vec<SpanRecord>,
        /// Next write position once `buf` is full (oldest record).
        next: usize,
        dropped: u64,
    }

    impl SpanRing {
        const fn new() -> SpanRing {
            SpanRing { buf: Vec::new(), next: 0, dropped: 0 }
        }

        fn push(&mut self, rec: SpanRecord) {
            if self.buf.len() < SPAN_RING_CAPACITY {
                self.buf.push(rec);
            } else {
                self.buf[self.next] = rec;
                self.next = (self.next + 1) % SPAN_RING_CAPACITY;
                self.dropped += 1;
            }
        }

        /// Drains in oldest-first order and resets.
        fn take(&mut self) -> Vec<SpanRecord> {
            let mut out = std::mem::take(&mut self.buf);
            out.rotate_left(self.next);
            self.next = 0;
            out
        }
    }

    static COUNTERS: CounterSet = CounterSet::new();
    static SPANS: Mutex<SpanRing> = Mutex::new(SpanRing::new());
    static EVENTS: Mutex<Vec<ObsEventRecord>> = Mutex::new(Vec::new());
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    static NEXT_TID: AtomicU64 = AtomicU64::new(1);

    thread_local! {
        static PATH: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
        static TID: Cell<u64> = const { Cell::new(0) };
    }

    /// The global counter set.
    pub fn counters() -> &'static CounterSet {
        &COUNTERS
    }

    fn epoch() -> Instant {
        *EPOCH.get_or_init(Instant::now)
    }

    fn thread_id() -> u64 {
        TID.with(|t| {
            if t.get() == 0 {
                t.set(NEXT_TID.fetch_add(1, Ordering::Relaxed));
            }
            t.get()
        })
    }

    /// Thread CPU time in ns from `/proc/thread-self/schedstat`
    /// (first field). `None` where procfs is unavailable.
    fn thread_cpu_ns() -> Option<u64> {
        let s = std::fs::read_to_string("/proc/thread-self/schedstat").ok()?;
        s.split_whitespace().next()?.parse().ok()
    }

    /// RAII phase span: times the region between construction and drop
    /// and records it under the thread's current span path.
    pub struct PhaseSpan {
        path: Vec<String>,
        saved: Vec<String>,
        start: Instant,
        start_ns: u64,
        cpu0: Option<u64>,
        items: Cell<u64>,
    }

    impl PhaseSpan {
        fn enter_path(path: Vec<String>, saved: Vec<String>) -> PhaseSpan {
            let start = Instant::now();
            PhaseSpan {
                path,
                saved,
                start,
                start_ns: start.duration_since(epoch()).as_nanos() as u64,
                cpu0: thread_cpu_ns(),
                items: Cell::new(0),
            }
        }

        /// Opens a span named `name` nested under the thread's current
        /// span (if any).
        pub fn enter(name: &str) -> PhaseSpan {
            Self::enter_with(name, String::new)
        }

        /// Like [`PhaseSpan::enter`], with a lazily-built label: the
        /// path segment becomes `name[label]`. The closure only runs in
        /// instrumented builds.
        pub fn enter_with(name: &str, label: impl FnOnce() -> String) -> PhaseSpan {
            PATH.with(|p| {
                let saved = p.borrow().clone();
                let mut path = saved.clone();
                path.push(segment(name, &label()));
                *p.borrow_mut() = path.clone();
                Self::enter_path(path, saved)
            })
        }

        /// Opens a span on *this* thread nested under an explicit
        /// parent path (for worker threads, whose thread-local stack
        /// starts empty). `parent` usually comes from
        /// [`current_path`] captured on the spawning thread.
        pub fn enter_under(parent: &[String], name: &str, label: &str) -> PhaseSpan {
            PATH.with(|p| {
                let saved = p.borrow().clone();
                let mut path = parent.to_vec();
                path.push(segment(name, label));
                *p.borrow_mut() = path.clone();
                Self::enter_path(path, saved)
            })
        }

        /// Attributes `n` work items to this span (e.g. configs
        /// evaluated by a worker) — the manifest surfaces per-span
        /// item counts so queue imbalance is visible.
        pub fn add_items(&self, n: u64) {
            self.items.set(self.items.get() + n);
        }
    }

    fn segment(name: &str, label: &str) -> String {
        if label.is_empty() {
            name.to_string()
        } else {
            format!("{name}[{label}]")
        }
    }

    impl Drop for PhaseSpan {
        fn drop(&mut self) {
            let wall_ns = self.start.elapsed().as_nanos() as u64;
            let cpu_ns = match (self.cpu0, thread_cpu_ns()) {
                (Some(a), Some(b)) => Some(b.saturating_sub(a)),
                _ => None,
            };
            let rec = SpanRecord {
                path: std::mem::take(&mut self.path),
                thread: thread_id(),
                start_ns: self.start_ns,
                wall_ns,
                cpu_ns,
                items: self.items.get(),
            };
            PATH.with(|p| *p.borrow_mut() = std::mem::take(&mut self.saved));
            SPANS.lock().unwrap().push(rec);
        }
    }

    /// Spans overwritten by the ring buffer since the last [`reset`]
    /// (not cleared by [`take_spans`], so the manifest can report it
    /// after draining).
    pub fn spans_dropped() -> u64 {
        SPANS.lock().unwrap().dropped
    }

    /// The current thread's open span path (for handing to
    /// [`PhaseSpan::enter_under`] on spawned workers).
    pub fn current_path() -> Vec<String> {
        PATH.with(|p| p.borrow().clone())
    }

    /// Drains and returns all retained spans, oldest first. If the ring
    /// overflowed, the oldest spans are gone — check [`spans_dropped`].
    pub fn take_spans() -> Vec<SpanRecord> {
        SPANS.lock().unwrap().take()
    }

    /// Records a point event.
    pub fn record_event(kind: &str, detail: String) {
        EVENTS.lock().unwrap().push(ObsEventRecord { kind: kind.to_string(), detail });
    }

    /// Drains and returns all recorded point events.
    pub fn take_events() -> Vec<ObsEventRecord> {
        std::mem::take(&mut EVENTS.lock().unwrap())
    }

    /// Clears counters, spans, events, and histograms (test isolation
    /// and run-to-run separation in long-lived processes).
    pub fn reset() {
        COUNTERS.reset();
        *SPANS.lock().unwrap() = SpanRing::new();
        EVENTS.lock().unwrap().clear();
        crate::hist::reset_hists();
    }
}

#[cfg(not(feature = "enabled"))]
mod live {
    use super::{Counter, ObsEventRecord, SpanRecord};

    /// No-op stand-in: a zero-sized type whose methods vanish.
    pub struct CounterSet;

    impl CounterSet {
        /// No-op.
        #[inline(always)]
        pub fn add(&self, _c: Counter, _n: u64) {}

        /// Always zero.
        #[inline(always)]
        pub fn get(&self, _c: Counter) -> u64 {
            0
        }

        /// All zeroes.
        #[inline(always)]
        pub fn snapshot(&self) -> [u64; Counter::COUNT] {
            [0; Counter::COUNT]
        }

        /// No-op.
        #[inline(always)]
        pub fn reset(&self) {}
    }

    static COUNTERS: CounterSet = CounterSet;

    /// The (inert) global counter set.
    #[inline(always)]
    pub fn counters() -> &'static CounterSet {
        &COUNTERS
    }

    /// Zero-sized no-op span: no fields, no `Drop`, so constructing
    /// and dropping one compiles to nothing.
    #[must_use = "a span times the region it is alive for"]
    pub struct PhaseSpan;

    impl PhaseSpan {
        /// No-op.
        #[inline(always)]
        pub fn enter(_name: &str) -> PhaseSpan {
            PhaseSpan
        }

        /// No-op; the label closure is never called.
        #[inline(always)]
        pub fn enter_with(_name: &str, _label: impl FnOnce() -> String) -> PhaseSpan {
            PhaseSpan
        }

        /// No-op.
        #[inline(always)]
        pub fn enter_under(_parent: &[String], _name: &str, _label: &str) -> PhaseSpan {
            PhaseSpan
        }

        /// No-op.
        #[inline(always)]
        pub fn add_items(&self, _n: u64) {}
    }

    /// Always empty in uninstrumented builds.
    #[inline(always)]
    pub fn current_path() -> Vec<String> {
        Vec::new()
    }

    /// Always empty in uninstrumented builds.
    #[inline(always)]
    pub fn take_spans() -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Always zero in uninstrumented builds.
    #[inline(always)]
    pub fn spans_dropped() -> u64 {
        0
    }

    /// No-op.
    #[inline(always)]
    pub fn record_event(_kind: &str, _detail: String) {}

    /// Always empty in uninstrumented builds.
    #[inline(always)]
    pub fn take_events() -> Vec<ObsEventRecord> {
        Vec::new()
    }

    /// No-op.
    #[inline(always)]
    pub fn reset() {}
}

pub use live::{
    counters, current_path, record_event, reset, spans_dropped, take_events, take_spans,
    CounterSet, PhaseSpan,
};

/// Bumps a [`Counter`] by `n`. Compiles to nothing (arguments
/// unevaluated) when the `enabled` feature is off.
///
/// ```
/// tlc_obs::obs_count!(tlc_obs::Counter::TraceChunks, 4);
/// ```
#[macro_export]
macro_rules! obs_count {
    ($c:expr, $n:expr) => {
        if $crate::ENABLED {
            $crate::counters().add($c, $n);
        }
    };
}

/// Records a point event with a `format!`-style detail message.
/// Compiles to nothing (no formatting) when `enabled` is off.
///
/// ```
/// tlc_obs::obs_event!("fallback.byte_limit", "l1={}B", 8192);
/// ```
#[macro_export]
macro_rules! obs_event {
    ($kind:expr, $($arg:tt)*) => {
        if $crate::ENABLED {
            $crate::record_event($kind, format!($($arg)*));
        }
    };
}

/// Opens a [`PhaseSpan`] (zero-sized no-op when `enabled` is off).
/// Bind the result — `let _span = obs_span!("fan_out");` — so it
/// lives for the region being timed.
#[macro_export]
macro_rules! obs_span {
    ($name:expr) => {
        $crate::PhaseSpan::enter($name)
    };
}

/// Records one sample into a [`Hist`]. Compiles to nothing (arguments
/// unevaluated) when the `enabled` feature is off. For durations,
/// prefer [`HistTimer::start`].
///
/// ```
/// tlc_obs::obs_hist!(tlc_obs::Hist::RunnerWorkerItems, 12);
/// ```
#[macro_export]
macro_rules! obs_hist {
    ($h:expr, $v:expr) => {
        if $crate::ENABLED {
            $crate::hist::record($h, $v);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_match_all_order() {
        assert_eq!(Counter::ALL.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{} out of order", c.name());
        }
    }

    // With the crate built featureless (the default for its own test
    // target even when the workspace enables obs elsewhere), the span
    // must be a true ZST and all probes inert.
    #[cfg(not(feature = "enabled"))]
    mod disabled {
        use super::super::*;

        #[test]
        fn span_is_zero_sized_and_inert() {
            assert!(!ENABLED);
            assert_eq!(std::mem::size_of::<PhaseSpan>(), 0);
            let s = PhaseSpan::enter_with("phase", || unreachable!("label must be lazy"));
            s.add_items(10);
            drop(s);
            assert!(take_spans().is_empty());
        }

        #[test]
        fn counters_and_events_are_inert() {
            obs_count!(Counter::TraceChunks, 7);
            assert_eq!(counters().get(Counter::TraceChunks), 0);
            assert_eq!(counters().snapshot(), [0; Counter::COUNT]);
            // Argument side effects must not run when disabled.
            fn boom() -> u64 {
                panic!("event args must be unevaluated")
            }
            obs_event!("kind", "{}", boom());
            assert!(take_events().is_empty());
            assert!(current_path().is_empty());
        }
    }

    #[cfg(feature = "enabled")]
    mod enabled {
        use super::super::*;
        use std::sync::Mutex;

        // Counters/spans are process-global; serialize tests touching
        // them.
        static LOCK: Mutex<()> = Mutex::new(());

        #[test]
        fn counters_accumulate_and_reset() {
            let _g = LOCK.lock().unwrap();
            reset();
            obs_count!(Counter::L2Probes, 3);
            obs_count!(Counter::L2Probes, 4);
            assert_eq!(counters().get(Counter::L2Probes), 7);
            reset();
            assert_eq!(counters().get(Counter::L2Probes), 0);
        }

        #[test]
        fn spans_nest_on_one_thread() {
            let _g = LOCK.lock().unwrap();
            reset();
            {
                let outer = PhaseSpan::enter("outer");
                outer.add_items(2);
                {
                    let _inner = PhaseSpan::enter_with("inner", || "x".to_string());
                }
                assert_eq!(current_path(), vec!["outer".to_string()]);
            }
            let mut spans = take_spans();
            spans.sort_by_key(|s| s.path.len());
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].path, ["outer"]);
            assert_eq!(spans[0].items, 2);
            assert_eq!(spans[1].path, ["outer", "inner[x]"]);
            assert!(spans[1].wall_ns <= spans[0].wall_ns);
        }

        #[test]
        fn enter_under_nests_across_threads() {
            let _g = LOCK.lock().unwrap();
            reset();
            {
                let _root = PhaseSpan::enter("root");
                let parent = current_path();
                std::thread::scope(|scope| {
                    for w in 0..2u64 {
                        let parent = parent.clone();
                        scope.spawn(move || {
                            let s = PhaseSpan::enter_under(&parent, "worker", &w.to_string());
                            s.add_items(1);
                        });
                    }
                });
            }
            let spans = take_spans();
            assert_eq!(spans.len(), 3);
            let workers: Vec<_> = spans.iter().filter(|s| s.path.len() == 2).collect();
            assert_eq!(workers.len(), 2);
            for w in &workers {
                assert_eq!(w.path[0], "root");
                assert!(w.path[1].starts_with("worker["));
            }
            // Distinct threads got distinct ids.
            assert_ne!(workers[0].thread, workers[1].thread);
        }

        #[test]
        fn span_ring_overwrites_oldest_and_counts_drops() {
            let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
            reset();
            let extra = 5usize;
            for i in 0..SPAN_RING_CAPACITY + extra {
                let _s = PhaseSpan::enter_with("s", || i.to_string());
            }
            assert_eq!(spans_dropped(), extra as u64);
            let spans = take_spans();
            assert_eq!(spans.len(), SPAN_RING_CAPACITY);
            // Oldest `extra` spans were overwritten; order is preserved.
            assert_eq!(spans[0].path, [format!("s[{extra}]")]);
            assert_eq!(
                spans.last().unwrap().path,
                [format!("s[{}]", SPAN_RING_CAPACITY + extra - 1)]
            );
            reset();
            assert_eq!(spans_dropped(), 0);
        }
    }
}
