//! The `tlc-run-manifest/2` document: a versioned JSON record of one
//! pipeline run (sweep or repro) carrying engine/thread metadata, a
//! config-space hash, counter totals, a nested per-phase span tree,
//! latency histogram summaries, a memory-accounting section, and any
//! point events (fallbacks, worker errors).
//!
//! Schema history: `/1` had counters + spans + events; `/2` adds
//! `histograms` (log-linear latency distributions with
//! p50/p90/p99/max), `memory` (peak/current RSS plus arena and
//! event-buffer bytes), and `spans_dropped` (ring-buffer overflow
//! count). The new fields deserialize with defaults, so `/1` documents
//! still parse — but [`RunManifest::validate`] only accepts `/2`.
//!
//! This module is compiled regardless of the `enabled` feature so
//! `--metrics` always produces a document; uninstrumented builds mark
//! it `"instrumentation": false` and carry empty counters/spans (the
//! `memory` RSS fields are real either way — they come from procfs,
//! not from probes).

use crate::hist::{HistBucket, HistSnapshot};
use crate::{Counter, ObsEventRecord, SpanRecord};
use serde::{Deserialize, Serialize};

/// Schema identifier stamped into every manifest.
pub const SCHEMA: &str = "tlc-run-manifest/2";

/// One counter total, by dotted name ([`Counter::name`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterTotal {
    /// Dotted counter name, e.g. `"l2.probes"`.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One node of the aggregated span tree. Spans with the same path are
/// merged: `count` executions, summed `wall_ns`/`cpu_ns`/`items`,
/// `threads` distinct executing threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Path segment, e.g. `"fan_out"` or `"group[8192B/16B]"`.
    pub name: String,
    /// Number of span executions merged into this node.
    pub count: u64,
    /// Total wall-clock ns across executions (parents include
    /// children; sibling workers overlap, so sums can exceed the
    /// parent's wall time).
    pub wall_ns: u64,
    /// Total thread CPU ns across executions; 0 when the platform
    /// exposes no per-thread CPU clock.
    pub cpu_ns: u64,
    /// Distinct threads that executed this span.
    pub threads: u64,
    /// Work items attributed via `PhaseSpan::add_items`.
    pub items: u64,
    /// Child phases, ordered by first start time.
    pub children: Vec<SpanNode>,
}

/// Summary of one latency histogram: exact count/sum/max, the
/// headline quantiles, and the sparse bucket array for consumers that
/// want other quantiles or full distribution plots.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Dotted histogram name, e.g. `"replay.family_chunk_ns"`.
    pub name: String,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (exact; `sum / count` is the mean).
    pub sum: u64,
    /// Largest recorded value (exact).
    pub max: u64,
    /// Median (within one log-linear bucket width of exact).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<HistBucket>,
}

impl HistogramSummary {
    fn from_snapshot(s: &HistSnapshot) -> HistogramSummary {
        HistogramSummary {
            name: s.name.clone(),
            count: s.count,
            sum: s.sum,
            max: s.max,
            p50: s.quantile(0.50),
            p90: s.quantile(0.90),
            p99: s.quantile(0.99),
            buckets: s.buckets.clone(),
        }
    }
}

/// Memory accounting for the run. RSS figures come from
/// `/proc/self/status` at manifest-collection time (0 where procfs is
/// unavailable); the byte totals come from counters and are 0 in
/// uninstrumented builds.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySection {
    /// Process peak resident set size in bytes (`VmHWM`).
    pub peak_rss_bytes: u64,
    /// Resident set size in bytes when the manifest was collected
    /// (`VmRSS`).
    pub current_rss_bytes: u64,
    /// Bytes of packed SoA trace arena storage allocated
    /// (`trace.bytes_packed`).
    pub arena_bytes: u64,
    /// Bytes of encoded L1 miss events accumulated in filter event
    /// buffers (`filter.event_bytes`).
    pub event_buffer_bytes: u64,
}

impl MemorySection {
    /// Collects RSS from procfs and byte totals from the given counter
    /// list.
    fn collect(counters: &[CounterTotal]) -> MemorySection {
        let get =
            |name: &str| counters.iter().find(|c| c.name == name).map(|c| c.value).unwrap_or(0);
        let (peak, current) = read_rss_bytes();
        MemorySection {
            peak_rss_bytes: peak,
            current_rss_bytes: current,
            arena_bytes: get("trace.bytes_packed"),
            event_buffer_bytes: get("filter.event_bytes"),
        }
    }
}

/// (`VmHWM`, `VmRSS`) in bytes from `/proc/self/status`; zeros where
/// procfs is unavailable or the fields are missing.
fn read_rss_bytes() -> (u64, u64) {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return (0, 0);
    };
    let field = |key: &str| {
        status
            .lines()
            .find(|l| l.starts_with(key))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse::<u64>().ok())
            .map(|kb| kb * 1024)
            .unwrap_or(0)
    };
    (field("VmHWM:"), field("VmRSS:"))
}

/// Run metadata supplied by the caller (everything the instrumentation
/// layer cannot know on its own).
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Entry point: `"sweep"` or `"repro"`.
    pub command: String,
    /// Workload/benchmark name.
    pub benchmark: String,
    /// Engine actually requested (`"auto"`, `"family"`, ...).
    pub engine: String,
    /// Worker threads used.
    pub threads: u64,
    /// Number of design points in the swept space.
    pub configs: u64,
    /// Hex FNV-1a 64 hash of the serialized config space (ties a
    /// manifest to the exact set of design points it measured).
    pub config_space_hash: String,
    /// End-to-end wall time in seconds.
    pub wall_s: f64,
}

/// A complete `tlc-run-manifest/1` document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunManifest {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Entry point: `"sweep"` or `"repro"`.
    pub command: String,
    /// Workload/benchmark name.
    pub benchmark: String,
    /// Engine requested.
    pub engine: String,
    /// Worker threads used.
    pub threads: u64,
    /// Design points in the swept space.
    pub configs: u64,
    /// Hex FNV-1a 64 hash of the serialized config space.
    pub config_space_hash: String,
    /// End-to-end wall time in seconds.
    pub wall_s: f64,
    /// Whether the producing build carried live instrumentation.
    pub instrumentation: bool,
    /// Counter totals (all counters, [`Counter::ALL`] order).
    pub counters: Vec<CounterTotal>,
    /// Aggregated span tree (empty when uninstrumented).
    pub spans: Vec<SpanNode>,
    /// Point events in record order (fallbacks, errors).
    pub events: Vec<ObsEventRecord>,
    /// Latency histogram summaries, one per `Hist`, in `Hist::ALL`
    /// order (empty when uninstrumented; absent in `/1` documents).
    #[serde(default = "Vec::new")]
    pub histograms: Vec<HistogramSummary>,
    /// Memory accounting (all-zero in `/1` documents).
    #[serde(default = "Default::default")]
    pub memory: MemorySection,
    /// Spans lost to ring-buffer overflow before collection.
    #[serde(default = "Default::default")]
    pub spans_dropped: u64,
}

impl RunManifest {
    /// Builds a manifest by draining the global instrumentation state
    /// (spans, events) and snapshotting counters. Call once, at the
    /// end of a run.
    pub fn collect(meta: RunMeta) -> RunManifest {
        Self::from_parts(
            meta,
            crate::take_spans(),
            crate::take_events(),
            crate::counters().snapshot(),
        )
    }

    /// Builds a manifest from explicitly captured parts (used by
    /// callers that drain spans incrementally, e.g. `repro`).
    pub fn from_parts(
        meta: RunMeta,
        spans: Vec<SpanRecord>,
        events: Vec<ObsEventRecord>,
        snapshot: [u64; Counter::COUNT],
    ) -> RunManifest {
        let counters: Vec<CounterTotal> = Counter::ALL
            .iter()
            .zip(snapshot)
            .map(|(c, value)| CounterTotal { name: c.name().to_string(), value })
            .collect();
        let memory = MemorySection::collect(&counters);
        RunManifest {
            schema: SCHEMA.to_string(),
            command: meta.command,
            benchmark: meta.benchmark,
            engine: meta.engine,
            threads: meta.threads,
            configs: meta.configs,
            config_space_hash: meta.config_space_hash,
            wall_s: meta.wall_s,
            instrumentation: crate::ENABLED,
            counters,
            spans: build_span_tree(spans),
            events,
            histograms: crate::hist::snapshot_all()
                .iter()
                .map(HistogramSummary::from_snapshot)
                .collect(),
            memory,
            spans_dropped: crate::spans_dropped(),
        }
    }

    /// Looks up a histogram summary by dotted name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Looks up a counter total by dotted name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|c| c.name == name).map(|c| c.value)
    }

    /// Checks structural and arithmetic invariants:
    ///
    /// * `schema` matches [`SCHEMA`];
    /// * when instrumented: `filter.events_decoded` ==
    ///   `filter.l1_hits + filter.l1_misses`, `l2.probes` ==
    ///   `l2.hits + l2.misses`, and for sweeps
    ///   `runner.configs_completed` == `configs` (times the phase count
    ///   for sampled sweeps);
    /// * when phase-sampled (`sample.phases` > 0):
    ///   `sample.phases + sample.intervals_skipped == sample.intervals`;
    /// * per histogram: bucket counts sum to `count` and quantiles are
    ///   monotone (`p50 <= p90 <= p99 <= max`);
    /// * `memory.peak_rss_bytes >= memory.current_rss_bytes` when both
    ///   were measured.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != SCHEMA {
            return Err(format!("schema {:?}, expected {SCHEMA:?}", self.schema));
        }
        for h in &self.histograms {
            let bucket_sum: u64 = h.buckets.iter().map(|b| b.count).sum();
            if bucket_sum != h.count {
                return Err(format!(
                    "histogram {}: bucket counts sum to {bucket_sum}, count is {}",
                    h.name, h.count
                ));
            }
            if h.count > 0 && !(h.p50 <= h.p90 && h.p90 <= h.p99 && h.p99 <= h.max) {
                return Err(format!(
                    "histogram {}: quantiles not monotone (p50 {} p90 {} p99 {} max {})",
                    h.name, h.p50, h.p90, h.p99, h.max
                ));
            }
        }
        let mem = &self.memory;
        if mem.peak_rss_bytes > 0
            && mem.current_rss_bytes > 0
            && mem.peak_rss_bytes < mem.current_rss_bytes
        {
            return Err(format!(
                "memory: peak_rss_bytes {} < current_rss_bytes {}",
                mem.peak_rss_bytes, mem.current_rss_bytes
            ));
        }
        if !self.instrumentation {
            return Ok(()); // counters are all zero by construction
        }
        let get =
            |name: &str| self.counter(name).ok_or_else(|| format!("missing counter {name:?}"));
        let decoded = get("filter.events_decoded")?;
        let hits = get("filter.l1_hits")?;
        let misses = get("filter.l1_misses")?;
        if decoded != hits + misses {
            return Err(format!(
                "filter.events_decoded {decoded} != l1_hits {hits} + l1_misses {misses}"
            ));
        }
        let probes = get("l2.probes")?;
        let l2h = get("l2.hits")?;
        let l2m = get("l2.misses")?;
        if probes != l2h + l2m {
            return Err(format!("l2.probes {probes} != l2.hits {l2h} + l2.misses {l2m}"));
        }
        let phases = self.counter("sample.phases").unwrap_or(0);
        if phases > 0 {
            let intervals = get("sample.intervals")?;
            let skipped = get("sample.intervals_skipped")?;
            if phases + skipped != intervals {
                return Err(format!(
                    "sample.phases {phases} + sample.intervals_skipped {skipped} \
                     != sample.intervals {intervals}"
                ));
            }
        }
        if self.command == "sweep" {
            let done = get("runner.configs_completed")?;
            // A sampled sweep runs every config once per representative
            // phase before recombining, so the completion ticks scale by
            // the phase count.
            let expected = self.configs * phases.max(1);
            if done != expected {
                return Err(format!(
                    "runner.configs_completed {done} != configs {} x phases {}",
                    self.configs,
                    phases.max(1)
                ));
            }
        }
        Ok(())
    }

    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("manifest serialization cannot fail")
    }

    /// Parses a manifest from JSON.
    pub fn from_json(s: &str) -> Result<RunManifest, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Human-readable summary (counters + span tree) for stderr.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} {} engine={} threads={} configs={} wall={:.3}s instrumentation={}\n",
            self.command,
            self.benchmark,
            self.engine,
            self.threads,
            self.configs,
            self.wall_s,
            self.instrumentation
        ));
        for c in &self.counters {
            if c.value != 0 {
                out.push_str(&format!("# counter {} = {}\n", c.name, c.value));
            }
        }
        for h in &self.histograms {
            if h.count != 0 {
                out.push_str(&format!(
                    "# hist {}: n={} mean={} p50={} p90={} p99={} max={}\n",
                    h.name,
                    h.count,
                    h.sum / h.count,
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max
                ));
            }
        }
        if self.memory.peak_rss_bytes != 0 {
            out.push_str(&format!(
                "# memory peak_rss={}K current_rss={}K arena={}K event_buffers={}K\n",
                self.memory.peak_rss_bytes / 1024,
                self.memory.current_rss_bytes / 1024,
                self.memory.arena_bytes / 1024,
                self.memory.event_buffer_bytes / 1024
            ));
        }
        if self.spans_dropped != 0 {
            out.push_str(&format!("# spans dropped (ring overflow): {}\n", self.spans_dropped));
        }
        for node in &self.spans {
            render_node(&mut out, node, 0);
        }
        out
    }
}

fn render_node(out: &mut String, node: &SpanNode, depth: usize) {
    out.push_str(&span_line(node, depth));
    out.push('\n');
    for child in &node.children {
        render_node(out, child, depth + 1);
    }
}

/// Formats one span-tree node as the shared single-line text form used
/// by both `tlc sweep` and `repro` stderr reporting.
pub fn span_line(node: &SpanNode, depth: usize) -> String {
    let mut line = format!(
        "# {:indent$}{}: wall {:.3}s",
        "",
        node.name,
        node.wall_ns as f64 / 1e9,
        indent = depth * 2
    );
    if node.cpu_ns != 0 {
        line.push_str(&format!(" cpu {:.3}s", node.cpu_ns as f64 / 1e9));
    }
    if node.count > 1 {
        line.push_str(&format!(" x{}", node.count));
    }
    if node.threads > 1 {
        line.push_str(&format!(" on {} threads", node.threads));
    }
    if node.items != 0 {
        line.push_str(&format!(" ({} items)", node.items));
    }
    line
}

struct NodeBuild {
    name: String,
    count: u64,
    wall_ns: u64,
    cpu_ns: u64,
    items: u64,
    threads: Vec<u64>,
    first_start: u64,
    children: Vec<NodeBuild>,
}

impl NodeBuild {
    fn new(name: &str) -> NodeBuild {
        NodeBuild {
            name: name.to_string(),
            count: 0,
            wall_ns: 0,
            cpu_ns: 0,
            items: 0,
            threads: Vec::new(),
            first_start: u64::MAX,
            children: Vec::new(),
        }
    }

    fn child(&mut self, name: &str) -> &mut NodeBuild {
        if let Some(i) = self.children.iter().position(|c| c.name == name) {
            return &mut self.children[i];
        }
        self.children.push(NodeBuild::new(name));
        self.children.last_mut().unwrap()
    }

    fn finish(mut self) -> SpanNode {
        self.children.sort_by_key(|c| c.first_start);
        SpanNode {
            name: self.name,
            count: self.count,
            wall_ns: self.wall_ns,
            cpu_ns: self.cpu_ns,
            threads: self.threads.len() as u64,
            items: self.items,
            children: self.children.into_iter().map(NodeBuild::finish).collect(),
        }
    }
}

/// Aggregates flat [`SpanRecord`]s (drained from the thread-local span
/// stacks) into a nested tree, merging records that share a path.
pub fn build_span_tree(records: Vec<SpanRecord>) -> Vec<SpanNode> {
    let mut root = NodeBuild::new("");
    for rec in records {
        let mut node = &mut root;
        for seg in &rec.path {
            node = node.child(seg);
            node.first_start = node.first_start.min(rec.start_ns);
        }
        node.count += 1;
        node.wall_ns += rec.wall_ns;
        node.cpu_ns += rec.cpu_ns.unwrap_or(0);
        node.items += rec.items;
        if !node.threads.contains(&rec.thread) {
            node.threads.push(rec.thread);
        }
    }
    root.finish().children
}

/// FNV-1a 64-bit hash — deterministic across processes (unlike
/// `DefaultHasher`, which is randomly seeded), used for
/// `config_space_hash`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &[&str], thread: u64, start: u64, wall: u64, items: u64) -> SpanRecord {
        SpanRecord {
            path: path.iter().map(|s| s.to_string()).collect(),
            thread,
            start_ns: start,
            wall_ns: wall,
            cpu_ns: Some(wall / 2),
            items,
        }
    }

    fn meta() -> RunMeta {
        RunMeta {
            command: "sweep".to_string(),
            benchmark: "paper".to_string(),
            engine: "family".to_string(),
            threads: 2,
            configs: 0,
            config_space_hash: format!("{:016x}", fnv1a64(b"[]")),
            wall_s: 0.5,
        }
    }

    #[test]
    fn tree_merges_paths_and_orders_children() {
        let spans = vec![
            rec(&["sweep"], 1, 0, 100, 0),
            rec(&["sweep", "fan_out"], 1, 60, 40, 0),
            rec(&["sweep", "l1_capture"], 1, 10, 50, 0),
            rec(&["sweep", "fan_out", "worker[0]"], 2, 61, 39, 45),
            rec(&["sweep", "fan_out", "worker[1]"], 3, 61, 39, 45),
        ];
        let tree = build_span_tree(spans);
        assert_eq!(tree.len(), 1);
        let sweep = &tree[0];
        assert_eq!(sweep.name, "sweep");
        assert_eq!(sweep.count, 1);
        // Children ordered by first start: l1_capture before fan_out.
        let names: Vec<_> = sweep.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["l1_capture", "fan_out"]);
        let fan = &sweep.children[1];
        assert_eq!(fan.children.len(), 2);
        assert_eq!(fan.children[0].threads, 1);
        assert_eq!(fan.children[0].items, 45);
    }

    #[test]
    fn tree_merges_same_path_across_threads() {
        let spans =
            vec![rec(&["root", "group[a]"], 1, 0, 10, 3), rec(&["root", "group[a]"], 2, 5, 20, 4)];
        let tree = build_span_tree(spans);
        let g = &tree[0].children[0];
        assert_eq!(g.count, 2);
        assert_eq!(g.wall_ns, 30);
        assert_eq!(g.threads, 2);
        assert_eq!(g.items, 7);
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = RunManifest::from_parts(
            meta(),
            vec![rec(&["sweep"], 1, 0, 100, 0)],
            vec![ObsEventRecord { kind: "k".to_string(), detail: "d".to_string() }],
            [3; Counter::COUNT],
        );
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.schema, SCHEMA);
        assert_eq!(back.counters, m.counters);
        assert_eq!(back.spans, m.spans);
        assert_eq!(back.events, m.events);
        assert_eq!(back.counter("l2.probes"), Some(3));
    }

    #[test]
    fn validate_checks_schema_and_invariants() {
        let mut m = RunManifest::from_parts(meta(), Vec::new(), Vec::new(), [0; Counter::COUNT]);
        // Uninstrumented (or all-zero) manifests validate trivially.
        assert!(m.validate().is_ok());
        m.schema = "bogus".to_string();
        assert!(m.validate().unwrap_err().contains("schema"));
    }

    #[test]
    fn validate_rejects_broken_counter_arithmetic() {
        let mut m = RunManifest::from_parts(meta(), Vec::new(), Vec::new(), [0; Counter::COUNT]);
        if !m.instrumentation {
            // Invariants are only enforced on instrumented manifests;
            // force the flag so the arithmetic paths are exercised in
            // featureless builds of this crate too.
            m.instrumentation = true;
        }
        let set = |m: &mut RunManifest, name: &str, v: u64| {
            m.counters.iter_mut().find(|c| c.name == name).unwrap().value = v;
        };
        set(&mut m, "filter.events_decoded", 10);
        set(&mut m, "filter.l1_hits", 6);
        set(&mut m, "filter.l1_misses", 4);
        assert!(m.validate().is_ok());
        set(&mut m, "filter.l1_misses", 5);
        assert!(m.validate().unwrap_err().contains("events_decoded"));
        set(&mut m, "filter.l1_misses", 4);
        set(&mut m, "l2.probes", 1);
        assert!(m.validate().unwrap_err().contains("l2.probes"));
        set(&mut m, "l2.probes", 0);
        set(&mut m, "runner.configs_completed", 1);
        assert!(m.validate().unwrap_err().contains("configs_completed"));
        m.configs = 1;
        assert!(m.validate().is_ok());
    }

    fn hist(name: &str, count: u64, quantiles: (u64, u64, u64, u64)) -> HistogramSummary {
        let (p50, p90, p99, max) = quantiles;
        HistogramSummary {
            name: name.to_string(),
            count,
            sum: count * p50,
            max,
            p50,
            p90,
            p99,
            buckets: if count > 0 {
                vec![HistBucket { index: crate::hist::bucket_of(p50) as u32, floor: 0, count }]
            } else {
                Vec::new()
            },
        }
    }

    #[test]
    fn validate_checks_histogram_and_memory_invariants() {
        let mut m = RunManifest::from_parts(meta(), Vec::new(), Vec::new(), [0; Counter::COUNT]);
        m.histograms = vec![hist("replay.family_chunk_ns", 10, (5, 8, 9, 12))];
        m.memory = MemorySection {
            peak_rss_bytes: 2048,
            current_rss_bytes: 1024,
            arena_bytes: 0,
            event_buffer_bytes: 0,
        };
        assert!(m.validate().is_ok());
        // Non-monotone quantiles are rejected.
        m.histograms[0].p90 = 4;
        assert!(m.validate().unwrap_err().contains("not monotone"));
        m.histograms[0].p90 = 8;
        // Bucket counts must sum to the recorded count.
        m.histograms[0].buckets[0].count = 9;
        assert!(m.validate().unwrap_err().contains("bucket counts"));
        m.histograms[0].buckets[0].count = 10;
        // Peak RSS below current RSS is impossible.
        m.memory.current_rss_bytes = 4096;
        assert!(m.validate().unwrap_err().contains("peak_rss_bytes"));
    }

    #[test]
    fn memory_section_is_collected_from_procfs_and_counters() {
        let mut snapshot = [0u64; Counter::COUNT];
        let idx = |c: Counter| Counter::ALL.iter().position(|&x| x == c).unwrap();
        snapshot[idx(Counter::TraceBytesPacked)] = 777;
        snapshot[idx(Counter::FilterEventBytes)] = 42;
        let m = RunManifest::from_parts(meta(), Vec::new(), Vec::new(), snapshot);
        assert_eq!(m.memory.arena_bytes, 777);
        assert_eq!(m.memory.event_buffer_bytes, 42);
        // On Linux, procfs gives real RSS figures.
        if cfg!(target_os = "linux") {
            assert!(m.memory.peak_rss_bytes > 0);
            assert!(m.memory.peak_rss_bytes >= m.memory.current_rss_bytes);
        }
    }

    #[test]
    fn v1_documents_parse_with_defaulted_v2_fields() {
        // A /1 document has no histograms/memory/spans_dropped keys;
        // deserialization must fill defaults (validate then rejects the
        // old schema string with a clear message).
        let mut m = RunManifest::from_parts(meta(), Vec::new(), Vec::new(), [0; Counter::COUNT]);
        m.schema = "tlc-run-manifest/1".to_string();
        let mut v: serde_json::Value = serde_json::from_str(&m.to_json()).unwrap();
        let serde_json::Value::Object(ref mut entries) = v else {
            panic!("manifest serializes as an object");
        };
        entries.retain(|(k, _)| !matches!(k.as_str(), "histograms" | "memory" | "spans_dropped"));
        let back = RunManifest::from_json(&serde_json::to_string(&v).unwrap()).unwrap();
        assert!(back.histograms.is_empty());
        assert_eq!(back.memory, MemorySection::default());
        assert_eq!(back.spans_dropped, 0);
        let err = back.validate().unwrap_err();
        assert!(err.contains("tlc-run-manifest/2"), "clear schema message, got: {err}");
    }

    #[test]
    fn manifest_carries_histograms_in_hist_all_order() {
        let m = RunManifest::from_parts(meta(), Vec::new(), Vec::new(), [0; Counter::COUNT]);
        if crate::ENABLED {
            let names: Vec<_> = m.histograms.iter().map(|h| h.name.as_str()).collect();
            let expected: Vec<_> = crate::Hist::ALL.iter().map(|h| h.name()).collect();
            assert_eq!(names, expected);
        } else {
            assert!(m.histograms.is_empty());
        }
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn span_line_formats_shared_shape() {
        let node = SpanNode {
            name: "fan_out".to_string(),
            count: 2,
            wall_ns: 1_500_000_000,
            cpu_ns: 0,
            threads: 2,
            items: 90,
            children: Vec::new(),
        };
        let line = span_line(&node, 1);
        assert!(line.starts_with("#   fan_out: wall 1.500s"));
        assert!(line.contains("x2"));
        assert!(line.contains("on 2 threads"));
        assert!(line.contains("(90 items)"));
    }
}
