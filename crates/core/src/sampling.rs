//! SimPoint-style phase sampling: sweep only representative slices.
//!
//! Program behaviour is phasic — long stretches of a trace exercise the
//! cache hierarchy the same way. Instead of replaying a whole trace once
//! per L1 group, a sampled sweep:
//!
//! 1. slices the instruction stream into fixed-length intervals and
//!    summarises each with an address-region touch vector (the data-trace
//!    analogue of SimPoint's basic-block vectors) — [`sample_source`];
//! 2. clusters the interval signatures with seeded k-means into K
//!    *phases*, picks the interval closest to each centroid as the
//!    phase's representative, and records each phase's weight (the
//!    instructions its member intervals cover) — persisted as a
//!    [`PhaseSample`] (`tlc-phase-sample/1` JSON);
//! 3. captures only the representative slices (plus a warm-up prefix)
//!    into per-phase arenas — [`capture_phase_slices`] — which the
//!    runner sweeps with **stitched warming** and recombines via
//!    [`combine_weighted`].
//!
//! ## Stitched warming
//!
//! Replaying each slice from a cold hierarchy systematically
//! *overestimates* miss ratios: a large L2 (thousands of lines) sees far
//! too few probes inside one slice to fill, so every slice re-pays the
//! compulsory-miss transient the full trace pays once. The sampled
//! runner therefore keeps **one** persistent simulation per L1 group and
//! family: the L1 front-end replays every slice in trace order
//! (contents carrying across the gaps between representatives —
//! "stale state" in the SimPoint literature), and the family back-end
//! walks the per-slice event segments through one persistent set of L2
//! arrays, LFSRs, and exclusive mirrors. Each slice's warm-up prefix
//! then only has to *refresh* stale state, not fill a cold cache;
//! counters reset at each slice's warm-up boundary as usual.
//!
//! ## Error contract
//!
//! Reconstruction is approximate, mirroring the `predict` engine's ε
//! pattern: the recombined local L2 miss ratio of every configuration is
//! within [`SAMPLED_MISS_RATIO_EPSILON`] of full-trace replay (as
//! measured by [`tlc_cache::miss_ratio_error`]) on the committed
//! benchmarks — enforced by `tests/sampling_equivalence.rs` under the
//! parameter guidance below. Two degenerate cases are *exact* by
//! construction: when the interval covers the whole stream (one
//! interval, any K) and when K = 1 with an interval at least the stream
//! length, the single representative slice **is** the stream, its weight
//! is 1, and recombination reduces to full replay bit-for-bit.
//!
//! The contract is only meaningful when the parameters respect the
//! hierarchy being swept:
//!
//! - **Interval vs. L2 fill time.** A slice must deliver enough L2
//!   probes to express its steady-state behaviour: choose the interval
//!   so a slice's L1 misses are at least a few multiples of the largest
//!   L2's line count. Intervals much shorter than the L2 fill time
//!   leave even the stitched replay dominated by transient, and the
//!   measured local miss ratio becomes noise.
//! - **Warm-up refresh.** A prefix of a quarter to half an interval
//!   before each slice consistently tightens reconstruction (it
//!   refreshes the stale state across the unsampled gap); it is replay
//!   cost, not measured.
//! - **K vs. phase diversity.** Too few phases collapses distinct
//!   behaviours into one representative — with stitched warming, larger
//!   K strictly adds fidelity (it no longer adds cold transients), at
//!   the cost of replaying more of the trace.
//!
//! Sampling is *unsound* — expect errors beyond ε — for configurations
//! whose L2 never approaches steady state even on the full trace (an L2
//! sized near the trace's whole footprint), or for streams so short that
//! the interval count is comparable to K.

use crate::experiment::SimBudget;
use serde::{Deserialize, Serialize};
use tlc_cache::HierarchyStats;
use tlc_obs::{obs_count, Counter};
use tlc_trace::{InstructionSource, TraceArena};

/// Schema tag of the persisted phase-selection JSON.
pub const PHASE_SAMPLE_SCHEMA: &str = "tlc-phase-sample/1";

/// Documented tolerance of sampled-sweep reconstruction: the recombined
/// local L2 miss ratio of any configuration is within this of
/// full-replay ground truth on the committed benchmarks (see
/// [`tlc_cache::miss_ratio_error`] for the metric, and the module docs
/// for the exact degenerate cases). Mirrors
/// [`tlc_cache::MISS_RATIO_EPSILON`], the predict engine's contract.
pub const SAMPLED_MISS_RATIO_EPSILON: f64 = 0.12;

/// Dimensionality of the per-interval signature vector. Address regions
/// hash into these buckets; 64 is plenty to separate phases while
/// keeping k-means cheap.
const SIGNATURE_DIMS: usize = 64;

/// Address-region granularity of the signature: 4 KiB, a page — coarse
/// enough that a loop nest stays in one region, fine enough that
/// distinct working sets land in distinct regions.
const REGION_SHIFT: u32 = 12;

/// Maximum Lloyd iterations before k-means stops refining.
const KMEANS_MAX_ITERS: usize = 100;

/// Clustering parameters for [`sample_source`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleOptions {
    /// Interval length in instructions. Shorter intervals resolve finer
    /// phase structure but cost more clustering and replay more slices.
    pub interval: u64,
    /// Number of phases K to cluster into (clamped to the interval
    /// count).
    pub phases: usize,
    /// Seed for the k-means++ initialisation; the whole pipeline is
    /// deterministic in (stream, interval, phases, seed).
    pub seed: u64,
}

impl Default for SampleOptions {
    fn default() -> Self {
        SampleOptions { interval: 100_000, phases: 8, seed: 0x5EED }
    }
}

/// One selected phase of a [`PhaseSample`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseInfo {
    /// Index of the representative interval (its slice starts at
    /// `representative * interval`).
    pub representative: u64,
    /// Number of intervals this phase stands in for (including the
    /// representative itself).
    pub members: u64,
    /// Instructions covered by the phase's member intervals — the
    /// recombination weight.
    pub weight_instructions: u64,
}

/// A persisted weighted phase selection (`tlc-phase-sample/1`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSample {
    /// Schema tag ([`PHASE_SAMPLE_SCHEMA`]).
    pub schema: String,
    /// Name of the sampled stream (trace file stem or benchmark).
    pub trace: String,
    /// Total instructions in the sampled stream.
    pub instructions: u64,
    /// Interval length in instructions.
    pub interval: u64,
    /// Requested cluster count K (the effective count is
    /// `phases.len()`, which may be smaller for short streams).
    pub k: usize,
    /// Seed the clustering ran with.
    pub seed: u64,
    /// Total number of intervals the stream was sliced into.
    pub intervals: u64,
    /// The selected phases, ascending by representative interval.
    pub phases: Vec<PhaseInfo>,
}

impl PhaseSample {
    /// Pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("phase sample serialization cannot fail")
    }

    /// Parses a phase sample from JSON (no invariant checks; call
    /// [`PhaseSample::validate`]).
    ///
    /// # Errors
    ///
    /// Returns the serde error string on malformed JSON.
    pub fn from_json(s: &str) -> Result<PhaseSample, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }

    /// Checks structural and arithmetic invariants: schema tag, interval
    /// arithmetic, ascending in-range representatives, and that member
    /// counts and weights add up to the whole stream.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema != PHASE_SAMPLE_SCHEMA {
            return Err(format!("schema {:?}, expected {PHASE_SAMPLE_SCHEMA:?}", self.schema));
        }
        if self.interval == 0 {
            return Err("interval must be positive".into());
        }
        if self.instructions == 0 {
            return Err("sampled stream is empty".into());
        }
        let expect_intervals = self.instructions.div_ceil(self.interval);
        if self.intervals != expect_intervals {
            return Err(format!(
                "intervals {} != ceil(instructions {} / interval {}) = {expect_intervals}",
                self.intervals, self.instructions, self.interval
            ));
        }
        if self.phases.is_empty() {
            return Err("no phases selected".into());
        }
        let mut prev: Option<u64> = None;
        let mut members = 0u64;
        let mut weight = 0u64;
        for p in &self.phases {
            if p.representative >= self.intervals {
                return Err(format!(
                    "representative interval {} out of range (intervals {})",
                    p.representative, self.intervals
                ));
            }
            if let Some(prev) = prev {
                if p.representative <= prev {
                    return Err("representatives must be ascending and distinct".into());
                }
            }
            prev = Some(p.representative);
            if p.members == 0 || p.weight_instructions == 0 {
                return Err(format!("phase at interval {} is empty", p.representative));
            }
            members += p.members;
            weight += p.weight_instructions;
        }
        if members != self.intervals {
            return Err(format!("phase members sum {members} != intervals {}", self.intervals));
        }
        if weight != self.instructions {
            return Err(format!(
                "phase weights sum {weight} != instructions {}",
                self.instructions
            ));
        }
        Ok(())
    }
}

/// FNV-1a over a region number, for the signature bucket hash.
fn region_bucket(region: u64) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in region.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % SIGNATURE_DIMS as u64) as usize
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn dist2(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Seeded k-means over the interval signatures: k-means++ init, Lloyd
/// refinement to stability (≤ [`KMEANS_MAX_ITERS`] iterations), empty
/// clusters reseeded to the farthest point. Returns each signature's
/// cluster assignment and the final centroids. Fully deterministic in
/// (signatures, k, seed).
fn kmeans(sigs: &[Vec<f64>], k: usize, seed: u64) -> (Vec<usize>, Vec<Vec<f64>>) {
    let n = sigs.len();
    debug_assert!(k >= 1 && k <= n);
    let mut rng = seed;
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(sigs[(splitmix64(&mut rng) % n as u64) as usize].clone());
    while centers.len() < k {
        // k-means++: pick proportional to squared distance from the
        // nearest existing center.
        let d2: Vec<f64> = sigs
            .iter()
            .map(|s| centers.iter().map(|c| dist2(s, c)).fold(f64::INFINITY, f64::min))
            .collect();
        let total: f64 = d2.iter().sum();
        let pick = if total > 0.0 {
            let frac = (splitmix64(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
            let mut target = frac * total;
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if d > 0.0 {
                    target -= d;
                    if target <= 0.0 {
                        chosen = i;
                        break;
                    }
                }
            }
            chosen
        } else {
            // All points coincide with a center; any distinct index does.
            (splitmix64(&mut rng) % n as u64) as usize
        };
        centers.push(sigs[pick].clone());
    }
    let mut assign = vec![0usize; n];
    for _ in 0..KMEANS_MAX_ITERS {
        // Assignment step (ties break to the lowest center index).
        let mut changed = false;
        for (i, s) in sigs.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let d = dist2(s, center);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; SIGNATURE_DIMS]; centers.len()];
        let mut counts = vec![0u64; centers.len()];
        for (i, s) in sigs.iter().enumerate() {
            counts[assign[i]] += 1;
            for (acc, v) in sums[assign[i]].iter_mut().zip(s) {
                *acc += v;
            }
        }
        for (c, sum) in sums.iter_mut().enumerate() {
            if counts[c] == 0 {
                // Reseed an empty cluster to the point farthest from its
                // current center (lowest index on ties).
                let far = sigs
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (i, dist2(s, &centers[assign[i]])))
                    .fold((0usize, -1.0f64), |best, (i, d)| if d > best.1 { (i, d) } else { best })
                    .0;
                centers[c] = sigs[far].clone();
                changed = true;
            } else {
                for v in sum.iter_mut() {
                    *v /= counts[c] as f64;
                }
                centers[c] = std::mem::take(sum);
            }
        }
        if !changed {
            break;
        }
    }
    (assign, centers)
}

/// Slices `source` into fixed-length intervals, builds address-region
/// touch signatures, clusters them into (at most) `opts.phases`
/// representative phases, and returns the weighted selection.
///
/// Consumes the source to exhaustion in one linear pass. A stream
/// shorter than one interval yields a single interval; an empty stream
/// yields `instructions == 0` and no phases (rejected by
/// [`PhaseSample::validate`]).
pub fn sample_source<S: InstructionSource + ?Sized>(
    source: &mut S,
    opts: &SampleOptions,
) -> PhaseSample {
    assert!(opts.interval > 0, "interval must be positive");
    let trace = source.source_name().to_string();
    // Pass: per-interval touch vectors over 4 KiB regions (fetch + data).
    let mut sigs: Vec<Vec<f64>> = Vec::new();
    let mut lengths: Vec<u64> = Vec::new();
    let mut current = vec![0.0f64; SIGNATURE_DIMS];
    let mut in_interval = 0u64;
    let mut instructions = 0u64;
    while let Some(rec) = source.next_instruction_opt() {
        current[region_bucket(rec.fetch.raw() >> REGION_SHIFT)] += 1.0;
        if let Some(d) = rec.data {
            current[region_bucket(d.addr.raw() >> REGION_SHIFT)] += 1.0;
        }
        in_interval += 1;
        instructions += 1;
        if in_interval == opts.interval {
            sigs.push(std::mem::replace(&mut current, vec![0.0f64; SIGNATURE_DIMS]));
            lengths.push(in_interval);
            in_interval = 0;
        }
    }
    if in_interval > 0 {
        sigs.push(current);
        lengths.push(in_interval);
    }
    if sigs.is_empty() {
        return PhaseSample {
            schema: PHASE_SAMPLE_SCHEMA.to_string(),
            trace,
            instructions: 0,
            interval: opts.interval,
            k: opts.phases,
            seed: opts.seed,
            intervals: 0,
            phases: Vec::new(),
        };
    }
    // Normalise each signature by its touch count so interval *shape*,
    // not raw volume, drives the clustering (the final partial interval
    // would otherwise always look like its own phase).
    for sig in &mut sigs {
        let total: f64 = sig.iter().sum();
        if total > 0.0 {
            for v in sig.iter_mut() {
                *v /= total;
            }
        }
    }
    let k = opts.phases.max(1).min(sigs.len());
    let (assign, centers) = kmeans(&sigs, k, opts.seed);
    // Representative per cluster: the member closest to the centroid
    // (lowest index on ties); weight: the member intervals' instructions.
    let mut phases: Vec<PhaseInfo> = Vec::with_capacity(k);
    for (c, center) in centers.iter().enumerate() {
        let mut rep: Option<(usize, f64)> = None;
        let mut members = 0u64;
        let mut weight = 0u64;
        for (i, sig) in sigs.iter().enumerate() {
            if assign[i] != c {
                continue;
            }
            members += 1;
            weight += lengths[i];
            let d = dist2(sig, center);
            if rep.is_none_or(|(_, best)| d < best) {
                rep = Some((i, d));
            }
        }
        if let Some((i, _)) = rep {
            phases.push(PhaseInfo {
                representative: i as u64,
                members,
                weight_instructions: weight,
            });
        }
    }
    phases.sort_by_key(|p| p.representative);
    PhaseSample {
        schema: PHASE_SAMPLE_SCHEMA.to_string(),
        trace,
        instructions,
        interval: opts.interval,
        k: opts.phases,
        seed: opts.seed,
        intervals: sigs.len() as u64,
        phases,
    }
}

/// One representative slice, captured and ready to sweep: the arena
/// holds `budget.warmup_instructions` of warm-up prefix followed by
/// `budget.instructions` of measured slice, and `weight` scales the
/// slice's measured statistics up to the phase's whole-trace share.
#[derive(Debug)]
pub struct PhaseSlice {
    /// The captured prefix + slice records.
    pub arena: TraceArena,
    /// Warm-up/measure split of the capture.
    pub budget: SimBudget,
    /// Statistics scale factor: `weight_instructions / measured slice
    /// length` (1.0 when the phase is its own representative only).
    pub weight: f64,
    /// The representative interval's index, for diagnostics.
    pub representative: u64,
}

/// Captures every representative slice of `sample` from `source` in one
/// forward pass, with up to `warmup_instructions` of prefix before each
/// slice (clamped to the stream start and to the previous slice's end —
/// the pass never rewinds). The prefix primes cache state and is
/// discarded by the warm-up/measure protocol, exactly like a full
/// sweep's warm-up.
///
/// Bumps the `sample.intervals` / `sample.phases` /
/// `sample.intervals_skipped` / `sample.events_replayed` counters: this
/// is the moment the sampled/full split becomes real work.
///
/// # Panics
///
/// Panics if `sample` fails [`PhaseSample::validate`].
pub fn capture_phase_slices<S: InstructionSource + ?Sized>(
    source: &mut S,
    sample: &PhaseSample,
    warmup_instructions: u64,
) -> Vec<PhaseSlice> {
    sample.validate().expect("valid phase sample");
    obs_count!(Counter::SampleIntervals, sample.intervals);
    obs_count!(Counter::SamplePhases, sample.phases.len() as u64);
    obs_count!(Counter::SampleIntervalsSkipped, sample.intervals - sample.phases.len() as u64);
    let mut slices = Vec::with_capacity(sample.phases.len());
    let mut pos = 0u64; // stream position of the next unread record
    for phase in &sample.phases {
        let slice_start = phase.representative * sample.interval;
        let slice_len = sample.interval.min(sample.instructions - slice_start);
        let capture_start = slice_start.saturating_sub(warmup_instructions).max(pos);
        let prefix = slice_start - capture_start;
        // Skip the stream forward to the capture start (no replay cost,
        // just decode).
        let mut skipped = 0u64;
        while pos < capture_start {
            if source.next_instruction_opt().is_none() {
                break;
            }
            pos += 1;
            skipped += 1;
        }
        let _ = skipped;
        let arena = TraceArena::capture(source, prefix + slice_len);
        pos += arena.len();
        let measured = arena.len().saturating_sub(prefix);
        obs_count!(Counter::SampleEventsReplayed, arena.len());
        let weight =
            if measured > 0 { phase.weight_instructions as f64 / measured as f64 } else { 0.0 };
        slices.push(PhaseSlice {
            arena,
            budget: SimBudget { instructions: measured, warmup_instructions: prefix },
            weight,
            representative: phase.representative,
        });
    }
    slices
}

/// Recombines per-phase measured statistics into whole-trace estimates:
/// each counter is the weight-scaled sum over phases, rounded to the
/// nearest count. With a single phase of weight 1.0 this is the
/// identity, which is what makes the degenerate cases exact.
pub fn combine_weighted(parts: &[(f64, HierarchyStats)]) -> HierarchyStats {
    let sum = |get: fn(&HierarchyStats) -> u64| -> u64 {
        parts.iter().map(|(w, s)| w * get(s) as f64).sum::<f64>().round() as u64
    };
    HierarchyStats {
        instructions: sum(|s| s.instructions),
        data_refs: sum(|s| s.data_refs),
        l1i_misses: sum(|s| s.l1i_misses),
        l1d_misses: sum(|s| s.l1d_misses),
        l2_hits: sum(|s| s.l2_hits),
        l2_misses: sum(|s| s.l2_misses),
        offchip_writebacks: sum(|s| s.offchip_writebacks),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlc_trace::spec::SpecBenchmark;
    use tlc_trace::ReplaySource;

    fn sample_of(benchmark: SpecBenchmark, n: u64, opts: &SampleOptions) -> PhaseSample {
        let records = benchmark.workload().take_instructions(n as usize);
        sample_source(&mut ReplaySource::new(benchmark.name(), records), opts)
    }

    #[test]
    fn sample_is_deterministic_and_valid() {
        let opts = SampleOptions { interval: 5_000, phases: 4, seed: 0xC1 };
        let a = sample_of(SpecBenchmark::Gcc1, 60_000, &opts);
        let b = sample_of(SpecBenchmark::Gcc1, 60_000, &opts);
        assert_eq!(a, b, "same stream + options must reproduce the selection");
        a.validate().expect("valid sample");
        assert_eq!(a.instructions, 60_000);
        assert_eq!(a.intervals, 12);
        assert!(a.phases.len() <= 4);
        assert_eq!(a.to_json(), b.to_json());
        let back = PhaseSample::from_json(&a.to_json()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn different_seed_may_move_but_never_breaks_invariants() {
        for seed in [1u64, 2, 0xDEADBEEF] {
            let opts = SampleOptions { interval: 4_000, phases: 3, seed };
            sample_of(SpecBenchmark::Li, 50_000, &opts).validate().expect("valid");
        }
    }

    #[test]
    fn single_interval_degenerate_case() {
        // interval >= stream: one interval, one phase, full weight —
        // regardless of K.
        for k in [1usize, 4] {
            let opts = SampleOptions { interval: 100_000, phases: k, seed: 7 };
            let s = sample_of(SpecBenchmark::Espresso, 30_000, &opts);
            s.validate().expect("valid");
            assert_eq!(s.intervals, 1);
            assert_eq!(s.phases.len(), 1);
            assert_eq!(s.phases[0].representative, 0);
            assert_eq!(s.phases[0].weight_instructions, 30_000);
        }
    }

    #[test]
    fn capture_slices_covers_each_representative() {
        let opts = SampleOptions { interval: 5_000, phases: 3, seed: 0xC1 };
        let sample = sample_of(SpecBenchmark::Tomcatv, 40_000, &opts);
        let records = SpecBenchmark::Tomcatv.workload().take_instructions(40_000);
        let mut source = ReplaySource::new("tomcatv", records.clone());
        let slices = capture_phase_slices(&mut source, &sample, 2_000);
        assert_eq!(slices.len(), sample.phases.len());
        for (slice, phase) in slices.iter().zip(&sample.phases) {
            assert_eq!(slice.representative, phase.representative);
            let start = phase.representative * sample.interval;
            let len = sample.interval.min(40_000 - start);
            assert_eq!(slice.budget.instructions, len);
            assert!(slice.budget.warmup_instructions <= 2_000);
            // The captured records are exactly the stream's slice.
            let got: Vec<_> = slice.arena.replay().collect();
            let lo = (start - slice.budget.warmup_instructions) as usize;
            let hi = (start + len) as usize;
            assert_eq!(got, records[lo..hi].to_vec(), "phase at interval {}", start);
            let expect_w = phase.weight_instructions as f64 / len as f64;
            assert!((slice.weight - expect_w).abs() < 1e-12);
        }
    }

    #[test]
    fn combine_weighted_identity_and_rounding() {
        let s = HierarchyStats {
            instructions: 1000,
            data_refs: 300,
            l1i_misses: 10,
            l1d_misses: 20,
            l2_hits: 15,
            l2_misses: 15,
            offchip_writebacks: 5,
        };
        assert_eq!(combine_weighted(&[(1.0, s)]), s);
        let doubled = combine_weighted(&[(1.5, s), (0.5, s)]);
        assert_eq!(doubled.instructions, 2000);
        assert_eq!(doubled.l2_misses, 30);
        // 0.4 + 0.35 of 10 misses rounds to 8, not truncates to 7.
        let part = HierarchyStats { l2_misses: 10, ..Default::default() };
        assert_eq!(combine_weighted(&[(0.4, part), (0.35, part)]).l2_misses, 8);
    }

    #[test]
    fn validate_rejects_broken_samples() {
        let opts = SampleOptions { interval: 5_000, phases: 2, seed: 1 };
        let good = sample_of(SpecBenchmark::Li, 20_000, &opts);
        good.validate().unwrap();
        let mut bad = good.clone();
        bad.schema = "nope/9".into();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.intervals += 1;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.phases[0].weight_instructions += 1;
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.phases.clear();
        assert!(bad.validate().is_err());
        let mut bad = good.clone();
        bad.phases[0].representative = bad.intervals + 5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn kmeans_splits_obviously_distinct_phases() {
        // Two alternating synthetic phases touching disjoint regions
        // must land in different clusters.
        use tlc_trace::{Addr, InstructionRecord, MemRef};
        let mut records = Vec::new();
        for block in 0..8u64 {
            let base = if block % 2 == 0 { 0x10_0000u64 } else { 0x90_0000 };
            for i in 0..1_000u64 {
                records.push(InstructionRecord::with_data(
                    Addr::new(0x400 + (i % 16) * 4),
                    MemRef::load(Addr::new(base + (i % 512) * 64)),
                ));
            }
        }
        let opts = SampleOptions { interval: 1_000, phases: 2, seed: 3 };
        let s = sample_source(&mut ReplaySource::new("synthetic", records), &opts);
        s.validate().unwrap();
        assert_eq!(s.phases.len(), 2, "two distinct phases must survive clustering");
        assert_eq!(s.phases[0].weight_instructions, 4_000);
        assert_eq!(s.phases[1].weight_instructions, 4_000);
    }
}
