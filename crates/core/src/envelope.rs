//! Best-performance envelopes.
//!
//! Each figure of the paper draws "the best performance envelope … the
//! best performance that can be obtained for a given cache area" (§4): as
//! a function of available area, the minimum TPI over all configurations
//! that fit. Its "staircase appearance … is due to the discrete nature of
//! the cache sizes."

use serde::{Deserialize, Serialize};

/// One point of an envelope: a configuration that improves on everything
/// smaller than it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnvelopePoint {
    /// Index into the original point list.
    pub index: usize,
    /// Area of the configuration (rbe).
    pub area: f64,
    /// Its TPI (ns).
    pub tpi: f64,
}

/// Computes the best-performance envelope of `(area, tpi)` points.
///
/// Returns the points, ordered by area, that strictly improve the running
/// minimum TPI; every returned point is the best configuration at its
/// area, and the piecewise-constant curve through them is the envelope.
/// Ties in area keep only the lower-TPI point.
///
/// # Examples
///
/// ```
/// use tlc_core::envelope::best_envelope;
///
/// let pts = [(1.0, 10.0), (2.0, 12.0), (3.0, 8.0), (4.0, 8.5)];
/// let env = best_envelope(&pts);
/// let picked: Vec<usize> = env.iter().map(|p| p.index).collect();
/// assert_eq!(picked, vec![0, 2]); // (2.0,12.0) and (4.0,8.5) are dominated
/// ```
pub fn best_envelope(points: &[(f64, f64)]) -> Vec<EnvelopePoint> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .0
            .partial_cmp(&points[b].0)
            .expect("areas must not be NaN")
            .then(points[a].1.partial_cmp(&points[b].1).expect("TPIs must not be NaN"))
    });
    let mut env = Vec::new();
    let mut best_tpi = f64::INFINITY;
    for i in order {
        let (area, tpi) = points[i];
        if tpi < best_tpi {
            best_tpi = tpi;
            env.push(EnvelopePoint { index: i, area, tpi });
        }
    }
    env
}

/// Evaluates an envelope at a given area budget: the minimum TPI of any
/// configuration no larger than `area`. Returns `None` below the smallest
/// point.
pub fn envelope_at(env: &[EnvelopePoint], area: f64) -> Option<f64> {
    env.iter().take_while(|p| p.area <= area).last().map(|p| p.tpi)
}

/// Measures how much envelope `a` improves on envelope `b` across `b`'s
/// area range: the mean of `(tpi_b - tpi_a) / tpi_b` sampled at each point
/// of `b` (positive ⇒ `a` is faster). Used to quantify the "distance
/// between the solid and dotted lines" the paper describes (§4, §7).
pub fn mean_improvement(a: &[EnvelopePoint], b: &[EnvelopePoint]) -> f64 {
    let mut total = 0.0;
    let mut n = 0;
    for p in b {
        if let Some(tpi_a) = envelope_at(a, p.area) {
            total += (p.tpi - tpi_a) / p.tpi;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        total / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_is_decreasing_staircase() {
        let pts = [(5.0, 5.0), (1.0, 10.0), (3.0, 7.0), (2.0, 12.0), (4.0, 7.5)];
        let env = best_envelope(&pts);
        for w in env.windows(2) {
            assert!(w[0].area < w[1].area);
            assert!(w[0].tpi > w[1].tpi);
        }
        assert_eq!(env.len(), 3);
        assert_eq!(env[0].index, 1);
        assert_eq!(env[1].index, 2);
        assert_eq!(env[2].index, 0);
    }

    #[test]
    fn dominated_points_excluded() {
        let pts = [(1.0, 10.0), (2.0, 10.0), (3.0, 9.999)];
        let env = best_envelope(&pts);
        assert_eq!(env.len(), 2, "equal-TPI larger point must be dominated");
    }

    #[test]
    fn area_ties_keep_faster_point() {
        let pts = [(1.0, 10.0), (1.0, 8.0)];
        let env = best_envelope(&pts);
        assert_eq!(env.len(), 1);
        assert_eq!(env[0].index, 1);
    }

    #[test]
    fn empty_input() {
        assert!(best_envelope(&[]).is_empty());
    }

    #[test]
    fn envelope_at_budget() {
        let env = best_envelope(&[(1.0, 10.0), (3.0, 8.0), (5.0, 5.0)]);
        assert_eq!(envelope_at(&env, 0.5), None);
        assert_eq!(envelope_at(&env, 1.0), Some(10.0));
        assert_eq!(envelope_at(&env, 4.0), Some(8.0));
        assert_eq!(envelope_at(&env, 100.0), Some(5.0));
    }

    #[test]
    fn improvement_measure() {
        let a = best_envelope(&[(1.0, 5.0), (2.0, 4.0)]);
        let b = best_envelope(&[(1.0, 10.0), (2.0, 8.0)]);
        // a halves TPI everywhere → mean improvement 0.5.
        assert!((mean_improvement(&a, &b) - 0.5).abs() < 1e-12);
        // An envelope does not improve on itself.
        assert_eq!(mean_improvement(&b, &b), 0.0);
    }
}
