//! # tlc-core — the two-level on-chip caching study
//!
//! The paper's contribution assembled: this crate combines the
//! `tlc-trace` workload models, the `tlc-cache` hierarchy simulator, the
//! `tlc-area` rbe model and the `tlc-timing` access-time model into the
//! four-step methodology of Jouppi & Wilton's §2 —
//!
//! 1. simulate miss rates,
//! 2. derive cache cycle times,
//! 3. price chip area,
//! 4. combine into **time per instruction (TPI) as a function of area**
//!
//! — over the full configuration space (L1 1–256KB × L2 0–256KB ×
//! associativity × conventional/exclusive policy × single/dual-ported
//! cells × 50/200ns off-chip), with best-performance envelopes.
//!
//! ## Quick start
//!
//! ```no_run
//! use tlc_area::AreaModel;
//! use tlc_core::configspace::{full_space, SpaceOptions};
//! use tlc_core::experiment::SimBudget;
//! use tlc_core::report;
//! use tlc_core::runner::sweep;
//! use tlc_timing::TimingModel;
//! use tlc_trace::spec::SpecBenchmark;
//!
//! let timing = TimingModel::paper();
//! let area = AreaModel::new();
//! let configs = full_space(&SpaceOptions::baseline());
//! let points = sweep(&configs, SpecBenchmark::Gcc1, SimBudget::standard(), &timing, &area);
//! println!("{}", report::points_table("gcc1, 50ns, 4-way L2 (Figure 5)", &points));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod audit;
pub mod banking;
pub mod configspace;
pub mod energy;
pub mod envelope;
pub mod experiment;
pub mod future;
pub mod machine;
pub mod overlap;
pub mod report;
pub mod runner;
pub mod sampling;
pub mod tpi;

pub use experiment::{
    capture_benchmark, capture_miss_stream, config_is_predictable, evaluate, evaluate_arena,
    evaluate_dyn, evaluate_filtered, DesignPoint, SimBudget,
};
pub use machine::{L2Policy, L2Spec, MachineConfig, MachineTiming};
pub use sampling::{
    capture_phase_slices, combine_weighted, sample_source, PhaseSample, PhaseSlice, SampleOptions,
    SAMPLED_MISS_RATIO_EPSILON,
};
