//! Enumeration of the paper's configuration space.
//!
//! §2.1: "first-level cache size varied from 1KB to 256KB, and
//! second-level cache sizes ranged from 0KB (non-existent) to 256KB."
//! The figures plot every `L1:L2` pair with `L2 ≥ 2×L1` (an L2 no bigger
//! than one L1 is the victim-cache regime, §8) plus all single-level
//! sizes.

use crate::machine::{L2Policy, L2Spec, MachineConfig};
use tlc_area::CellKind;
use tlc_cache::ReplacementKind;

/// The paper's L1 sizes in KB (per side).
pub const L1_SIZES_KB: [u64; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

/// The paper's L2 sizes in KB.
pub const L2_SIZES_KB: [u64; 8] = [2, 4, 8, 16, 32, 64, 128, 256];

/// Options selecting one family of configurations (one figure's worth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaceOptions {
    /// Off-chip miss service time in ns.
    pub offchip_ns: f64,
    /// L2 associativity (ways; 1 = direct-mapped).
    pub l2_ways: u32,
    /// L2 fill policy.
    pub l2_policy: L2Policy,
    /// L2 replacement policy (irrelevant when `l2_ways == 1`).
    pub l2_repl: ReplacementKind,
    /// L1 RAM cell kind.
    pub l1_cell: CellKind,
}

impl SpaceOptions {
    /// The §4 baseline: 50ns off-chip, 4-way conventional
    /// pseudo-random-replacement L2, single-ported L1s.
    pub fn baseline() -> Self {
        SpaceOptions {
            offchip_ns: 50.0,
            l2_ways: 4,
            l2_policy: L2Policy::Conventional,
            l2_repl: ReplacementKind::PseudoRandom,
            l1_cell: CellKind::SinglePorted,
        }
    }
}

/// All single-level configurations (the `x:0` points).
pub fn single_level_configs(opts: &SpaceOptions) -> Vec<MachineConfig> {
    L1_SIZES_KB
        .iter()
        .map(|&kb| MachineConfig::single_level(kb, opts.offchip_ns).with_l1_cell(opts.l1_cell))
        .collect()
}

/// All two-level configurations with `L2 ≥ 2×L1` (the `x:y` points).
pub fn two_level_configs(opts: &SpaceOptions) -> Vec<MachineConfig> {
    let mut out = Vec::new();
    for &l1 in &L1_SIZES_KB {
        for &l2 in &L2_SIZES_KB {
            if l2 >= 2 * l1 {
                // A `ways`-way L2 needs at least `ways` lines; all paper
                // sizes satisfy this (2KB/16B = 128 lines ≥ 4).
                out.push(MachineConfig {
                    l1_size_bytes: l1 * 1024,
                    l1_cell: opts.l1_cell,
                    l2: Some(L2Spec {
                        size_bytes: l2 * 1024,
                        ways: opts.l2_ways,
                        policy: opts.l2_policy,
                        repl: opts.l2_repl,
                    }),
                    offchip_ns: opts.offchip_ns,
                    line_bytes: 16,
                });
            }
        }
    }
    out
}

/// The full space: single-level plus two-level points, as each figure
/// plots them.
pub fn full_space(opts: &SpaceOptions) -> Vec<MachineConfig> {
    let mut v = single_level_configs(opts);
    v.extend(two_level_configs(opts));
    v
}

/// Deduplicates a configuration list, preserving first-appearance order.
///
/// Returns `(unique, occurrence)` where `unique` holds each distinct
/// configuration once and `occurrence[i]` is the index into `unique` of
/// `configs[i]` — so per-unique results fan back out to input order with
/// `occurrence.iter().map(|&u| results[u])`. Overlapping figure families
/// (e.g. the single-level leg shared by the conventional and exclusive
/// variants of [`full_space`]) otherwise evaluate the same point twice.
///
/// Comparison is exact: the dedup key covers every [`MachineConfig`]
/// field, with the `f64` off-chip latency keyed by its bit pattern
/// (`to_bits`) so the whole tuple is hashable — two configurations
/// compare equal exactly when their keys do. A `HashMap` from key to
/// unique index keeps the pass O(n) even for the concatenated
/// many-figure spaces.
pub fn unique_configs(configs: &[MachineConfig]) -> (Vec<MachineConfig>, Vec<usize>) {
    use std::collections::HashMap;
    type Key = (u64, CellKind, Option<L2Spec>, u64, u64);
    let mut seen: HashMap<Key, usize> = HashMap::with_capacity(configs.len());
    let mut unique: Vec<MachineConfig> = Vec::new();
    let mut occurrence = Vec::with_capacity(configs.len());
    for cfg in configs {
        // Exhaustive destructuring: adding a `MachineConfig` field breaks
        // this binding at compile time, forcing the key to be extended —
        // a hand-picked field tuple would silently alias distinct
        // configurations instead.
        let MachineConfig { l1_size_bytes, l1_cell, l2, offchip_ns, line_bytes } = *cfg;
        let key: Key = (l1_size_bytes, l1_cell, l2, offchip_ns.to_bits(), line_bytes);
        let u = *seen.entry(key).or_insert_with(|| {
            unique.push(*cfg);
            unique.len() - 1
        });
        occurrence.push(u);
    }
    (unique, occurrence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_level_count() {
        assert_eq!(single_level_configs(&SpaceOptions::baseline()).len(), 9);
    }

    #[test]
    fn two_level_pairs_respect_size_rule() {
        let v = two_level_configs(&SpaceOptions::baseline());
        for c in &v {
            let l2 = c.l2.unwrap();
            assert!(l2.size_bytes >= 2 * c.l1_size_bytes, "bad pair {}", c.label());
        }
        // 1K pairs with 2..256 (8), 2K with 4..256 (7), ..., 128K with 256 (1).
        assert_eq!(v.len(), 8 + 7 + 6 + 5 + 4 + 3 + 2 + 1);
    }

    #[test]
    fn full_space_contains_paper_examples() {
        let labels: Vec<String> =
            full_space(&SpaceOptions::baseline()).iter().map(|c| c.label()).collect();
        // Labels that appear in Figure 5.
        for l in ["1:0", "1:2", "2:4", "32:256", "256:0", "16:128"] {
            assert!(labels.contains(&l.to_string()), "missing {l}");
        }
        // The victim-cache regime is excluded.
        assert!(!labels.contains(&"4:4".to_string()));
        assert!(!labels.contains(&"8:4".to_string()));
    }

    #[test]
    fn unique_configs_dedups_and_maps_back() {
        let base = full_space(&SpaceOptions::baseline());
        let mut doubled = base.clone();
        doubled.extend(base.iter().copied());
        let (unique, occurrence) = unique_configs(&doubled);
        assert_eq!(unique, base, "dedup keeps first-appearance order");
        assert_eq!(occurrence.len(), doubled.len());
        for (i, &u) in occurrence.iter().enumerate() {
            assert_eq!(unique[u], doubled[i], "occurrence {i} maps to the wrong unique entry");
        }
    }

    #[test]
    fn unique_configs_keeps_distinct_variants_apart() {
        // The exclusive variant shares its single-level leg with the
        // baseline but not its two-level points.
        let mut opts = SpaceOptions::baseline();
        let conv = full_space(&opts);
        opts.l2_policy = L2Policy::Exclusive;
        let excl = full_space(&opts);
        let mut both = conv.clone();
        both.extend(excl.iter().copied());
        let (unique, _) = unique_configs(&both);
        let singles = single_level_configs(&SpaceOptions::baseline()).len();
        assert_eq!(unique.len(), both.len() - singles, "only the single-level leg overlaps");
    }

    #[test]
    fn unique_configs_distinguishes_every_field() {
        // Regression for the hand-picked key tuple: each variant differs
        // from the base in exactly one `MachineConfig` field, so none may
        // alias under dedup.
        let base = MachineConfig::two_level(4, 64, 4, L2Policy::Conventional, 50.0);
        let variants = [
            MachineConfig { l1_size_bytes: 8 * 1024, ..base },
            MachineConfig { l1_cell: CellKind::DualPorted, ..base },
            MachineConfig {
                l2: Some(L2Spec { policy: L2Policy::Exclusive, ..base.l2.unwrap() }),
                ..base
            },
            MachineConfig {
                l2: Some(L2Spec { repl: ReplacementKind::Srrip, ..base.l2.unwrap() }),
                ..base
            },
            MachineConfig { offchip_ns: 51.0, ..base },
            MachineConfig { line_bytes: 32, ..base },
        ];
        let mut all = vec![base];
        all.extend(variants);
        let (unique, occurrence) = unique_configs(&all);
        assert_eq!(unique.len(), all.len(), "a one-field change must defeat dedup");
        assert_eq!(occurrence, (0..all.len()).collect::<Vec<_>>());
    }

    #[test]
    fn unique_configs_empty_input() {
        let (unique, occurrence) = unique_configs(&[]);
        assert!(unique.is_empty());
        assert!(occurrence.is_empty());
    }

    #[test]
    fn options_propagate() {
        let opts = SpaceOptions {
            offchip_ns: 200.0,
            l2_ways: 1,
            l2_policy: L2Policy::Exclusive,
            l2_repl: ReplacementKind::TreePlru,
            l1_cell: CellKind::DualPorted,
        };
        for c in full_space(&opts) {
            assert_eq!(c.offchip_ns, 200.0);
            assert_eq!(c.l1_cell, CellKind::DualPorted);
            if let Some(l2) = c.l2 {
                assert_eq!(l2.ways, 1);
                assert_eq!(l2.policy, L2Policy::Exclusive);
                assert_eq!(l2.repl, ReplacementKind::TreePlru);
            }
        }
    }
}
