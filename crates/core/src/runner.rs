//! Parallel sweeps over the configuration space.
//!
//! Every (configuration, benchmark) evaluation is independent, which
//! makes the sweep embarrassingly parallel — but the naive decomposition
//! regenerates the benchmark's synthetic stream once *per configuration*
//! (two virtual generator calls plus up to three RNG draws per
//! instruction, times millions of instructions, times dozens of
//! configurations). The sweeps here instead capture each benchmark's
//! stream once into a shared [`TraceArena`] and fan the configurations
//! out over a thread pool, each worker replaying the packed buffer
//! through the devirtualized fast path
//! ([`evaluate_arena`](crate::experiment::evaluate_arena)).
//!
//! Both decompositions produce bit-identical [`DesignPoint`]s: the arena
//! holds exactly the stream the seeded generator would produce, and the
//! replay issues references in the same order. [`sweep`] picks the arena
//! path automatically unless the budget would make the capture enormous
//! (see [`ARENA_BYTES_LIMIT`]); [`sweep_streaming_threads`] keeps the
//! regenerate-per-configuration path available for comparison and for
//! memory-constrained hosts.

use crate::experiment::{
    capture_benchmark, evaluate, evaluate_arena, evaluate_dyn, DesignPoint, SimBudget,
};
use crate::machine::MachineConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use tlc_area::AreaModel;
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::TraceArena;

/// Upper bound on the arena capture size before [`sweep`] falls back to
/// the streaming path: 1 GiB ≈ 63 M instructions at 17 bytes per packed
/// record, far beyond the standard 2 M-instruction budget.
pub const ARENA_BYTES_LIMIT: usize = 1 << 30;

/// Packed bytes per captured instruction (fetch `u64` + data `u64` +
/// flag `u8`); used to predict a capture's footprint before building it.
pub const ARENA_BYTES_PER_RECORD: usize = 17;

/// Predicted arena footprint in bytes for one benchmark at `budget`.
pub fn arena_bytes_for(budget: SimBudget) -> usize {
    let records = budget.warmup_instructions.saturating_add(budget.instructions);
    usize::try_from(records).unwrap_or(usize::MAX).saturating_mul(ARENA_BYTES_PER_RECORD)
}

/// Evaluates every configuration on `benchmark`, in parallel. Results are
/// returned in the same order as `configs`.
pub fn sweep(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
) -> Vec<DesignPoint> {
    sweep_threads(configs, benchmark, budget, timing, area, default_threads())
}

/// Number of worker threads used by [`sweep`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// As [`sweep`], with an explicit thread count (tests use 1 or 2).
///
/// Captures the benchmark's stream once and replays it for every
/// configuration, unless the capture would exceed [`ARENA_BYTES_LIMIT`]
/// (or there is only one configuration, where a capture cannot pay for
/// itself) — then it streams instead. Either way the results are
/// identical.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    assert!(threads > 0, "need at least one worker thread");
    if configs.len() <= 1 || arena_bytes_for(budget) > ARENA_BYTES_LIMIT {
        return sweep_streaming_threads(configs, benchmark, budget, timing, area, threads);
    }
    let arena = capture_benchmark(benchmark, budget);
    sweep_arena_threads(configs, &arena, budget, timing, area, threads)
}

/// Evaluates every configuration against an already-captured arena, in
/// parallel, in input order. Callers that sweep the same benchmark
/// several times (e.g. per off-chip latency or per L2 policy) capture
/// once and call this directly.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    run_indexed(configs, threads, |cfg| evaluate_arena(cfg, arena, budget, timing, area))
}

/// The regenerate-per-configuration sweep: each evaluation rebuilds the
/// benchmark's seeded generator and streams it from scratch. Kept public
/// as the memory-lean fallback and as the reference the arena path is
/// tested against.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_streaming_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    run_indexed(configs, threads, |cfg| evaluate(cfg, benchmark, budget, timing, area))
}

/// The pre-arena baseline sweep: regenerates the stream per
/// configuration *and* dispatches every reference through the
/// `Box<dyn MemorySystem>` engine, exactly as `sweep` worked before the
/// trace arena. Kept for the sweep benchmark (the speedup baseline) and
/// for equivalence testing; new code should use [`sweep`].
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_dyn_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    run_indexed(configs, threads, |cfg| evaluate_dyn(cfg, benchmark, budget, timing, area))
}

/// Sweeps `configs` across several benchmarks, capturing each
/// benchmark's stream exactly once. Returns one result vector per
/// benchmark, in benchmark order, each in `configs` order.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_matrix(
    configs: &[MachineConfig],
    benchmarks: &[SpecBenchmark],
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<Vec<DesignPoint>> {
    benchmarks.iter().map(|&b| sweep_threads(configs, b, budget, timing, area, threads)).collect()
}

/// Work-stealing fan-out: workers atomically claim configuration
/// indices, results land back in input order.
fn run_indexed<F>(configs: &[MachineConfig], threads: usize, eval: F) -> Vec<DesignPoint>
where
    F: Fn(&MachineConfig) -> DesignPoint + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if configs.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(configs.len());
    if threads == 1 {
        // Run on the calling thread: spawning a worker is not only
        // pointless serialisation, it is measurably slow — a fresh
        // thread starts with a cold allocator heap, so every
        // configuration's cache arrays page-fault from scratch.
        return configs.iter().map(eval).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<DesignPoint>> = vec![None; configs.len()];

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let eval = &eval;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= configs.len() {
                        break;
                    }
                    mine.push((i, eval(&configs[i])));
                }
                mine
            }));
        }
        for h in handles {
            for (i, p) in h.join().expect("worker thread panicked") {
                slots[i] = Some(p);
            }
        }
    });

    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configspace::{single_level_configs, two_level_configs, SpaceOptions};

    #[test]
    fn parallel_matches_serial() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..4];
        let budget = SimBudget { instructions: 20_000, warmup_instructions: 5_000 };
        let serial = sweep_threads(configs, SpecBenchmark::Eqntott, budget, &tm, &am, 1);
        let parallel = sweep_threads(configs, SpecBenchmark::Eqntott, budget, &tm, &am, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.stats, p.stats, "{}: parallel run diverged", s.label);
            assert_eq!(s.tpi_ns, p.tpi_ns);
        }
    }

    #[test]
    fn arena_sweep_matches_streaming_sweep() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let mut configs = single_level_configs(&SpaceOptions::baseline())[..2].to_vec();
        configs.extend_from_slice(&two_level_configs(&SpaceOptions::baseline())[..2]);
        let budget = SimBudget { instructions: 15_000, warmup_instructions: 5_000 };
        let streamed = sweep_streaming_threads(&configs, SpecBenchmark::Gcc1, budget, &tm, &am, 2);
        let arena = capture_benchmark(SpecBenchmark::Gcc1, budget);
        let replayed = sweep_arena_threads(&configs, &arena, budget, &tm, &am, 2);
        assert_eq!(streamed, replayed, "arena sweep must be bit-identical to streaming");
    }

    #[test]
    fn thread_count_does_not_change_arena_results() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = two_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..5];
        let budget = SimBudget { instructions: 10_000, warmup_instructions: 2_000 };
        let arena = capture_benchmark(SpecBenchmark::Tomcatv, budget);
        let one = sweep_arena_threads(configs, &arena, budget, &tm, &am, 1);
        let many = sweep_arena_threads(configs, &arena, budget, &tm, &am, 5);
        assert_eq!(one, many);
    }

    #[test]
    fn matrix_groups_by_benchmark_in_order() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..2];
        let budget = SimBudget { instructions: 5_000, warmup_instructions: 1_000 };
        let benchmarks = [SpecBenchmark::Li, SpecBenchmark::Espresso];
        let matrix = sweep_matrix(configs, &benchmarks, budget, &tm, &am, 2);
        assert_eq!(matrix.len(), 2);
        for (row, b) in matrix.iter().zip(&benchmarks) {
            assert_eq!(row.len(), configs.len());
            for p in row {
                assert_eq!(p.workload, b.name());
            }
            // Each row matches its individual sweep exactly.
            assert_eq!(row, &sweep_threads(configs, *b, budget, &tm, &am, 2));
        }
    }

    #[test]
    fn preserves_input_order() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..3];
        let budget = SimBudget { instructions: 5_000, warmup_instructions: 1_000 };
        let points = sweep_threads(configs, SpecBenchmark::Li, budget, &tm, &am, 3);
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["1:0", "2:0", "4:0"]);
    }

    #[test]
    fn empty_space_is_fine() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let points = sweep_threads(&[], SpecBenchmark::Li, SimBudget::quick(), &tm, &am, 2);
        assert!(points.is_empty());
    }

    #[test]
    fn arena_footprint_prediction() {
        let b = SimBudget::standard();
        assert_eq!(arena_bytes_for(b), 2_000_000 * 17);
        assert!(arena_bytes_for(b) < ARENA_BYTES_LIMIT, "standard budget uses the arena path");
        let huge = b.scaled(1000.0);
        assert!(arena_bytes_for(huge) > ARENA_BYTES_LIMIT, "1000x budget streams instead");
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn rejects_zero_threads() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let _ = sweep_threads(&configs[..1], SpecBenchmark::Li, SimBudget::quick(), &tm, &am, 0);
    }
}
