//! Parallel sweeps over the configuration space.
//!
//! Every (configuration, benchmark) evaluation is independent — the
//! workload generators are seeded, so each evaluation re-creates its own
//! identical stream — which makes the sweep embarrassingly parallel.
//! [`sweep`] fans the configurations out over a thread pool sized to the
//! machine and returns points in input order.

use crate::experiment::{evaluate, DesignPoint, SimBudget};
use crate::machine::MachineConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use tlc_area::AreaModel;
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;

/// Evaluates every configuration on `benchmark`, in parallel. Results are
/// returned in the same order as `configs`.
pub fn sweep(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
) -> Vec<DesignPoint> {
    sweep_threads(configs, benchmark, budget, timing, area, default_threads())
}

/// Number of worker threads used by [`sweep`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// As [`sweep`], with an explicit thread count (tests use 1 or 2).
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    assert!(threads > 0, "need at least one worker thread");
    if configs.is_empty() {
        return Vec::new();
    }
    let threads = threads.min(configs.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<DesignPoint>> = vec![None; configs.len()];

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut mine = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= configs.len() {
                        break;
                    }
                    mine.push((i, evaluate(&configs[i], benchmark, budget, timing, area)));
                }
                mine
            }));
        }
        for h in handles {
            for (i, p) in h.join().expect("worker thread panicked") {
                slots[i] = Some(p);
            }
        }
    });

    slots.into_iter().map(|s| s.expect("every slot filled")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configspace::{single_level_configs, SpaceOptions};

    #[test]
    fn parallel_matches_serial() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..4];
        let budget = SimBudget { instructions: 20_000, warmup_instructions: 5_000 };
        let serial = sweep_threads(configs, SpecBenchmark::Eqntott, budget, &tm, &am, 1);
        let parallel = sweep_threads(configs, SpecBenchmark::Eqntott, budget, &tm, &am, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.stats, p.stats, "{}: parallel run diverged", s.label);
            assert_eq!(s.tpi_ns, p.tpi_ns);
        }
    }

    #[test]
    fn preserves_input_order() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..3];
        let budget = SimBudget { instructions: 5_000, warmup_instructions: 1_000 };
        let points = sweep_threads(configs, SpecBenchmark::Li, budget, &tm, &am, 3);
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["1:0", "2:0", "4:0"]);
    }

    #[test]
    fn empty_space_is_fine() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let points =
            sweep_threads(&[], SpecBenchmark::Li, SimBudget::quick(), &tm, &am, 2);
        assert!(points.is_empty());
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn rejects_zero_threads() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let _ = sweep_threads(&configs[..1], SpecBenchmark::Li, SimBudget::quick(), &tm, &am, 0);
    }
}
