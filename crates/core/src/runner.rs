//! Parallel sweeps over the configuration space.
//!
//! Every (configuration, benchmark) evaluation is independent, which
//! makes the sweep embarrassingly parallel — but the naive decomposition
//! regenerates the benchmark's synthetic stream once *per configuration*
//! (two virtual generator calls plus up to three RNG draws per
//! instruction, times millions of instructions, times dozens of
//! configurations). The sweeps here instead capture each benchmark's
//! stream once into a shared [`TraceArena`] and fan the configurations
//! out over a thread pool, each worker replaying the packed buffer
//! through the devirtualized fast path
//! ([`evaluate_arena`]).
//!
//! Both decompositions produce bit-identical [`DesignPoint`]s: the arena
//! holds exactly the stream the seeded generator would produce, and the
//! replay issues references in the same order. [`sweep`] picks the arena
//! path automatically unless the budget would make the capture enormous
//! (see [`ARENA_BYTES_LIMIT`]); [`sweep_streaming_threads`] keeps the
//! regenerate-per-configuration path available for comparison and for
//! memory-constrained hosts.

use crate::configspace::unique_configs;
use crate::experiment::{
    capture_benchmark, capture_miss_stream, capture_miss_stream_segments, evaluate, evaluate_arena,
    evaluate_dyn, evaluate_family, evaluate_filtered, evaluate_predicted, simulate_family_segments,
    DesignPoint, SimBudget,
};
use crate::machine::{L2Policy, MachineConfig};
use crate::sampling::PhaseSlice;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use tlc_area::AreaModel;
use tlc_obs::{obs_count, obs_event, obs_hist, obs_span, Counter, Hist, HistTimer, PhaseSpan};
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::TraceArena;

/// The work unit a sweep worker was executing when it panicked;
/// identifies where in the pipeline the failure sits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepUnit {
    /// Evaluation of one configuration.
    Config {
        /// Index into the sweep's input `configs`.
        index: usize,
        /// The configuration's display label.
        label: String,
    },
    /// Miss-stream capture for one L1 front-end group.
    L1Group {
        /// The group's L1 capacity in bytes.
        l1_size_bytes: u64,
        /// The group's line size in bytes.
        line_bytes: u64,
    },
    /// Family-batched replay of several configurations at once.
    FamilyChunk {
        /// The family's L1 capacity in bytes.
        l1_size_bytes: u64,
        /// The family's line size in bytes.
        line_bytes: u64,
        /// Indices into the sweep's input `configs`.
        members: Vec<usize>,
    },
    /// Analytical prediction of a whole L1 group's conventional members
    /// from one reuse-distance profiling pass.
    PredictGroup {
        /// The group's L1 capacity in bytes.
        l1_size_bytes: u64,
        /// The group's line size in bytes.
        line_bytes: u64,
        /// Indices into the sweep's input `configs`.
        members: Vec<usize>,
    },
}

impl std::fmt::Display for SweepUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SweepUnit::Config { index, label } => write!(f, "config #{index} ({label})"),
            SweepUnit::L1Group { l1_size_bytes, line_bytes } => {
                write!(f, "L1 group {l1_size_bytes}B/{line_bytes}B capture")
            }
            SweepUnit::FamilyChunk { l1_size_bytes, line_bytes, members } => {
                write!(f, "family chunk {l1_size_bytes}B/{line_bytes}B (configs {members:?})")
            }
            SweepUnit::PredictGroup { l1_size_bytes, line_bytes, members } => {
                write!(f, "predict group {l1_size_bytes}B/{line_bytes}B (configs {members:?})")
            }
        }
    }
}

/// A worker panic propagated as a value instead of aborting the sweep's
/// caller with a bare `expect`. Returned by the `try_sweep_*` variants;
/// the panicking wrappers re-raise it with this context in the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepError {
    /// The unit being executed when the panic fired.
    pub unit: SweepUnit,
    /// The panic payload, stringified.
    pub payload: String,
}

impl std::fmt::Display for SweepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.unit, self.payload)
    }
}

impl std::error::Error for SweepError {}

/// Upper bound on the arena capture size before [`sweep`] falls back to
/// the streaming path: 1 GiB ≈ 63 M instructions at 17 bytes per packed
/// record, far beyond the standard 2 M-instruction budget.
pub const ARENA_BYTES_LIMIT: usize = 1 << 30;

/// Packed bytes per captured instruction (fetch `u64` + data `u64` +
/// flag `u8`); used to predict a capture's footprint before building it.
pub const ARENA_BYTES_PER_RECORD: usize = 17;

/// Predicted arena footprint in bytes for one benchmark at `budget`.
pub fn arena_bytes_for(budget: SimBudget) -> usize {
    let records = budget.warmup_instructions.saturating_add(budget.instructions);
    usize::try_from(records).unwrap_or(usize::MAX).saturating_mul(ARENA_BYTES_PER_RECORD)
}

/// Upper bound on one captured miss stream's packed size before the
/// filtered sweep falls back to plain arena replay for that L1 group.
/// Matches [`ARENA_BYTES_LIMIT`]; in practice a miss stream is 1–10% of
/// the arena (Table 1 miss rates), so the bound only trips for L1s small
/// enough that most references miss.
pub const MISS_STREAM_BYTES_LIMIT: usize = ARENA_BYTES_LIMIT;

/// The key identifying one L1 front-end for miss-stream filtering:
/// `(l1_size_bytes, line_bytes)`. Cell kind, ports, and off-chip latency
/// affect only the timing/area models, never the simulated trajectory,
/// so configurations differing only in those share a captured stream.
pub type L1Key = (u64, u64);

/// Groups configuration indices by their L1 front-end, in order of first
/// appearance. Each entry is `(key, indices into configs)`; every index
/// appears exactly once. This is the capture schedule of the filtered
/// sweep: one L1 simulation per returned group.
pub fn l1_groups(configs: &[MachineConfig]) -> Vec<(L1Key, Vec<usize>)> {
    let mut groups: Vec<(L1Key, Vec<usize>)> = Vec::new();
    for (i, cfg) in configs.iter().enumerate() {
        let key = (cfg.l1_size_bytes, cfg.line_bytes);
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, idxs)) => idxs.push(i),
            None => groups.push((key, vec![i])),
        }
    }
    groups
}

/// Evaluates every configuration on `benchmark`, in parallel. Results are
/// returned in the same order as `configs`.
pub fn sweep(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
) -> Vec<DesignPoint> {
    sweep_threads(configs, benchmark, budget, timing, area, default_threads())
}

/// Number of worker threads used by [`sweep`].
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// As [`sweep`], with an explicit thread count (tests use 1 or 2).
///
/// Captures the benchmark's stream once and hands it to the
/// family-batched engine ([`sweep_family_arena_threads`]), unless the
/// capture would exceed [`ARENA_BYTES_LIMIT`] (or there is only one
/// configuration, where a capture cannot pay for itself) — then it
/// streams instead. Either way the results are identical.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    expect_sweep(try_sweep_threads(configs, benchmark, budget, timing, area, threads))
}

/// As [`sweep_threads`], reporting a worker panic as a structured
/// [`SweepError`] (naming the L1 group or configuration that failed)
/// instead of aborting the caller.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn try_sweep_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Result<Vec<DesignPoint>, SweepError> {
    assert!(threads > 0, "need at least one worker thread");
    if configs.len() <= 1 || arena_bytes_for(budget) > ARENA_BYTES_LIMIT {
        obs_count!(Counter::RunnerFallbackStreaming, 1);
        obs_event!(
            "engine.fallback_streaming",
            "{} configs, predicted arena {} B: streaming replay",
            configs.len(),
            arena_bytes_for(budget)
        );
        return try_sweep_streaming_threads(configs, benchmark, budget, timing, area, threads);
    }
    obs_event!("engine.selected", "family-batched arena engine, {} configs", configs.len());
    let arena = {
        let _span = obs_span!("arena_capture");
        capture_benchmark(benchmark, budget)
    };
    try_sweep_family_arena_threads(configs, &arena, budget, timing, area, threads)
}

/// Unwraps a `try_sweep_*` result for the infallible entry points,
/// re-raising the worker panic with its unit context.
fn expect_sweep(r: Result<Vec<DesignPoint>, SweepError>) -> Vec<DesignPoint> {
    match r {
        Ok(v) => v,
        Err(e) => panic!("sweep worker thread panicked at {e}"),
    }
}

/// Evaluates every configuration against an already-captured arena, in
/// parallel, in input order. Callers that sweep the same benchmark
/// several times (e.g. per off-chip latency or per L2 policy) capture
/// once and call this directly.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    expect_sweep(try_sweep_arena_threads(configs, arena, budget, timing, area, threads))
}

/// As [`sweep_arena_threads`], reporting a worker panic as a
/// structured [`SweepError`].
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn try_sweep_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Result<Vec<DesignPoint>, SweepError> {
    let _span = obs_span!("fan_out");
    try_run_indexed(
        configs.len(),
        threads,
        |i| evaluate_arena(&configs[i], arena, budget, timing, area),
        |i| SweepUnit::Config { index: i, label: configs[i].label() },
    )
}

/// The miss-stream filtering sweep: configurations are grouped by L1
/// front-end ([`l1_groups`]), the arena is replayed through each distinct
/// L1 **once** to capture its miss/victim event stream, and every
/// configuration then replays only its group's events through its L2
/// back-end. Bit-identical to [`sweep_arena_threads`]; the L1 work —
/// which the arena path repeats for every configuration sharing an L1 —
/// is paid once per group.
///
/// Groups of one configuration skip the capture (it cannot pay for
/// itself), and a group whose event stream would exceed
/// [`MISS_STREAM_BYTES_LIMIT`] falls back to plain arena replay, so the
/// sweep's memory stays bounded by the same reasoning as the 1 GiB arena
/// bound. Results are returned in input order.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_filtered_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    expect_sweep(try_sweep_filtered_arena_threads(configs, arena, budget, timing, area, threads))
}

/// Phase A of the filtered and family sweeps: one miss-stream capture
/// per L1 group that will amortise it, with a `group[...]` phase span
/// per capture and fallback events for the groups that opt out
/// (singletons, byte-limited streams).
fn try_capture_group_streams(
    groups: &[(L1Key, Vec<usize>)],
    arena: &TraceArena,
    budget: SimBudget,
    threads: usize,
) -> Result<Vec<Option<tlc_cache::MissStream>>, SweepError> {
    let _span = obs_span!("l1_capture");
    try_run_indexed(
        groups.len(),
        threads,
        |g| {
            let (key, idxs) = &groups[g];
            if idxs.len() < 2 {
                obs_count!(Counter::RunnerFallbackSingleton, 1);
                obs_event!(
                    "fallback.singleton",
                    "L1 group {}B/{}B has a single config; plain arena replay",
                    key.0,
                    key.1
                );
                return None;
            }
            let span = PhaseSpan::enter_with("group", || format!("{}B/{}B", key.0, key.1));
            span.add_items(idxs.len() as u64);
            let _t = HistTimer::start(Hist::CaptureL1GroupNs);
            let stream = capture_miss_stream(key.0, key.1, arena, budget, MISS_STREAM_BYTES_LIMIT);
            if stream.is_none() {
                obs_count!(Counter::RunnerFallbackByteLimit, 1);
                obs_event!(
                    "fallback.byte_limit",
                    "L1 group {}B/{}B miss stream exceeded {} B; plain arena replay",
                    key.0,
                    key.1,
                    MISS_STREAM_BYTES_LIMIT
                );
            }
            stream
        },
        |g| SweepUnit::L1Group { l1_size_bytes: groups[g].0 .0, line_bytes: groups[g].0 .1 },
    )
}

/// As [`sweep_filtered_arena_threads`], reporting a worker panic as a
/// structured [`SweepError`] naming the L1 group or configuration.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn try_sweep_filtered_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Result<Vec<DesignPoint>, SweepError> {
    assert!(threads > 0, "need at least one worker thread");
    let groups = l1_groups(configs);
    // Phase A: one L1 capture per group that will amortise it.
    let streams = try_capture_group_streams(&groups, arena, budget, threads)?;
    let mut stream_of = vec![None; configs.len()];
    for (g, (_, idxs)) in groups.iter().enumerate() {
        for &i in idxs {
            stream_of[i] = streams[g].as_ref();
        }
    }
    // Phase B: fan the configurations over the captured streams.
    let _span = obs_span!("fan_out");
    try_run_indexed(
        configs.len(),
        threads,
        |i| match stream_of[i] {
            Some(stream) => evaluate_filtered(&configs[i], stream, timing, area),
            None => evaluate_arena(&configs[i], arena, budget, timing, area),
        },
        |i| SweepUnit::Config { index: i, label: configs[i].label() },
    )
}

/// One parallel work unit of the family sweep: a family chunk replaying
/// one captured stream for several configurations at once, or a single
/// configuration falling back to arena replay.
enum FamilyUnit<'a> {
    Family { stream: &'a tlc_cache::MissStream, members: Vec<usize> },
    Arena { idx: usize },
}

/// The family-batched sweep: configurations are grouped by L1 front-end
/// ([`l1_groups`]) and captured exactly as in
/// [`sweep_filtered_arena_threads`]; each captured group is then
/// partitioned into *families* sharing one L2 policy and associativity
/// (in the paper's spaces, a family is "one L1, every L2 capacity"), and
/// each family replays its group's events **once** for all of its
/// members ([`evaluate_family`]). Bit-identical to
/// [`sweep_filtered_arena_threads`]; the event decode — which the
/// filtered path repeats for every configuration — is paid once per
/// family.
///
/// Parallelism runs across (group × family) units; when one family holds
/// more than its fair share of the space, it is chunked so a dominant
/// group cannot serialise a multi-threaded sweep (a single-threaded
/// sweep keeps every family whole for maximal sharing). Singleton L1
/// groups and byte-limited captures fall back exactly as in the filtered
/// sweep. Results are returned in input order.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_family_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    expect_sweep(try_sweep_family_arena_threads(configs, arena, budget, timing, area, threads))
}

/// As [`sweep_family_arena_threads`], reporting a worker panic as a
/// structured [`SweepError`] naming the L1 group, family chunk, or
/// configuration that failed.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn try_sweep_family_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Result<Vec<DesignPoint>, SweepError> {
    assert!(threads > 0, "need at least one worker thread");
    let groups = l1_groups(configs);
    // Phase A: one L1 capture per group that will amortise it.
    let streams = try_capture_group_streams(&groups, arena, budget, threads)?;
    // Partition each captured group into families, preserving
    // first-appearance order within the group.
    let mut units: Vec<FamilyUnit> = Vec::new();
    let mut family_members = 0usize;
    for (g, (_, idxs)) in groups.iter().enumerate() {
        match streams[g].as_ref() {
            Some(stream) => {
                type FamilyKey = Option<(L2Policy, u32, tlc_cache::ReplacementKind)>;
                let mut fams: Vec<(FamilyKey, Vec<usize>)> = Vec::new();
                for &i in idxs {
                    let key = configs[i].l2.map(|s| (s.policy, s.ways, s.repl));
                    match fams.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, v)) => v.push(i),
                        None => fams.push((key, vec![i])),
                    }
                }
                for (_, members) in fams {
                    family_members += members.len();
                    units.push(FamilyUnit::Family { stream, members });
                }
            }
            None => units.extend(idxs.iter().map(|&i| FamilyUnit::Arena { idx: i })),
        }
    }
    // Chunk oversized families so one dominant group cannot serialise a
    // multi-threaded sweep; the batching win degrades gracefully (each
    // chunk still shares one decode among its members).
    if threads > 1 && family_members > 0 {
        let cap = family_members.div_ceil(threads).max(2);
        let mut chunked = Vec::with_capacity(units.len());
        for unit in units {
            match unit {
                FamilyUnit::Family { stream, members } if members.len() > cap => {
                    for chunk in members.chunks(cap) {
                        chunked.push(FamilyUnit::Family { stream, members: chunk.to_vec() });
                    }
                }
                other => chunked.push(other),
            }
        }
        units = chunked;
    }
    // Phase B: fan the units out; each returns (input index, point) pairs.
    let evaluated = {
        let _span = obs_span!("fan_out");
        try_run_indexed(
            units.len(),
            threads,
            |u| match &units[u] {
                FamilyUnit::Family { stream, members } => {
                    let cfgs: Vec<MachineConfig> = members.iter().map(|&i| configs[i]).collect();
                    let _t = HistTimer::start(Hist::ReplayFamilyChunkNs);
                    let points = evaluate_family(&cfgs, stream, timing, area);
                    members.iter().copied().zip(points).collect::<Vec<_>>()
                }
                FamilyUnit::Arena { idx } => {
                    vec![(*idx, evaluate_arena(&configs[*idx], arena, budget, timing, area))]
                }
            },
            |u| match &units[u] {
                FamilyUnit::Family { members, .. } => {
                    let first = &configs[members[0]];
                    SweepUnit::FamilyChunk {
                        l1_size_bytes: first.l1_size_bytes,
                        line_bytes: first.line_bytes,
                        members: members.clone(),
                    }
                }
                FamilyUnit::Arena { idx } => {
                    SweepUnit::Config { index: *idx, label: configs[*idx].label() }
                }
            },
        )?
    };
    let mut slots: Vec<Option<DesignPoint>> = vec![None; configs.len()];
    for batch in evaluated {
        for (i, p) in batch {
            slots[i] = Some(p);
        }
    }
    Ok(slots.into_iter().map(|s| s.expect("every configuration evaluated")).collect())
}

/// One parallel work unit of the sampled sweep: a family walking every
/// stitched segment of its L1 group, or a single configuration falling
/// back to cold per-slice arena replay (byte-limited capture).
enum SampledUnit<'a> {
    Family { segments: &'a [tlc_cache::MissStream], members: Vec<usize> },
    Cold { idx: usize },
}

/// The sampled sweep with **stitched warming**: configurations are
/// grouped by L1 front-end ([`l1_groups`]) and each group's front-end
/// replays every representative [`PhaseSlice`] in trace order
/// ([`capture_miss_stream_segments`]) — L1 contents persist across the
/// gaps between slices, and each slice's warm-up prefix refreshes them.
/// Each family then walks the per-slice segments through **one**
/// persistent set of L2 states ([`simulate_family_segments`]), so the
/// L2 arrays, LFSRs, and exclusive mirrors inherit stale state instead
/// of restarting cold at every slice. Per-phase measured statistics are
/// recombined with [`crate::sampling::combine_weighted`] into one
/// whole-trace estimate per configuration.
///
/// Reconstruction accuracy is bounded by
/// [`crate::sampling::SAMPLED_MISS_RATIO_EPSILON`] (see the
/// [`crate::sampling`] module docs for the contract and the exact
/// degenerate cases).
///
/// `runner.configs_completed` ticks once per (configuration × phase)
/// evaluation; the recombination itself is untracked, so a sampled sweep
/// reports `configs × phases` completions in its manifest.
///
/// # Panics
///
/// Panics if `threads` is zero, `slices` is empty, or a worker panics.
pub fn sweep_sampled_threads(
    configs: &[MachineConfig],
    slices: &[PhaseSlice],
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    expect_sweep(try_sweep_sampled_threads(configs, slices, timing, area, threads))
}

/// As [`sweep_sampled_threads`], reporting a worker panic as a
/// structured [`SweepError`].
///
/// # Panics
///
/// Panics if `threads` is zero or `slices` is empty.
pub fn try_sweep_sampled_threads(
    configs: &[MachineConfig],
    slices: &[PhaseSlice],
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Result<Vec<DesignPoint>, SweepError> {
    assert!(threads > 0, "need at least one worker thread");
    assert!(!slices.is_empty(), "need at least one phase slice");
    let workload = slices[0].arena.name().to_string();
    let groups = l1_groups(configs);
    // Phase A: one stitched capture per L1 group — a single front-end
    // replays every slice sequentially so L1 state carries across them.
    let captured: Vec<Option<Vec<tlc_cache::MissStream>>> = {
        let _span = obs_span!("l1_capture");
        try_run_indexed(
            groups.len(),
            threads,
            |g| {
                let (key, idxs) = &groups[g];
                let span = PhaseSpan::enter_with("group", || format!("{}B/{}B", key.0, key.1));
                span.add_items(idxs.len() as u64);
                let segs =
                    capture_miss_stream_segments(key.0, key.1, slices, MISS_STREAM_BYTES_LIMIT);
                if segs.is_none() {
                    obs_count!(Counter::RunnerFallbackByteLimit, 1);
                    obs_event!(
                        "fallback.byte_limit",
                        "L1 group {}B/{}B phase segments exceeded {} B; cold per-slice replay",
                        key.0,
                        key.1,
                        MISS_STREAM_BYTES_LIMIT
                    );
                }
                segs
            },
            |g| SweepUnit::L1Group { l1_size_bytes: groups[g].0 .0, line_bytes: groups[g].0 .1 },
        )?
    };
    // Partition each captured group into families exactly as the family
    // sweep does; byte-limited groups fall back per configuration.
    let mut units: Vec<SampledUnit> = Vec::new();
    let mut family_members = 0usize;
    for (g, (_, idxs)) in groups.iter().enumerate() {
        match captured[g].as_deref() {
            Some(segments) => {
                type FamilyKey = Option<(L2Policy, u32, tlc_cache::ReplacementKind)>;
                let mut fams: Vec<(FamilyKey, Vec<usize>)> = Vec::new();
                for &i in idxs {
                    let key = configs[i].l2.map(|s| (s.policy, s.ways, s.repl));
                    match fams.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, v)) => v.push(i),
                        None => fams.push((key, vec![i])),
                    }
                }
                for (_, members) in fams {
                    family_members += members.len();
                    units.push(SampledUnit::Family { segments, members });
                }
            }
            None => units.extend(idxs.iter().map(|&i| SampledUnit::Cold { idx: i })),
        }
    }
    // Chunk oversized families so one dominant group cannot serialise a
    // multi-threaded sweep (same policy as the family sweep).
    if threads > 1 && family_members > 0 {
        let cap = family_members.div_ceil(threads).max(2);
        let mut chunked = Vec::with_capacity(units.len());
        for unit in units {
            match unit {
                SampledUnit::Family { segments, members } if members.len() > cap => {
                    for chunk in members.chunks(cap) {
                        chunked.push(SampledUnit::Family { segments, members: chunk.to_vec() });
                    }
                }
                other => chunked.push(other),
            }
        }
        units = chunked;
    }
    // Phase B: fan the units out; each returns (input index, point)
    // pairs with the per-phase statistics already recombined.
    let evaluated = {
        let _span = obs_span!("fan_out");
        try_run_indexed(
            units.len(),
            threads,
            |u| match &units[u] {
                SampledUnit::Family { segments, members } => {
                    let cfgs: Vec<MachineConfig> = members.iter().map(|&i| configs[i]).collect();
                    let per_seg = simulate_family_segments(&cfgs, segments);
                    obs_count!(
                        Counter::RunnerConfigsCompleted,
                        (members.len() * segments.len()) as u64
                    );
                    members
                        .iter()
                        .enumerate()
                        .map(|(m, &i)| {
                            let parts: Vec<(f64, tlc_cache::HierarchyStats)> = per_seg
                                .iter()
                                .zip(slices)
                                .map(|(row, slice)| (slice.weight, row[m]))
                                .collect();
                            let stats = crate::sampling::combine_weighted(&parts);
                            (
                                i,
                                crate::experiment::design_point_untracked(
                                    &configs[i],
                                    workload.clone(),
                                    stats,
                                    timing,
                                    area,
                                ),
                            )
                        })
                        .collect::<Vec<_>>()
                }
                SampledUnit::Cold { idx } => {
                    // No stitched segments: replay each slice cold (its
                    // warm-up prefix is the only warming). Each
                    // `evaluate_arena` ticks one completion, keeping the
                    // configs × phases manifest invariant.
                    let cfg = &configs[*idx];
                    let parts: Vec<(f64, tlc_cache::HierarchyStats)> = slices
                        .iter()
                        .map(|slice| {
                            (
                                slice.weight,
                                evaluate_arena(cfg, &slice.arena, slice.budget, timing, area).stats,
                            )
                        })
                        .collect();
                    let stats = crate::sampling::combine_weighted(&parts);
                    vec![(
                        *idx,
                        crate::experiment::design_point_untracked(
                            cfg,
                            workload.clone(),
                            stats,
                            timing,
                            area,
                        ),
                    )]
                }
            },
            |u| match &units[u] {
                SampledUnit::Family { members, .. } => {
                    let first = &configs[members[0]];
                    SweepUnit::FamilyChunk {
                        l1_size_bytes: first.l1_size_bytes,
                        line_bytes: first.line_bytes,
                        members: members.clone(),
                    }
                }
                SampledUnit::Cold { idx } => {
                    SweepUnit::Config { index: *idx, label: configs[*idx].label() }
                }
            },
        )?
    };
    let mut slots: Vec<Option<DesignPoint>> = vec![None; configs.len()];
    for batch in evaluated {
        for (i, p) in batch {
            slots[i] = Some(p);
        }
    }
    Ok(slots.into_iter().map(|s| s.expect("every configuration evaluated")).collect())
}

/// One parallel work unit of the predict sweep: a whole group answered
/// analytically from one profiling pass, a family chunk replaying the
/// members the model cannot cover, or a single configuration falling
/// back to arena replay.
enum PredictUnit<'a> {
    Predict { stream: &'a tlc_cache::MissStream, members: Vec<usize> },
    Family { stream: &'a tlc_cache::MissStream, members: Vec<usize> },
    Arena { idx: usize },
}

/// The analytical-prediction sweep: configurations are grouped and
/// captured exactly as in [`sweep_family_arena_threads`], but each
/// captured group's single-level and conventional members are answered
/// by **one** reuse-distance profiling pass
/// ([`evaluate_predicted`]) — O(events) per L1 group, independent of how
/// many L2 points the group sweeps — instead of one replay per
/// associativity family.
///
/// **Not bit-identical.** Predicted points carry the documented ε
/// contract ([`tlc_cache::MISS_RATIO_EPSILON`]) on the local L2 miss
/// ratio versus family-replayed ground truth; single-level members are
/// exact and direct-mapped members have exact hit/miss counts (see
/// [`tlc_cache::predict`]). Members the model cannot cover stay on
/// replay and remain bit-identical: exclusive hierarchies and
/// set-associative members with FIFO, tree-PLRU, or SRRIP replacement
/// (see [`config_is_predictable`](crate::config_is_predictable)) go
/// through the family engine, and singleton or byte-limited L1 groups
/// fall back to plain arena replay. The `predict.configs_predicted` /
/// `predict.configs_replayed` counters record the split. Results are
/// returned in input order.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_predict_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    expect_sweep(try_sweep_predict_arena_threads(configs, arena, budget, timing, area, threads))
}

/// As [`sweep_predict_arena_threads`], reporting a worker panic as a
/// structured [`SweepError`] naming the L1 group, predict group, family
/// chunk, or configuration that failed.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn try_sweep_predict_arena_threads(
    configs: &[MachineConfig],
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Result<Vec<DesignPoint>, SweepError> {
    assert!(threads > 0, "need at least one worker thread");
    let groups = l1_groups(configs);
    // Phase A: one L1 capture per group that will amortise it.
    let streams = try_capture_group_streams(&groups, arena, budget, threads)?;
    // Partition each captured group: everything inside the prediction
    // model (single-level, direct-mapped, and LRU/pseudo-random
    // conventional members, any mix of sizes and ways) forms one predict
    // unit sharing one profiling pass; exclusive members and policies
    // without a closed form stay on family-batched replay.
    let mut units: Vec<PredictUnit> = Vec::new();
    let mut replay_members = 0usize;
    for (g, (_, idxs)) in groups.iter().enumerate() {
        match streams[g].as_ref() {
            Some(stream) => {
                let (predictable, replayed): (Vec<usize>, Vec<usize>) = idxs
                    .iter()
                    .partition(|&&i| crate::experiment::config_is_predictable(&configs[i]));
                if !predictable.is_empty() {
                    units.push(PredictUnit::Predict { stream, members: predictable });
                }
                type FamilyKey = (L2Policy, u32, tlc_cache::ReplacementKind);
                let mut fams: Vec<(FamilyKey, Vec<usize>)> = Vec::new();
                for i in replayed {
                    let s = configs[i].l2.expect("unpredictable members are two-level");
                    let key = (s.policy, s.ways, s.repl);
                    match fams.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, v)) => v.push(i),
                        None => fams.push((key, vec![i])),
                    }
                }
                for (_, members) in fams {
                    replay_members += members.len();
                    units.push(PredictUnit::Family { stream, members });
                }
            }
            None => {
                replay_members += idxs.len();
                units.extend(idxs.iter().map(|&i| PredictUnit::Arena { idx: i }));
            }
        }
    }
    // Chunk oversized replay families exactly as the family engine does.
    // Predict units are never chunked: splitting one would repeat its
    // profiling pass, and the per-member cost after the pass is tiny.
    if threads > 1 && replay_members > 0 {
        let cap = replay_members.div_ceil(threads).max(2);
        let mut chunked = Vec::with_capacity(units.len());
        for unit in units {
            match unit {
                PredictUnit::Family { stream, members } if members.len() > cap => {
                    for chunk in members.chunks(cap) {
                        chunked.push(PredictUnit::Family { stream, members: chunk.to_vec() });
                    }
                }
                other => chunked.push(other),
            }
        }
        units = chunked;
    }
    // Phase B: fan the units out; each returns (input index, point) pairs.
    let evaluated = {
        let _span = obs_span!("fan_out");
        try_run_indexed(
            units.len(),
            threads,
            |u| match &units[u] {
                PredictUnit::Predict { stream, members } => {
                    let first = &configs[members[0]];
                    let span = PhaseSpan::enter_with("predict_group", || {
                        format!("{}B/{}B", first.l1_size_bytes, first.line_bytes)
                    });
                    span.add_items(members.len() as u64);
                    let cfgs: Vec<MachineConfig> = members.iter().map(|&i| configs[i]).collect();
                    let points = evaluate_predicted(&cfgs, stream, timing, area);
                    members.iter().copied().zip(points).collect::<Vec<_>>()
                }
                PredictUnit::Family { stream, members } => {
                    obs_count!(Counter::PredictConfigsReplayed, members.len() as u64);
                    let cfgs: Vec<MachineConfig> = members.iter().map(|&i| configs[i]).collect();
                    let _t = HistTimer::start(Hist::ReplayFamilyChunkNs);
                    let points = evaluate_family(&cfgs, stream, timing, area);
                    members.iter().copied().zip(points).collect::<Vec<_>>()
                }
                PredictUnit::Arena { idx } => {
                    obs_count!(Counter::PredictConfigsReplayed, 1);
                    vec![(*idx, evaluate_arena(&configs[*idx], arena, budget, timing, area))]
                }
            },
            |u| match &units[u] {
                PredictUnit::Predict { members, .. } => {
                    let first = &configs[members[0]];
                    SweepUnit::PredictGroup {
                        l1_size_bytes: first.l1_size_bytes,
                        line_bytes: first.line_bytes,
                        members: members.clone(),
                    }
                }
                PredictUnit::Family { members, .. } => {
                    let first = &configs[members[0]];
                    SweepUnit::FamilyChunk {
                        l1_size_bytes: first.l1_size_bytes,
                        line_bytes: first.line_bytes,
                        members: members.clone(),
                    }
                }
                PredictUnit::Arena { idx } => {
                    SweepUnit::Config { index: *idx, label: configs[*idx].label() }
                }
            },
        )?
    };
    let mut slots: Vec<Option<DesignPoint>> = vec![None; configs.len()];
    for batch in evaluated {
        for (i, p) in batch {
            slots[i] = Some(p);
        }
    }
    Ok(slots.into_iter().map(|s| s.expect("every configuration evaluated")).collect())
}

/// The regenerate-per-configuration sweep: each evaluation rebuilds the
/// benchmark's seeded generator and streams it from scratch. Kept public
/// as the memory-lean fallback and as the reference the arena path is
/// tested against.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_streaming_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    expect_sweep(try_sweep_streaming_threads(configs, benchmark, budget, timing, area, threads))
}

/// As [`sweep_streaming_threads`], reporting a worker panic as a
/// structured [`SweepError`].
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn try_sweep_streaming_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Result<Vec<DesignPoint>, SweepError> {
    let _span = obs_span!("fan_out");
    try_run_indexed(
        configs.len(),
        threads,
        |i| evaluate(&configs[i], benchmark, budget, timing, area),
        |i| SweepUnit::Config { index: i, label: configs[i].label() },
    )
}

/// The pre-arena baseline sweep: regenerates the stream per
/// configuration *and* dispatches every reference through the
/// `Box<dyn MemorySystem>` engine, exactly as `sweep` worked before the
/// trace arena. Kept for the sweep benchmark (the speedup baseline) and
/// for equivalence testing; new code should use [`sweep`].
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_dyn_threads(
    configs: &[MachineConfig],
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<DesignPoint> {
    run_indexed(
        configs.len(),
        threads,
        |i| evaluate_dyn(&configs[i], benchmark, budget, timing, area),
        |i| SweepUnit::Config { index: i, label: configs[i].label() },
    )
}

/// Sweeps `configs` across several benchmarks, capturing each
/// benchmark's stream exactly once. Returns one result vector per
/// benchmark, in benchmark order, each in `configs` order.
///
/// Duplicate configurations — common when overlapping figure families
/// are concatenated — are evaluated once per benchmark
/// ([`unique_configs`]) and their results fanned back out to every
/// occurrence, so the output is position-for-position what a naive
/// per-config sweep would return.
///
/// # Panics
///
/// Panics if `threads` is zero.
pub fn sweep_matrix(
    configs: &[MachineConfig],
    benchmarks: &[SpecBenchmark],
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
    threads: usize,
) -> Vec<Vec<DesignPoint>> {
    let (unique, occurrence) = unique_configs(configs);
    benchmarks
        .iter()
        .map(|&b| {
            let row = sweep_threads(&unique, b, budget, timing, area, threads);
            occurrence.iter().map(|&u| row[u].clone()).collect()
        })
        .collect()
}

/// Stringifies a panic payload (the common `&str`/`String` cases).
fn payload_string(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Work-stealing fan-out: workers atomically claim indices `0..n`,
/// results land back in index order. A panicking evaluation stops the
/// sweep (workers drain, no new claims) and is reported as a
/// [`SweepError`] naming the unit `unit_of(i)` describes; with several
/// concurrent panics the first to be observed wins. Each worker gets a
/// `worker[w]` phase span (under the caller's current span) carrying
/// its claimed-unit count, so queue imbalance shows in the manifest.
fn try_run_indexed<T, F, U>(
    n: usize,
    threads: usize,
    eval: F,
    unit_of: U,
) -> Result<Vec<T>, SweepError>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    U: Fn(usize) -> SweepUnit + Sync,
{
    assert!(threads > 0, "need at least one worker thread");
    if n == 0 {
        return Ok(Vec::new());
    }
    let threads = threads.min(n);
    let caught = |i: usize| {
        catch_unwind(AssertUnwindSafe(|| eval(i)))
            .map_err(|p| SweepError { unit: unit_of(i), payload: payload_string(p) })
    };
    if threads == 1 {
        // Run on the calling thread: spawning a worker is not only
        // pointless serialisation, it is measurably slow — a fresh
        // thread starts with a cold allocator heap, so every
        // configuration's cache arrays page-fault from scratch.
        let span = PhaseSpan::enter_with("worker", || "0".to_string());
        span.add_items(n as u64);
        obs_hist!(Hist::RunnerWorkerItems, n as u64);
        return (0..n).map(caught).collect();
    }
    let next = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    let first_error: Mutex<Option<SweepError>> = Mutex::new(None);
    let mut slots: Vec<Option<T>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let parent = tlc_obs::current_path();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for w in 0..threads {
            let next = &next;
            let stop = &stop;
            let first_error = &first_error;
            let caught = &caught;
            let parent = &parent;
            handles.push(scope.spawn(move || {
                let span = PhaseSpan::enter_under(parent, "worker", &w.to_string());
                let mut mine = Vec::new();
                let mut claimed = 0u64;
                loop {
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    span.add_items(1);
                    claimed += 1;
                    match caught(i) {
                        Ok(p) => mine.push((i, p)),
                        Err(e) => {
                            stop.store(true, Ordering::Relaxed);
                            // A poisoned lock only means another worker
                            // panicked mid-record; the Option inside is
                            // still usable, and panicking here would turn
                            // the structured SweepError contract of the
                            // try_* entry points back into a panic.
                            first_error.lock().unwrap_or_else(|e| e.into_inner()).get_or_insert(e);
                            break;
                        }
                    }
                }
                // One sample per worker per fan-out: the *distribution*
                // of claimed counts across workers is queue imbalance.
                obs_hist!(Hist::RunnerWorkerItems, claimed);
                mine
            }));
        }
        for h in handles {
            // Workers catch evaluation panics themselves, so a join
            // failure here is unreachable short of a bug in this loop.
            for (i, p) in h.join().expect("worker thread panicked") {
                slots[i] = Some(p);
            }
        }
    });

    if let Some(e) = first_error.lock().unwrap_or_else(|e| e.into_inner()).take() {
        return Err(e);
    }
    Ok(slots.into_iter().map(|s| s.expect("every slot filled")).collect())
}

/// As [`try_run_indexed`], re-raising a worker panic with its unit
/// context for the infallible sweep entry points.
fn run_indexed<T, F, U>(n: usize, threads: usize, eval: F, unit_of: U) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    U: Fn(usize) -> SweepUnit + Sync,
{
    match try_run_indexed(n, threads, eval, unit_of) {
        Ok(v) => v,
        Err(e) => panic!("sweep worker thread panicked at {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configspace::{single_level_configs, two_level_configs, SpaceOptions};

    #[test]
    fn parallel_matches_serial() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..4];
        let budget = SimBudget { instructions: 20_000, warmup_instructions: 5_000 };
        let serial = sweep_threads(configs, SpecBenchmark::Eqntott, budget, &tm, &am, 1);
        let parallel = sweep_threads(configs, SpecBenchmark::Eqntott, budget, &tm, &am, 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.label, p.label);
            assert_eq!(s.stats, p.stats, "{}: parallel run diverged", s.label);
            assert_eq!(s.tpi_ns, p.tpi_ns);
        }
    }

    #[test]
    fn arena_sweep_matches_streaming_sweep() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let mut configs = single_level_configs(&SpaceOptions::baseline())[..2].to_vec();
        configs.extend_from_slice(&two_level_configs(&SpaceOptions::baseline())[..2]);
        let budget = SimBudget { instructions: 15_000, warmup_instructions: 5_000 };
        let streamed = sweep_streaming_threads(&configs, SpecBenchmark::Gcc1, budget, &tm, &am, 2);
        let arena = capture_benchmark(SpecBenchmark::Gcc1, budget);
        let replayed = sweep_arena_threads(&configs, &arena, budget, &tm, &am, 2);
        assert_eq!(streamed, replayed, "arena sweep must be bit-identical to streaming");
    }

    #[test]
    fn thread_count_does_not_change_arena_results() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = two_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..5];
        let budget = SimBudget { instructions: 10_000, warmup_instructions: 2_000 };
        let arena = capture_benchmark(SpecBenchmark::Tomcatv, budget);
        let one = sweep_arena_threads(configs, &arena, budget, &tm, &am, 1);
        let many = sweep_arena_threads(configs, &arena, budget, &tm, &am, 5);
        assert_eq!(one, many);
    }

    #[test]
    fn matrix_groups_by_benchmark_in_order() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..2];
        let budget = SimBudget { instructions: 5_000, warmup_instructions: 1_000 };
        let benchmarks = [SpecBenchmark::Li, SpecBenchmark::Espresso];
        let matrix = sweep_matrix(configs, &benchmarks, budget, &tm, &am, 2);
        assert_eq!(matrix.len(), 2);
        for (row, b) in matrix.iter().zip(&benchmarks) {
            assert_eq!(row.len(), configs.len());
            for p in row {
                assert_eq!(p.workload, b.name());
            }
            // Each row matches its individual sweep exactly.
            assert_eq!(row, &sweep_threads(configs, *b, budget, &tm, &am, 2));
        }
    }

    #[test]
    fn preserves_input_order() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..3];
        let budget = SimBudget { instructions: 5_000, warmup_instructions: 1_000 };
        let points = sweep_threads(configs, SpecBenchmark::Li, budget, &tm, &am, 3);
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(labels, vec!["1:0", "2:0", "4:0"]);
    }

    #[test]
    fn empty_space_is_fine() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let points = sweep_threads(&[], SpecBenchmark::Li, SimBudget::quick(), &tm, &am, 2);
        assert!(points.is_empty());
    }

    #[test]
    fn l1_groups_cover_every_index_once() {
        let mut opts = SpaceOptions::baseline();
        let mut configs = crate::configspace::full_space(&opts);
        opts.l2_policy = crate::machine::L2Policy::Exclusive;
        configs.extend(crate::configspace::two_level_configs(&opts));
        let groups = l1_groups(&configs);
        // Nine L1 sizes, one line size: nine front-ends for the 81-config
        // conventional+exclusive space.
        assert_eq!(groups.len(), 9);
        let mut seen = vec![false; configs.len()];
        for (key, idxs) in &groups {
            for &i in idxs {
                assert!(!seen[i], "index {i} in two groups");
                seen[i] = true;
                assert_eq!((configs[i].l1_size_bytes, configs[i].line_bytes), *key);
            }
        }
        assert!(seen.iter().all(|&s| s), "every index grouped");
        // First-appearance order: the single-level leg enumerates L1
        // sizes ascending.
        assert_eq!(groups[0].0 .0, 1024);
        assert_eq!(groups[8].0 .0, 256 * 1024);
    }

    #[test]
    fn filtered_sweep_matches_arena_sweep() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        // Mixed space: singles, conventional, exclusive — shared L1s.
        let mut opts = SpaceOptions::baseline();
        let mut configs = single_level_configs(&opts)[..3].to_vec();
        configs.extend_from_slice(&two_level_configs(&opts)[..6]);
        opts.l2_policy = crate::machine::L2Policy::Exclusive;
        configs.extend_from_slice(&two_level_configs(&opts)[..6]);
        let budget = SimBudget { instructions: 15_000, warmup_instructions: 5_000 };
        let arena = capture_benchmark(SpecBenchmark::Gcc1, budget);
        let plain = sweep_arena_threads(&configs, &arena, budget, &tm, &am, 2);
        for threads in [1, 3] {
            let filtered =
                sweep_filtered_arena_threads(&configs, &arena, budget, &tm, &am, threads);
            assert_eq!(plain, filtered, "filtered sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn family_sweep_matches_filtered_sweep() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        // Mixed space: singles, conventional, exclusive, and a second
        // associativity — several families per L1 group.
        let mut opts = SpaceOptions::baseline();
        let mut configs = single_level_configs(&opts)[..3].to_vec();
        configs.extend_from_slice(&two_level_configs(&opts)[..6]);
        opts.l2_policy = crate::machine::L2Policy::Exclusive;
        configs.extend_from_slice(&two_level_configs(&opts)[..6]);
        opts.l2_ways = 1;
        configs.extend_from_slice(&two_level_configs(&opts)[..4]);
        let budget = SimBudget { instructions: 15_000, warmup_instructions: 5_000 };
        let arena = capture_benchmark(SpecBenchmark::Gcc1, budget);
        let filtered = sweep_filtered_arena_threads(&configs, &arena, budget, &tm, &am, 2);
        for threads in [1, 3] {
            let family = sweep_family_arena_threads(&configs, &arena, budget, &tm, &am, threads);
            assert_eq!(filtered, family, "family sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn predict_sweep_meets_epsilon_contract_on_mixed_space() {
        use tlc_cache::{miss_ratio_error, MISS_RATIO_EPSILON};
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        // Mixed space: singles, conventional 4-way, conventional 1-way,
        // and exclusive members (which must stay on exact replay).
        let mut opts = SpaceOptions::baseline();
        let mut configs = single_level_configs(&opts)[..3].to_vec();
        configs.extend_from_slice(&two_level_configs(&opts)[..6]);
        opts.l2_ways = 1;
        configs.extend_from_slice(&two_level_configs(&opts)[..4]);
        opts.l2_ways = 4;
        opts.l2_policy = crate::machine::L2Policy::Exclusive;
        configs.extend_from_slice(&two_level_configs(&opts)[..4]);
        let budget = SimBudget { instructions: 15_000, warmup_instructions: 5_000 };
        let arena = capture_benchmark(SpecBenchmark::Gcc1, budget);
        let truth = sweep_family_arena_threads(&configs, &arena, budget, &tm, &am, 2);
        for threads in [1, 3] {
            let predicted =
                sweep_predict_arena_threads(&configs, &arena, budget, &tm, &am, threads);
            assert_eq!(predicted.len(), configs.len());
            for ((cfg, got), want) in configs.iter().zip(&predicted).zip(&truth) {
                assert_eq!(got.label, want.label, "order must be preserved");
                match cfg.l2 {
                    Some(spec) if spec.policy == crate::machine::L2Policy::Exclusive => {
                        assert_eq!(got, want, "exclusive members replay bit-identically");
                    }
                    None => assert_eq!(
                        got.stats,
                        want.stats,
                        "single-level prediction is exact ({})",
                        cfg.label()
                    ),
                    Some(spec) => {
                        if spec.ways == 1 {
                            assert_eq!(
                                (got.stats.l2_hits, got.stats.l2_misses),
                                (want.stats.l2_hits, want.stats.l2_misses),
                                "direct-mapped counts are exact ({})",
                                cfg.label()
                            );
                        }
                        let err = miss_ratio_error(&got.stats, &want.stats);
                        assert!(
                            err <= MISS_RATIO_EPSILON,
                            "{}: miss-ratio error {err:.4} > ε at {threads} threads",
                            cfg.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn predict_sweep_is_thread_invariant() {
        // The predictor is deterministic: thread count must not change a
        // single predicted statistic.
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let opts = SpaceOptions::baseline();
        let configs: Vec<MachineConfig> =
            two_level_configs(&opts).into_iter().filter(|c| c.l1_size_bytes <= 4096).collect();
        assert!(configs.len() >= 6);
        let budget = SimBudget { instructions: 10_000, warmup_instructions: 2_000 };
        let arena = capture_benchmark(SpecBenchmark::Li, budget);
        let one = sweep_predict_arena_threads(&configs, &arena, budget, &tm, &am, 1);
        let many = sweep_predict_arena_threads(&configs, &arena, budget, &tm, &am, 4);
        assert_eq!(one, many);
    }

    #[test]
    fn family_sweep_chunks_dominant_groups() {
        // One L1 group holding the entire two-level space: with many
        // threads the family must be chunked, and chunking must not
        // change a single statistic.
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let opts = SpaceOptions::baseline();
        let configs: Vec<MachineConfig> =
            two_level_configs(&opts).into_iter().filter(|c| c.l1_size_bytes == 1024).collect();
        assert!(configs.len() >= 8, "1KB L1 pairs with every L2 size");
        let budget = SimBudget { instructions: 10_000, warmup_instructions: 2_000 };
        let arena = capture_benchmark(SpecBenchmark::Li, budget);
        let serial = sweep_family_arena_threads(&configs, &arena, budget, &tm, &am, 1);
        let chunked = sweep_family_arena_threads(&configs, &arena, budget, &tm, &am, 4);
        assert_eq!(serial, chunked);
    }

    #[test]
    fn filtered_sweep_handles_singleton_groups() {
        // Every config has a distinct L1: all groups are singletons, so
        // the whole sweep takes the arena fallback path.
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let configs = &configs[..3];
        let budget = SimBudget { instructions: 8_000, warmup_instructions: 2_000 };
        let arena = capture_benchmark(SpecBenchmark::Li, budget);
        let plain = sweep_arena_threads(configs, &arena, budget, &tm, &am, 1);
        let filtered = sweep_filtered_arena_threads(configs, &arena, budget, &tm, &am, 2);
        assert_eq!(plain, filtered);
    }

    #[test]
    fn tight_byte_limit_falls_back_to_arena_replay() {
        // A zero byte limit rejects every capture; the filtered sweep
        // must still return bit-identical results via the fallback.
        let budget = SimBudget { instructions: 5_000, warmup_instructions: 1_000 };
        let arena = capture_benchmark(SpecBenchmark::Tomcatv, budget);
        assert!(capture_miss_stream(1024, 16, &arena, budget, 0).is_none());
        assert!(capture_miss_stream(1024, 16, &arena, budget, usize::MAX).is_some());
    }

    #[test]
    fn matrix_dedups_duplicate_configs() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let base = single_level_configs(&SpaceOptions::baseline());
        // Same config three times plus a distinct one, shuffled.
        let configs = [base[0], base[1], base[0], base[0]];
        let budget = SimBudget { instructions: 5_000, warmup_instructions: 1_000 };
        let matrix = sweep_matrix(&configs, &[SpecBenchmark::Espresso], budget, &tm, &am, 2);
        let row = &matrix[0];
        assert_eq!(row.len(), 4, "results fan back out to input positions");
        assert_eq!(row[0], row[2]);
        assert_eq!(row[0], row[3]);
        assert_eq!(row[0].label, base[0].label());
        assert_eq!(row[1].label, base[1].label());
        // Identical to the undeduplicated sweep.
        let direct = sweep_threads(&configs, SpecBenchmark::Espresso, budget, &tm, &am, 2);
        assert_eq!(*row, direct);
    }

    #[test]
    fn arena_footprint_prediction() {
        let b = SimBudget::standard();
        assert_eq!(arena_bytes_for(b), 2_000_000 * 17);
        assert!(arena_bytes_for(b) < ARENA_BYTES_LIMIT, "standard budget uses the arena path");
        let huge = b.scaled(1000.0);
        assert!(arena_bytes_for(huge) > ARENA_BYTES_LIMIT, "1000x budget streams instead");
    }

    #[test]
    fn panicking_worker_yields_structured_error_not_panic() {
        // Regression for the poisoned-mutex path: a panicking evaluation
        // must surface as a SweepError through the try_* contract, never
        // re-panic inside the runner — on the multi-threaded path (where
        // racing workers may find the first_error lock poisoned) and on
        // the inline single-threaded path alike.
        for threads in [1, 4] {
            let r = try_run_indexed(
                8,
                threads,
                |i| {
                    if i >= 2 {
                        panic!("injected failure at unit {i}");
                    }
                    i
                },
                |i| SweepUnit::Config { index: i, label: format!("unit-{i}") },
            );
            let e = r.expect_err("a panicking worker must produce Err, not a panic");
            assert!(e.payload.contains("injected failure"), "payload: {}", e.payload);
            assert!(matches!(e.unit, SweepUnit::Config { index, .. } if index >= 2));
        }
    }

    #[test]
    fn panicking_worker_under_every_thread_returns_first_claimed_error() {
        // All units panic: every worker races to record an error; the
        // runner must still return exactly one structured error.
        let r = try_run_indexed(
            16,
            8,
            |i| -> usize { panic!("boom {i}") },
            |i| SweepUnit::Config { index: i, label: String::new() },
        );
        let e = r.expect_err("expected structured error");
        assert!(e.payload.contains("boom"));
    }

    #[test]
    #[should_panic(expected = "worker thread")]
    fn rejects_zero_threads() {
        let tm = TimingModel::paper();
        let am = AreaModel::new();
        let configs = single_level_configs(&SpaceOptions::baseline());
        let _ = sweep_threads(&configs[..1], SpecBenchmark::Li, SimBudget::quick(), &tm, &am, 0);
    }
}
