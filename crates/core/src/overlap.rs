//! Measured miss-overlap estimation for the §10 non-blocking-loads
//! extension.
//!
//! [`FutureWorkModel`](crate::future::FutureWorkModel) takes the hidden
//! fraction of miss latency as a parameter; this module *measures* it
//! from the reference stream instead of assuming it. The model: a
//! non-blocking cache with `mshrs` miss-status registers lets a miss
//! overlap with earlier misses still outstanding. Driving the simulated
//! hierarchy, we record the instruction distance between consecutive
//! misses; a miss issued while an earlier one is still in flight (within
//! its latency, MSHR permitting) hides the overlapping part of its own
//! latency.
//!
//! The estimate is deliberately optimistic about the processor (it
//! assumes execution can always continue to the next miss — perfect
//! latency tolerance), so it upper-bounds what §10's "non-blocking loads"
//! could deliver; the paper's blocking model is the lower bound.

use crate::experiment::SimBudget;
use crate::machine::{MachineConfig, MachineTiming};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tlc_area::AreaModel;
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::InstructionSource;

/// Result of an overlap measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapReport {
    /// Misses observed (off-chip demand fetches).
    pub misses: u64,
    /// Mean instruction distance between consecutive misses.
    pub mean_miss_gap_instr: f64,
    /// Fraction of misses that issued while another was outstanding.
    pub clustered_fraction: f64,
    /// Fraction of total miss latency hidden by overlap — feed this to
    /// [`FutureWorkModel::with_miss_overlap`](crate::future::FutureWorkModel::with_miss_overlap).
    pub overlap_fraction: f64,
}

/// Measures achievable miss overlap for `cfg` on `benchmark` with
/// `mshrs` miss-status registers.
///
/// # Panics
///
/// Panics if `mshrs` is zero.
pub fn estimate_overlap(
    cfg: &MachineConfig,
    benchmark: SpecBenchmark,
    budget: SimBudget,
    mshrs: usize,
    timing: &TimingModel,
    area: &AreaModel,
) -> OverlapReport {
    assert!(mshrs > 0, "need at least one MSHR");
    let t = MachineTiming::derive(cfg, timing, area);
    // Off-chip miss latency in processor cycles ≈ instructions (CPI≈1
    // between misses under the §2.1 issue model).
    let k = t.refill_transfers as f64;
    let miss_latency_cycles = if t.l2_cycles > 0 {
        (t.offchip_rounded_ns + (k + 1.0) * t.l2_cycle_ns() + t.l1_cycle_ns) / t.l1_cycle_ns
    } else {
        (t.offchip_rounded_ns + t.l1_cycle_ns) / t.l1_cycle_ns
    };

    let mut sys = crate::experiment::build_system(cfg);
    let mut workload = benchmark.workload();
    for _ in 0..budget.warmup_instructions {
        if let Some(rec) = workload.next_instruction_opt() {
            sys.access_instruction(&rec);
        }
    }
    sys.reset_stats();

    // Completion times (in instruction indices) of outstanding misses.
    let mut outstanding: VecDeque<f64> = VecDeque::with_capacity(mshrs);
    let mut misses = 0u64;
    let mut clustered = 0u64;
    let mut hidden_latency = 0.0f64;
    let mut last_miss_at: Option<f64> = None;
    let mut gap_sum = 0.0f64;

    for i in 0..budget.instructions {
        let Some(rec) = workload.next_instruction_opt() else { break };
        let now = i as f64;
        let outcome = sys.access_instruction(&rec);
        let fetch_missed = outcome.fetch == tlc_cache::ServiceLevel::Memory;
        let data_missed = outcome.data == Some(tlc_cache::ServiceLevel::Memory);
        for missed in [fetch_missed, data_missed] {
            if !missed {
                continue;
            }
            misses += 1;
            if let Some(prev) = last_miss_at {
                gap_sum += now - prev;
            }
            last_miss_at = Some(now);
            // Retire completed misses.
            while let Some(&done) = outstanding.front() {
                if done <= now {
                    outstanding.pop_front();
                } else {
                    break;
                }
            }
            if let Some(&latest_done) = outstanding.back() {
                // Overlap with the in-flight miss that completes last.
                clustered += 1;
                hidden_latency += (latest_done - now).clamp(0.0, miss_latency_cycles);
            }
            if outstanding.len() < mshrs {
                outstanding.push_back(now + miss_latency_cycles);
            }
            // With MSHRs exhausted the miss blocks: no new entry, no
            // additional overlap beyond what the in-flight tail gives.
        }
    }

    let total_latency = misses as f64 * miss_latency_cycles;
    OverlapReport {
        misses,
        mean_miss_gap_instr: if misses > 1 { gap_sum / (misses - 1) as f64 } else { f64::NAN },
        clustered_fraction: if misses == 0 { 0.0 } else { clustered as f64 / misses as f64 },
        overlap_fraction: if total_latency == 0.0 {
            0.0
        } else {
            (hidden_latency / total_latency).clamp(0.0, 0.99)
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::L2Policy;

    fn models() -> (TimingModel, AreaModel) {
        (TimingModel::paper(), AreaModel::new())
    }

    #[test]
    fn overlap_is_a_sane_fraction() {
        let (tm, am) = models();
        let cfg = MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0);
        let r = estimate_overlap(&cfg, SpecBenchmark::Gcc1, SimBudget::quick(), 4, &tm, &am);
        assert!(r.misses > 0);
        assert!((0.0..1.0).contains(&r.overlap_fraction), "{r:?}");
        assert!((0.0..=1.0).contains(&r.clustered_fraction));
        assert!(r.mean_miss_gap_instr > 0.0);
    }

    #[test]
    fn more_mshrs_never_hurt() {
        let (tm, am) = models();
        let cfg = MachineConfig::single_level(2, 50.0);
        let r1 = estimate_overlap(&cfg, SpecBenchmark::Tomcatv, SimBudget::quick(), 1, &tm, &am);
        let r8 = estimate_overlap(&cfg, SpecBenchmark::Tomcatv, SimBudget::quick(), 8, &tm, &am);
        assert!(
            r8.overlap_fraction >= r1.overlap_fraction,
            "8 MSHRs {:.3} vs 1 MSHR {:.3}",
            r8.overlap_fraction,
            r1.overlap_fraction
        );
    }

    #[test]
    fn one_mshr_still_overlaps_with_the_inflight_miss() {
        // Even a single MSHR lets a subsequent miss overlap with the one
        // in flight (hit-under-miss style accounting), so streaming
        // workloads show nonzero overlap.
        let (tm, am) = models();
        let cfg = MachineConfig::single_level(2, 50.0);
        let r = estimate_overlap(&cfg, SpecBenchmark::Tomcatv, SimBudget::quick(), 1, &tm, &am);
        assert!(r.overlap_fraction > 0.1, "streaming misses should cluster: {r:?}");
    }

    #[test]
    fn streaming_overlaps_more_than_sparse_misses() {
        // tomcatv misses constantly (dense, overlappable); espresso's
        // rare misses are isolated.
        let (tm, am) = models();
        let cfg = MachineConfig::single_level(32, 50.0);
        let dense = estimate_overlap(&cfg, SpecBenchmark::Tomcatv, SimBudget::quick(), 8, &tm, &am);
        let sparse =
            estimate_overlap(&cfg, SpecBenchmark::Espresso, SimBudget::quick(), 8, &tm, &am);
        assert!(
            dense.overlap_fraction > sparse.overlap_fraction,
            "tomcatv {:.3} vs espresso {:.3}",
            dense.overlap_fraction,
            sparse.overlap_fraction
        );
        assert!(dense.mean_miss_gap_instr < sparse.mean_miss_gap_instr);
    }

    #[test]
    #[should_panic(expected = "MSHR")]
    fn rejects_zero_mshrs() {
        let (tm, am) = models();
        let cfg = MachineConfig::single_level(8, 50.0);
        let _ = estimate_overlap(&cfg, SpecBenchmark::Li, SimBudget::quick(), 0, &tm, &am);
    }
}
