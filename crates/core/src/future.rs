//! The paper's §10 future-work extensions: multicycle (pipelined)
//! first-level caches and non-blocking loads.
//!
//! The baseline model assumes the L1 cache sets the processor cycle and
//! that every miss blocks. §10 conjectures:
//!
//! 1. **Multicycle L1** — if the datapath, not the L1, sets the cycle
//!    time, large L1s stop taxing every instruction, which "would reduce
//!    the effectiveness of two-level on-chip caching in baseline
//!    configurations";
//! 2. **Non-blocking loads** — overlapping miss latency with execution
//!    "may increase the benefits of a two-level on-chip caching
//!    organization".
//!
//! [`FutureWorkModel`] parameterises both effects on top of the §2.5
//! equations so the conjectures can be tested; see the `future` exhibit
//! of the `repro` harness and the `future_work` example.

use crate::machine::MachineTiming;
use serde::{Deserialize, Serialize};
use tlc_cache::HierarchyStats;

/// Parameters of the extended execution-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FutureWorkModel {
    /// Fixed datapath cycle time in ns. The processor runs at
    /// `max(datapath, what the pipelined L1 can sustain per stage)`;
    /// the L1 *latency* becomes `ceil(l1_cycle / datapath)` cycles.
    /// `None` restores the baseline "L1 sets the cycle" assumption.
    pub datapath_cycle_ns: Option<f64>,
    /// Fraction of data references whose consumer stalls for the full L1
    /// latency (load-use dependencies). Only meaningful with a multicycle
    /// L1; typical values 0.2–0.4.
    pub load_use_fraction: f64,
    /// Fraction of miss latency hidden by non-blocking execution
    /// (memory-level parallelism), applied to both L2-hit and off-chip
    /// penalties. 0 = blocking (baseline).
    pub miss_overlap: f64,
}

impl FutureWorkModel {
    /// The baseline §2.5 model (single-cycle L1, blocking misses).
    pub fn baseline() -> Self {
        FutureWorkModel { datapath_cycle_ns: None, load_use_fraction: 0.0, miss_overlap: 0.0 }
    }

    /// Multicycle pipelined L1 with the given datapath cycle and
    /// load-use stall fraction.
    pub fn multicycle(datapath_cycle_ns: f64, load_use_fraction: f64) -> Self {
        FutureWorkModel {
            datapath_cycle_ns: Some(datapath_cycle_ns),
            load_use_fraction,
            miss_overlap: 0.0,
        }
    }

    /// Adds non-blocking miss overlap (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `overlap` is not in `[0, 1)`.
    pub fn with_miss_overlap(mut self, overlap: f64) -> Self {
        assert!((0.0..1.0).contains(&overlap), "overlap must be in [0,1)");
        self.miss_overlap = overlap;
        self
    }
}

impl Default for FutureWorkModel {
    fn default() -> Self {
        Self::baseline()
    }
}

/// TPI (ns) under the extended model. With
/// [`FutureWorkModel::baseline`] this reproduces
/// [`crate::tpi::tpi_ns`] exactly.
///
/// # Panics
///
/// Panics if `stats.instructions` is zero.
pub fn tpi_extended(stats: &HierarchyStats, t: &MachineTiming, model: &FutureWorkModel) -> f64 {
    assert!(stats.instructions > 0, "TPI undefined for an empty run");
    let n = stats.instructions as f64;

    // Effective processor cycle and per-instruction base cost.
    let (proc_cycle, base_per_instr) = match model.datapath_cycle_ns {
        None => (t.l1_cycle_ns, t.l1_cycle_ns / t.issue_factor),
        Some(datapath) => {
            // The L1 is pipelined: the core cycles at the datapath rate,
            // the L1 takes `lat` cycles, and only load-use dependences
            // feel the extra latency.
            let lat = (t.l1_cycle_ns / datapath).ceil().max(1.0);
            let dpi = stats.data_refs as f64 / n;
            let stall = model.load_use_fraction * (lat - 1.0) * dpi * datapath;
            (datapath, datapath / t.issue_factor + stall)
        }
    };

    // Level penalties, re-rounded against the effective cycle.
    let round_up = |ns: f64| (ns / proc_cycle).ceil() * proc_cycle;
    let k = t.refill_transfers as f64;
    let (hit_penalty, miss_penalty) = if t.l2_cycles > 0 {
        let l2 = round_up(t.l2_raw_cycle_ns);
        (k * l2 + proc_cycle, round_up(t.offchip_rounded_ns) + (k + 1.0) * l2 + proc_cycle)
    } else {
        (0.0, round_up(t.offchip_rounded_ns) + proc_cycle)
    };
    let visible = 1.0 - model.miss_overlap;

    let total = n * base_per_instr
        + stats.l2_hits as f64 * hit_penalty * visible
        + stats.l2_misses as f64 * miss_penalty * visible;
    total / n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpi;

    fn timing(l1: f64, l2_cycles: u32, offchip: f64) -> MachineTiming {
        MachineTiming {
            l1_cycle_ns: l1,
            l1_access_ns: l1 * 0.9,
            l2_raw_cycle_ns: if l2_cycles > 0 { l2_cycles as f64 * l1 * 0.9 } else { 0.0 },
            l2_raw_access_ns: 0.0,
            l2_cycles,
            offchip_rounded_ns: offchip,
            area_rbe: 1.0,
            issue_factor: 1.0,
            refill_transfers: 2,
        }
    }

    fn stats(instr: u64, data: u64, l2_hits: u64, l2_misses: u64) -> HierarchyStats {
        HierarchyStats {
            instructions: instr,
            data_refs: data,
            l2_hits,
            l2_misses,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_matches_section_2_5_model() {
        let t = timing(3.0, 2, 51.0);
        let s = stats(1000, 300, 40, 10);
        let a = tpi::tpi_ns(&s, &t);
        let b = tpi_extended(&s, &t, &FutureWorkModel::baseline());
        assert!((a - b).abs() < 1e-9, "baseline {b} vs §2.5 {a}");
    }

    #[test]
    fn multicycle_decouples_cycle_from_l1_size() {
        // A huge, slow L1 (5ns) on a 2.5ns datapath: the base cost per
        // instruction drops from 5ns toward 2.5ns (+ load-use stalls).
        let t = timing(5.0, 0, 50.0);
        let s = stats(1000, 300, 0, 0);
        let base = tpi_extended(&s, &t, &FutureWorkModel::baseline());
        let multi = tpi_extended(&s, &t, &FutureWorkModel::multicycle(2.5, 0.3));
        assert!((base - 5.0).abs() < 1e-9);
        // 2.5 + 0.3 * (2-1) * 0.3 * 2.5 = 2.725
        assert!((multi - 2.725).abs() < 1e-9, "multicycle TPI {multi}");
    }

    #[test]
    fn multicycle_shrinks_the_big_l1_tax_conjecture_one() {
        // §10 conjecture 1: with a fixed datapath cycle, growing the L1
        // no longer slows every instruction, so the *relative* TPI gap
        // between a small-L1 and a big-L1 machine shrinks.
        let small = timing(2.8, 0, 50.0);
        let big = timing(5.0, 0, 50.0);
        // Equal miss behaviour for isolation.
        let s = stats(1000, 300, 0, 20);
        let gap_baseline = tpi_extended(&s, &big, &FutureWorkModel::baseline())
            / tpi_extended(&s, &small, &FutureWorkModel::baseline());
        let m = FutureWorkModel::multicycle(2.5, 0.3);
        let gap_multi = tpi_extended(&s, &big, &m) / tpi_extended(&s, &small, &m);
        assert!(
            gap_multi < gap_baseline,
            "multicycle should shrink the big-L1 penalty: {gap_multi:.3} vs {gap_baseline:.3}"
        );
    }

    #[test]
    fn overlap_hides_miss_latency() {
        let t = timing(3.0, 2, 51.0);
        let s = stats(1000, 300, 40, 10);
        let blocking = tpi_extended(&s, &t, &FutureWorkModel::baseline());
        let nb = tpi_extended(&s, &t, &FutureWorkModel::baseline().with_miss_overlap(0.5));
        assert!(nb < blocking);
        // Exactly half the memory-stall component disappears.
        let stall_blocking = blocking - 3.0;
        let stall_nb = nb - 3.0;
        assert!((stall_nb - stall_blocking / 2.0).abs() < 1e-9);
    }

    #[test]
    fn overlap_favours_l2_hits_over_offchip_conjecture_two() {
        // §10 conjecture 2: with non-blocking overlap, a system whose
        // misses are mostly cheap L2 hits keeps more of its advantage
        // over one that goes off-chip — in absolute terms both shrink,
        // but the two-level system's TPI stays strictly better and the
        // TPI *difference per hidden nanosecond* favours it.
        let t2 = timing(3.0, 2, 51.0); // two-level
        let t1 = timing(3.0, 0, 51.0); // single-level
        let s2 = stats(1000, 300, 40, 10); // most misses caught by L2
        let s1 = stats(1000, 300, 0, 50); // all go off-chip
        for overlap in [0.0, 0.3, 0.6] {
            let m = FutureWorkModel::baseline().with_miss_overlap(overlap);
            assert!(
                tpi_extended(&s2, &t2, &m) < tpi_extended(&s1, &t1, &m),
                "two-level must stay ahead at overlap {overlap}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn rejects_full_overlap() {
        let _ = FutureWorkModel::baseline().with_miss_overlap(1.0);
    }
}
