//! Evaluating one machine configuration on one workload.
//!
//! [`evaluate`] runs the four-step recipe of §2: simulate the cache
//! hierarchy on the workload's reference stream, derive cycle times from
//! the timing model, price the configuration with the area model, and
//! combine everything into TPI — producing one [`DesignPoint`], the
//! (area, TPI) dot of the paper's figures.

use crate::machine::{L2Policy, MachineConfig, MachineTiming};
use crate::tpi;
use serde::{Deserialize, Serialize};
use tlc_area::AreaModel;
use tlc_cache::filter::{replay_conventional, replay_exclusive, replay_single};
use tlc_cache::{HierarchyStats, L1FrontEnd, MemorySystem, MissStream, SystemKind};
use tlc_timing::TimingModel;
use tlc_trace::arena::{ChunkView, FLAG_NONE, FLAG_STORE};
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::{Addr, InstructionSource, MemRef, TraceArena, Workload};

/// How long to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimBudget {
    /// Instructions measured (after warm-up).
    pub instructions: u64,
    /// Instructions run before statistics are reset. The paper's traces
    /// were long enough (30M–2.9B references) to amortise cold-start
    /// misses; our scaled-down runs discard the transient explicitly.
    pub warmup_instructions: u64,
}

impl SimBudget {
    /// The default budget used by the figure harness: 1.5M measured
    /// instructions after a 500K-instruction warm-up (enough to populate
    /// a 256KB L2 before measurement starts).
    pub fn standard() -> Self {
        SimBudget { instructions: 1_500_000, warmup_instructions: 500_000 }
    }

    /// A small budget for tests and quick exploration.
    pub fn quick() -> Self {
        SimBudget { instructions: 120_000, warmup_instructions: 30_000 }
    }

    /// A budget scaled by `factor` (≥ 1 recommended for final runs).
    pub fn scaled(self, factor: f64) -> Self {
        SimBudget {
            instructions: (self.instructions as f64 * factor) as u64,
            warmup_instructions: (self.warmup_instructions as f64 * factor) as u64,
        }
    }
}

/// One (configuration, workload) evaluation: the paper's figures plot
/// `area_rbe` on the x-axis and `tpi_ns` on the y-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The evaluated configuration.
    pub machine: MachineConfig,
    /// The paper-style "x:y" label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Total on-chip cache area, rbe.
    pub area_rbe: f64,
    /// Processor cycle time, ns.
    pub l1_cycle_ns: f64,
    /// L2 cycle in processor cycles (0 for single-level).
    pub l2_cycles: u32,
    /// Average time per instruction, ns.
    pub tpi_ns: f64,
    /// Implied cycles per instruction.
    pub cpi: f64,
    /// Raw simulation counters.
    pub stats: HierarchyStats,
}

/// Validated L1 cache configuration of a machine (direct-mapped, the
/// paper's pseudo-random fill), as a typed error instead of a panic —
/// the audit's config sampler probes geometry edges (degenerate sizes,
/// lines larger than the cache) that enumeration never produces.
///
/// # Errors
///
/// Returns the [`ConfigError`](tlc_cache::ConfigError) describing the
/// invalid geometry.
pub fn l1_config(cfg: &MachineConfig) -> Result<tlc_cache::CacheConfig, tlc_cache::ConfigError> {
    use tlc_cache::{Associativity, CacheConfig, ReplacementKind};
    CacheConfig::new(
        cfg.l1_size_bytes,
        cfg.line_bytes,
        Associativity::Direct,
        ReplacementKind::PseudoRandom,
    )
}

/// Validated L2 cache configuration of a machine (`None` when
/// single-level), with the same typed-error contract as [`l1_config`].
///
/// # Errors
///
/// Returns the [`ConfigError`](tlc_cache::ConfigError) describing the
/// invalid geometry.
pub fn l2_config(
    cfg: &MachineConfig,
) -> Result<Option<tlc_cache::CacheConfig>, tlc_cache::ConfigError> {
    use tlc_cache::{Associativity, CacheConfig};
    match cfg.l2 {
        None => Ok(None),
        Some(spec) => {
            let assoc = if spec.ways == 1 {
                Associativity::Direct
            } else {
                Associativity::SetAssoc(spec.ways)
            };
            CacheConfig::new(spec.size_bytes, cfg.line_bytes, assoc, spec.repl).map(Some)
        }
    }
}

/// As [`build_system_kind`], returning the configuration error instead
/// of panicking — the entry point for callers that sample the config
/// space's edges (notably `tlc audit`).
///
/// # Errors
///
/// Returns the [`ConfigError`](tlc_cache::ConfigError) of the first
/// invalid level.
pub fn try_build_system_kind(cfg: &MachineConfig) -> Result<SystemKind, tlc_cache::ConfigError> {
    let l1 = l1_config(cfg)?;
    Ok(match l2_config(cfg)? {
        None => SystemKind::single(l1),
        Some(l2) => match cfg.l2.expect("l2_config returned Some").policy {
            L2Policy::Conventional => SystemKind::conventional(l1, l2),
            L2Policy::Exclusive => SystemKind::exclusive(l1, l2),
        },
    })
}

/// Builds the simulated memory system for a configuration as the
/// closed-set [`SystemKind`] enum (the sweep fast path: `match` dispatch
/// instead of a vtable in the per-instruction loop).
///
/// # Panics
///
/// Panics if the configuration's sizes are invalid (not powers of two,
/// etc.) — configuration enumeration only produces valid ones. Callers
/// that sample arbitrary geometries use [`try_build_system_kind`].
pub fn build_system_kind(cfg: &MachineConfig) -> SystemKind {
    try_build_system_kind(cfg).expect("valid L1/L2 configuration")
}

/// Builds the simulated memory system for a configuration behind the
/// open [`MemorySystem`] trait (the extension surface; sweeps use
/// [`build_system_kind`]).
///
/// # Panics
///
/// As [`build_system_kind`].
pub fn build_system(cfg: &MachineConfig) -> Box<dyn MemorySystem + Send> {
    Box::new(build_system_kind(cfg))
}

/// Drives up to `limit` instructions from `source` through `sys`,
/// returning how many were actually executed (less than `limit` only
/// when the source exhausted).
fn drive<S: InstructionSource + ?Sized, M: MemorySystem + ?Sized>(
    sys: &mut M,
    source: &mut S,
    limit: u64,
) -> u64 {
    for n in 0..limit {
        match source.next_instruction_opt() {
            Some(rec) => {
                sys.access_instruction(&rec);
            }
            None => return n,
        }
    }
    limit
}

/// Runs `workload` through the system for `budget`, returning measured
/// statistics (warm-up excluded).
pub fn simulate(cfg: &MachineConfig, workload: &mut Workload, budget: SimBudget) -> HierarchyStats {
    simulate_source(cfg, workload, budget)
}

/// As [`simulate`], for any [`InstructionSource`] — including recorded
/// traces ([`tlc_trace::ReplaySource`]).
///
/// # Early exhaustion
///
/// A finite source may end before the budget is spent. The contract:
/// warm-up consumes up to `budget.warmup_instructions`; statistics are
/// then reset and measurement covers whatever remains, up to
/// `budget.instructions`. A source that dies during warm-up therefore
/// yields all-zero statistics — callers distinguish a short measurement
/// from a full one by checking `stats.instructions` against the budget.
pub fn simulate_source<S: InstructionSource + ?Sized>(
    cfg: &MachineConfig,
    source: &mut S,
    budget: SimBudget,
) -> HierarchyStats {
    let mut sys = build_system_kind(cfg);
    simulate_source_on(&mut sys, source, budget)
}

/// The warm-up/measure protocol of [`simulate_source`] on an externally
/// built system: drive up to `budget.warmup_instructions`, reset
/// statistics, drive up to `budget.instructions`, return the measured
/// counters. This is how alternative [`MemorySystem`] implementations —
/// the audit's naive reference oracle in particular — are run under the
/// exact contract the engines share.
pub fn simulate_source_on<S: InstructionSource + ?Sized, M: MemorySystem + ?Sized>(
    sys: &mut M,
    source: &mut S,
    budget: SimBudget,
) -> HierarchyStats {
    drive(sys, source, budget.warmup_instructions);
    sys.reset_stats();
    drive(sys, source, budget.instructions);
    *sys.stats()
}

/// The pre-arena reference engine: drives the stream through the open
/// [`MemorySystem`] trait object from [`build_system`], exactly as every
/// evaluation did before the sweep engine existed — one virtual call per
/// reference, regenerating the stream per invocation. Kept (rather than
/// deleted) so the sweep benchmark has a stable baseline to measure the
/// arena path against and so equivalence tests can pin the new engines
/// to the old one bit-for-bit.
pub fn simulate_source_dyn<S: InstructionSource + ?Sized>(
    cfg: &MachineConfig,
    source: &mut S,
    budget: SimBudget,
) -> HierarchyStats {
    let mut sys = build_system(cfg);
    drive(&mut *sys, source, budget.warmup_instructions);
    sys.reset_stats();
    drive(&mut *sys, source, budget.instructions);
    *sys.stats()
}

/// As [`evaluate`], through the pre-arena reference engine
/// ([`simulate_source_dyn`]). Bit-identical results, vtable-dispatch
/// speed; used as the sweep benchmark's baseline.
pub fn evaluate_dyn(
    cfg: &MachineConfig,
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
) -> DesignPoint {
    let mut workload = benchmark.workload();
    let stats = simulate_source_dyn(cfg, &mut workload, budget);
    design_point(cfg, benchmark.name().to_string(), stats, timing, area)
}

/// Replays one arena chunk's packed columns through the system. This is
/// the sweep's innermost loop: slice iteration, static dispatch (the
/// caller monomorphizes it per concrete system type), no RNG, no
/// allocation. Reference order matches
/// [`MemorySystem::access_instruction`] exactly (fetch, then data), so
/// statistics are bit-identical to the generic path.
#[inline]
fn replay_chunk<M: MemorySystem>(sys: &mut M, chunk: ChunkView<'_>, start: usize, end: usize) {
    let fetch = &chunk.fetch[start..end];
    let data = &chunk.data_addr[start..end];
    let flags = &chunk.flags[start..end];
    for i in 0..fetch.len() {
        sys.access(MemRef::fetch(Addr::new(fetch[i])));
        let flag = flags[i];
        if flag != FLAG_NONE {
            let addr = Addr::new(data[i]);
            sys.access(if flag == FLAG_STORE { MemRef::store(addr) } else { MemRef::load(addr) });
        }
    }
}

/// The chunk walk of [`simulate_arena`], monomorphized per concrete
/// system type so every `access` call in the replay loop is a direct,
/// inlinable call.
fn replay_arena_on<M: MemorySystem>(sys: &mut M, arena: &TraceArena, budget: SimBudget) {
    let warm = budget.warmup_instructions;
    let total = warm.saturating_add(budget.instructions);
    let mut pos = 0u64; // arena-global index of the next record
    for chunk in arena.chunks() {
        if pos >= total {
            break;
        }
        let take = (chunk.len() as u64).min(total - pos);
        if pos >= warm {
            // Entirely within measurement (reset already happened).
            replay_chunk(sys, chunk, 0, take as usize);
        } else if pos + take <= warm {
            // Entirely within warm-up.
            replay_chunk(sys, chunk, 0, take as usize);
            if pos + take == warm {
                sys.reset_stats();
            }
        } else {
            // The warm-up boundary falls inside this chunk: split there.
            let split = (warm - pos) as usize;
            replay_chunk(sys, chunk, 0, split);
            sys.reset_stats();
            replay_chunk(sys, chunk, split, take as usize);
        }
        pos += take;
    }
    if pos <= warm {
        // Arena exhausted inside warm-up (or zero measurement budget):
        // nothing was measured.
        sys.reset_stats();
    }
}

/// As [`simulate_source`], replaying a captured [`TraceArena`] through
/// the devirtualized fast path: the system kind is matched **once** and
/// the whole replay runs on the concrete hierarchy type.
///
/// The same early-exhaustion contract applies when the arena holds fewer
/// than `budget.warmup_instructions + budget.instructions` records.
pub fn simulate_arena(
    cfg: &MachineConfig,
    arena: &TraceArena,
    budget: SimBudget,
) -> HierarchyStats {
    let mut sys = build_system_kind(cfg);
    match &mut sys {
        SystemKind::Single(s) => replay_arena_on(s, arena, budget),
        SystemKind::Conventional(s) => replay_arena_on(s, arena, budget),
        SystemKind::Exclusive(s) => replay_arena_on(s, arena, budget),
    }
    *sys.stats()
}

/// Captures the miss/victim event stream of one L1 front-end (shared by
/// every configuration with this `l1_size_bytes`/`line_bytes`) from a
/// trace arena: the arena is replayed through split direct-mapped L1
/// caches **once**, and only the events the L2 would observe are kept.
///
/// Mirrors [`simulate_arena`]'s warm-up split and early-exhaustion
/// contract, so [`simulate_filtered`] on the result is bit-identical to
/// [`simulate_arena`] on the full arena. Returns `None` when the packed
/// event stream outgrows `byte_limit` (checked between chunks; an L1 so
/// small that most references miss could otherwise approach the arena's
/// own footprint) — callers fall back to the arena engine.
pub fn capture_miss_stream(
    l1_size_bytes: u64,
    line_bytes: u64,
    arena: &TraceArena,
    budget: SimBudget,
    byte_limit: usize,
) -> Option<MissStream> {
    try_capture_miss_stream(l1_size_bytes, line_bytes, arena, budget, byte_limit)
        .expect("valid L1 configuration")
}

/// As [`capture_miss_stream`], returning the configuration error instead
/// of panicking on an invalid L1 geometry (the audit sampler's path).
///
/// # Errors
///
/// Returns the [`ConfigError`](tlc_cache::ConfigError) describing the
/// invalid L1 geometry.
pub fn try_capture_miss_stream(
    l1_size_bytes: u64,
    line_bytes: u64,
    arena: &TraceArena,
    budget: SimBudget,
    byte_limit: usize,
) -> Result<Option<MissStream>, tlc_cache::ConfigError> {
    use tlc_cache::{Associativity, CacheConfig, ReplacementKind};
    let l1 = CacheConfig::new(
        l1_size_bytes,
        line_bytes,
        Associativity::Direct,
        ReplacementKind::PseudoRandom,
    )?;
    let mut fe = L1FrontEnd::new(l1);
    let warm = budget.warmup_instructions;
    let total = warm.saturating_add(budget.instructions);
    let mut pos = 0u64;
    for chunk in arena.chunks() {
        if pos >= total {
            break;
        }
        if fe.event_bytes() > byte_limit {
            return Ok(None);
        }
        let take = (chunk.len() as u64).min(total - pos);
        if pos >= warm {
            replay_chunk(&mut fe, chunk, 0, take as usize);
        } else if pos + take <= warm {
            replay_chunk(&mut fe, chunk, 0, take as usize);
            if pos + take == warm {
                fe.reset_stats();
            }
        } else {
            let split = (warm - pos) as usize;
            replay_chunk(&mut fe, chunk, 0, split);
            fe.reset_stats();
            replay_chunk(&mut fe, chunk, split, take as usize);
        }
        pos += take;
    }
    if pos <= warm {
        fe.reset_stats();
    }
    if fe.event_bytes() > byte_limit {
        return Ok(None);
    }
    Ok(Some(fe.finish(arena.name())))
}

/// Stitched-warming capture for a sampled sweep: **one** L1 front-end
/// replays every representative [`PhaseSlice`](crate::sampling::PhaseSlice)
/// in trace order, and [`L1FrontEnd::take_stream`] cuts a [`MissStream`]
/// segment per slice — so slice `k` starts from the (stale) L1 contents
/// slice `k-1` left behind, and each slice's warm-up prefix refreshes
/// that state before its counters reset at the slice's own warm-up
/// boundary. Feeding the segments to [`simulate_family_segments`]
/// extends the stitching to the L2 side.
///
/// Returns `None` when the packed segments collectively outgrow
/// `byte_limit` (checked between chunks) — callers fall back to cold
/// per-slice replay.
///
/// # Panics
///
/// Panics on an invalid L1 geometry.
pub fn capture_miss_stream_segments(
    l1_size_bytes: u64,
    line_bytes: u64,
    slices: &[crate::sampling::PhaseSlice],
    byte_limit: usize,
) -> Option<Vec<MissStream>> {
    use tlc_cache::{Associativity, CacheConfig, ReplacementKind};
    let l1 = CacheConfig::new(
        l1_size_bytes,
        line_bytes,
        Associativity::Direct,
        ReplacementKind::PseudoRandom,
    )
    .expect("valid L1 configuration");
    let mut fe = L1FrontEnd::new(l1);
    let mut segments = Vec::with_capacity(slices.len());
    let mut banked = 0usize;
    for slice in slices {
        let warm = slice.budget.warmup_instructions;
        let total = warm.saturating_add(slice.budget.instructions);
        let mut pos = 0u64;
        for chunk in slice.arena.chunks() {
            if pos >= total {
                break;
            }
            if banked + fe.event_bytes() > byte_limit {
                return None;
            }
            let take = (chunk.len() as u64).min(total - pos);
            if pos >= warm {
                replay_chunk(&mut fe, chunk, 0, take as usize);
            } else if pos + take <= warm {
                replay_chunk(&mut fe, chunk, 0, take as usize);
                if pos + take == warm {
                    fe.reset_stats();
                }
            } else {
                let split = (warm - pos) as usize;
                replay_chunk(&mut fe, chunk, 0, split);
                fe.reset_stats();
                replay_chunk(&mut fe, chunk, split, take as usize);
            }
            pos += take;
        }
        if pos <= warm {
            fe.reset_stats();
        }
        let seg = fe.take_stream(slice.arena.name());
        banked += seg.bytes();
        segments.push(seg);
    }
    if banked > byte_limit {
        return None;
    }
    Some(segments)
}

/// As [`simulate_arena`], replaying a captured [`MissStream`] through the
/// configuration's L2 back-end only — the miss-stream filtering fast
/// path. Bit-identical to the arena engine when `stream` was captured
/// with the same budget from the same arena.
///
/// # Panics
///
/// Panics if `cfg`'s L1 size or line size differs from the stream's (the
/// stream encodes one specific L1 front-end).
pub fn simulate_filtered(cfg: &MachineConfig, stream: &MissStream) -> HierarchyStats {
    try_simulate_filtered(cfg, stream).expect("valid L2 configuration")
}

/// As [`simulate_filtered`], returning the configuration error instead
/// of panicking on an invalid L2 geometry (the audit sampler's path).
/// The L1/line mismatch panics remain — those are contract violations,
/// not sampleable geometry.
///
/// # Errors
///
/// Returns the [`ConfigError`](tlc_cache::ConfigError) describing the
/// invalid L2 geometry.
///
/// # Panics
///
/// Panics if `cfg`'s L1 size or line size differs from the stream's.
pub fn try_simulate_filtered(
    cfg: &MachineConfig,
    stream: &MissStream,
) -> Result<HierarchyStats, tlc_cache::ConfigError> {
    assert_eq!(cfg.l1_size_bytes, stream.l1_size_bytes(), "stream captured for a different L1");
    assert_eq!(cfg.line_bytes, stream.line_bytes(), "stream captured for a different line size");
    Ok(match l2_config(cfg)? {
        None => replay_single(stream),
        Some(l2) => match cfg.l2.expect("l2_config returned Some").policy {
            L2Policy::Conventional => replay_conventional(l2, stream),
            L2Policy::Exclusive => replay_exclusive(l2, stream),
        },
    })
}

/// As [`evaluate_arena`], through the miss-stream filtering engine
/// ([`simulate_filtered`]): the L1 cost was paid once at capture, so this
/// touches only the L1-miss events. Bit-identical to [`evaluate_arena`]
/// when `stream` came from [`capture_miss_stream`] over the same arena
/// and budget.
pub fn evaluate_filtered(
    cfg: &MachineConfig,
    stream: &MissStream,
    timing: &TimingModel,
    area: &AreaModel,
) -> DesignPoint {
    let stats = simulate_filtered(cfg, stream);
    design_point(cfg, stream.name().to_string(), stats, timing, area)
}

/// As [`simulate_filtered`] over a whole *family* of configurations in
/// one pass: every member must share the stream's L1 and line size plus
/// one L2 policy and associativity (or all be single-level), and the
/// event stream is decoded exactly once for all of them
/// ([`tlc_cache::filter_family`]). Returns one statistics record per
/// member of `cfgs`, in input order, each bit-identical to
/// [`simulate_filtered`] on that member.
///
/// Members that differ only in off-chip latency or L1 cell kind — or
/// that repeat an L2 size outright — share one simulated L2 internally:
/// the family is deduplicated by L2 capacity and the statistics fanned
/// back out.
///
/// # Panics
///
/// Panics if `cfgs` mix L2 policies, associativities, L1 sizes, or line
/// sizes, or if any member's L1 geometry differs from the stream's.
pub fn simulate_family(cfgs: &[MachineConfig], stream: &MissStream) -> Vec<HierarchyStats> {
    use tlc_cache::filter_family::{
        replay_conventional_family, replay_exclusive_family, replay_single_family,
    };
    use tlc_cache::{Associativity, CacheConfig};
    if cfgs.is_empty() {
        return Vec::new();
    }
    for cfg in cfgs {
        assert_eq!(cfg.l1_size_bytes, stream.l1_size_bytes(), "stream captured for a different L1");
        assert_eq!(
            cfg.line_bytes,
            stream.line_bytes(),
            "stream captured for a different line size"
        );
    }
    let family = cfgs[0].l2.map(|s| (s.policy, s.ways, s.repl));
    assert!(
        cfgs.iter().all(|c| c.l2.map(|s| (s.policy, s.ways, s.repl)) == family),
        "a family shares one L2 policy, associativity, and replacement"
    );
    let Some((policy, ways, repl)) = family else {
        return replay_single_family(stream, cfgs.len());
    };
    // Deduplicate by L2 capacity; duplicate sizes share one simulation.
    let mut sizes: Vec<u64> = Vec::new();
    let mut size_of: Vec<usize> = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let sz = cfg.l2.expect("two-level family").size_bytes;
        let k = sizes.iter().position(|&s| s == sz).unwrap_or_else(|| {
            sizes.push(sz);
            sizes.len() - 1
        });
        size_of.push(k);
    }
    let assoc = if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
    let l2_cfgs: Vec<CacheConfig> = sizes
        .iter()
        .map(|&sz| {
            CacheConfig::new(sz, stream.line_bytes(), assoc, repl).expect("valid L2 configuration")
        })
        .collect();
    let per_size = match policy {
        L2Policy::Conventional => replay_conventional_family(&l2_cfgs, stream),
        L2Policy::Exclusive => replay_exclusive_family(&l2_cfgs, stream),
    };
    size_of.into_iter().map(|k| per_size[k]).collect()
}

/// As [`evaluate_filtered`] over a whole family in one pass
/// ([`simulate_family`]): one event decode serves every member, and each
/// member still gets its own timing/area derivation. Returns one
/// [`DesignPoint`] per member of `cfgs`, in input order.
pub fn evaluate_family(
    cfgs: &[MachineConfig],
    stream: &MissStream,
    timing: &TimingModel,
    area: &AreaModel,
) -> Vec<DesignPoint> {
    let stats = simulate_family(cfgs, stream);
    cfgs.iter()
        .zip(stats)
        .map(|(cfg, s)| design_point(cfg, stream.name().to_string(), s, timing, area))
        .collect()
}

/// As [`simulate_family`] over a *stitched* sequence of segments (one
/// per representative phase slice, from
/// [`capture_miss_stream_segments`]): the family's L2 state — slot
/// arrays, per-member LFSRs, exclusive fill-dirty mirrors — is built
/// once and persists across segments, so each segment's warm-up prefix
/// refreshes stale state instead of filling a cold cache. Returns
/// per-segment, per-member statistics (`out[segment][member]`, members
/// in `cfgs` input order); a lone segment reproduces [`simulate_family`]
/// bit-for-bit.
///
/// # Panics
///
/// As [`simulate_family`], plus if `segments` is empty or segments
/// disagree on L1 geometry.
pub fn simulate_family_segments(
    cfgs: &[MachineConfig],
    segments: &[MissStream],
) -> Vec<Vec<HierarchyStats>> {
    use tlc_cache::filter_family::{
        replay_conventional_family_segments, replay_exclusive_family_segments,
        replay_single_family_segments,
    };
    use tlc_cache::{Associativity, CacheConfig};
    assert!(!segments.is_empty(), "need at least one segment");
    if cfgs.is_empty() {
        return vec![Vec::new(); segments.len()];
    }
    for cfg in cfgs {
        assert_eq!(
            cfg.l1_size_bytes,
            segments[0].l1_size_bytes(),
            "segments captured for a different L1"
        );
        assert_eq!(
            cfg.line_bytes,
            segments[0].line_bytes(),
            "segments captured for a different line size"
        );
    }
    let family = cfgs[0].l2.map(|s| (s.policy, s.ways, s.repl));
    assert!(
        cfgs.iter().all(|c| c.l2.map(|s| (s.policy, s.ways, s.repl)) == family),
        "a family shares one L2 policy, associativity, and replacement"
    );
    let Some((policy, ways, repl)) = family else {
        return replay_single_family_segments(segments, cfgs.len());
    };
    // Deduplicate by L2 capacity; duplicate sizes share one simulation.
    let mut sizes: Vec<u64> = Vec::new();
    let mut size_of: Vec<usize> = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let sz = cfg.l2.expect("two-level family").size_bytes;
        let k = sizes.iter().position(|&s| s == sz).unwrap_or_else(|| {
            sizes.push(sz);
            sizes.len() - 1
        });
        size_of.push(k);
    }
    let assoc = if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
    let l2_cfgs: Vec<CacheConfig> = sizes
        .iter()
        .map(|&sz| {
            CacheConfig::new(sz, segments[0].line_bytes(), assoc, repl)
                .expect("valid L2 configuration")
        })
        .collect();
    let per_size = match policy {
        L2Policy::Conventional => replay_conventional_family_segments(&l2_cfgs, segments),
        L2Policy::Exclusive => replay_exclusive_family_segments(&l2_cfgs, segments),
    };
    per_size.into_iter().map(|row| size_of.iter().map(|&k| row[k]).collect()).collect()
}

/// Whether the analytical predictor's ε contract covers `cfg`:
/// single-level and direct-mapped members are always in (their counts
/// are exact), and set-associative conventional L2s are in only under
/// LRU or pseudo-random replacement — the reuse-distance model has no
/// closed form for FIFO, tree-PLRU, or SRRIP, and exclusive hierarchies
/// are outside it entirely. The sweep runner routes uncovered
/// configurations to the bit-exact family engine instead.
pub fn config_is_predictable(cfg: &MachineConfig) -> bool {
    use tlc_cache::ReplacementKind;
    match cfg.l2 {
        None => true,
        Some(s) => {
            s.policy == L2Policy::Conventional
                && (s.ways == 1
                    || matches!(s.repl, ReplacementKind::Lru | ReplacementKind::PseudoRandom))
        }
    }
}

/// As [`simulate_family`] with the replay removed: one reuse-distance
/// profiling pass over the stream ([`tlc_cache::ReuseProfile`]) answers
/// every member analytically, in time independent of the event count.
/// Unlike a family, members may mix associativities, sizes, and
/// single-level points freely — the only constraint is that every
/// two-level member uses the conventional policy (exclusive hierarchies
/// are outside the model; see [`tlc_cache::predict`]).
///
/// Results are approximate, not bit-identical: single-level members are
/// exact, direct-mapped members have exact hit/miss counts, and
/// set-associative members carry the documented ε contract
/// ([`tlc_cache::MISS_RATIO_EPSILON`]) against [`simulate_family`]
/// ground truth.
///
/// The ε contract covers LRU and pseudo-random set-associative members
/// only (see [`config_is_predictable`]); FIFO, tree-PLRU, and SRRIP
/// points are outside the reuse-distance model and must be replayed
/// exactly (the sweep runner routes them to the family engine).
///
/// # Panics
///
/// Panics if any member's L1 geometry differs from the stream's, uses
/// the exclusive L2 policy, or uses a set-associative replacement policy
/// outside the model.
pub fn simulate_predicted(cfgs: &[MachineConfig], stream: &MissStream) -> Vec<HierarchyStats> {
    use tlc_cache::ReuseProfile;
    if cfgs.is_empty() {
        return Vec::new();
    }
    for cfg in cfgs {
        assert_eq!(cfg.l1_size_bytes, stream.l1_size_bytes(), "stream captured for a different L1");
        assert_eq!(
            cfg.line_bytes,
            stream.line_bytes(),
            "stream captured for a different line size"
        );
        assert!(
            config_is_predictable(cfg),
            "{} hierarchies are outside the prediction model",
            cfg.l2.map_or_else(
                || "these".to_string(),
                |s| {
                    if s.policy == L2Policy::Exclusive {
                        "exclusive".to_string()
                    } else {
                        format!("{} set-associative", s.repl)
                    }
                }
            )
        );
    }
    // Direct-mapped members get exact nested tag-array counts: name
    // every 1-way set count at capture (deduplicated, ascending).
    let mut dm_sets: Vec<u64> = cfgs
        .iter()
        .filter_map(|c| c.l2.filter(|s| s.ways == 1).map(|s| s.size_bytes / c.line_bytes))
        .collect();
    dm_sets.sort_unstable();
    dm_sets.dedup();
    let profile = ReuseProfile::capture(stream, &dm_sets);
    cfgs.iter()
        .map(|cfg| {
            tlc_obs::obs_count!(tlc_obs::Counter::PredictConfigsPredicted, 1);
            let _t = tlc_obs::HistTimer::start(tlc_obs::Hist::PredictSolveNs);
            match l2_config(cfg).expect("valid L2 configuration") {
                None => profile.predict_single(stream),
                Some(l2) => profile.predict_conventional(stream, &l2),
            }
        })
        .collect()
}

/// As [`evaluate_family`] through the analytical predictor
/// ([`simulate_predicted`]): one profiling pass serves every member, and
/// each member still gets its own timing/area derivation. Returns one
/// [`DesignPoint`] per member of `cfgs`, in input order, under the
/// predictor's ε contract rather than bit-identity.
pub fn evaluate_predicted(
    cfgs: &[MachineConfig],
    stream: &MissStream,
    timing: &TimingModel,
    area: &AreaModel,
) -> Vec<DesignPoint> {
    let stats = simulate_predicted(cfgs, stream);
    cfgs.iter()
        .zip(stats)
        .map(|(cfg, s)| design_point(cfg, stream.name().to_string(), s, timing, area))
        .collect()
}

fn design_point(
    cfg: &MachineConfig,
    workload: String,
    stats: HierarchyStats,
    timing: &TimingModel,
    area: &AreaModel,
) -> DesignPoint {
    // Every engine funnels finished evaluations through here, so this
    // is the one completion tick the progress ticker and the manifest's
    // `runner.configs_completed` invariant rely on. (Sampled sweeps tick
    // once per phase through the per-phase engine runs, then build the
    // recombined point via `design_point_untracked` — the manifest
    // invariant there is configs × phases.)
    tlc_obs::obs_count!(tlc_obs::Counter::RunnerConfigsCompleted, 1);
    design_point_untracked(cfg, workload, stats, timing, area)
}

/// Derives a [`DesignPoint`] from already-aggregated statistics without
/// registering a completion tick — the recombination step of a sampled
/// sweep, whose per-phase engine runs already ticked.
pub(crate) fn design_point_untracked(
    cfg: &MachineConfig,
    workload: String,
    stats: HierarchyStats,
    timing: &TimingModel,
    area: &AreaModel,
) -> DesignPoint {
    let t = MachineTiming::derive(cfg, timing, area);
    let tpi = tpi::tpi_ns(&stats, &t);
    DesignPoint {
        machine: *cfg,
        label: cfg.label(),
        workload,
        area_rbe: t.area_rbe,
        l1_cycle_ns: t.l1_cycle_ns,
        l2_cycles: t.l2_cycles,
        tpi_ns: tpi,
        cpi: tpi::cpi(tpi, &t),
        stats,
    }
}

/// Full §2 pipeline for one (configuration, benchmark) pair, generating
/// the benchmark's stream on the fly. Sweeps over many configurations
/// should capture the stream once ([`capture_benchmark`]) and use
/// [`evaluate_arena`] instead.
pub fn evaluate(
    cfg: &MachineConfig,
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
) -> DesignPoint {
    let mut workload = benchmark.workload();
    let stats = simulate(cfg, &mut workload, budget);
    design_point(cfg, benchmark.name().to_string(), stats, timing, area)
}

/// Captures exactly one `budget`'s worth (warm-up + measured) of
/// `benchmark`'s stream into a shareable [`TraceArena`].
pub fn capture_benchmark(benchmark: SpecBenchmark, budget: SimBudget) -> TraceArena {
    let len = budget.warmup_instructions.saturating_add(budget.instructions);
    TraceArena::capture(&mut benchmark.workload(), len)
}

/// As [`evaluate`], replaying a captured arena through the fast path.
/// Produces a bit-identical [`DesignPoint`] when `arena` was captured
/// from the benchmark's stream with at least a `budget`'s worth of
/// instructions (see [`capture_benchmark`]).
pub fn evaluate_arena(
    cfg: &MachineConfig,
    arena: &TraceArena,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
) -> DesignPoint {
    let stats = simulate_arena(cfg, arena, budget);
    design_point(cfg, arena.name().to_string(), stats, timing, area)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlc_area::CellKind;

    fn models() -> (TimingModel, AreaModel) {
        (TimingModel::paper(), AreaModel::new())
    }

    #[test]
    fn evaluate_produces_consistent_point() {
        let (tm, am) = models();
        let cfg = MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0);
        let p = evaluate(&cfg, SpecBenchmark::Espresso, SimBudget::quick(), &tm, &am);
        assert_eq!(p.label, "4:32");
        assert_eq!(p.workload, "espresso");
        assert_eq!(p.stats.instructions, SimBudget::quick().instructions);
        assert!(p.tpi_ns >= p.l1_cycle_ns, "TPI can never beat one cycle per instruction");
        assert!(p.cpi >= 1.0);
        assert!(p.area_rbe > 0.0);
    }

    #[test]
    fn bigger_l2_absorbs_more_misses() {
        let (tm, am) = models();
        let small = evaluate(
            &MachineConfig::two_level(1, 8, 4, L2Policy::Conventional, 50.0),
            SpecBenchmark::Gcc1,
            SimBudget::quick(),
            &tm,
            &am,
        );
        let large = evaluate(
            &MachineConfig::two_level(1, 128, 4, L2Policy::Conventional, 50.0),
            SpecBenchmark::Gcc1,
            SimBudget::quick(),
            &tm,
            &am,
        );
        assert!(
            large.stats.global_miss_rate() < small.stats.global_miss_rate(),
            "128KB L2 should stop more off-chip traffic than 8KB"
        );
    }

    #[test]
    fn exclusive_beats_conventional_at_tight_capacity() {
        // With L2 only 2× the total L1 capacity the conventional hierarchy
        // is mostly duplicate content; exclusive should go off-chip less.
        let (tm, am) = models();
        let conv = evaluate(
            &MachineConfig::two_level(4, 16, 1, L2Policy::Conventional, 50.0),
            SpecBenchmark::Gcc1,
            SimBudget::quick(),
            &tm,
            &am,
        );
        let excl = evaluate(
            &MachineConfig::two_level(4, 16, 1, L2Policy::Exclusive, 50.0),
            SpecBenchmark::Gcc1,
            SimBudget::quick(),
            &tm,
            &am,
        );
        assert!(
            excl.stats.l2_misses < conv.stats.l2_misses,
            "exclusive {} vs conventional {} off-chip misses",
            excl.stats.l2_misses,
            conv.stats.l2_misses
        );
        assert!(excl.tpi_ns < conv.tpi_ns);
    }

    #[test]
    fn dual_ported_halves_base_tpi_on_low_miss_workload() {
        let (tm, am) = models();
        let base = MachineConfig::single_level(32, 50.0);
        let dual = base.with_l1_cell(CellKind::DualPorted);
        let pb = evaluate(&base, SpecBenchmark::Espresso, SimBudget::quick(), &tm, &am);
        let pd = evaluate(&dual, SpecBenchmark::Espresso, SimBudget::quick(), &tm, &am);
        // espresso has a tiny miss rate at 32KB, so doubling the issue
        // rate should cut TPI nearly in half (modulo slower dual cycle).
        assert!(pd.tpi_ns < pb.tpi_ns * 0.75, "dual {} vs base {}", pd.tpi_ns, pb.tpi_ns);
        let ratio = pd.area_rbe / pb.area_rbe;
        assert!((1.8..=2.3).contains(&ratio), "area ratio {ratio}");
    }

    #[test]
    fn deterministic_across_calls() {
        let (tm, am) = models();
        let cfg = MachineConfig::two_level(2, 16, 4, L2Policy::Exclusive, 50.0);
        let a = evaluate(&cfg, SpecBenchmark::Li, SimBudget::quick(), &tm, &am);
        let b = evaluate(&cfg, SpecBenchmark::Li, SimBudget::quick(), &tm, &am);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.tpi_ns, b.tpi_ns);
    }

    #[test]
    fn budget_scaling() {
        let b = SimBudget::standard().scaled(0.5);
        assert_eq!(b.instructions, 750_000);
        assert_eq!(b.warmup_instructions, 250_000);
    }

    #[test]
    fn arena_evaluation_is_bit_identical_to_generator_evaluation() {
        let (tm, am) = models();
        let budget = SimBudget { instructions: 20_000, warmup_instructions: 5_000 };
        let arena = capture_benchmark(SpecBenchmark::Espresso, budget);
        for cfg in [
            MachineConfig::single_level(8, 50.0),
            MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(4, 32, 4, L2Policy::Exclusive, 50.0),
        ] {
            let generated = evaluate(&cfg, SpecBenchmark::Espresso, budget, &tm, &am);
            let replayed = evaluate_arena(&cfg, &arena, budget, &tm, &am);
            assert_eq!(generated, replayed, "{}", cfg.label());
            let legacy = evaluate_dyn(&cfg, SpecBenchmark::Espresso, budget, &tm, &am);
            assert_eq!(legacy, replayed, "legacy engine diverged for {}", cfg.label());
        }
    }

    #[test]
    fn filtered_evaluation_is_bit_identical_to_arena_evaluation() {
        let (tm, am) = models();
        let budget = SimBudget { instructions: 20_000, warmup_instructions: 5_000 };
        let arena = capture_benchmark(SpecBenchmark::Gcc1, budget);
        let stream = capture_miss_stream(4 * 1024, 16, &arena, budget, usize::MAX)
            .expect("unbounded capture succeeds");
        assert!(!stream.is_empty(), "gcc1 misses in a 4KB L1");
        let total = budget.warmup_instructions + budget.instructions;
        assert!(stream.len() < total / 2, "events must be a small fraction of the references");
        for cfg in [
            MachineConfig::single_level(4, 50.0),
            MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(4, 32, 4, L2Policy::Exclusive, 50.0),
            MachineConfig::two_level(4, 8, 1, L2Policy::Exclusive, 200.0),
        ] {
            let via_arena = evaluate_arena(&cfg, &arena, budget, &tm, &am);
            let via_stream = evaluate_filtered(&cfg, &stream, &tm, &am);
            assert_eq!(via_arena, via_stream, "{}", cfg.label());
        }
    }

    #[test]
    fn family_evaluation_is_bit_identical_to_filtered_evaluation() {
        let (tm, am) = models();
        let budget = SimBudget { instructions: 20_000, warmup_instructions: 5_000 };
        let arena = capture_benchmark(SpecBenchmark::Gcc1, budget);
        let stream = capture_miss_stream(4 * 1024, 16, &arena, budget, usize::MAX).unwrap();
        for policy in [L2Policy::Conventional, L2Policy::Exclusive] {
            for ways in [1, 4] {
                // Duplicate sizes and mixed off-chip latencies exercise
                // the in-family deduplication.
                let cfgs: Vec<MachineConfig> = [(8, 50.0), (32, 50.0), (8, 200.0), (64, 50.0)]
                    .map(|(l2_kb, ns)| MachineConfig::two_level(4, l2_kb, ways, policy, ns))
                    .to_vec();
                let family = evaluate_family(&cfgs, &stream, &tm, &am);
                for (cfg, got) in cfgs.iter().zip(&family) {
                    let want = evaluate_filtered(cfg, &stream, &tm, &am);
                    assert_eq!(*got, want, "{policy:?} ways={ways} {}", cfg.label());
                }
            }
        }
        // A single-level family shares the L1-only statistics.
        let singles = [MachineConfig::single_level(4, 50.0), MachineConfig::single_level(4, 200.0)];
        let family = evaluate_family(&singles, &stream, &tm, &am);
        for (cfg, got) in singles.iter().zip(&family) {
            assert_eq!(*got, evaluate_filtered(cfg, &stream, &tm, &am), "{}", cfg.label());
        }
    }

    #[test]
    fn predicted_evaluation_matches_filtered_within_epsilon() {
        use tlc_cache::{miss_ratio_error, MISS_RATIO_EPSILON};
        let (tm, am) = models();
        let budget = SimBudget { instructions: 20_000, warmup_instructions: 5_000 };
        let arena = capture_benchmark(SpecBenchmark::Gcc1, budget);
        let stream = capture_miss_stream(4 * 1024, 16, &arena, budget, usize::MAX).unwrap();
        // One heterogeneous batch: single-level, direct-mapped, and
        // mixed set-associative members — no family constraint.
        let cfgs = vec![
            MachineConfig::single_level(4, 50.0),
            MachineConfig::two_level(4, 32, 1, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(4, 8, 1, L2Policy::Conventional, 200.0),
            MachineConfig::two_level(4, 64, 2, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0),
        ];
        let predicted = evaluate_predicted(&cfgs, &stream, &tm, &am);
        assert_eq!(predicted.len(), cfgs.len());
        for (cfg, got) in cfgs.iter().zip(&predicted) {
            let truth = evaluate_filtered(cfg, &stream, &tm, &am);
            assert_eq!(got.label, truth.label);
            assert_eq!(got.workload, truth.workload);
            assert_eq!(got.area_rbe, truth.area_rbe);
            match cfg.l2 {
                None => assert_eq!(got.stats, truth.stats, "single-level must be exact"),
                Some(spec) if spec.ways == 1 => assert_eq!(
                    (got.stats.l2_hits, got.stats.l2_misses),
                    (truth.stats.l2_hits, truth.stats.l2_misses),
                    "direct-mapped hit/miss counts must be exact for {}",
                    cfg.label()
                ),
                Some(_) => {
                    let err = miss_ratio_error(&got.stats, &truth.stats);
                    assert!(
                        err <= MISS_RATIO_EPSILON,
                        "{}: miss-ratio error {err:.4} > ε",
                        cfg.label()
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside the prediction model")]
    fn predicted_rejects_exclusive() {
        let budget = SimBudget { instructions: 2_000, warmup_instructions: 500 };
        let arena = capture_benchmark(SpecBenchmark::Li, budget);
        let stream = capture_miss_stream(1024, 16, &arena, budget, usize::MAX).unwrap();
        let cfgs = [MachineConfig::two_level(1, 8, 4, L2Policy::Exclusive, 50.0)];
        let _ = simulate_predicted(&cfgs, &stream);
    }

    #[test]
    #[should_panic(expected = "one L2 policy")]
    fn family_rejects_mixed_policies() {
        let budget = SimBudget { instructions: 2_000, warmup_instructions: 500 };
        let arena = capture_benchmark(SpecBenchmark::Li, budget);
        let stream = capture_miss_stream(1024, 16, &arena, budget, usize::MAX).unwrap();
        let cfgs = [
            MachineConfig::two_level(1, 8, 4, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(1, 8, 4, L2Policy::Exclusive, 50.0),
        ];
        let _ = simulate_family(&cfgs, &stream);
    }

    #[test]
    #[should_panic(expected = "different L1")]
    fn filtered_rejects_mismatched_l1() {
        let budget = SimBudget { instructions: 2_000, warmup_instructions: 500 };
        let arena = capture_benchmark(SpecBenchmark::Li, budget);
        let stream = capture_miss_stream(1024, 16, &arena, budget, usize::MAX).unwrap();
        let cfg = MachineConfig::single_level(8, 50.0);
        let _ = simulate_filtered(&cfg, &stream);
    }

    #[test]
    fn arena_warmup_split_is_chunking_invariant() {
        use tlc_trace::TraceArena;
        // Chunk sizes chosen so the warm-up boundary lands mid-chunk,
        // exactly on a chunk edge, and inside the first chunk.
        let budget = SimBudget { instructions: 7_000, warmup_instructions: 3_000 };
        let cfg = MachineConfig::two_level(2, 16, 4, L2Policy::Exclusive, 50.0);
        let reference = {
            let mut w = SpecBenchmark::Li.workload();
            simulate_source(&cfg, &mut w, budget)
        };
        for chunk_len in [64usize, 1000, 3000, 10_000, 16_384] {
            let arena =
                TraceArena::capture_chunked(&mut SpecBenchmark::Li.workload(), 10_000, chunk_len);
            let stats = simulate_arena(&cfg, &arena, budget);
            assert_eq!(stats, reference, "chunk_len {chunk_len}");
        }
    }

    /// The early-exhaustion contract of [`simulate_source`] /
    /// [`simulate_arena`]: a short source measures what remains after
    /// warm-up; a source that dies during warm-up measures nothing.
    #[test]
    fn early_exhaustion_contract() {
        use tlc_trace::{ReplaySource, TraceArena};
        let cfg = MachineConfig::two_level(1, 8, 4, L2Policy::Conventional, 50.0);
        let budget = SimBudget { instructions: 5_000, warmup_instructions: 1_000 };
        let records = SpecBenchmark::Gcc1.workload().take_instructions(3_000);

        // 3000 records against a 1000+5000 budget: 2000 measured.
        let mut short = ReplaySource::new("short", records.clone());
        let stats = simulate_source(&cfg, &mut short, budget);
        assert_eq!(stats.instructions, 2_000);
        let arena = TraceArena::capture_chunked(
            &mut ReplaySource::new("short", records.clone()),
            u64::MAX,
            700,
        );
        assert_eq!(simulate_arena(&cfg, &arena, budget), stats);

        // 500 records exhaust inside the 1000-instruction warm-up:
        // nothing measured, all-zero statistics.
        let mut tiny = ReplaySource::new("tiny", records[..500].to_vec());
        let stats = simulate_source(&cfg, &mut tiny, budget);
        assert_eq!(stats, HierarchyStats::default());
        let arena =
            TraceArena::capture(&mut ReplaySource::new("tiny", records[..500].to_vec()), u64::MAX);
        assert_eq!(simulate_arena(&cfg, &arena, budget), HierarchyStats::default());
    }

    #[test]
    fn build_system_kind_matches_trait_object_builder() {
        for cfg in [
            MachineConfig::single_level(4, 50.0),
            MachineConfig::two_level(2, 16, 4, L2Policy::Conventional, 50.0),
            MachineConfig::two_level(2, 16, 4, L2Policy::Exclusive, 200.0),
        ] {
            let kind = build_system_kind(&cfg);
            let boxed = build_system(&cfg);
            assert_eq!(kind.describe(), boxed.describe(), "{}", cfg.label());
        }
    }
}
