//! Evaluating one machine configuration on one workload.
//!
//! [`evaluate`] runs the four-step recipe of §2: simulate the cache
//! hierarchy on the workload's reference stream, derive cycle times from
//! the timing model, price the configuration with the area model, and
//! combine everything into TPI — producing one [`DesignPoint`], the
//! (area, TPI) dot of the paper's figures.

use crate::machine::{L2Policy, MachineConfig, MachineTiming};
use crate::tpi;
use serde::{Deserialize, Serialize};
use tlc_area::AreaModel;
use tlc_cache::{
    Associativity, CacheConfig, ConventionalTwoLevel, ExclusiveTwoLevel, HierarchyStats,
    MemorySystem, SingleLevel,
};
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::{InstructionSource, Workload};

/// How long to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimBudget {
    /// Instructions measured (after warm-up).
    pub instructions: u64,
    /// Instructions run before statistics are reset. The paper's traces
    /// were long enough (30M–2.9B references) to amortise cold-start
    /// misses; our scaled-down runs discard the transient explicitly.
    pub warmup_instructions: u64,
}

impl SimBudget {
    /// The default budget used by the figure harness: 1.5M measured
    /// instructions after a 500K-instruction warm-up (enough to populate
    /// a 256KB L2 before measurement starts).
    pub fn standard() -> Self {
        SimBudget { instructions: 1_500_000, warmup_instructions: 500_000 }
    }

    /// A small budget for tests and quick exploration.
    pub fn quick() -> Self {
        SimBudget { instructions: 120_000, warmup_instructions: 30_000 }
    }

    /// A budget scaled by `factor` (≥ 1 recommended for final runs).
    pub fn scaled(self, factor: f64) -> Self {
        SimBudget {
            instructions: (self.instructions as f64 * factor) as u64,
            warmup_instructions: (self.warmup_instructions as f64 * factor) as u64,
        }
    }
}

/// One (configuration, workload) evaluation: the paper's figures plot
/// `area_rbe` on the x-axis and `tpi_ns` on the y-axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The evaluated configuration.
    pub machine: MachineConfig,
    /// The paper-style "x:y" label.
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Total on-chip cache area, rbe.
    pub area_rbe: f64,
    /// Processor cycle time, ns.
    pub l1_cycle_ns: f64,
    /// L2 cycle in processor cycles (0 for single-level).
    pub l2_cycles: u32,
    /// Average time per instruction, ns.
    pub tpi_ns: f64,
    /// Implied cycles per instruction.
    pub cpi: f64,
    /// Raw simulation counters.
    pub stats: HierarchyStats,
}

/// Builds the simulated memory system for a configuration.
///
/// # Panics
///
/// Panics if the configuration's sizes are invalid (not powers of two,
/// etc.) — configuration enumeration only produces valid ones.
pub fn build_system(cfg: &MachineConfig) -> Box<dyn MemorySystem + Send> {
    use tlc_cache::ReplacementKind;
    let l1 = CacheConfig::new(
        cfg.l1_size_bytes,
        cfg.line_bytes,
        Associativity::Direct,
        ReplacementKind::PseudoRandom,
    )
    .expect("valid L1 configuration");
    match cfg.l2 {
        None => Box::new(SingleLevel::new(l1)),
        Some(spec) => {
            let assoc =
                if spec.ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(spec.ways) };
            let l2 = CacheConfig::new(
                spec.size_bytes,
                cfg.line_bytes,
                assoc,
                ReplacementKind::PseudoRandom,
            )
            .expect("valid L2 configuration");
            match spec.policy {
                L2Policy::Conventional => Box::new(ConventionalTwoLevel::new(l1, l2)),
                L2Policy::Exclusive => Box::new(ExclusiveTwoLevel::new(l1, l2)),
            }
        }
    }
}

/// Runs `workload` through the system for `budget`, returning measured
/// statistics (warm-up excluded).
pub fn simulate(cfg: &MachineConfig, workload: &mut Workload, budget: SimBudget) -> HierarchyStats {
    simulate_source(cfg, workload, budget)
}

/// As [`simulate`], for any [`InstructionSource`] — including recorded
/// traces ([`tlc_trace::ReplaySource`]). If the source exhausts early the
/// statistics cover whatever was measured up to that point (check
/// `stats.instructions` against the budget).
pub fn simulate_source<S: InstructionSource + ?Sized>(
    cfg: &MachineConfig,
    source: &mut S,
    budget: SimBudget,
) -> HierarchyStats {
    let mut sys = build_system(cfg);
    for _ in 0..budget.warmup_instructions {
        match source.next_instruction_opt() {
            Some(rec) => {
                sys.access_instruction(&rec);
            }
            None => break,
        }
    }
    sys.reset_stats();
    for _ in 0..budget.instructions {
        match source.next_instruction_opt() {
            Some(rec) => {
                sys.access_instruction(&rec);
            }
            None => break,
        }
    }
    *sys.stats()
}

/// Full §2 pipeline for one (configuration, benchmark) pair.
pub fn evaluate(
    cfg: &MachineConfig,
    benchmark: SpecBenchmark,
    budget: SimBudget,
    timing: &TimingModel,
    area: &AreaModel,
) -> DesignPoint {
    let mut workload = benchmark.workload();
    let stats = simulate(cfg, &mut workload, budget);
    let t = MachineTiming::derive(cfg, timing, area);
    let tpi = tpi::tpi_ns(&stats, &t);
    DesignPoint {
        machine: *cfg,
        label: cfg.label(),
        workload: benchmark.name().to_string(),
        area_rbe: t.area_rbe,
        l1_cycle_ns: t.l1_cycle_ns,
        l2_cycles: t.l2_cycles,
        tpi_ns: tpi,
        cpi: tpi::cpi(tpi, &t),
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlc_area::CellKind;

    fn models() -> (TimingModel, AreaModel) {
        (TimingModel::paper(), AreaModel::new())
    }

    #[test]
    fn evaluate_produces_consistent_point() {
        let (tm, am) = models();
        let cfg = MachineConfig::two_level(4, 32, 4, L2Policy::Conventional, 50.0);
        let p = evaluate(&cfg, SpecBenchmark::Espresso, SimBudget::quick(), &tm, &am);
        assert_eq!(p.label, "4:32");
        assert_eq!(p.workload, "espresso");
        assert_eq!(p.stats.instructions, SimBudget::quick().instructions);
        assert!(p.tpi_ns >= p.l1_cycle_ns, "TPI can never beat one cycle per instruction");
        assert!(p.cpi >= 1.0);
        assert!(p.area_rbe > 0.0);
    }

    #[test]
    fn bigger_l2_absorbs_more_misses() {
        let (tm, am) = models();
        let small = evaluate(
            &MachineConfig::two_level(1, 8, 4, L2Policy::Conventional, 50.0),
            SpecBenchmark::Gcc1,
            SimBudget::quick(),
            &tm,
            &am,
        );
        let large = evaluate(
            &MachineConfig::two_level(1, 128, 4, L2Policy::Conventional, 50.0),
            SpecBenchmark::Gcc1,
            SimBudget::quick(),
            &tm,
            &am,
        );
        assert!(
            large.stats.global_miss_rate() < small.stats.global_miss_rate(),
            "128KB L2 should stop more off-chip traffic than 8KB"
        );
    }

    #[test]
    fn exclusive_beats_conventional_at_tight_capacity() {
        // With L2 only 2× the total L1 capacity the conventional hierarchy
        // is mostly duplicate content; exclusive should go off-chip less.
        let (tm, am) = models();
        let conv = evaluate(
            &MachineConfig::two_level(4, 16, 1, L2Policy::Conventional, 50.0),
            SpecBenchmark::Gcc1,
            SimBudget::quick(),
            &tm,
            &am,
        );
        let excl = evaluate(
            &MachineConfig::two_level(4, 16, 1, L2Policy::Exclusive, 50.0),
            SpecBenchmark::Gcc1,
            SimBudget::quick(),
            &tm,
            &am,
        );
        assert!(
            excl.stats.l2_misses < conv.stats.l2_misses,
            "exclusive {} vs conventional {} off-chip misses",
            excl.stats.l2_misses,
            conv.stats.l2_misses
        );
        assert!(excl.tpi_ns < conv.tpi_ns);
    }

    #[test]
    fn dual_ported_halves_base_tpi_on_low_miss_workload() {
        let (tm, am) = models();
        let base = MachineConfig::single_level(32, 50.0);
        let dual = base.with_l1_cell(CellKind::DualPorted);
        let pb = evaluate(&base, SpecBenchmark::Espresso, SimBudget::quick(), &tm, &am);
        let pd = evaluate(&dual, SpecBenchmark::Espresso, SimBudget::quick(), &tm, &am);
        // espresso has a tiny miss rate at 32KB, so doubling the issue
        // rate should cut TPI nearly in half (modulo slower dual cycle).
        assert!(pd.tpi_ns < pb.tpi_ns * 0.75, "dual {} vs base {}", pd.tpi_ns, pb.tpi_ns);
        let ratio = pd.area_rbe / pb.area_rbe;
        assert!((1.8..=2.3).contains(&ratio), "area ratio {ratio}");
    }

    #[test]
    fn deterministic_across_calls() {
        let (tm, am) = models();
        let cfg = MachineConfig::two_level(2, 16, 4, L2Policy::Exclusive, 50.0);
        let a = evaluate(&cfg, SpecBenchmark::Li, SimBudget::quick(), &tm, &am);
        let b = evaluate(&cfg, SpecBenchmark::Li, SimBudget::quick(), &tm, &am);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.tpi_ns, b.tpi_ns);
    }

    #[test]
    fn budget_scaling() {
        let b = SimBudget::standard().scaled(0.5);
        assert_eq!(b.instructions, 750_000);
        assert_eq!(b.warmup_instructions, 250_000);
    }
}
