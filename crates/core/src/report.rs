//! Text-table and CSV rendering of experiment results.
//!
//! The harness reproduces the paper's figures as aligned text tables (one
//! row per configuration, envelope configurations marked `*`) and as CSV
//! for external plotting.

use crate::envelope::{best_envelope, EnvelopePoint};
use crate::experiment::DesignPoint;
use std::fmt::Write as _;

/// Renders a figure's points as an aligned table, marking envelope
/// members with `*`.
///
/// Columns: label, area (rbe), L1 cycle (ns), L2 cycles, global miss
/// rate, TPI (ns).
pub fn points_table(title: &str, points: &[DesignPoint]) -> String {
    let env = best_envelope(&xy(points));
    let on_env: Vec<bool> = {
        let mut v = vec![false; points.len()];
        for p in &env {
            v[p.index] = true;
        }
        v
    };
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(
        out,
        "{:<3} {:>9} {:>12} {:>9} {:>5} {:>9} {:>9}",
        "", "config", "area(rbe)", "cyc(ns)", "L2cy", "missrate", "TPI(ns)"
    );
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| points[a].area_rbe.partial_cmp(&points[b].area_rbe).expect("no NaN"));
    for i in order {
        let p = &points[i];
        let _ = writeln!(
            out,
            "{:<3} {:>9} {:>12.0} {:>9.2} {:>5} {:>9.4} {:>9.2}",
            if on_env[i] { "*" } else { "" },
            p.label,
            p.area_rbe,
            p.l1_cycle_ns,
            p.l2_cycles,
            p.stats.global_miss_rate(),
            p.tpi_ns,
        );
    }
    out
}

/// Renders just the envelope (the figure's solid line), smallest area
/// first.
pub fn envelope_table(title: &str, points: &[DesignPoint]) -> String {
    let env = best_envelope(&xy(points));
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "{:>9} {:>12} {:>9}", "config", "area(rbe)", "TPI(ns)");
    for e in &env {
        let _ = writeln!(out, "{:>9} {:>12.0} {:>9.2}", points[e.index].label, e.area, e.tpi);
    }
    out
}

/// CSV rows (with header) for external plotting.
pub fn points_csv(points: &[DesignPoint]) -> String {
    let mut out = String::from(
        "workload,label,area_rbe,l1_cycle_ns,l2_cycles,l1_miss_rate,l2_local_miss_rate,global_miss_rate,tpi_ns,cpi\n",
    );
    for p in points {
        let _ = writeln!(
            out,
            "{},{},{:.1},{:.4},{},{:.6},{:.6},{:.6},{:.4},{:.4}",
            p.workload,
            p.label,
            p.area_rbe,
            p.l1_cycle_ns,
            p.l2_cycles,
            p.stats.l1_miss_rate(),
            p.stats.l2_local_miss_rate(),
            p.stats.global_miss_rate(),
            p.tpi_ns,
            p.cpi,
        );
    }
    out
}

/// The `(area, tpi)` view of a point list (what envelopes consume).
pub fn xy(points: &[DesignPoint]) -> Vec<(f64, f64)> {
    points.iter().map(|p| (p.area_rbe, p.tpi_ns)).collect()
}

/// Labels of the envelope configurations, in area order (for comparing a
/// run against the configuration lists printed in the paper's figures).
pub fn envelope_labels(points: &[DesignPoint]) -> Vec<String> {
    best_envelope(&xy(points)).iter().map(|e| points[e.index].label.clone()).collect()
}

/// Convenience: the envelope of a point list.
pub fn envelope_of(points: &[DesignPoint]) -> Vec<EnvelopePoint> {
    best_envelope(&xy(points))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::MachineConfig;
    use tlc_cache::HierarchyStats;

    fn point(label: &str, area: f64, tpi: f64) -> DesignPoint {
        DesignPoint {
            machine: MachineConfig::single_level(1, 50.0),
            label: label.to_string(),
            workload: "test".to_string(),
            area_rbe: area,
            l1_cycle_ns: 3.0,
            l2_cycles: 0,
            tpi_ns: tpi,
            cpi: tpi / 3.0,
            stats: HierarchyStats { instructions: 100, ..Default::default() },
        }
    }

    #[test]
    fn table_marks_envelope() {
        let pts =
            vec![point("1:0", 1000.0, 10.0), point("2:0", 2000.0, 12.0), point("4:0", 3000.0, 8.0)];
        let t = points_table("fig", &pts);
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines[2].starts_with('*'), "smallest point on envelope: {}", lines[2]);
        assert!(!lines[3].starts_with('*'), "dominated point marked: {}", lines[3]);
        assert!(lines[4].starts_with('*'));
    }

    #[test]
    fn envelope_table_sorted() {
        let pts =
            vec![point("4:0", 3000.0, 8.0), point("1:0", 1000.0, 10.0), point("2:0", 2000.0, 12.0)];
        let t = envelope_table("fig", &pts);
        let body: Vec<&str> = t.lines().skip(2).collect();
        assert_eq!(body.len(), 2);
        assert!(body[0].contains("1:0"));
        assert!(body[1].contains("4:0"));
        assert_eq!(envelope_labels(&pts), vec!["1:0", "4:0"]);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let pts = vec![point("1:0", 1000.0, 10.0)];
        let csv = points_csv(&pts);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("workload,label"));
        assert!(lines[1].starts_with("test,1:0,1000.0"));
    }
}
