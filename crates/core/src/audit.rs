//! `tlc audit` — randomized differential fuzzing of the sweep engines.
//!
//! The repository's soundness argument is that five engines — streaming
//! ([`simulate_source`](crate::experiment::simulate_source)), the legacy
//! trait-object path
//! ([`simulate_source_dyn`](crate::experiment::simulate_source_dyn)), the
//! devirtualized arena replay
//! ([`simulate_arena`](crate::experiment::simulate_arena)), miss-stream
//! filtering ([`simulate_filtered`](crate::experiment::simulate_filtered))
//! and the family-batched back-ends
//! ([`simulate_family`](crate::experiment::simulate_family), including the
//! direct-mapped threshold fast path) — are *bit-identical*. This module
//! stops that from being "engines agreeing with themselves": every sampled
//! case is also run through the deliberately-naive reference oracle
//! ([`tlc_cache::NaiveSystem`], [`tlc_cache::oracle`]) and the Mattson
//! stack-distance oracles ([`tlc_cache::StackDistanceProfiler`],
//! [`tlc_cache::NestedDmProfiler`]), which predict the same counters from
//! first principles. The sixth engine — the analytical predictor
//! ([`simulate_predicted`](crate::experiment::simulate_predicted)) — is
//! deliberately *not* bit-identical; it is audited against its own
//! tolerance contract instead (`predict-vs-family`,
//! [`PREDICT_AUDIT_EPSILON`]).
//!
//! [`run_audit`] samples (workload, L1/L2 geometry, fill policy,
//! replacement policy — every [`ReplacementKind`] variant — warm-up
//! split, chunk size, thread count) tuples from a seeded RNG, replays
//! each through every engine, and compares full [`HierarchyStats`]
//! bit-for-bit. On an event-level divergence it *shrinks* the witness to
//! a locally-minimal trace with [`tlc_trace::shrink::ddmin`] and writes a
//! deterministic corpus entry (`.evt` event trace + `.json` sidecar)
//! for `tests/corpus_replay.rs` to replay forever after.

use crate::experiment::{
    simulate_arena, simulate_source_dyn, simulate_source_on, try_build_system_kind,
    try_capture_miss_stream, try_simulate_filtered, SimBudget,
};
use crate::machine::{L2Policy, L2Spec, MachineConfig};
use crate::runner::try_sweep_arena_threads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use std::time::Instant;
use tlc_area::AreaModel;
use tlc_cache::oracle::{
    lru_misses, naive_replay_conventional, naive_replay_exclusive, naive_replay_single,
};
use tlc_cache::{
    DuplicationReport, HierarchyStats, MissStream, NaiveSystem, NestedDmProfiler, ReplacementKind,
    StackDistanceProfiler, SystemKind,
};
use tlc_timing::TimingModel;
use tlc_trace::shrink::ddmin;
use tlc_trace::spec::SpecBenchmark;
use tlc_trace::{EventArena, InstructionRecord, MissEvent, ReplaySource, TraceArena};

/// Schema identifier of the audit report JSON.
pub const AUDIT_REPORT_SCHEMA: &str = "tlc-audit-report/1";

/// Tolerance of the `predict-vs-family` check on the local L2 miss
/// ratio. Wider than [`tlc_cache::MISS_RATIO_EPSILON`]: the audit's
/// adversarial streams are tiny (thousands of events through a small
/// L1) and its replayed L2s use pseudo-random replacement, both of
/// which stress the predictor's LRU model far beyond the
/// benchmark-scale contract the `predict_equivalence` suite enforces.
/// The worst observed cases are fpppp's tight floating-point loops —
/// a loop slightly wider than the cache scores near zero under LRU but
/// keeps a capacity-fraction of hits under random replacement — which
/// peak just above 0.22; a genuinely broken model (distance off by one,
/// sign error in the writeback histogram) lands far beyond this bound.
pub const PREDICT_AUDIT_EPSILON: f64 = 0.25;

/// Small-sample slack of the `predict-vs-family` check: the allowed
/// miss-ratio error is [`PREDICT_AUDIT_EPSILON`] `+ NOISE / sqrt(n)`
/// where `n` is the member's replayed L2 access count. Pseudo-random
/// replacement makes the replayed hit count itself noisy — its standard
/// deviation on `n` accesses is at most `sqrt(n)/2` — so a slack of
/// `3/sqrt(n)` admits ~6σ of replacement noise on the audit's tiniest
/// streams (a 47-access fpppp loop has been observed at 0.28) while
/// contributing under 0.01 at the ≥100k-access benchmark scale.
pub const PREDICT_AUDIT_NOISE: f64 = 3.0;

/// Schema identifier of a corpus entry's JSON sidecar.
pub const CORPUS_ENTRY_SCHEMA: &str = "tlc-audit-corpus/1";

/// How [`run_audit`] samples and how long it runs.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditOptions {
    /// RNG seed; the whole audit is a pure function of it (plus the
    /// binary), so a seed in a bug report reproduces the run exactly.
    pub seed: u64,
    /// Wall-clock time box in seconds; sampling continues until both
    /// this and `min_cases` are satisfied. `0.0` means "run exactly
    /// `min_cases`".
    pub seconds: f64,
    /// Minimum sampled cases regardless of the time box.
    pub min_cases: u64,
    /// Hard cap on sampled cases (bounds the time box loop).
    pub max_cases: u64,
    /// Where shrunk divergence witnesses are written (pairs of
    /// `<name>.evt` / `<name>.json`). `None` disables corpus output.
    pub corpus_dir: Option<PathBuf>,
}

impl Default for AuditOptions {
    fn default() -> Self {
        AuditOptions {
            seed: 0xA0D1_7000,
            seconds: 0.0,
            min_cases: 200,
            max_cases: 1_000_000,
            corpus_dir: None,
        }
    }
}

/// Per-check tallies in the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckCounter {
    /// Check name (e.g. `"arena-vs-oracle"`).
    pub name: String,
    /// Times the check ran.
    pub runs: u64,
    /// Times it found a divergence.
    pub divergences: u64,
}

/// One observed divergence, as recorded in the report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditDivergence {
    /// Index of the sampled case that exposed it.
    pub case_index: u64,
    /// Which check flagged it.
    pub check: String,
    /// The machine configuration's `x:y` label.
    pub config: String,
    /// The sampled workload's name.
    pub workload: String,
    /// Human-readable expected-vs-got description.
    pub detail: String,
    /// File stem of the shrunk corpus entry, when one was written.
    pub corpus_entry: Option<String>,
}

/// The manifest-style JSON report of one audit run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Always [`AUDIT_REPORT_SCHEMA`].
    pub schema: String,
    /// The seed the run is reproducible from.
    pub seed: u64,
    /// The requested time box, seconds.
    pub requested_seconds: f64,
    /// Wall-clock time actually spent, seconds.
    pub elapsed_seconds: f64,
    /// Sampled (config, workload) tuples.
    pub cases: u64,
    /// The engines every case is replayed through.
    pub engines: Vec<String>,
    /// Per-check run/divergence tallies.
    pub checks: Vec<CheckCounter>,
    /// Every divergence observed (empty on a clean run).
    pub divergences: Vec<AuditDivergence>,
}

impl AuditReport {
    /// Whether the run found no divergence at all.
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }

    /// Pretty-printed JSON (the `tlc audit --json` output).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("audit report serializes")
    }
}

/// JSON sidecar of one corpus entry; `tests/corpus_replay.rs` reads this
/// to rebuild the [`MissStream`] around the `.evt` event trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusEntryMeta {
    /// Always [`CORPUS_ENTRY_SCHEMA`].
    pub schema: String,
    /// Check that produced the witness.
    pub check: String,
    /// L1 size the stream was captured through, bytes.
    pub l1_size_bytes: u64,
    /// Line size, bytes.
    pub line_bytes: u64,
    /// Warm-up boundary within the shrunk trace (always 0: shrinking
    /// folds the warm-up into the measured window).
    pub warmup_events: u64,
    /// The L2 the divergence manifested on (`None` = single-level).
    pub l2: Option<L2Spec>,
    /// Issue-style explanation: what diverged, and — for entries kept
    /// with `expect_divergence` — why it is benign.
    pub note: String,
    /// `false` for regression entries (the replay test asserts all
    /// engines agree on them, pinning a fixed bug); `true` for
    /// documented-benign divergences (the test asserts the divergence
    /// still reproduces exactly as documented).
    pub expect_divergence: bool,
}

/// One sampled tuple: everything a case needs to be replayed everywhere.
#[derive(Debug)]
struct SampledCase {
    cfg: MachineConfig,
    benchmark: SpecBenchmark,
    budget: SimBudget,
    /// Instructions actually recorded (≤ warm-up + measured: sampling
    /// occasionally starves the budget to exercise early exhaustion).
    records: u64,
    chunk_len: usize,
    threads: usize,
}

fn sample_case(rng: &mut StdRng) -> SampledCase {
    let benchmark = SpecBenchmark::ALL[rng.gen_range(0..SpecBenchmark::ALL.len())];
    let line_bytes = [16u64, 32][rng.gen_range(0..2usize)];
    let l1_size_bytes = [1u64, 2, 4][rng.gen_range(0..3usize)] * 1024;
    let l2 = if rng.gen_bool(0.2) {
        None
    } else {
        Some(L2Spec {
            size_bytes: l1_size_bytes * [2u64, 4, 8, 16][rng.gen_range(0..4usize)],
            ways: [1u32, 2, 4, 8][rng.gen_range(0..4usize)],
            policy: if rng.gen_bool(0.5) { L2Policy::Conventional } else { L2Policy::Exclusive },
            repl: ReplacementKind::ALL[rng.gen_range(0..ReplacementKind::ALL.len())],
        })
    };
    let cfg = MachineConfig {
        l1_size_bytes,
        l1_cell: tlc_area::CellKind::SinglePorted,
        l2,
        offchip_ns: 50.0,
        line_bytes,
    };
    let instructions = rng.gen_range(2_000u64..10_000);
    let warmup_instructions = match rng.gen_range(0..4) {
        0 => 0,
        1 => instructions / 4,
        2 => instructions / 2,
        _ => instructions,
    };
    let total = warmup_instructions + instructions;
    // 1 in 8 cases starves the budget so every engine must exercise its
    // early-exhaustion contract — including exhaustion inside warm-up.
    let records = if rng.gen_bool(0.125) { rng.gen_range(0..total.max(1)) } else { total };
    SampledCase {
        cfg,
        benchmark,
        budget: SimBudget { instructions, warmup_instructions },
        records,
        chunk_len: [57usize, 301, 1024, 1 << 14][rng.gen_range(0..4usize)],
        threads: rng.gen_range(1usize..4),
    }
}

/// Book-keeping for check tallies and divergences.
struct Ledger {
    checks: Vec<CheckCounter>,
    divergences: Vec<AuditDivergence>,
}

impl Ledger {
    fn new() -> Self {
        Ledger { checks: Vec::new(), divergences: Vec::new() }
    }

    fn tally(&mut self, name: &str, diverged: bool) {
        match self.checks.iter_mut().find(|c| c.name == name) {
            Some(c) => {
                c.runs += 1;
                c.divergences += diverged as u64;
            }
            None => self.checks.push(CheckCounter {
                name: name.to_string(),
                runs: 1,
                divergences: diverged as u64,
            }),
        }
    }

    fn record(
        &mut self,
        case_index: u64,
        check: &str,
        case: &SampledCase,
        detail: String,
        corpus_entry: Option<String>,
    ) {
        self.divergences.push(AuditDivergence {
            case_index,
            check: check.to_string(),
            config: case.cfg.label(),
            workload: case.benchmark.name().to_string(),
            detail,
            corpus_entry,
        });
    }
}

fn record_stream(case: &SampledCase) -> Vec<InstructionRecord> {
    case.benchmark.workload().take_instructions(case.records as usize)
}

fn replay_source(case: &SampledCase, records: &[InstructionRecord]) -> ReplaySource {
    ReplaySource::new(case.benchmark.name(), records.to_vec())
}

/// Replays the shrunk candidate through the engine and naive back-ends,
/// reporting whether they still disagree — the `ddmin` predicate.
fn event_paths_diverge(events: &[MissEvent], case: &SampledCase) -> bool {
    let mut arena = EventArena::new();
    for e in events {
        arena.push(*e);
    }
    let stream = MissStream::from_parts(
        "shrink",
        arena,
        0,
        HierarchyStats::default(),
        case.cfg.l1_size_bytes,
        case.cfg.line_bytes,
    );
    engine_vs_naive_on_stream(&case.cfg, &stream).is_some()
}

/// Runs the scalar engine back-end and the naive event oracle on one
/// stream; `Some(detail)` on disagreement.
/// Replays one corpus entry's event trace through the scalar filtered
/// engine and the naive event-level oracle, returning the divergence
/// detail if they disagree (`None` = the engines agree).
///
/// `tests/corpus_replay.rs` drives this over every `.evt`/`.json` pair
/// in `tests/corpus/`: entries with `expect_divergence: false` pin a
/// fixed bug (must agree forever), entries with `true` document a
/// benign divergence (must keep reproducing exactly as noted).
pub fn replay_corpus_entry(meta: &CorpusEntryMeta, events: EventArena) -> Option<String> {
    let stream = MissStream::from_parts(
        "corpus",
        events,
        meta.warmup_events,
        HierarchyStats::default(),
        meta.l1_size_bytes,
        meta.line_bytes,
    );
    let cfg = MachineConfig {
        l1_size_bytes: meta.l1_size_bytes,
        l1_cell: tlc_area::CellKind::SinglePorted,
        l2: meta.l2,
        offchip_ns: 50.0,
        line_bytes: meta.line_bytes,
    };
    engine_vs_naive_on_stream(&cfg, &stream)
}

fn engine_vs_naive_on_stream(cfg: &MachineConfig, stream: &MissStream) -> Option<String> {
    let engine = try_simulate_filtered(cfg, stream).ok()?;
    let naive = match cfg.l2 {
        None => naive_replay_single(stream),
        Some(spec) => match spec.policy {
            L2Policy::Conventional => {
                naive_replay_conventional(spec.size_bytes, spec.ways, spec.repl, stream)
            }
            L2Policy::Exclusive => {
                naive_replay_exclusive(spec.size_bytes, spec.ways, spec.repl, stream)
            }
        },
    };
    (engine != naive).then(|| format!("engine {engine:?} != naive {naive:?}"))
}

/// Shrinks an event-level divergence and writes the corpus pair,
/// returning the entry's file stem. Deterministic: `ddmin`'s candidate
/// order is fixed, so the same divergence always shrinks to the same
/// bytes.
fn shrink_and_archive(
    case: &SampledCase,
    case_index: u64,
    check: &str,
    stream: &MissStream,
    opts: &AuditOptions,
) -> Option<String> {
    let events: Vec<MissEvent> = stream.events().collect();
    if !event_paths_diverge(&events, case) {
        // The disagreement needs the warm-up boundary (or L1-side state)
        // to reproduce; archive nothing rather than a non-failing trace.
        return None;
    }
    let minimal = ddmin(&events, |c| event_paths_diverge(c, case));
    let dir = opts.corpus_dir.as_ref()?;
    let stem = format!("s{:016x}-c{case_index}-{check}", opts.seed);
    let mut arena = EventArena::new();
    for e in &minimal {
        arena.push(*e);
    }
    let meta = CorpusEntryMeta {
        schema: CORPUS_ENTRY_SCHEMA.to_string(),
        check: check.to_string(),
        l1_size_bytes: case.cfg.l1_size_bytes,
        line_bytes: case.cfg.line_bytes,
        warmup_events: 0,
        l2: case.cfg.l2,
        note: format!(
            "shrunk witness ({} of {} events) from audit seed {:#x}, case {case_index}: \
             engine and naive oracle disagreed on {}",
            minimal.len(),
            events.len(),
            opts.seed,
            case.cfg.label()
        ),
        expect_divergence: true,
    };
    if std::fs::create_dir_all(dir).is_err() {
        return None;
    }
    let mut buf = Vec::new();
    tlc_trace::io::write_event_trace(&mut buf, &arena).ok()?;
    std::fs::write(dir.join(format!("{stem}.evt")), buf).ok()?;
    std::fs::write(
        dir.join(format!("{stem}.json")),
        serde_json::to_string_pretty(&meta).expect("corpus sidecar serializes"),
    )
    .ok()?;
    Some(stem)
}

/// Sibling L2 sizes for the family engine check: the sampled size plus
/// its doublings, with a duplicate to exercise in-family deduplication.
fn family_siblings(cfg: &MachineConfig) -> Vec<MachineConfig> {
    let Some(spec) = cfg.l2 else { return vec![*cfg, *cfg] };
    [2, 1, 1, 4]
        .iter()
        .map(|&m| MachineConfig {
            l2: Some(L2Spec { size_bytes: spec.size_bytes * m, ..spec }),
            ..*cfg
        })
        .collect()
}

/// Runs one sampled case through every engine and oracle, updating the
/// ledger. Returns the number of engine comparisons performed.
fn run_case(case: &SampledCase, case_index: u64, opts: &AuditOptions, ledger: &mut Ledger) {
    let cfg = &case.cfg;
    let records = record_stream(case);
    let budget = case.budget;

    // Ground truth: the naive per-access oracle under the shared
    // warm-up/measure protocol.
    let mut naive = match cfg.l2 {
        None => NaiveSystem::single(cfg.l1_size_bytes, cfg.line_bytes),
        Some(s) => match s.policy {
            L2Policy::Conventional => NaiveSystem::conventional(
                cfg.l1_size_bytes,
                cfg.line_bytes,
                s.size_bytes,
                s.ways,
                s.repl,
            ),
            L2Policy::Exclusive => NaiveSystem::exclusive(
                cfg.l1_size_bytes,
                cfg.line_bytes,
                s.size_bytes,
                s.ways,
                s.repl,
            ),
        },
    };
    let oracle = simulate_source_on(&mut naive, &mut replay_source(case, &records), budget);

    // Engine 1+2: streaming enum dispatch and the legacy trait-object
    // path. The streaming system is kept for the content check below.
    let mut streaming_sys = try_build_system_kind(cfg).expect("sampled geometry is valid");
    let streaming =
        simulate_source_on(&mut streaming_sys, &mut replay_source(case, &records), budget);
    let dyn_stats = simulate_source_dyn(cfg, &mut replay_source(case, &records), budget);
    for (name, got) in [("streaming-vs-oracle", streaming), ("dyn-vs-oracle", dyn_stats)] {
        let diverged = got != oracle;
        ledger.tally(name, diverged);
        if diverged {
            ledger.record(
                case_index,
                name,
                case,
                format!("engine {got:?} != oracle {oracle:?}"),
                None,
            );
        }
    }

    // Engine 3: devirtualized arena replay, plus chunk-size invariance.
    let arena =
        TraceArena::capture_chunked(&mut replay_source(case, &records), u64::MAX, case.chunk_len);
    let arena_stats = simulate_arena(cfg, &arena, budget);
    let diverged = arena_stats != oracle;
    ledger.tally("arena-vs-oracle", diverged);
    if diverged {
        ledger.record(
            case_index,
            "arena-vs-oracle",
            case,
            format!("engine {arena_stats:?} != oracle {oracle:?}"),
            None,
        );
    }
    let other_chunk = if case.chunk_len == 301 { 1 << 13 } else { 301 };
    let rechunked =
        TraceArena::capture_chunked(&mut replay_source(case, &records), u64::MAX, other_chunk);
    let rechunk_stats = simulate_arena(cfg, &rechunked, budget);
    let diverged = rechunk_stats != arena_stats;
    ledger.tally("chunk-invariance", diverged);
    if diverged {
        ledger.record(
            case_index,
            "chunk-invariance",
            case,
            format!(
                "chunk_len {} gave {arena_stats:?}, chunk_len {other_chunk} gave {rechunk_stats:?}",
                case.chunk_len
            ),
            None,
        );
    }

    // Engines 4+5 need a captured miss stream (direct-mapped L1 front-end).
    let stream =
        try_capture_miss_stream(cfg.l1_size_bytes, cfg.line_bytes, &arena, budget, usize::MAX)
            .expect("sampled L1 geometries are valid")
            .expect("unbounded capture succeeds");
    let filtered = try_simulate_filtered(cfg, &stream).expect("sampled L2 geometries are valid");
    let diverged = filtered != oracle;
    ledger.tally("filtered-vs-oracle", diverged);
    if diverged {
        let corpus = shrink_and_archive(case, case_index, "filtered-vs-oracle", &stream, opts);
        ledger.record(
            case_index,
            "filtered-vs-oracle",
            case,
            format!("engine {filtered:?} != oracle {oracle:?}"),
            corpus,
        );
    }

    // The family engine must reproduce the scalar back-end for every
    // sibling, through the deduplicated fan-out.
    let siblings = family_siblings(cfg);
    let family = crate::experiment::simulate_family(&siblings, &stream);
    let mut family_diverged = false;
    for (member, got) in siblings.iter().zip(&family) {
        let want = try_simulate_filtered(member, &stream).expect("sibling geometry is valid");
        if *got != want {
            family_diverged = true;
            let corpus = shrink_and_archive(case, case_index, "family-vs-filtered", &stream, opts);
            ledger.record(
                case_index,
                "family-vs-filtered",
                case,
                format!("family member {} got {got:?}, scalar back-end {want:?}", member.label()),
                corpus,
            );
            break;
        }
    }
    ledger.tally("family-vs-filtered", family_diverged);

    // The analytical predictor against the family-replayed ground truth
    // it advertises a tolerance contract for. Exclusive samples and
    // set-associative FIFO/tree-PLRU/SRRIP samples are outside the model
    // (the predict engine replays them instead), so the check covers the
    // predictable cases: single-level members must be exact,
    // direct-mapped hit/miss counts must be exact, and set-associative
    // LRU/pseudo-random members must keep the local miss ratio within
    // [`PREDICT_AUDIT_EPSILON`] plus the [`PREDICT_AUDIT_NOISE`]
    // small-sample slack. Divergence witnesses carry the
    // measured error (tolerance breaches are not event-shrinkable: the
    // predictor has no per-event ground truth to bisect against).
    if crate::experiment::config_is_predictable(cfg) {
        let predicted = crate::experiment::simulate_predicted(&siblings, &stream);
        let mut predict_diverged = false;
        for ((member, got), want) in siblings.iter().zip(&predicted).zip(&family) {
            let failure = match member.l2 {
                None => (got != want)
                    .then(|| format!("single-level predicted {got:?} != replayed {want:?}")),
                Some(s) if s.ways == 1 => {
                    ((got.l2_hits, got.l2_misses) != (want.l2_hits, want.l2_misses)).then(|| {
                        format!(
                            "direct-mapped predicted ({}, {}) != replayed ({}, {})",
                            got.l2_hits, got.l2_misses, want.l2_hits, want.l2_misses
                        )
                    })
                }
                Some(_) => {
                    let err = tlc_cache::miss_ratio_error(got, want);
                    let accesses = (want.l2_hits + want.l2_misses).max(1) as f64;
                    let allowed = PREDICT_AUDIT_EPSILON + PREDICT_AUDIT_NOISE / accesses.sqrt();
                    (err > allowed).then(|| {
                        format!(
                            "miss-ratio error {err:.4} > {allowed:.4} (epsilon \
                             {PREDICT_AUDIT_EPSILON} + {PREDICT_AUDIT_NOISE}/sqrt({accesses}); \
                             predicted {got:?}, replayed {want:?})"
                        )
                    })
                }
            };
            if let Some(detail) = failure {
                predict_diverged = true;
                ledger.record(
                    case_index,
                    "predict-vs-family",
                    case,
                    format!("member {}: {detail}", member.label()),
                    None,
                );
                break;
            }
        }
        ledger.tally("predict-vs-family", predict_diverged);
    }

    // Independent DM oracle: a direct-mapped conventional L2's content is
    // a pure DM tag array over the event line sequence, so the nested
    // profiler predicts hits/misses for all sibling sizes at once —
    // without the threshold trick the family fast path uses.
    if let Some(spec) = cfg.l2 {
        if spec.ways == 1 && spec.policy == L2Policy::Conventional {
            let sizes: Vec<u64> = [1u64, 2, 4].iter().map(|m| spec.size_bytes * m).collect();
            let set_counts: Vec<u64> = sizes.iter().map(|s| s / cfg.line_bytes).collect();
            let mut profiler = NestedDmProfiler::new(&set_counts);
            for (i, ev) in stream.events().enumerate() {
                if i as u64 == stream.warmup_events() {
                    profiler.reset_counters();
                }
                profiler.record(ev.line.0);
            }
            if stream.warmup_events() == stream.len() {
                profiler.reset_counters();
            }
            let predicted = profiler.counters();
            let dm_cfgs: Vec<MachineConfig> = sizes
                .iter()
                .map(|&s| MachineConfig { l2: Some(L2Spec { size_bytes: s, ..spec }), ..*cfg })
                .collect();
            let measured = crate::experiment::simulate_family(&dm_cfgs, &stream);
            let diverged = predicted
                .iter()
                .zip(&measured)
                .any(|(&(hits, misses), m)| hits != m.l2_hits || misses != m.l2_misses)
                || profiler.inclusion_violations() != 0;
            ledger.tally("dm-nested-oracle", diverged);
            if diverged {
                let corpus =
                    shrink_and_archive(case, case_index, "dm-nested-oracle", &stream, opts);
                ledger.record(
                    case_index,
                    "dm-nested-oracle",
                    case,
                    format!(
                        "profiler predicted {predicted:?} ({} inclusion violations), family \
                         measured {:?}",
                        profiler.inclusion_violations(),
                        measured.iter().map(|m| (m.l2_hits, m.l2_misses)).collect::<Vec<_>>()
                    ),
                    corpus,
                );
            }
        }
    }

    // Content check: the final resident-line sets of every level must be
    // bit-identical between the streaming engine and the naive oracle —
    // stronger than counter equality, since content drift can cancel out
    // in the statistics for a while before changing a count.
    let real_content = {
        let lines = |c: &tlc_cache::Cache| {
            let mut v: Vec<u64> = c.iter_lines().map(|l| l.0).collect();
            v.sort_unstable();
            v
        };
        match &streaming_sys {
            SystemKind::Single(s) => (lines(s.l1i()), lines(s.l1d()), Vec::new()),
            SystemKind::Conventional(s) => (lines(s.l1i()), lines(s.l1d()), lines(s.l2())),
            SystemKind::Exclusive(s) => (lines(s.l1i()), lines(s.l1d()), lines(s.l2())),
        }
    };
    let naive_content = naive.content();
    let diverged = real_content != naive_content;
    ledger.tally("content-vs-oracle", diverged);
    if diverged {
        ledger.record(
            case_index,
            "content-vs-oracle",
            case,
            format!(
                "resident lines differ: engine (|l1i|={}, |l1d|={}, |l2|={}) vs oracle \
                 (|l1i|={}, |l1d|={}, |l2|={})",
                real_content.0.len(),
                real_content.1.len(),
                real_content.2.len(),
                naive_content.0.len(),
                naive_content.1.len(),
                naive_content.2.len()
            ),
            None,
        );
    }

    // Metamorphic: the exclusive policy exists to remove inter-level
    // duplication. The modeled design (paper Figure 21) still retains the
    // L2 copy in the 21-b inclusion case, so residual duplication is
    // legal — but it must never exceed the conventional hierarchy's on
    // the same stream and geometry.
    if matches!(cfg.l2, Some(s) if s.policy == L2Policy::Exclusive) {
        let conv_cfg = MachineConfig {
            l2: cfg.l2.map(|s| L2Spec { policy: L2Policy::Conventional, ..s }),
            ..*cfg
        };
        let mut conv_sys = try_build_system_kind(&conv_cfg).expect("sampled geometry is valid");
        simulate_source_on(&mut conv_sys, &mut replay_source(case, &records), budget);
        if let (SystemKind::Exclusive(e), SystemKind::Conventional(c)) = (&streaming_sys, &conv_sys)
        {
            let excl = DuplicationReport::measure(e.l1i(), e.l1d(), e.l2());
            let conv = DuplicationReport::measure(c.l1i(), c.l1d(), c.l2());
            let diverged = excl.duplicated > conv.duplicated;
            ledger.tally("exclusive-duplication-bound", diverged);
            if diverged {
                ledger.record(
                    case_index,
                    "exclusive-duplication-bound",
                    case,
                    format!("exclusive duplicated {excl} more than conventional {conv}"),
                    None,
                );
            }
        }
    }

    // Mattson stack-distance profiler vs a direct fully-associative LRU
    // simulation, over the L2-visible line stream. Quadratic in the
    // capacity, so sampled on a quarter of the cases.
    if case_index.is_multiple_of(4) && !stream.is_empty() {
        let lines: Vec<u64> = stream.events().map(|e| e.line.0).collect();
        let mut profiler = StackDistanceProfiler::new();
        for &l in &lines {
            profiler.record(tlc_trace::LineAddr(l));
        }
        let diverged = [1u64, 4, 16, 64]
            .iter()
            .any(|&cap| profiler.misses_at_capacity(cap) != lru_misses(&lines, cap as usize));
        ledger.tally("mattson-vs-lru", diverged);
        if diverged {
            ledger.record(
                case_index,
                "mattson-vs-lru",
                case,
                "stack-distance miss counts disagree with direct LRU simulation".to_string(),
                None,
            );
        }
    }

    // Thread invariance: the parallel sweep must return the same
    // statistics as the single-threaded one, in input order. Sampled on
    // every fourth case (spawning threads dominates small replays).
    // Skipped when the measured run is empty: TPI is undefined there
    // (`tpi_ns` documents the panic), so both sweeps fail by contract —
    // and under >1 worker *which* configuration reports the failure
    // first is a scheduling race, not a statistic.
    if case_index % 4 == 1 && oracle.instructions > 0 {
        let timing = TimingModel::paper();
        let area = AreaModel::new();
        let seq = try_sweep_arena_threads(&siblings, &arena, budget, &timing, &area, 1);
        let par = try_sweep_arena_threads(&siblings, &arena, budget, &timing, &area, case.threads);
        let diverged = match (&seq, &par) {
            (Ok(a), Ok(b)) => {
                a.len() != b.len() || a.iter().zip(b).any(|(x, y)| x.stats != y.stats)
            }
            _ => true,
        };
        ledger.tally("thread-invariance", diverged);
        if diverged {
            let status = |r: &Result<_, _>| match r {
                Ok(_) => "ok".to_string(),
                Err(e) => format!("error ({e})"),
            };
            ledger.record(
                case_index,
                "thread-invariance",
                case,
                format!(
                    "1 thread ({}) vs {} threads ({}) returned different sweeps",
                    status(&seq),
                    case.threads,
                    status(&par)
                ),
                None,
            );
        }
    }
}

/// Degenerate geometries must surface as typed errors, not panics — the
/// contract the `try_*` constructors give the sampler.
fn run_config_edge_case(rng: &mut StdRng, ledger: &mut Ledger) {
    let bad = match rng.gen_range(0..3) {
        // Line larger than the cache.
        0 => MachineConfig {
            l1_size_bytes: 16,
            l1_cell: tlc_area::CellKind::SinglePorted,
            l2: None,
            offchip_ns: 50.0,
            line_bytes: 64,
        },
        // Non-power-of-two L1.
        1 => MachineConfig {
            l1_size_bytes: 3 * 1024,
            l1_cell: tlc_area::CellKind::SinglePorted,
            l2: None,
            offchip_ns: 50.0,
            line_bytes: 16,
        },
        // More L2 ways than L2 lines.
        _ => MachineConfig {
            l1_size_bytes: 1024,
            l1_cell: tlc_area::CellKind::SinglePorted,
            l2: Some(L2Spec {
                size_bytes: 64,
                ways: 8,
                policy: L2Policy::Conventional,
                repl: ReplacementKind::PseudoRandom,
            }),
            offchip_ns: 50.0,
            line_bytes: 16,
        },
    };
    let diverged = try_build_system_kind(&bad).is_ok();
    ledger.tally("config-edge-typed-errors", diverged);
    if diverged {
        ledger.divergences.push(AuditDivergence {
            case_index: 0,
            check: "config-edge-typed-errors".to_string(),
            config: bad.label(),
            workload: String::new(),
            detail: "degenerate geometry was accepted".to_string(),
            corpus_entry: None,
        });
    }
}

/// Runs the differential audit described in the module docs.
pub fn run_audit(opts: &AuditOptions) -> AuditReport {
    let started = Instant::now();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut ledger = Ledger::new();
    let mut cases = 0u64;
    while cases < opts.max_cases {
        let elapsed = started.elapsed().as_secs_f64();
        if cases >= opts.min_cases && elapsed >= opts.seconds {
            break;
        }
        let diverged_before = ledger.divergences.len();
        if cases % 16 == 15 {
            run_config_edge_case(&mut rng, &mut ledger);
        }
        let case = sample_case(&mut rng);
        run_case(&case, cases, opts, &mut ledger);
        cases += 1;
        tlc_obs::obs_count!(tlc_obs::Counter::AuditCases, 1);
        tlc_obs::obs_count!(
            tlc_obs::Counter::AuditDivergences,
            (ledger.divergences.len() - diverged_before) as u64
        );
    }
    AuditReport {
        schema: AUDIT_REPORT_SCHEMA.to_string(),
        seed: opts.seed,
        requested_seconds: opts.seconds,
        elapsed_seconds: started.elapsed().as_secs_f64(),
        cases,
        engines: ["streaming", "dyn", "arena", "filtered", "family", "predict"]
            .map(String::from)
            .to_vec(),
        checks: ledger.checks,
        divergences: ledger.divergences,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_fixed_seed_audit_is_clean_and_reproducible() {
        let opts = AuditOptions { seed: 7, min_cases: 24, ..AuditOptions::default() };
        let a = run_audit(&opts);
        assert_eq!(a.cases, 24);
        assert!(a.is_clean(), "divergences: {:#?}", a.divergences);
        assert!(a.checks.iter().any(|c| c.name == "filtered-vs-oracle" && c.runs == 24));
        assert!(a.checks.iter().any(|c| c.name == "config-edge-typed-errors"));
        assert!(
            a.checks.iter().any(|c| c.name == "predict-vs-family" && c.runs > 0),
            "the predictor's tolerance check must run on non-exclusive cases"
        );
        let b = run_audit(&opts);
        assert_eq!(a.checks, b.checks, "audit must be a pure function of the seed");
    }

    #[test]
    fn report_json_has_schema_and_round_trips() {
        let opts = AuditOptions { seed: 3, min_cases: 4, ..AuditOptions::default() };
        let report = run_audit(&opts);
        let json = report.to_json();
        assert!(json.contains(AUDIT_REPORT_SCHEMA));
        let back: AuditReport = serde_json::from_str(&json).expect("report round-trips");
        assert_eq!(back.cases, report.cases);
        assert_eq!(back.checks, report.checks);
    }

    #[test]
    fn sampler_covers_both_policies_and_degenerate_budgets() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut conv = false;
        let mut excl = false;
        let mut single = false;
        let mut starved = false;
        let mut repls = std::collections::HashSet::new();
        for _ in 0..200 {
            let c = sample_case(&mut rng);
            match c.cfg.l2 {
                None => single = true,
                Some(s) if s.policy == L2Policy::Conventional => conv = true,
                Some(_) => excl = true,
            }
            if let Some(s) = c.cfg.l2 {
                repls.insert(s.repl);
            }
            if c.records < c.budget.warmup_instructions + c.budget.instructions {
                starved = true;
            }
        }
        assert!(conv && excl && single && starved, "sampler misses a region");
        assert_eq!(
            repls.len(),
            ReplacementKind::ALL.len(),
            "sampler must reach every replacement policy, got {repls:?}"
        );
    }
}
