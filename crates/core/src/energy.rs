//! Energy per instruction — quantifying the paper's fifth advantage of
//! two-level caching (§1): at equal chip area, a two-level organisation
//! serves most references from a small L1 and so switches far less
//! capacitance per access than one huge single-level cache.
//!
//! This is an *extension* exhibit: the paper states the power argument
//! qualitatively; this module makes it measurable with the
//! [`EnergyModel`] of `tlc-timing` plus the simulated reference counts.

use crate::machine::MachineConfig;
use serde::{Deserialize, Serialize};
use tlc_area::CellKind;
use tlc_cache::HierarchyStats;
use tlc_timing::{EnergyModel, TimingModel};

/// Energy-per-instruction result (arbitrary energy units per
/// instruction; only ratios between configurations are meaningful).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyResult {
    /// Energy per access of one L1 cache.
    pub l1_access_eu: f64,
    /// Energy per access of the L2 (0 for single-level systems).
    pub l2_access_eu: f64,
    /// Total energy per instruction.
    pub epi_eu: f64,
    /// Fraction of the energy spent off-chip.
    pub offchip_fraction: f64,
}

/// Computes energy per instruction for a simulated run.
///
/// Accounting: every instruction touches the L1I; every data reference
/// touches the L1D; every L1 miss probes the L2 and (refill or victim
/// write, depending on policy) writes it once more; every L2 miss and
/// off-chip writeback pays one off-chip access.
///
/// # Panics
///
/// Panics if `stats.instructions` is zero.
pub fn energy_per_instruction(
    cfg: &MachineConfig,
    stats: &HierarchyStats,
    timing: &TimingModel,
    energy: &EnergyModel,
) -> EnergyResult {
    assert!(stats.instructions > 0, "energy undefined for an empty run");
    let l1_geom = cfg.l1_geometry();
    let l1_org = timing.optimal(&l1_geom, cfg.l1_cell).org;
    let l1_eu = energy.access_energy(&l1_geom, &l1_org, cfg.l1_cell).total();

    let l2_eu = match cfg.l2_geometry() {
        Some(g) => {
            let org = timing.optimal(&g, CellKind::SinglePorted).org;
            energy.access_energy(&g, &org, CellKind::SinglePorted).total()
        }
        None => 0.0,
    };

    let n = stats.instructions as f64;
    let l1_accesses = (stats.instructions + stats.data_refs) as f64;
    // Probe + one refill/victim write per L1 miss when an L2 exists.
    let l2_accesses = if cfg.l2.is_some() { 2.0 * stats.l1_misses() as f64 } else { 0.0 };
    let offchip_accesses = (stats.l2_misses + stats.offchip_writebacks) as f64;

    let onchip = l1_accesses * l1_eu + l2_accesses * l2_eu;
    let offchip = offchip_accesses * energy.offchip_access();
    let total = onchip + offchip;
    EnergyResult {
        l1_access_eu: l1_eu,
        l2_access_eu: l2_eu,
        epi_eu: total / n,
        offchip_fraction: if total > 0.0 { offchip / total } else { 0.0 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::{evaluate, SimBudget};
    use crate::machine::L2Policy;
    use tlc_area::AreaModel;
    use tlc_trace::spec::SpecBenchmark;

    fn models() -> (TimingModel, AreaModel, EnergyModel) {
        (TimingModel::paper(), AreaModel::new(), EnergyModel::new())
    }

    #[test]
    fn two_level_beats_large_single_level_on_chip_energy() {
        // §1 advantage 5, at roughly equal area: 64KB single-level pair
        // vs 8KB pair + 128KB L2. Compare on-chip energy per instruction
        // (subtract the off-chip share, which depends on miss rates, to
        // isolate the wordline/bitline-capacitance argument).
        let (tm, am, em) = models();
        let budget = SimBudget::quick();
        let single = MachineConfig::single_level(64, 50.0);
        let two = MachineConfig::two_level(8, 128, 4, L2Policy::Conventional, 50.0);
        let ps = evaluate(&single, SpecBenchmark::Espresso, budget, &tm, &am);
        let pt = evaluate(&two, SpecBenchmark::Espresso, budget, &tm, &am);
        let es = energy_per_instruction(&single, &ps.stats, &tm, &em);
        let et = energy_per_instruction(&two, &pt.stats, &tm, &em);
        let onchip_s = es.epi_eu * (1.0 - es.offchip_fraction);
        let onchip_t = et.epi_eu * (1.0 - et.offchip_fraction);
        assert!(
            onchip_t < onchip_s,
            "two-level on-chip EPI {onchip_t:.1} should beat single-level {onchip_s:.1}"
        );
    }

    #[test]
    fn l1_energy_below_l2_energy() {
        let (tm, _, em) = models();
        let cfg = MachineConfig::two_level(4, 128, 4, L2Policy::Conventional, 50.0);
        let stats = HierarchyStats { instructions: 100, ..Default::default() };
        let e = energy_per_instruction(&cfg, &stats, &tm, &em);
        assert!(e.l1_access_eu < e.l2_access_eu, "a 4KB L1 must be cheaper than a 128KB L2");
    }

    #[test]
    fn offchip_fraction_grows_with_misses() {
        let (tm, _, em) = models();
        let cfg = MachineConfig::single_level(8, 50.0);
        let low = HierarchyStats {
            instructions: 1000,
            data_refs: 300,
            l1i_misses: 5,
            l1d_misses: 5,
            l2_misses: 10,
            ..Default::default()
        };
        let high = HierarchyStats { l2_misses: 200, l1i_misses: 100, l1d_misses: 100, ..low };
        let el = energy_per_instruction(&cfg, &low, &tm, &em);
        let eh = energy_per_instruction(&cfg, &high, &tm, &em);
        assert!(eh.offchip_fraction > el.offchip_fraction);
        assert!(eh.epi_eu > el.epi_eu);
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn rejects_empty_run() {
        let (tm, _, em) = models();
        let cfg = MachineConfig::single_level(8, 50.0);
        let _ = energy_per_instruction(&cfg, &HierarchyStats::default(), &tm, &em);
    }
}
