//! Machine configurations: the design space of the paper.
//!
//! A [`MachineConfig`] names one point of the study: the (per-side) L1
//! size and cell type, the optional L2 (size, associativity, fill
//! policy), and the off-chip miss service time. [`MachineTiming`] derives
//! the physical quantities the TPI model needs — processor cycle time
//! (set by the L1, §2.1), L2 cycle time rounded up to a whole number of
//! processor cycles (§2.3), rounded off-chip time (§2.5) and total chip
//! area (§2.4) — from the timing and area models.

use serde::{Deserialize, Serialize};
use std::fmt;
use tlc_area::{AreaModel, CacheGeometry, CellKind};
use tlc_cache::ReplacementKind;
use tlc_timing::TimingModel;

/// Fill policy of the second level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum L2Policy {
    /// Standard demand fill: both levels are filled on an off-chip miss
    /// (§4).
    Conventional,
    /// Two-level exclusive caching: off-chip refills bypass the L2 and L1
    /// victims swap into it (§8).
    Exclusive,
}

impl fmt::Display for L2Policy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            L2Policy::Conventional => "conventional",
            L2Policy::Exclusive => "exclusive",
        })
    }
}

/// The second-level cache of a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct L2Spec {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Ways (1 = direct-mapped; the paper's baseline uses 4).
    pub ways: u32,
    /// Fill policy.
    pub policy: L2Policy,
    /// Replacement policy of the set-associative L2 (the paper's
    /// baseline is pseudo-random, §2.2; irrelevant when `ways == 1`).
    /// Manifests written before this field existed deserialize to the
    /// baseline.
    #[serde(default = "default_repl")]
    pub repl: ReplacementKind,
}

fn default_repl() -> ReplacementKind {
    ReplacementKind::PseudoRandom
}

/// One point of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Size of *each* L1 cache (instruction and data are split and equal,
    /// §2.1), in bytes.
    pub l1_size_bytes: u64,
    /// RAM cell of the L1 caches (§6 studies dual-ported cells).
    pub l1_cell: CellKind,
    /// Optional second level.
    pub l2: Option<L2Spec>,
    /// Off-chip miss service time in ns (50 with a board cache, 200
    /// without, §2.1/§7).
    pub offchip_ns: f64,
    /// Line size in bytes (16 throughout the paper).
    pub line_bytes: u64,
}

impl MachineConfig {
    /// A single-level configuration with the paper's defaults.
    pub fn single_level(l1_kb: u64, offchip_ns: f64) -> Self {
        MachineConfig {
            l1_size_bytes: l1_kb * 1024,
            l1_cell: CellKind::SinglePorted,
            l2: None,
            offchip_ns,
            line_bytes: 16,
        }
    }

    /// A two-level configuration with the paper's defaults.
    pub fn two_level(l1_kb: u64, l2_kb: u64, ways: u32, policy: L2Policy, offchip_ns: f64) -> Self {
        MachineConfig {
            l1_size_bytes: l1_kb * 1024,
            l1_cell: CellKind::SinglePorted,
            l2: Some(L2Spec {
                size_bytes: l2_kb * 1024,
                ways,
                policy,
                repl: ReplacementKind::PseudoRandom,
            }),
            offchip_ns,
            line_bytes: 16,
        }
    }

    /// Replaces the L1 cell kind (builder-style).
    pub fn with_l1_cell(mut self, cell: CellKind) -> Self {
        self.l1_cell = cell;
        self
    }

    /// The paper's "x:y" label: L1 KB per side, then L2 KB (0 when
    /// absent) — e.g. `32:256` in Figure 5.
    pub fn label(&self) -> String {
        format!("{}:{}", self.l1_size_bytes / 1024, self.l2.map_or(0, |l2| l2.size_bytes / 1024))
    }

    /// Geometry of one L1 cache (direct-mapped, §2.1).
    pub fn l1_geometry(&self) -> CacheGeometry {
        CacheGeometry {
            size_bytes: self.l1_size_bytes,
            line_bytes: self.line_bytes,
            ways: 1,
            addr_bits: 32,
        }
    }

    /// Geometry of the L2 cache, if present.
    pub fn l2_geometry(&self) -> Option<CacheGeometry> {
        self.l2.map(|l2| CacheGeometry {
            size_bytes: l2.size_bytes,
            line_bytes: self.line_bytes,
            ways: l2.ways,
            addr_bits: 32,
        })
    }
}

impl fmt::Display for MachineConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.label())?;
        if let Some(l2) = self.l2 {
            write!(f, " ({}-way {} L2)", l2.ways, l2.policy)?;
        }
        if self.l1_cell == CellKind::DualPorted {
            write!(f, " [dual-ported L1]")?;
        }
        write!(f, " @{}ns off-chip", self.offchip_ns)
    }
}

/// Physical quantities derived from a [`MachineConfig`] through the
/// timing and area models.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineTiming {
    /// Processor cycle time = L1 cache cycle time (§2.1), ns.
    pub l1_cycle_ns: f64,
    /// L1 access time, ns (reported for Figure 1).
    pub l1_access_ns: f64,
    /// Raw L2 RAM cycle time, ns (0 when no L2).
    pub l2_raw_cycle_ns: f64,
    /// Raw L2 RAM access time, ns (0 when no L2; for Figure 2).
    pub l2_raw_access_ns: f64,
    /// L2 cycle in whole processor cycles (§2.3 rounding; 0 when no L2).
    pub l2_cycles: u32,
    /// Off-chip service time rounded up to whole processor cycles, ns.
    pub offchip_rounded_ns: f64,
    /// Total on-chip cache area (both L1s + L2), rbe.
    pub area_rbe: f64,
    /// Instruction-issue multiplier (2 for dual-ported L1s that feed a
    /// superscalar core, §6).
    pub issue_factor: f64,
    /// Refill transfers per line (line bytes / 8-byte datapath, §2.5 —
    /// 2 for the paper's 16-byte lines).
    pub refill_transfers: u32,
}

impl MachineTiming {
    /// L2 cycle time in ns after rounding (0 when no L2).
    pub fn l2_cycle_ns(&self) -> f64 {
        self.l2_cycles as f64 * self.l1_cycle_ns
    }

    /// Derives the timing/area quantities for `cfg`.
    pub fn derive(cfg: &MachineConfig, timing: &TimingModel, area: &AreaModel) -> MachineTiming {
        let l1_geom = cfg.l1_geometry();
        let l1_t = timing.optimal(&l1_geom, cfg.l1_cell);
        let l1_a = area.total_area(&l1_geom, &l1_t.org, cfg.l1_cell);

        let mut area_rbe = 2.0 * l1_a.value(); // split I + D
        let (l2_raw_cycle, l2_raw_access, l2_cycles) = match cfg.l2_geometry() {
            Some(l2_geom) => {
                // The L2 always uses standard single-ported cells (§6).
                let l2_t = timing.optimal(&l2_geom, CellKind::SinglePorted);
                area_rbe += area.total_area(&l2_geom, &l2_t.org, CellKind::SinglePorted).value();
                let cycles = (l2_t.cycle_ns / l1_t.cycle_ns).ceil().max(1.0) as u32;
                (l2_t.cycle_ns, l2_t.access_ns, cycles)
            }
            None => (0.0, 0.0, 0),
        };

        let offchip_rounded = (cfg.offchip_ns / l1_t.cycle_ns).ceil() * l1_t.cycle_ns;

        MachineTiming {
            l1_cycle_ns: l1_t.cycle_ns,
            l1_access_ns: l1_t.access_ns,
            l2_raw_cycle_ns: l2_raw_cycle,
            l2_raw_access_ns: l2_raw_access,
            l2_cycles,
            offchip_rounded_ns: offchip_rounded,
            area_rbe,
            issue_factor: cfg.l1_cell.bandwidth_factor(),
            refill_transfers: (cfg.line_bytes / 8).max(1) as u32,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (TimingModel, AreaModel) {
        (TimingModel::paper(), AreaModel::new())
    }

    #[test]
    fn labels_match_paper_style() {
        assert_eq!(MachineConfig::single_level(32, 50.0).label(), "32:0");
        assert_eq!(
            MachineConfig::two_level(8, 64, 4, L2Policy::Conventional, 50.0).label(),
            "8:64"
        );
    }

    #[test]
    fn derive_single_level() {
        let (tm, am) = models();
        let cfg = MachineConfig::single_level(4, 50.0);
        let t = MachineTiming::derive(&cfg, &tm, &am);
        assert!(t.l1_cycle_ns > 2.0 && t.l1_cycle_ns < 4.0);
        assert_eq!(t.l2_cycles, 0);
        assert_eq!(t.l2_cycle_ns(), 0.0);
        assert_eq!(t.issue_factor, 1.0);
        // Off-chip rounding: a whole multiple of the cycle, >= 50ns.
        assert!(t.offchip_rounded_ns >= 50.0);
        assert!(t.offchip_rounded_ns < 50.0 + t.l1_cycle_ns);
        let cycles = t.offchip_rounded_ns / t.l1_cycle_ns;
        assert!((cycles - cycles.round()).abs() < 1e-9);
    }

    #[test]
    fn derive_two_level_fig2_example() {
        // §2.5's worked example: 4KB L1, L2 cycle rounds to 2 CPU cycles,
        // giving a 5-cycle L1 miss penalty for L2 hits.
        let (tm, am) = models();
        let cfg = MachineConfig::two_level(4, 64, 4, L2Policy::Conventional, 50.0);
        let t = MachineTiming::derive(&cfg, &tm, &am);
        assert_eq!(t.l2_cycles, 2, "Figure 2: L2 should cost 2 processor cycles");
        assert!((t.l2_cycle_ns() - 2.0 * t.l1_cycle_ns).abs() < 1e-9);
        assert!(t.l2_raw_cycle_ns > t.l1_cycle_ns, "raw L2 slower than L1");
    }

    #[test]
    fn dual_ported_l1_doubles_issue_and_grows_area() {
        let (tm, am) = models();
        let base = MachineConfig::single_level(8, 50.0);
        let dual = base.with_l1_cell(CellKind::DualPorted);
        let tb = MachineTiming::derive(&base, &tm, &am);
        let td = MachineTiming::derive(&dual, &tm, &am);
        assert_eq!(td.issue_factor, 2.0);
        // The cell is exactly 2× area, but the speed-optimal organisation
        // may differ between cell kinds, so the cache-level ratio is only
        // approximately 2.
        let ratio = td.area_rbe / tb.area_rbe;
        assert!((1.8..=2.3).contains(&ratio), "area ratio {ratio}");
        assert!(td.l1_cycle_ns > tb.l1_cycle_ns, "dual-ported wires are longer");
    }

    #[test]
    fn two_level_area_exceeds_single() {
        let (tm, am) = models();
        let single = MachineTiming::derive(&MachineConfig::single_level(8, 50.0), &tm, &am);
        let two = MachineTiming::derive(
            &MachineConfig::two_level(8, 64, 4, L2Policy::Conventional, 50.0),
            &tm,
            &am,
        );
        assert!(two.area_rbe > single.area_rbe * 2.0);
    }

    #[test]
    fn policy_does_not_change_timing_or_area() {
        let (tm, am) = models();
        let conv = MachineTiming::derive(
            &MachineConfig::two_level(8, 64, 4, L2Policy::Conventional, 50.0),
            &tm,
            &am,
        );
        let excl = MachineTiming::derive(
            &MachineConfig::two_level(8, 64, 4, L2Policy::Exclusive, 50.0),
            &tm,
            &am,
        );
        assert_eq!(conv.area_rbe, excl.area_rbe);
        assert_eq!(conv.l2_cycles, excl.l2_cycles);
    }

    #[test]
    fn display_mentions_key_facts() {
        let cfg = MachineConfig::two_level(8, 64, 4, L2Policy::Exclusive, 200.0)
            .with_l1_cell(CellKind::DualPorted);
        let s = cfg.to_string();
        assert!(s.contains("8:64") && s.contains("exclusive") && s.contains("dual-ported"));
        assert!(s.contains("200"));
    }
}
