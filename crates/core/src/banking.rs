//! Banked first-level caches — the alternative to dual porting that §6
//! points at: "A banked cache can also be used to support more than one
//! load or store per cycle; since banking requires more inputs and
//! outputs to the cache it also increases the area required for the
//! cache (the tradeoffs between banking and dual porting have been
//! studied in \[8\])" (Sohi & Franklin, ASPLOS 1991).
//!
//! The model: a `B`-bank L1 supports two accesses per cycle unless both
//! map to the same bank (a *bank conflict*, which serialises them). The
//! conflict rate is **measured** from the workload's stream of
//! consecutive data references; the effective issue multiplier is then
//! `2 / (1 + p_conflict)` instead of the dual-ported cell's clean `2`.
//! Area grows by a per-bank wiring/port overhead instead of the cell
//! doubling of §6.

use crate::experiment::{simulate, SimBudget};
use crate::machine::{MachineConfig, MachineTiming};
use crate::tpi;
use serde::{Deserialize, Serialize};
use tlc_area::AreaModel;
use tlc_timing::TimingModel;
use tlc_trace::spec::SpecBenchmark;

/// Parameters of the banking model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankingParams {
    /// Number of banks (power of two ≥ 2).
    pub banks: u32,
    /// Fractional area overhead per log₂(banks) — extra decoders, port
    /// wiring, and crossbar (\[8\] reports tens of percent for practical
    /// bank counts).
    pub area_overhead_per_log2_bank: f64,
}

impl BankingParams {
    /// Default overhead: +12% area per doubling of banks.
    pub fn new(banks: u32) -> Self {
        assert!(banks >= 2 && banks.is_power_of_two(), "banks must be a power of two >= 2");
        BankingParams { banks, area_overhead_per_log2_bank: 0.12 }
    }

    /// Total area multiplier relative to the single-ported cache.
    pub fn area_factor(&self) -> f64 {
        1.0 + self.area_overhead_per_log2_bank * (self.banks as f64).log2()
    }
}

/// One evaluated banked configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankedPoint {
    /// Bank count.
    pub banks: u32,
    /// Measured probability that two consecutive data references collide
    /// in a bank.
    pub conflict_rate: f64,
    /// Effective instruction-issue multiplier (`2/(1+p)`).
    pub issue_factor: f64,
    /// Chip area (rbe) including the banking overhead.
    pub area_rbe: f64,
    /// Resulting time per instruction (ns).
    pub tpi_ns: f64,
}

/// Measures the bank-conflict probability of `benchmark`'s data stream:
/// the fraction of consecutive data-reference pairs that address the
/// same of `banks` **word-interleaved** banks (the interleaving real
/// banked L1s use, so sequential word runs rotate across banks).
pub fn measure_conflict_rate(
    benchmark: SpecBenchmark,
    samples: u64,
    banks: u32,
    _line_bytes: u64,
) -> f64 {
    assert!(banks.is_power_of_two() && banks >= 2, "banks must be a power of two >= 2");
    let mut w = benchmark.workload();
    let mask = (banks - 1) as u64;
    let mut prev: Option<u64> = None;
    let mut pairs = 0u64;
    let mut conflicts = 0u64;
    let mut emitted = 0u64;
    while emitted < samples {
        let rec = w.next_instruction();
        emitted += 1;
        if let Some(d) = rec.data {
            let bank = (d.addr.raw() >> 2) & mask; // word-interleaved
            if let Some(p) = prev {
                pairs += 1;
                if p == bank {
                    conflicts += 1;
                }
            }
            prev = Some(bank);
        }
    }
    if pairs == 0 {
        0.0
    } else {
        conflicts as f64 / pairs as f64
    }
}

/// Evaluates a banked-L1 machine: same miss behaviour as the
/// single-ported machine (banking does not change cache contents), but
/// `2/(1+p)` issue rate and banked area.
pub fn evaluate_banked(
    base: &MachineConfig,
    benchmark: SpecBenchmark,
    budget: SimBudget,
    params: BankingParams,
    timing: &TimingModel,
    area: &AreaModel,
) -> BankedPoint {
    let mut workload = benchmark.workload();
    let stats = simulate(base, &mut workload, budget);
    let mut t = MachineTiming::derive(base, timing, area);

    let p = measure_conflict_rate(benchmark, 100_000, params.banks, base.line_bytes);
    // Banking multiplies only the L1 areas (the L2 keeps plain cells).
    let l1_geom = base.l1_geometry();
    let l1_t = timing.optimal(&l1_geom, tlc_area::CellKind::SinglePorted);
    let l1_area = area.total_area(&l1_geom, &l1_t.org, tlc_area::CellKind::SinglePorted).value();
    t.area_rbe += 2.0 * l1_area * (params.area_factor() - 1.0);
    t.issue_factor = 2.0 / (1.0 + p);

    let tpi = tpi::tpi_ns(&stats, &t);
    BankedPoint {
        banks: params.banks,
        conflict_rate: p,
        issue_factor: t.issue_factor,
        area_rbe: t.area_rbe,
        tpi_ns: tpi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_banks_fewer_conflicts() {
        let p2 = measure_conflict_rate(SpecBenchmark::Gcc1, 30_000, 2, 16);
        let p8 = measure_conflict_rate(SpecBenchmark::Gcc1, 30_000, 8, 16);
        assert!(p8 < p2, "8 banks {p8:.3} should conflict less than 2 banks {p2:.3}");
        assert!((0.0..=1.0).contains(&p2));
    }

    #[test]
    fn streaming_conflicts_reflect_stride_interleave() {
        // tomcatv's round-robin array sweep alternates banks heavily, so
        // its conflict rate is far below the independent-reference 1/B.
        let p4 = measure_conflict_rate(SpecBenchmark::Tomcatv, 30_000, 4, 16);
        assert!(p4 < 0.5, "conflict rate {p4:.3} implausible");
    }

    #[test]
    fn area_factor_grows_with_banks() {
        assert!(BankingParams::new(2).area_factor() < BankingParams::new(8).area_factor());
        let f = BankingParams::new(4).area_factor();
        assert!((f - 1.24).abs() < 1e-12);
    }

    #[test]
    fn banked_point_beats_base_on_low_miss_workload() {
        let timing = TimingModel::paper();
        let area = AreaModel::new();
        let base = MachineConfig::single_level(32, 50.0);
        let budget = SimBudget::quick();
        let banked = evaluate_banked(
            &base,
            SpecBenchmark::Espresso,
            budget,
            BankingParams::new(8),
            &timing,
            &area,
        );
        let plain = crate::evaluate(&base, SpecBenchmark::Espresso, budget, &timing, &area);
        assert!(
            banked.tpi_ns < plain.tpi_ns,
            "banked {:.2} should beat single-issue {:.2} on a low-miss workload",
            banked.tpi_ns,
            plain.tpi_ns
        );
        assert!(banked.issue_factor > 1.5);
        assert!(banked.area_rbe > plain.area_rbe);
        assert!(banked.area_rbe < plain.area_rbe * 2.0, "banking must cost less than dual-porting");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_bad_bank_count() {
        let _ = BankingParams::new(3);
    }
}
