//! The execution-time model of §2.5: average time per instruction (TPI).
//!
//! ```text
//! T_total = T_base + T_L2hits + T_L2misses
//! T_base    = N_instr  × L1_cycle / issue_factor
//! T_L2hit   = N_L2hits × (k·L2_cycle + L1_cycle)
//! T_L2miss  = N_L2miss × (offchip + (k+1)·L2_cycle + L1_cycle)
//! TPI       = T_total / N_instr
//! ```
//!
//! where `k` is the number of 8-byte refill transfers per line — 2 for
//! the paper's 16-byte lines, reproducing §2.5's `2·L2 + L1` hit penalty
//! and `offchip + 3·L2 + L1` miss penalty (one extra L2 cycle for the
//! initial probe) exactly —
//!
//! with the L2 cycle and off-chip times already rounded up to whole
//! processor cycles by [`MachineTiming`] before this module sees them.
//! In a single-level system the L2 terms vanish and an off-chip fetch
//! costs `offchip + L1_cycle` (the final 8-byte L1 write; earlier writes
//! overlap the transfer). TPI, not CPI, is the paper's figure of merit
//! because it captures the cycle-time cost of bigger first-level caches.

use crate::machine::MachineTiming;
use tlc_cache::HierarchyStats;

/// Average time per instruction in ns for a simulated run.
///
/// # Panics
///
/// Panics if `stats.instructions` is zero.
pub fn tpi_ns(stats: &HierarchyStats, t: &MachineTiming) -> f64 {
    assert!(stats.instructions > 0, "TPI undefined for an empty run");
    let n = stats.instructions as f64;
    let l1 = t.l1_cycle_ns;
    let l2 = t.l2_cycle_ns();
    let k = t.refill_transfers as f64;
    let (hit_penalty, miss_penalty) = if t.l2_cycles > 0 {
        (k * l2 + l1, t.offchip_rounded_ns + (k + 1.0) * l2 + l1)
    } else {
        (0.0, t.offchip_rounded_ns + l1)
    };
    let base = n * l1 / t.issue_factor;
    let total = base + stats.l2_hits as f64 * hit_penalty + stats.l2_misses as f64 * miss_penalty;
    total / n
}

/// Cycles per instruction implied by a TPI (CPI = TPI / cycle time).
pub fn cpi(tpi_ns: f64, t: &MachineTiming) -> f64 {
    tpi_ns / t.l1_cycle_ns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing(l1: f64, l2_cycles: u32, offchip: f64, issue: f64) -> MachineTiming {
        MachineTiming {
            l1_cycle_ns: l1,
            l1_access_ns: l1 * 0.9,
            l2_raw_cycle_ns: l2_cycles as f64 * l1 * 0.8,
            l2_raw_access_ns: l2_cycles as f64 * l1 * 0.7,
            l2_cycles,
            offchip_rounded_ns: offchip,
            area_rbe: 1.0,
            issue_factor: issue,
            refill_transfers: 2,
        }
    }

    fn stats(instr: u64, l2_hits: u64, l2_misses: u64) -> HierarchyStats {
        HierarchyStats { instructions: instr, l2_hits, l2_misses, ..Default::default() }
    }

    #[test]
    fn perfect_run_costs_one_cycle_per_instruction() {
        let t = timing(3.0, 2, 51.0, 1.0);
        assert!((tpi_ns(&stats(1000, 0, 0), &t) - 3.0).abs() < 1e-12);
        assert!((cpi(3.0, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_worked_example_five_cycle_hit_penalty() {
        // §2.5: with an L2 cycle of 2 CPU cycles, an L1 miss that hits L2
        // costs (2×2)+1 = 5 CPU cycles.
        let t = timing(3.0, 2, 51.0, 1.0);
        // 1000 instructions, one L2 hit.
        let tpi = tpi_ns(&stats(1000, 1, 0), &t);
        let extra_cycles = (tpi - 3.0) / 3.0 * 1000.0;
        assert!((extra_cycles - 5.0).abs() < 1e-9, "hit penalty {extra_cycles} cycles");
    }

    #[test]
    fn miss_penalty_formula() {
        // Miss costs offchip + 3×L2 + L1 = 51 + 18 + 3 = 72ns.
        let t = timing(3.0, 2, 51.0, 1.0);
        let tpi = tpi_ns(&stats(100, 0, 1), &t);
        assert!((tpi - (3.0 + 72.0 / 100.0)).abs() < 1e-12);
    }

    #[test]
    fn single_level_miss_penalty() {
        // No L2: miss costs offchip + L1 = 51 + 3.
        let t = timing(3.0, 0, 51.0, 1.0);
        let tpi = tpi_ns(&stats(100, 0, 1), &t);
        assert!((tpi - (3.0 + 54.0 / 100.0)).abs() < 1e-12);
    }

    #[test]
    fn dual_issue_halves_base_time_only() {
        let t1 = timing(3.0, 2, 51.0, 1.0);
        let t2 = timing(3.0, 2, 51.0, 2.0);
        let s = stats(1000, 50, 10);
        let tpi1 = tpi_ns(&s, &t1);
        let tpi2 = tpi_ns(&s, &t2);
        // The memory-stall part is identical; only the 3.0ns base halves.
        assert!((tpi1 - tpi2 - 1.5).abs() < 1e-12);
    }

    #[test]
    fn tpi_monotone_in_misses() {
        let t = timing(3.0, 2, 51.0, 1.0);
        let a = tpi_ns(&stats(1000, 10, 5), &t);
        let b = tpi_ns(&stats(1000, 10, 50), &t);
        let c = tpi_ns(&stats(1000, 100, 5), &t);
        assert!(b > a);
        assert!(c > a);
        assert!(b > c, "off-chip misses cost more than L2 hits");
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn rejects_empty_run() {
        let t = timing(3.0, 2, 51.0, 1.0);
        let _ = tpi_ns(&stats(0, 0, 0), &t);
    }
}
