//! Single-pass stack-distance profiling (Mattson et al., 1970).
//!
//! The paper needed "miss rates for a range of system parameters" (§1) —
//! one simulation per cache size. For fully-associative LRU caches the
//! classic stack algorithm computes the miss ratio of *every* capacity in
//! a single pass: the LRU *stack distance* of an access (the number of
//! distinct lines touched since the previous access to the same line)
//! determines a hit in every cache with at least that many lines.
//!
//! [`StackDistanceProfiler`] implements the O(log n)-per-access variant:
//! each line's last-access time is a 1-bit in a Fenwick tree over time;
//! the stack distance is the count of set bits after the line's previous
//! time. The resulting histogram yields the full miss-ratio-versus-size
//! curve, used by the calibration tooling and cross-validated against the
//! direct cache simulator in the test suite.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tlc_trace::LineAddr;

/// Binary indexed tree over access times, counting "most recent access
/// positions" of live lines. Shared with the reuse-distance predictor
/// ([`crate::predict`]), which needs the same "distinct lines since last
/// access" query but keeps exact distances instead of power-of-two
/// buckets.
#[derive(Debug)]
pub(crate) struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    pub(crate) fn new() -> Self {
        Fenwick { tree: vec![0; 1024] }
    }

    /// Highest addressable 0-based position.
    pub(crate) fn capacity(&self) -> usize {
        self.tree.len() - 2
    }

    /// Replaces the tree with a larger one containing a 1 at each of
    /// `ones` (a plain resize would zero the new parent nodes, which must
    /// hold range sums over the old elements).
    ///
    /// Grows by doubling from the current size, so a stream of length n
    /// triggers O(log n) rebuilds; each rebuild constructs the tree
    /// bottom-up in O(len) — scatter the ones as leaf counts, then
    /// propagate every node into its parent once — instead of n
    /// O(log n) point updates.
    pub(crate) fn rebuild(&mut self, new_max_idx: usize, ones: impl Iterator<Item = usize>) {
        let len = (new_max_idx + 2).next_power_of_two().max(2 * self.tree.len());
        self.tree = vec![0; len];
        for idx in ones {
            debug_assert!(idx + 1 < len, "fenwick rebuild index {idx} out of range");
            self.tree[idx + 1] = 1;
        }
        for i in 1..len {
            let parent = i + (i & i.wrapping_neg());
            if parent < len {
                self.tree[parent] += self.tree[i];
            }
        }
    }

    /// Adds `delta` at position `idx` (0-based).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `idx` exceeds the capacity; callers
    /// grow the tree via [`Fenwick::rebuild`] first.
    pub(crate) fn add(&mut self, idx: usize, delta: i32) {
        debug_assert!(idx <= self.capacity(), "fenwick index {idx} out of range");
        let mut i = idx + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + delta as i64) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=idx`.
    pub(crate) fn prefix(&self, idx: usize) -> u32 {
        let mut i = (idx + 1).min(self.tree.len() - 1);
        let mut s = 0;
        while i > 0 {
            s += self.tree[i];
            i -= i & i.wrapping_neg();
        }
        s
    }

    /// Total of all positions.
    pub(crate) fn total(&self) -> u32 {
        self.prefix(self.tree.len() - 2)
    }

    /// Zeroes every node in place, keeping the allocation — a fresh tree
    /// without the `vec![0; n]` churn when a profiler is reused across
    /// L1 groups.
    pub(crate) fn clear(&mut self) {
        self.tree.iter_mut().for_each(|n| *n = 0);
    }
}

/// Single-pass LRU stack-distance profiler. See the module docs.
///
/// # Examples
///
/// ```
/// use tlc_cache::StackDistanceProfiler;
/// use tlc_trace::LineAddr;
///
/// let mut p = StackDistanceProfiler::new();
/// for line in [0u64, 1, 2, 0, 1, 2] {
///     p.record(LineAddr(line));
/// }
/// // Second round: every access has stack distance 3 (two other lines
/// // touched in between) — a 2-line cache misses, a 4-line cache hits.
/// assert_eq!(p.misses_at_capacity(2), 6);
/// assert_eq!(p.misses_at_capacity(4), 3); // only the three cold misses
/// ```
#[derive(Debug)]
pub struct StackDistanceProfiler {
    fenwick: Fenwick,
    last_time: HashMap<LineAddr, usize>,
    clock: usize,
    accesses: u64,
    cold_misses: u64,
    /// Histogram of stack distances in power-of-two buckets:
    /// `histogram[k]` counts accesses with distance in `(2^(k-1), 2^k]`
    /// (bucket 0 holds distance 1).
    histogram: Vec<u64>,
}

impl StackDistanceProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        StackDistanceProfiler {
            fenwick: Fenwick::new(),
            last_time: HashMap::new(),
            clock: 0,
            accesses: 0,
            cold_misses: 0,
            histogram: vec![0; 40],
        }
    }

    /// Records one line access.
    pub fn record(&mut self, line: LineAddr) {
        self.accesses += 1;
        let now = self.clock;
        self.clock += 1;
        if now > self.fenwick.capacity() {
            // Grow the time axis; only live lines carry a 1.
            let live: Vec<usize> = self.last_time.values().copied().collect();
            self.fenwick.rebuild(now.max(2 * self.fenwick.capacity()), live.into_iter());
        }
        match self.last_time.insert(line, now) {
            None => {
                self.cold_misses += 1;
            }
            Some(prev) => {
                // Lines whose last access is strictly after `prev`, plus
                // this line itself.
                let after = self.fenwick.total() - self.fenwick.prefix(prev);
                let distance = after as u64 + 1;
                let bucket = (64 - (distance - 1).leading_zeros()) as usize;
                let last = self.histogram.len() - 1;
                self.histogram[bucket.min(last)] += 1;
                self.fenwick.add(prev, -1);
            }
        }
        self.fenwick.add(now, 1);
    }

    /// Total accesses recorded.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// First-touch (cold) misses.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Distinct lines seen.
    pub fn unique_lines(&self) -> u64 {
        self.last_time.len() as u64
    }

    /// Misses a fully-associative LRU cache of `capacity_lines` lines
    /// would take on the recorded stream (`capacity_lines` must be a
    /// power of two — the histogram is bucketed that way).
    ///
    /// # Panics
    ///
    /// Panics if `capacity_lines` is zero or not a power of two.
    pub fn misses_at_capacity(&self, capacity_lines: u64) -> u64 {
        assert!(
            capacity_lines > 0 && capacity_lines.is_power_of_two(),
            "capacity must be a positive power of two"
        );
        // An access with stack distance d hits iff d <= capacity. Bucket
        // k spans (2^(k-1), 2^k], so buckets with 2^k <= capacity are
        // hits.
        let cutoff = capacity_lines.trailing_zeros() as usize;
        let reuse_misses: u64 =
            self.histogram.iter().enumerate().filter(|(k, _)| *k > cutoff).map(|(_, &c)| c).sum();
        self.cold_misses + reuse_misses
    }

    /// Miss ratio at a capacity (see [`Self::misses_at_capacity`]).
    pub fn miss_ratio_at_capacity(&self, capacity_lines: u64) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses_at_capacity(capacity_lines) as f64 / self.accesses as f64
        }
    }

    /// The full miss-ratio curve over power-of-two capacities from 1 line
    /// to `max_lines`.
    pub fn curve(&self, max_lines: u64) -> MissRatioCurve {
        let mut points = Vec::new();
        self.curve_into(max_lines, &mut points);
        MissRatioCurve { points, accesses: self.accesses }
    }

    /// As [`Self::curve`], but writes the `(capacity_lines, miss_ratio)`
    /// points into a caller-provided buffer (cleared first, allocation
    /// kept) instead of building a fresh `Vec`. A sweep profiling many L1
    /// groups reuses one buffer across all of them.
    pub fn curve_into(&self, max_lines: u64, points: &mut Vec<(u64, f64)>) {
        points.clear();
        let mut c = 1u64;
        while c <= max_lines {
            points.push((c, self.miss_ratio_at_capacity(c)));
            c *= 2;
        }
    }

    /// Returns the profiler to its freshly-constructed state while
    /// keeping every allocation (Fenwick tree, hash map capacity,
    /// histogram), so one profiler can serve all L1 groups in a sweep
    /// back to back.
    pub fn reset(&mut self) {
        self.fenwick.clear();
        self.last_time.clear();
        self.clock = 0;
        self.accesses = 0;
        self.cold_misses = 0;
        self.histogram.iter_mut().for_each(|h| *h = 0);
    }
}

impl Default for StackDistanceProfiler {
    fn default() -> Self {
        Self::new()
    }
}

/// A miss-ratio-versus-capacity curve from one profiling pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    /// `(capacity_lines, miss_ratio)` points, capacities ascending.
    pub points: Vec<(u64, f64)>,
    /// Accesses behind the curve.
    pub accesses: u64,
}

impl MissRatioCurve {
    /// Miss ratio at the given capacity, if profiled. Capacities are
    /// stored ascending ([`StackDistanceProfiler::curve`] emits them in
    /// doubling order), so the lookup is a binary search.
    pub fn at(&self, capacity_lines: u64) -> Option<f64> {
        self.points
            .binary_search_by_key(&capacity_lines, |&(c, _)| c)
            .ok()
            .map(|i| self.points[i].1)
    }
}

/// Sentinel for an empty direct-mapped slot in [`NestedDmProfiler`]. A
/// real line address can never equal it (lines are byte addresses divided
/// by the line size, so bit 63 is always clear in practice).
const DM_INVALID: u64 = u64::MAX;

/// Independent nested direct-mapped profiler: one plain tag array per
/// power-of-two set count, probed individually on every access.
///
/// This is the audit oracle for the family engine's direct-mapped fast
/// path (`DmConventionalFamily` in
/// [`filter_family`](crate::filter_family)): that engine probes sizes
/// ascending and stops at the first hit, relying on the inclusion
/// invariant (demand-filled DM content at size `S` is a subset of content
/// at `2S`). This profiler does **not** take that shortcut — it probes
/// every size on every access, counts the smallest hitting size into a
/// histogram, and *verifies* the inclusion invariant as it goes, so a
/// violation of the trick's precondition shows up as a counted
/// discrepancy instead of silently corrupted statistics.
///
/// Dirty bits and victim write-backs are out of scope (they are not
/// inclusive across sizes); the per-access naive hierarchy oracle covers
/// those.
#[derive(Debug)]
pub struct NestedDmProfiler {
    set_masks: Vec<u64>,
    tags: Vec<Vec<u64>>,
    /// `hist[t]`: accesses whose smallest hitting size index is `t`
    /// (`hist[len]` = resident nowhere).
    hist: Vec<u64>,
    accesses: u64,
    inclusion_violations: u64,
}

impl NestedDmProfiler {
    /// Creates a profiler over the given per-size set counts, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `set_counts` is empty, not strictly ascending, or holds
    /// a zero or non-power-of-two entry (the nesting argument needs
    /// prefix-bit indexing).
    pub fn new(set_counts: &[u64]) -> Self {
        assert!(!set_counts.is_empty(), "need at least one size");
        for w in set_counts.windows(2) {
            assert!(w[0] < w[1], "set counts must be strictly ascending");
        }
        for &s in set_counts {
            assert!(s > 0 && s.is_power_of_two(), "set counts must be powers of two");
        }
        NestedDmProfiler {
            set_masks: set_counts.iter().map(|&s| s - 1).collect(),
            tags: set_counts.iter().map(|&s| vec![DM_INVALID; s as usize]).collect(),
            hist: vec![0; set_counts.len() + 1],
            accesses: 0,
            inclusion_violations: 0,
        }
    }

    /// Records one probe line: probes **every** size, histograms the
    /// smallest hitting one, checks inclusion, and demand-fills the sizes
    /// that missed.
    pub fn record(&mut self, line: u64) {
        self.accesses += 1;
        let k = self.set_masks.len();
        let mut smallest = k;
        let mut violated = false;
        for i in 0..k {
            let hit = self.tags[i][(line & self.set_masks[i]) as usize] == line;
            if hit && smallest == k {
                smallest = i;
            } else if !hit && smallest < k {
                // A smaller size hit but this larger one missed:
                // inclusion broken.
                violated = true;
            }
        }
        if violated {
            self.inclusion_violations += 1;
        }
        self.hist[smallest] += 1;
        for i in 0..smallest {
            self.tags[i][(line & self.set_masks[i]) as usize] = line;
        }
    }

    /// Clears the histogram at the warm-up boundary (tag arrays persist,
    /// exactly like a back-end's counter reset).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.hist.iter_mut().for_each(|h| *h = 0);
    }

    /// Per-size `(hits, misses)` since the last reset, ascending size
    /// order: size `i` hits every access whose smallest hitting index is
    /// `<= i`.
    pub fn counters(&self) -> Vec<(u64, u64)> {
        let mut hits = 0u64;
        (0..self.set_masks.len())
            .map(|i| {
                hits += self.hist[i];
                (hits, self.accesses - hits)
            })
            .collect()
    }

    /// Accesses recorded since the last reset.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses (lifetime) on which a smaller size hit while a larger one
    /// missed. Always zero for demand-filled nested power-of-two DM
    /// arrays — a nonzero count falsifies the family fast path's
    /// precondition.
    pub fn inclusion_violations(&self) -> u64 {
        self.inclusion_violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::Cache;
    use crate::config::{Associativity, CacheConfig, ReplacementKind};

    fn line(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn cold_misses_counted() {
        let mut p = StackDistanceProfiler::new();
        for l in 0..10u64 {
            p.record(line(l));
        }
        assert_eq!(p.cold_misses(), 10);
        assert_eq!(p.unique_lines(), 10);
        assert_eq!(p.misses_at_capacity(1024), 10);
    }

    #[test]
    fn cyclic_pattern_has_sharp_knee() {
        // Cycling over 8 lines: caches >= 8 lines hit everything after
        // warm-up, caches < 8 lines (LRU) miss everything.
        let mut p = StackDistanceProfiler::new();
        for i in 0..800u64 {
            p.record(line(i % 8));
        }
        assert_eq!(p.misses_at_capacity(8), 8, "only cold misses above the knee");
        assert_eq!(p.misses_at_capacity(4), 800, "LRU thrashes below the knee");
    }

    #[test]
    fn immediate_reuse_hits_in_one_line_cache() {
        let mut p = StackDistanceProfiler::new();
        for _ in 0..5 {
            p.record(line(42));
        }
        assert_eq!(p.misses_at_capacity(1), 1);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let mut p = StackDistanceProfiler::new();
        let mut x = 12345u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            p.record(line(x % 3000));
        }
        let curve = p.curve(4096);
        for w in curve.points.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12, "curve rose: {:?} -> {:?}", w[0], w[1]);
        }
        assert_eq!(curve.at(1024), Some(p.miss_ratio_at_capacity(1024)));
        assert_eq!(curve.at(3), None);
    }

    #[test]
    fn curve_lookup_covers_endpoints_and_absent_capacities() {
        let mut p = StackDistanceProfiler::new();
        for i in 0..500u64 {
            p.record(line(i % 40));
        }
        let curve = p.curve(256);
        // Both endpoints of the profiled range resolve...
        assert_eq!(curve.at(1), Some(p.miss_ratio_at_capacity(1)));
        assert_eq!(curve.at(256), Some(p.miss_ratio_at_capacity(256)));
        // ...every interior power of two resolves...
        for &(c, m) in &curve.points {
            assert_eq!(curve.at(c), Some(m));
        }
        // ...and capacities outside or between the points do not.
        assert_eq!(curve.at(0), None, "below the smallest profiled capacity");
        assert_eq!(curve.at(512), None, "above the largest profiled capacity");
        assert_eq!(curve.at(96), None, "between profiled powers of two");
    }

    #[test]
    fn agrees_with_direct_fa_lru_simulation() {
        // Cross-validate against the real fully-associative LRU cache at
        // several capacities.
        let mut x = 99u64;
        let stream: Vec<LineAddr> = (0..30_000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                line(x % 700)
            })
            .collect();

        let mut p = StackDistanceProfiler::new();
        for &l in &stream {
            p.record(l);
        }

        for capacity in [16u64, 64, 256, 1024] {
            let cfg =
                CacheConfig::new(capacity * 16, 16, Associativity::Full, ReplacementKind::Lru)
                    .expect("valid");
            let mut cache = Cache::new(cfg);
            let mut misses = 0u64;
            for &l in &stream {
                if !cache.access(l, false) {
                    cache.fill(l, false);
                    misses += 1;
                }
            }
            assert_eq!(
                p.misses_at_capacity(capacity),
                misses,
                "profiler disagrees with direct simulation at {capacity} lines"
            );
        }
    }

    #[test]
    fn profile_matches_across_time_growth() {
        // Exercise the Fenwick resize path with a long stream.
        let mut p = StackDistanceProfiler::new();
        for i in 0..5000u64 {
            p.record(line(i % 3));
        }
        assert_eq!(p.accesses(), 5000);
        assert_eq!(p.misses_at_capacity(4), 3);
    }

    #[test]
    fn bottom_up_rebuild_matches_incremental_adds() {
        // Same ones scattered via rebuild and via point updates must
        // produce identical prefix sums at every position.
        let ones: Vec<usize> = (0..300).map(|i| (i * 7 + 3) % 900).collect();
        let mut rebuilt = Fenwick::new();
        rebuilt.rebuild(2000, ones.iter().copied());
        let mut incremental = Fenwick::new();
        incremental.tree = vec![0; rebuilt.tree.len()];
        for &idx in &ones {
            incremental.add(idx, 1);
        }
        assert_eq!(rebuilt.tree, incremental.tree);
        for idx in [0usize, 1, 5, 899, 1500, 2000] {
            assert_eq!(rebuilt.prefix(idx), incremental.prefix(idx), "prefix({idx})");
        }
        assert_eq!(rebuilt.total(), 300);
    }

    #[test]
    fn rebuild_doubles_from_current_size() {
        let mut f = Fenwick::new();
        assert_eq!(f.tree.len(), 1024);
        // A small request still doubles (no shrink, no 1024-floor churn).
        f.rebuild(100, std::iter::empty());
        assert_eq!(f.tree.len(), 2048);
        // A large request jumps straight to its power of two.
        f.rebuild(100_000, std::iter::empty());
        assert_eq!(f.tree.len(), 131_072);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2_capacity() {
        let p = StackDistanceProfiler::new();
        let _ = p.misses_at_capacity(3);
    }

    #[test]
    fn at_out_of_range_semantics_on_empty_and_single_point_curves() {
        // Degenerate curves pin the binary-search edges: an empty curve
        // resolves nothing; a one-point curve resolves exactly its point.
        let empty = MissRatioCurve { points: Vec::new(), accesses: 0 };
        assert_eq!(empty.at(0), None);
        assert_eq!(empty.at(1), None);
        assert_eq!(empty.at(u64::MAX), None);

        let mut p = StackDistanceProfiler::new();
        p.record(line(7));
        let one = p.curve(1);
        assert_eq!(one.points.len(), 1);
        assert_eq!(one.at(1), Some(1.0), "single cold miss at the exact boundary");
        assert_eq!(one.at(0), None, "below the smallest profiled capacity");
        assert_eq!(one.at(2), None, "above the largest profiled capacity");
    }

    #[test]
    fn reset_profiler_matches_fresh_profiler() {
        // A reset profiler must be indistinguishable from a new one:
        // same curve, same counters, even after the Fenwick grew.
        let mut reused = StackDistanceProfiler::new();
        for i in 0..5000u64 {
            reused.record(line(i % 97));
        }
        reused.reset();
        assert_eq!(reused.accesses(), 0);
        assert_eq!(reused.cold_misses(), 0);
        assert_eq!(reused.unique_lines(), 0);

        let mut fresh = StackDistanceProfiler::new();
        let mut x = 5u64;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            reused.record(line(x % 300));
        }
        x = 5;
        for _ in 0..2000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            fresh.record(line(x % 300));
        }
        assert_eq!(reused.curve(1024), fresh.curve(1024));
        assert_eq!(reused.cold_misses(), fresh.cold_misses());
    }

    #[test]
    fn curve_into_reuses_buffer_and_matches_curve() {
        let mut p = StackDistanceProfiler::new();
        for i in 0..500u64 {
            p.record(line(i % 40));
        }
        // Pre-poison the buffer with stale points from a bigger range.
        let mut buf = vec![(u64::MAX, -1.0); 30];
        p.curve_into(64, &mut buf);
        assert_eq!(buf, p.curve(64).points);
    }

    #[test]
    fn nested_dm_profiler_counts_smallest_hitting_size() {
        // 2-set and 8-set DM arrays over lines 0..4: the 8-set array
        // holds all four after the cold pass, the 2-set array thrashes
        // (0/2 conflict, 1/3 conflict).
        let mut p = NestedDmProfiler::new(&[2, 8]);
        for round in 0..3 {
            for l in 0u64..4 {
                p.record(l);
            }
            let _ = round;
        }
        assert_eq!(p.accesses(), 12);
        assert_eq!(p.inclusion_violations(), 0);
        let c = p.counters();
        // Small size: 0 evicts 2 and vice versa (same for 1/3) — after
        // the cold pass every probe still misses at 2 sets.
        assert_eq!(c[0], (0, 12));
        // Large size: 4 cold misses, everything else hits.
        assert_eq!(c[1], (8, 4));
    }

    #[test]
    fn nested_dm_profiler_reset_keeps_contents() {
        let mut p = NestedDmProfiler::new(&[4]);
        for l in 0u64..4 {
            p.record(l);
        }
        p.reset_counters();
        for l in 0u64..4 {
            p.record(l);
        }
        assert_eq!(p.counters()[0], (4, 0), "warmed array hits everything after reset");
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn nested_dm_profiler_rejects_unsorted_sizes() {
        let _ = NestedDmProfiler::new(&[8, 2]);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// `at` resolves exactly the profiled power-of-two capacities
            /// — nothing below, above, or between them — and the curve it
            /// reads from is monotone non-increasing in capacity.
            #[test]
            fn at_resolves_profiled_points_only_and_curve_is_monotone(
                lines in prop::collection::vec(0u64..200, 1..300),
                max_pow in 0u32..11,
            ) {
                let mut p = StackDistanceProfiler::new();
                for &l in &lines {
                    p.record(LineAddr(l));
                }
                let max = 1u64 << max_pow;
                let curve = p.curve(max);
                let mut prev = f64::INFINITY;
                for &(c, m) in &curve.points {
                    prop_assert_eq!(curve.at(c), Some(m), "exact boundary lookup");
                    prop_assert!(m <= prev + 1e-12, "miss ratio rose at {c}: {m} > {prev}");
                    prev = m;
                }
                prop_assert_eq!(curve.at(0), None, "below the smallest capacity");
                prop_assert_eq!(curve.at(max * 2), None, "above the largest capacity");
                if max >= 4 {
                    prop_assert_eq!(curve.at(3), None, "between profiled powers of two");
                }
            }

            /// The nested DM profiler never observes an inclusion
            /// violation and its per-size hit counts are monotone in size.
            #[test]
            fn nested_dm_inclusion_holds_and_hits_are_monotone(
                lines in prop::collection::vec(0u64..512, 1..400),
            ) {
                let mut p = NestedDmProfiler::new(&[2, 8, 32, 128]);
                for &l in &lines {
                    p.record(l);
                }
                prop_assert_eq!(p.inclusion_violations(), 0);
                let c = p.counters();
                for w in c.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0, "hits shrank with size: {:?}", c);
                }
                for &(h, m) in &c {
                    prop_assert_eq!(h + m, lines.len() as u64);
                }
            }
        }
    }
}
