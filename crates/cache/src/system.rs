//! [`SystemKind`]: closed-enum dispatch over the hierarchies a
//! design-space sweep evaluates.
//!
//! The open [`MemorySystem`] trait stays the extension surface for the
//! CLI and one-off experiments, but a sweep's inner loop touches the
//! memory system two million times per configuration, and a
//! `Box<dyn MemorySystem>` forces a virtual call (and blocks inlining)
//! on every one of them. The paper's sweeps only ever instantiate three
//! organisations — single-level, conventional two-level, exclusive
//! two-level — so the hot path closes the set into an enum: `match`
//! dispatch that the compiler can inline through and branch-predict.

use crate::config::CacheConfig;
use crate::exclusive::ExclusiveTwoLevel;
use crate::hierarchy::{InstructionOutcome, MemorySystem, ServiceLevel};
use crate::single::SingleLevel;
use crate::stats::HierarchyStats;
use crate::twolevel::ConventionalTwoLevel;
use tlc_trace::{InstructionRecord, LineAddr, MemRef};

/// A memory system drawn from the closed set of sweep organisations.
///
/// Implements [`MemorySystem`] (by `match`, not vtable), so it drops
/// into any code written against the trait while keeping the inner
/// loop devirtualized.
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, CacheConfig, MemorySystem, SystemKind};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct)?;
/// let l2 = CacheConfig::paper(64 * 1024, Associativity::SetAssoc(4))?;
/// let mut sys = SystemKind::conventional(l1, l2);
/// assert!(sys.describe().contains("L1"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub enum SystemKind {
    /// Split direct-mapped L1 caches only (paper §3).
    Single(SingleLevel),
    /// Unified L2 with the standard (inclusive-tending) fill policy
    /// (paper §4–§7).
    Conventional(ConventionalTwoLevel),
    /// Two-level exclusive caching with victim swap (paper §8).
    Exclusive(ExclusiveTwoLevel),
}

impl SystemKind {
    /// Builds the single-level organisation.
    pub fn single(l1: CacheConfig) -> Self {
        SystemKind::Single(SingleLevel::new(l1))
    }

    /// Builds the conventional two-level organisation.
    pub fn conventional(l1: CacheConfig, l2: CacheConfig) -> Self {
        SystemKind::Conventional(ConventionalTwoLevel::new(l1, l2))
    }

    /// Builds the exclusive two-level organisation.
    pub fn exclusive(l1: CacheConfig, l2: CacheConfig) -> Self {
        SystemKind::Exclusive(ExclusiveTwoLevel::new(l1, l2))
    }

    /// Processes a single reference (enum-dispatched hot path).
    #[inline]
    pub fn access(&mut self, r: MemRef) -> ServiceLevel {
        match self {
            SystemKind::Single(s) => s.access(r),
            SystemKind::Conventional(s) => s.access(r),
            SystemKind::Exclusive(s) => s.access(r),
        }
    }

    /// Accumulated statistics.
    #[inline]
    pub fn stats(&self) -> &HierarchyStats {
        match self {
            SystemKind::Single(s) => s.stats(),
            SystemKind::Conventional(s) => s.stats(),
            SystemKind::Exclusive(s) => s.stats(),
        }
    }

    /// Clears statistics without flushing cache contents.
    pub fn reset_stats(&mut self) {
        match self {
            SystemKind::Single(s) => s.reset_stats(),
            SystemKind::Conventional(s) => s.reset_stats(),
            SystemKind::Exclusive(s) => s.reset_stats(),
        }
    }

    /// A short human-readable description of the organisation.
    pub fn describe(&self) -> String {
        match self {
            SystemKind::Single(s) => s.describe(),
            SystemKind::Conventional(s) => s.describe(),
            SystemKind::Exclusive(s) => s.describe(),
        }
    }
}

impl MemorySystem for SystemKind {
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        SystemKind::access(self, r)
    }

    fn stats(&self) -> &HierarchyStats {
        SystemKind::stats(self)
    }

    fn reset_stats(&mut self) {
        SystemKind::reset_stats(self)
    }

    fn describe(&self) -> String {
        SystemKind::describe(self)
    }

    fn access_instruction(&mut self, rec: &InstructionRecord) -> InstructionOutcome {
        let fetch = SystemKind::access(self, MemRef::fetch(rec.fetch));
        let data = rec.data.map(|d| SystemKind::access(self, d));
        InstructionOutcome { fetch, data }
    }

    fn invalidate_line(&mut self, line: LineAddr) -> u32 {
        match self {
            SystemKind::Single(s) => s.invalidate_line(line),
            SystemKind::Conventional(s) => s.invalidate_line(line),
            SystemKind::Exclusive(s) => s.invalidate_line(line),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;
    use tlc_trace::Addr;

    fn cfg(bytes: u64, assoc: Associativity) -> CacheConfig {
        CacheConfig::paper(bytes, assoc).expect("valid config")
    }

    fn drive(sys: &mut dyn MemorySystem, n: u64) {
        for i in 0..n {
            let rec = InstructionRecord::with_data(
                Addr::new(0x40_0000 + (i % 512) * 4),
                MemRef::load(Addr::new(0x1000_0000 + (i % 2048) * 16)),
            );
            sys.access_instruction(&rec);
        }
    }

    #[test]
    fn enum_dispatch_matches_boxed_dispatch() {
        let l1 = cfg(1024, Associativity::Direct);
        let l2 = cfg(8 * 1024, Associativity::SetAssoc(4));
        let builders: [(SystemKind, Box<dyn MemorySystem>); 3] = [
            (SystemKind::single(l1), Box::new(SingleLevel::new(l1))),
            (SystemKind::conventional(l1, l2), Box::new(ConventionalTwoLevel::new(l1, l2))),
            (SystemKind::exclusive(l1, l2), Box::new(ExclusiveTwoLevel::new(l1, l2))),
        ];
        for (mut kind, mut boxed) in builders {
            drive(&mut kind, 5000);
            drive(boxed.as_mut(), 5000);
            assert_eq!(kind.stats(), boxed.stats(), "{}", boxed.describe());
            assert_eq!(MemorySystem::describe(&kind), boxed.describe());
        }
    }

    #[test]
    fn reset_preserves_contents_like_the_inner_system() {
        let l1 = cfg(1024, Associativity::Direct);
        let l2 = cfg(8 * 1024, Associativity::SetAssoc(4));
        let mut sys = SystemKind::conventional(l1, l2);
        // A footprint that fits entirely in the 1 KB L1s: 256 B of code,
        // 256 B of data.
        let replay = |sys: &mut SystemKind| {
            for i in 0..2000u64 {
                let rec = InstructionRecord::with_data(
                    Addr::new(0x40_0000 + (i % 64) * 4),
                    MemRef::load(Addr::new(0x1000_0000 + (i % 16) * 16)),
                );
                sys.access_instruction(&rec);
            }
        };
        replay(&mut sys);
        sys.reset_stats();
        assert_eq!(sys.stats().instructions, 0);
        // Caches stayed warm: replaying the same footprint all hits.
        replay(&mut sys);
        assert_eq!(sys.stats().l1_misses(), 0, "warm replay must not miss");
    }
}
