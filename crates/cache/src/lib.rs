//! # tlc-cache — cache hierarchy simulator
//!
//! Cache-simulation substrate for the reproduction of Jouppi & Wilton,
//! *Tradeoffs in Two-Level On-Chip Caching* (WRL 93/3 / ISCA 1994).
//!
//! The crate provides every cache organisation the paper evaluates:
//!
//! * [`SingleLevel`] — split direct-mapped L1 caches only (§3);
//! * [`ConventionalTwoLevel`] — unified L2 with the standard fill policy
//!   (§4, §5, §7);
//! * [`ExclusiveTwoLevel`] — the paper's contribution, two-level
//!   exclusive caching with victim swap (§8);
//! * [`VictimCacheSystem`] — the degenerate `y < x` case, a shared
//!   fully-associative victim buffer (Jouppi 1990, referenced in §8);
//!
//! plus replacement policies (LRU, FIFO, the paper's pseudo-random,
//! tree-PLRU, and SRRIP), per-fill block-liveness statistics
//! ([`Liveness`]), 3C miss classification ([`MissClassifier`]), and
//! content auditing ([`DuplicationReport`]).
//!
//! ## Quick start
//!
//! ```
//! use tlc_cache::{Associativity, CacheConfig, ExclusiveTwoLevel, MemorySystem};
//! use tlc_trace::spec::SpecBenchmark;
//!
//! # fn main() -> Result<(), tlc_cache::ConfigError> {
//! let l1 = CacheConfig::paper(4 * 1024, Associativity::Direct)?;
//! let l2 = CacheConfig::paper(32 * 1024, Associativity::SetAssoc(4))?;
//! let mut sys = ExclusiveTwoLevel::new(l1, l2);
//!
//! let mut workload = SpecBenchmark::Gcc1.workload();
//! for _ in 0..50_000 {
//!     let instr = workload.next_instruction();
//!     sys.access_instruction(&instr);
//! }
//! println!("{}", sys.stats());
//! assert!(sys.stats().l1_miss_rate() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod board;
mod cache;
mod classify;
mod config;
mod exclusive;
pub mod filter;
pub mod filter_family;
mod hierarchy;
mod inclusive;
mod mattson;
pub mod oracle;
pub mod predict;
mod prefetch;
mod replacement;
mod single;
mod stats;
mod system;
mod twolevel;
mod victim;

pub use audit::DuplicationReport;
pub use board::{effective_offchip_ns, BoardCache, BoardOutcome};
pub use cache::{Cache, Evicted, Liveness, Slot};
pub use classify::{MissBreakdown, MissClass, MissClassifier};
pub use config::{Associativity, CacheConfig, ConfigError, ReplacementKind};
pub use exclusive::ExclusiveTwoLevel;
pub use filter::{L1FrontEnd, MissStream};
pub use hierarchy::{InstructionOutcome, MemorySystem, ServiceLevel};
pub use inclusive::InclusiveTwoLevel;
pub use mattson::{MissRatioCurve, NestedDmProfiler, StackDistanceProfiler};
pub use oracle::{
    lru_misses, naive_replay_conventional, naive_replay_exclusive, naive_replay_single, NaiveSystem,
};
pub use predict::{miss_ratio_error, ReuseProfile, MISS_RATIO_EPSILON};
pub use prefetch::StreamBufferSystem;
pub use replacement::{Lfsr16, ReplState};
pub use single::SingleLevel;
pub use stats::{CacheStats, HierarchyStats};
pub use system::SystemKind;
pub use twolevel::ConventionalTwoLevel;
pub use victim::VictimCacheSystem;
