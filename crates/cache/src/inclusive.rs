//! Enforced-inclusion two-level organisation (Baer & Wang, the paper's
//! reference [1]).
//!
//! The paper's §8 closing remark notes that multiprocessor systems often
//! want the inclusion property "for ease of constructing multiprocessor
//! systems": every line in an L1 is also present in the L2, so external
//! coherence traffic only needs to probe the L2. Enforcing it requires
//! **back-invalidation**: when the L2 evicts a line, any L1 copy must be
//! invalidated too.
//!
//! This organisation is the third point on the policy spectrum the
//! repository can ablate:
//!
//! * [`InclusiveTwoLevel`] — strict inclusion (this module): lowest
//!   effective capacity, simplest coherence;
//! * [`ConventionalTwoLevel`](crate::ConventionalTwoLevel) — inclusion by
//!   demand flow, never enforced (the paper's baseline);
//! * [`ExclusiveTwoLevel`](crate::ExclusiveTwoLevel) — the paper's §8
//!   contribution, maximum effective capacity.

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::hierarchy::{MemorySystem, ServiceLevel};
use crate::stats::HierarchyStats;
use tlc_trace::{AccessKind, MemRef};

/// Split L1 I/D caches over a unified L2 with **enforced** inclusion
/// (back-invalidation on L2 evictions).
///
/// # Examples
///
/// ```
/// use tlc_cache::{Associativity, CacheConfig, InclusiveTwoLevel, MemorySystem};
/// use tlc_trace::{Addr, MemRef};
///
/// # fn main() -> Result<(), tlc_cache::ConfigError> {
/// let l1 = CacheConfig::paper(1024, Associativity::Direct)?;
/// let l2 = CacheConfig::paper(8 * 1024, Associativity::SetAssoc(4))?;
/// let mut sys = InclusiveTwoLevel::new(l1, l2);
/// sys.access(MemRef::load(Addr::new(0x9000)));
/// // Inclusion invariant: the L1 line is also in the L2.
/// assert!(sys.l2().contains(Addr::new(0x9000).line(16)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct InclusiveTwoLevel {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    line_bytes: u64,
    stats: HierarchyStats,
    back_invalidations: u64,
}

impl InclusiveTwoLevel {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if the configurations disagree on line size, or if the L2
    /// is smaller than one L1 (inclusion would be impossible to
    /// maintain usefully).
    pub fn new(l1_cfg: CacheConfig, l2_cfg: CacheConfig) -> Self {
        assert_eq!(l1_cfg.line_bytes(), l2_cfg.line_bytes(), "L1 and L2 must share a line size");
        assert!(
            l2_cfg.size_bytes() >= l1_cfg.size_bytes(),
            "an inclusive L2 must be at least as large as one L1"
        );
        InclusiveTwoLevel {
            l1i: Cache::new(l1_cfg),
            l1d: Cache::new(l1_cfg),
            l2: Cache::new(l2_cfg),
            line_bytes: l1_cfg.line_bytes(),
            stats: HierarchyStats::default(),
            back_invalidations: 0,
        }
    }

    /// The instruction cache.
    pub fn l1i(&self) -> &Cache {
        &self.l1i
    }

    /// The data cache.
    pub fn l1d(&self) -> &Cache {
        &self.l1d
    }

    /// The unified second-level cache.
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// L1 lines invalidated to preserve inclusion when their L2 copy was
    /// evicted.
    pub fn back_invalidations(&self) -> u64 {
        self.back_invalidations
    }

    /// Evicts `line` from the L2 domain: invalidate any L1 copies
    /// (merging their dirty state into the writeback decision).
    fn back_invalidate(&mut self, line: tlc_trace::LineAddr, l2_dirty: bool) {
        let mut dirty = l2_dirty;
        if let Some((d, _)) = self.l1i.extract(line) {
            self.back_invalidations += 1;
            dirty |= d;
        }
        if let Some((d, _)) = self.l1d.extract(line) {
            self.back_invalidations += 1;
            dirty |= d;
        }
        if dirty {
            self.stats.offchip_writebacks += 1;
        }
    }
}

impl MemorySystem for InclusiveTwoLevel {
    #[inline]
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        let line = r.addr.line(self.line_bytes);
        let is_write = r.kind == AccessKind::Store;
        let (l1, miss_ctr) = match r.kind {
            AccessKind::InstrFetch => {
                self.stats.instructions += 1;
                (&mut self.l1i, &mut self.stats.l1i_misses)
            }
            AccessKind::Load | AccessKind::Store => {
                self.stats.data_refs += 1;
                (&mut self.l1d, &mut self.stats.l1d_misses)
            }
        };
        if l1.access(line, is_write) {
            return ServiceLevel::L1;
        }
        *miss_ctr += 1;

        let l2_hit = self.l2.access(line, false);
        if !l2_hit {
            self.stats.l2_misses += 1;
            // Fill the L2 first; its victim must be purged from the L1s.
            if let Some(v2) = self.l2.fill_after_miss(line, false) {
                self.back_invalidate(v2.line, v2.dirty);
            }
        } else {
            self.stats.l2_hits += 1;
        }
        // Fill the L1. The victim's data lives on in the L2 (inclusion),
        // so a dirty victim just updates its L2 copy.
        let l1 = if r.kind == AccessKind::InstrFetch { &mut self.l1i } else { &mut self.l1d };
        if let Some(v) = l1.fill_after_miss(line, is_write) {
            if v.dirty {
                // Inclusion guarantees the copy exists unless this very
                // fill displaced it; fall back to off-chip then.
                if !self.l2.merge_if_present(v.line, true) {
                    self.stats.offchip_writebacks += 1;
                }
            }
        }
        if l2_hit {
            ServiceLevel::L2
        } else {
            ServiceLevel::Memory
        }
    }

    fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
        self.back_invalidations = 0;
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }

    fn invalidate_line(&mut self, line: tlc_trace::LineAddr) -> u32 {
        let mut purged = 0;
        purged += self.l1i.invalidate(line) as u32;
        purged += self.l1d.invalidate(line) as u32;
        purged += self.l2.invalidate(line) as u32;
        purged
    }

    fn describe(&self) -> String {
        format!(
            "inclusive two-level: split L1 {} / unified L2 {} (back-invalidating)",
            self.l1i.config(),
            self.l2.config()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Associativity;
    use crate::exclusive::ExclusiveTwoLevel;
    use crate::twolevel::ConventionalTwoLevel;
    use tlc_trace::Addr;

    fn sys(l1_bytes: u64, l2_bytes: u64, l2_assoc: Associativity) -> InclusiveTwoLevel {
        InclusiveTwoLevel::new(
            CacheConfig::paper(l1_bytes, Associativity::Direct).expect("valid"),
            CacheConfig::paper(l2_bytes, l2_assoc).expect("valid"),
        )
    }

    /// Checks the inclusion invariant: every valid L1 line is in the L2.
    fn assert_inclusion(s: &InclusiveTwoLevel) {
        for l in s.l1i().iter_lines().chain(s.l1d().iter_lines()) {
            assert!(s.l2().contains(l), "line {l} in L1 but not in L2");
        }
    }

    #[test]
    fn inclusion_holds_under_random_walk() {
        let mut s = sys(512, 2048, Associativity::SetAssoc(4));
        for i in 0..30_000u64 {
            let addr = Addr::new((i * 52) % 16384);
            if i % 3 == 0 {
                s.access(MemRef::fetch(addr));
            } else if i % 3 == 1 {
                s.access(MemRef::load(addr));
            } else {
                s.access(MemRef::store(addr));
            }
            if i % 500 == 0 {
                assert_inclusion(&s);
            }
        }
        assert_inclusion(&s);
        assert!(s.back_invalidations() > 0, "a thrashing walk must force back-invalidations");
    }

    #[test]
    fn back_invalidation_forces_l1_miss() {
        // Direct-mapped 4-line L2 over 4-line L1s: push a line out of L2
        // while it is still live in L1 and verify it got invalidated.
        let mut s = sys(64, 64, Associativity::Direct);
        let a = Addr::new(0x000);
        s.access(MemRef::load(a));
        assert!(s.l1d().contains(a.line(16)));
        // Conflicts with a in the 4-line (64B) L2.
        let b = Addr::new(0x040);
        s.access(MemRef::fetch(b)); // L2 evicts a -> back-invalidate L1D copy
        assert!(!s.l1d().contains(a.line(16)), "inclusion requires purging a from L1");
        assert!(s.back_invalidations() >= 1);
    }

    #[test]
    fn policy_capacity_ordering() {
        // Effective capacity: inclusive <= conventional <= exclusive,
        // observable as off-chip misses on a working set just beyond L2.
        let l1 = CacheConfig::paper(1024, Associativity::Direct).expect("valid");
        let l2 = CacheConfig::paper(4096, Associativity::SetAssoc(4)).expect("valid");
        let mut incl = InclusiveTwoLevel::new(l1, l2);
        let mut conv = ConventionalTwoLevel::new(l1, l2);
        let mut excl = ExclusiveTwoLevel::new(l1, l2);
        for i in 0..60_000u64 {
            let addr = Addr::new((i * 52) % 6144); // 6KB working set
            incl.access(MemRef::load(addr));
            conv.access(MemRef::load(addr));
            excl.access(MemRef::load(addr));
        }
        let (mi, mc, me) = (incl.stats().l2_misses, conv.stats().l2_misses, excl.stats().l2_misses);
        assert!(me < mc, "exclusive {me} must beat conventional {mc}");
        assert!(mc <= mi, "conventional {mc} must not lose to inclusive {mi}");
    }

    #[test]
    fn dirty_back_invalidated_line_is_written_back() {
        let mut s = sys(64, 64, Associativity::Direct);
        let a = Addr::new(0x000);
        s.access(MemRef::store(a)); // dirty in L1D, clean copy in L2
        s.access(MemRef::fetch(Addr::new(0x040))); // evicts a from L2
        assert!(s.stats().offchip_writebacks >= 1, "dirty data lost on back-invalidation");
    }

    #[test]
    fn accounting_balances() {
        let mut s = sys(512, 4096, Associativity::SetAssoc(4));
        for i in 0..20_000u64 {
            s.access(MemRef::load(Addr::new((i * 52) % 32768)));
        }
        let st = s.stats();
        assert_eq!(st.l1_misses(), st.l2_hits + st.l2_misses);
    }

    #[test]
    #[should_panic(expected = "at least as large")]
    fn rejects_l2_smaller_than_l1() {
        let _ = sys(1024, 512, Associativity::Direct);
    }

    #[test]
    fn describe_mentions_inclusion() {
        assert!(sys(64, 256, Associativity::Direct).describe().contains("inclusive"));
    }
}
