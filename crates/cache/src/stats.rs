//! Hit/miss counters for single caches and whole hierarchies.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::AddAssign;

/// Counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups performed.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Valid lines displaced by fills.
    pub evictions: u64,
    /// Evicted lines that were dirty.
    pub dirty_evictions: u64,
}

impl CacheStats {
    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; zero when no accesses were made.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }

    /// Hit ratio in `[0, 1]`; zero when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.accesses += rhs.accesses;
        self.hits += rhs.hits;
        self.evictions += rhs.evictions;
        self.dirty_evictions += rhs.dirty_evictions;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} accesses, {} hits, {} misses (miss rate {:.4})",
            self.accesses,
            self.hits,
            self.misses(),
            self.miss_rate()
        )
    }
}

/// Counters for a full memory system, in the units the paper's TPI model
/// consumes (§2.5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyStats {
    /// Instructions processed (one instruction fetch each).
    pub instructions: u64,
    /// Data references processed.
    pub data_refs: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L1 data-cache misses.
    pub l1d_misses: u64,
    /// References satisfied by the second level (or victim buffer).
    pub l2_hits: u64,
    /// References that went off-chip.
    pub l2_misses: u64,
    /// Dirty lines written back off-chip.
    pub offchip_writebacks: u64,
}

impl HierarchyStats {
    /// Total references (instruction + data).
    pub fn total_refs(&self) -> u64 {
        self.instructions + self.data_refs
    }

    /// Total first-level misses.
    pub fn l1_misses(&self) -> u64 {
        self.l1i_misses + self.l1d_misses
    }

    /// Overall first-level miss rate per reference.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.total_refs() == 0 {
            0.0
        } else {
            self.l1_misses() as f64 / self.total_refs() as f64
        }
    }

    /// Local second-level miss rate (per L1 miss).
    pub fn l2_local_miss_rate(&self) -> f64 {
        let probes = self.l2_hits + self.l2_misses;
        if probes == 0 {
            0.0
        } else {
            self.l2_misses as f64 / probes as f64
        }
    }

    /// Global miss rate: references going off-chip per reference.
    pub fn global_miss_rate(&self) -> f64 {
        if self.total_refs() == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.total_refs() as f64
        }
    }
}

impl AddAssign for HierarchyStats {
    fn add_assign(&mut self, rhs: HierarchyStats) {
        self.instructions += rhs.instructions;
        self.data_refs += rhs.data_refs;
        self.l1i_misses += rhs.l1i_misses;
        self.l1d_misses += rhs.l1d_misses;
        self.l2_hits += rhs.l2_hits;
        self.l2_misses += rhs.l2_misses;
        self.offchip_writebacks += rhs.offchip_writebacks;
    }
}

impl fmt::Display for HierarchyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instr, {} data; L1 miss {:.4}, L2 local miss {:.4}, global miss {:.4}",
            self.instructions,
            self.data_refs,
            self.l1_miss_rate(),
            self.l2_local_miss_rate(),
            self.global_miss_rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_rates() {
        let s = CacheStats { accesses: 100, hits: 75, evictions: 10, dirty_evictions: 4 };
        assert_eq!(s.misses(), 25);
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let s = CacheStats::default();
        assert_eq!(s.miss_rate(), 0.0);
        assert_eq!(s.hit_rate(), 0.0);
        let h = HierarchyStats::default();
        assert_eq!(h.l1_miss_rate(), 0.0);
        assert_eq!(h.l2_local_miss_rate(), 0.0);
        assert_eq!(h.global_miss_rate(), 0.0);
    }

    #[test]
    fn hierarchy_rates() {
        let h = HierarchyStats {
            instructions: 800,
            data_refs: 200,
            l1i_misses: 40,
            l1d_misses: 10,
            l2_hits: 30,
            l2_misses: 20,
            offchip_writebacks: 5,
        };
        assert_eq!(h.total_refs(), 1000);
        assert_eq!(h.l1_misses(), 50);
        assert!((h.l1_miss_rate() - 0.05).abs() < 1e-12);
        assert!((h.l2_local_miss_rate() - 0.4).abs() < 1e-12);
        assert!((h.global_miss_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = CacheStats { accesses: 1, hits: 1, evictions: 0, dirty_evictions: 0 };
        a += CacheStats { accesses: 2, hits: 0, evictions: 1, dirty_evictions: 1 };
        assert_eq!(a, CacheStats { accesses: 3, hits: 1, evictions: 1, dirty_evictions: 1 });

        let mut h = HierarchyStats { instructions: 1, ..Default::default() };
        h += HierarchyStats { instructions: 2, l2_hits: 3, ..Default::default() };
        assert_eq!(h.instructions, 3);
        assert_eq!(h.l2_hits, 3);
    }

    #[test]
    fn displays_are_informative() {
        let s = CacheStats { accesses: 4, hits: 3, evictions: 0, dirty_evictions: 0 };
        assert!(s.to_string().contains("miss rate"));
        assert!(HierarchyStats::default().to_string().contains("L1 miss"));
    }
}
