//! Hierarchy content auditors.
//!
//! The paper's argument for exclusive caching is about *content overlap*:
//! a conventional hierarchy wastes L2 capacity on lines that are already
//! in the L1s. [`DuplicationReport`] measures that overlap directly from
//! cache contents, and is used by tests, examples, and the ablation
//! benches to show the exclusive policy actually removes duplication.

use crate::cache::Cache;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use tlc_trace::LineAddr;

/// Snapshot of content overlap between the L1 caches and the L2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DuplicationReport {
    /// Valid lines in the L1 instruction cache.
    pub l1i_lines: u64,
    /// Valid lines in the L1 data cache.
    pub l1d_lines: u64,
    /// Valid lines in the L2.
    pub l2_lines: u64,
    /// L2 lines that are also present in an L1 (the duplication the
    /// exclusive policy eliminates).
    pub duplicated: u64,
}

impl DuplicationReport {
    /// Computes the report from cache contents.
    pub fn measure(l1i: &Cache, l1d: &Cache, l2: &Cache) -> Self {
        let l1_lines: HashSet<LineAddr> = l1i.iter_lines().chain(l1d.iter_lines()).collect();
        let duplicated = l2.iter_lines().filter(|l| l1_lines.contains(l)).count() as u64;
        DuplicationReport {
            l1i_lines: l1i.resident_lines(),
            l1d_lines: l1d.resident_lines(),
            l2_lines: l2.resident_lines(),
            duplicated,
        }
    }

    /// Unique lines resident on chip across all levels.
    pub fn unique_on_chip(&self) -> u64 {
        self.l1i_lines + self.l1d_lines + self.l2_lines - self.duplicated
    }

    /// Fraction of L2 lines duplicated in an L1 (`0` when the L2 is
    /// empty).
    pub fn duplication_fraction(&self) -> f64 {
        if self.l2_lines == 0 {
            0.0
        } else {
            self.duplicated as f64 / self.l2_lines as f64
        }
    }

    /// Whether the hierarchy is strictly exclusive (no overlap at all).
    pub fn is_exclusive(&self) -> bool {
        self.duplicated == 0
    }
}

impl fmt::Display for DuplicationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1I {} + L1D {} + L2 {} lines; {} duplicated ({:.1}% of L2); {} unique on-chip",
            self.l1i_lines,
            self.l1d_lines,
            self.l2_lines,
            self.duplicated,
            self.duplication_fraction() * 100.0,
            self.unique_on_chip()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, CacheConfig};
    use crate::exclusive::ExclusiveTwoLevel;
    use crate::hierarchy::MemorySystem;
    use crate::twolevel::ConventionalTwoLevel;
    use tlc_trace::{Addr, MemRef};

    fn drive<M: MemorySystem>(sys: &mut M, n: u64, span: u64) {
        for i in 0..n {
            sys.access(MemRef::load(Addr::new((i * 52) % span)));
        }
    }

    #[test]
    fn conventional_duplicates_exclusive_does_not() {
        let l1 = CacheConfig::paper(1024, Associativity::Direct).unwrap();
        let l2 = CacheConfig::paper(4096, Associativity::SetAssoc(4)).unwrap();
        let mut conv = ConventionalTwoLevel::new(l1, l2);
        let mut excl = ExclusiveTwoLevel::new(l1, l2);
        drive(&mut conv, 50_000, 16 * 1024);
        drive(&mut excl, 50_000, 16 * 1024);

        let rc = DuplicationReport::measure(conv.l1i(), conv.l1d(), conv.l2());
        let re = DuplicationReport::measure(excl.l1i(), excl.l1d(), excl.l2());
        assert!(rc.duplication_fraction() > 0.1, "conventional should duplicate: {rc}");
        assert!(
            re.duplication_fraction() < rc.duplication_fraction() / 2.0,
            "exclusive should duplicate far less: {re} vs {rc}"
        );
        assert!(
            re.unique_on_chip() > rc.unique_on_chip(),
            "exclusive should hold more unique lines: {re} vs {rc}"
        );
    }

    #[test]
    fn report_arithmetic() {
        let r = DuplicationReport { l1i_lines: 10, l1d_lines: 20, l2_lines: 100, duplicated: 25 };
        assert_eq!(r.unique_on_chip(), 105);
        assert!((r.duplication_fraction() - 0.25).abs() < 1e-12);
        assert!(!r.is_exclusive());
        let r0 = DuplicationReport { l1i_lines: 0, l1d_lines: 0, l2_lines: 0, duplicated: 0 };
        assert_eq!(r0.duplication_fraction(), 0.0);
        assert!(r0.is_exclusive());
    }

    #[test]
    fn display_mentions_duplication() {
        let r = DuplicationReport { l1i_lines: 1, l1d_lines: 1, l2_lines: 2, duplicated: 1 };
        assert!(r.to_string().contains("duplicated"));
    }
}
