//! Per-set replacement state machines.
//!
//! Each cache set owns one [`ReplState`]; the cache notifies it on every
//! hit/fill (`touch`) and asks it for a victim way when a fill finds no
//! free way. Pseudo-random replacement — the paper's choice for its
//! set-associative L2 caches — uses a cache-global 16-bit LFSR threaded in
//! by the caller so replacement decisions stay deterministic.

use crate::config::ReplacementKind;

/// Maximum 2-bit re-reference prediction value: "re-referenced in the
/// distant future" — the value SRRIP evicts at.
pub(crate) const SRRIP_MAX_RRPV: u8 = 3;
/// RRPV given to a freshly filled line: "long" (distant − 1), so a new
/// line survives one round of ageing but loses to never-touched ways.
pub(crate) const SRRIP_LONG_RRPV: u8 = 2;

/// A 16-bit maximal-length Fibonacci LFSR (taps 16, 15, 13, 4) used for
/// pseudo-random way selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr16 {
    state: u16,
}

impl Lfsr16 {
    /// Creates the LFSR; a zero seed is mapped to 1 (the all-zero state is
    /// absorbing).
    pub fn new(seed: u16) -> Self {
        Lfsr16 { state: if seed == 0 { 1 } else { seed } }
    }

    /// Advances one step and returns the new state.
    // Named after the hardware operation; the LFSR is not an Iterator
    // (it never ends and yielding Option<u16> would be noise).
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> u16 {
        let s = self.state;
        let bit = (s ^ (s >> 1) ^ (s >> 3) ^ (s >> 12)) & 1;
        self.state = (s >> 1) | (bit << 15);
        self.state
    }
}

impl Default for Lfsr16 {
    fn default() -> Self {
        Lfsr16::new(0xACE1)
    }
}

/// Replacement bookkeeping for one set.
#[derive(Debug, Clone)]
pub enum ReplState {
    /// LRU / FIFO: per-way 32-bit stamps plus a set-local counter.
    /// For LRU the stamp is updated on every touch; for FIFO only on fill.
    Stamped {
        /// Per-way stamp; smallest is the victim.
        stamps: Box<[u32]>,
        /// Next stamp to hand out.
        clock: u32,
        /// Whether touches refresh the stamp (LRU) or not (FIFO).
        refresh_on_touch: bool,
    },
    /// Pseudo-random: no per-set state; the victim comes from the LFSR.
    Random,
    /// Tree-PLRU over a power-of-two number of ways.
    Tree {
        /// Internal-node bits of the PLRU tree (bit set = "go right next").
        bits: u64,
        /// Number of ways (power of two).
        ways: u32,
    },
    /// SRRIP-HP: one 2-bit re-reference prediction value per way.
    Srrip {
        /// Per-way RRPV (0 = near-immediate, [`SRRIP_MAX_RRPV`] = distant).
        rrpv: Box<[u8]>,
    },
}

impl ReplState {
    /// Creates state for a set of `ways` ways under `kind`.
    pub fn new(kind: ReplacementKind, ways: u32) -> Self {
        match kind {
            ReplacementKind::Lru => ReplState::Stamped {
                stamps: vec![0; ways as usize].into_boxed_slice(),
                clock: 0,
                refresh_on_touch: true,
            },
            ReplacementKind::Fifo => ReplState::Stamped {
                stamps: vec![0; ways as usize].into_boxed_slice(),
                clock: 0,
                refresh_on_touch: false,
            },
            ReplacementKind::PseudoRandom => ReplState::Random,
            ReplacementKind::TreePlru => {
                debug_assert!(ways.is_power_of_two() && ways <= 64);
                ReplState::Tree { bits: 0, ways }
            }
            ReplacementKind::Srrip => ReplState::Srrip {
                // Empty ways start "distant"; fills overwrite this, and a
                // victim is only ever chosen from a full set, so the
                // initial value is never observable.
                rrpv: vec![SRRIP_MAX_RRPV; ways as usize].into_boxed_slice(),
            },
        }
    }

    /// Notifies the state that `way` was referenced (hit).
    #[inline]
    pub fn touch(&mut self, way: u32) {
        match self {
            ReplState::Stamped { stamps, clock, refresh_on_touch } => {
                if *refresh_on_touch {
                    *clock += 1;
                    stamps[way as usize] = *clock;
                }
            }
            ReplState::Random => {}
            ReplState::Tree { bits, ways } => {
                Self::tree_point_away(bits, *ways, way);
            }
            ReplState::Srrip { rrpv } => rrpv[way as usize] = 0,
        }
    }

    /// Notifies the state that `way` was just filled.
    #[inline]
    pub fn filled(&mut self, way: u32) {
        match self {
            ReplState::Stamped { stamps, clock, .. } => {
                *clock += 1;
                stamps[way as usize] = *clock;
            }
            ReplState::Random => {}
            ReplState::Tree { bits, ways } => {
                Self::tree_point_away(bits, *ways, way);
            }
            ReplState::Srrip { rrpv } => rrpv[way as usize] = SRRIP_LONG_RRPV,
        }
    }

    /// Chooses a victim way among `ways` ways. `lfsr` supplies entropy for
    /// pseudo-random replacement. Mutable because SRRIP ages every way's
    /// RRPV until one reaches the eviction value.
    #[inline]
    pub fn victim(&mut self, ways: u32, lfsr: &mut Lfsr16) -> u32 {
        match self {
            ReplState::Stamped { stamps, .. } => {
                let mut best = 0u32;
                let mut best_stamp = u32::MAX;
                for (i, &s) in stamps.iter().enumerate().take(ways as usize) {
                    if s < best_stamp {
                        best_stamp = s;
                        best = i as u32;
                    }
                }
                best
            }
            ReplState::Random => {
                // Power-of-two way counts let us mask instead of mod.
                let r = lfsr.next() as u32;
                if ways.is_power_of_two() {
                    r & (ways - 1)
                } else {
                    r % ways
                }
            }
            ReplState::Tree { bits, ways: w } => {
                debug_assert_eq!(*w, ways);
                let mut node = 1u32; // heap-indexed tree, root at 1
                let levels = ways.trailing_zeros();
                for _ in 0..levels {
                    let right = (*bits >> node) & 1 == 1;
                    node = node * 2 + right as u32;
                }
                node - ways
            }
            ReplState::Srrip { rrpv } => loop {
                // Lowest-indexed way already at the maximum RRPV wins;
                // otherwise age the whole set and rescan.
                if let Some(i) = rrpv.iter().take(ways as usize).position(|&r| r == SRRIP_MAX_RRPV)
                {
                    return i as u32;
                }
                for r in rrpv.iter_mut().take(ways as usize) {
                    *r += 1;
                }
            },
        }
    }

    /// Flips the PLRU path bits so the tree points *away* from `way`.
    #[inline]
    fn tree_point_away(bits: &mut u64, ways: u32, way: u32) {
        let levels = ways.trailing_zeros();
        let mut node = 1u32;
        for level in (0..levels).rev() {
            let go_right = (way >> level) & 1 == 1;
            // Point the bit at the opposite child of the one we took.
            if go_right {
                *bits &= !(1 << node);
            } else {
                *bits |= 1 << node;
            }
            node = node * 2 + go_right as u32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lfsr_cycles_without_sticking() {
        let mut l = Lfsr16::new(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..65535 {
            assert!(seen.insert(l.next()), "LFSR state repeated early");
        }
        // Maximal-length: all 2^16-1 non-zero states visited.
        assert_eq!(seen.len(), 65535);
    }

    #[test]
    fn lfsr_zero_seed_is_fixed() {
        let mut l = Lfsr16::new(0);
        assert_ne!(l.next(), 0);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut s = ReplState::new(ReplacementKind::Lru, 4);
        let mut lfsr = Lfsr16::default();
        for w in 0..4 {
            s.filled(w);
        }
        s.touch(0); // order now 1,2,3,0 by age
        assert_eq!(s.victim(4, &mut lfsr), 1);
        s.touch(1);
        assert_eq!(s.victim(4, &mut lfsr), 2);
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut s = ReplState::new(ReplacementKind::Fifo, 4);
        let mut lfsr = Lfsr16::default();
        for w in 0..4 {
            s.filled(w);
        }
        s.touch(0);
        s.touch(0);
        assert_eq!(s.victim(4, &mut lfsr), 0, "FIFO must evict oldest fill despite touches");
    }

    #[test]
    fn random_covers_all_ways() {
        let mut s = ReplState::new(ReplacementKind::PseudoRandom, 4);
        let mut lfsr = Lfsr16::default();
        let mut hit = [false; 4];
        for _ in 0..200 {
            hit[s.victim(4, &mut lfsr) as usize] = true;
        }
        assert!(hit.iter().all(|&h| h));
    }

    #[test]
    fn plru_never_evicts_most_recent() {
        let mut s = ReplState::new(ReplacementKind::TreePlru, 8);
        let mut lfsr = Lfsr16::default();
        for w in 0..8 {
            s.filled(w);
            assert_ne!(s.victim(8, &mut lfsr), w, "PLRU picked the way just filled");
        }
        for w in [3u32, 5, 0, 7, 2] {
            s.touch(w);
            assert_ne!(s.victim(8, &mut lfsr), w, "PLRU picked the way just touched");
        }
    }

    #[test]
    fn plru_two_way_alternates() {
        let mut s = ReplState::new(ReplacementKind::TreePlru, 2);
        let mut lfsr = Lfsr16::default();
        s.touch(0);
        assert_eq!(s.victim(2, &mut lfsr), 1);
        s.touch(1);
        assert_eq!(s.victim(2, &mut lfsr), 0);
    }

    #[test]
    fn srrip_fill_predicts_long_and_hit_promotes() {
        let mut s = ReplState::new(ReplacementKind::Srrip, 4);
        let mut lfsr = Lfsr16::default();
        for w in 0..4 {
            s.filled(w); // every way at RRPV 2 ("long")
        }
        s.touch(2); // way 2 promoted to RRPV 0
                    // No way is at RRPV 3: one ageing round lifts ways 0,1,3 to 3 and
                    // the lowest index wins.
        assert_eq!(s.victim(4, &mut lfsr), 0);
        // The promoted way needs three ageing rounds before it's evictable:
        // after the round above it sits at 1, the others at 3.
        s.filled(0);
        assert_eq!(s.victim(4, &mut lfsr), 1, "way 1 already aged to the maximum");
    }

    #[test]
    fn srrip_victim_is_lowest_index_at_max_rrpv() {
        let mut s = ReplState::new(ReplacementKind::Srrip, 4);
        let mut lfsr = Lfsr16::default();
        for w in 0..4 {
            s.filled(w);
        }
        s.touch(0);
        s.touch(1); // RRPVs now [0, 0, 2, 2]
        assert_eq!(s.victim(4, &mut lfsr), 2, "ties at the maximum break to the lowest index");
    }

    #[test]
    fn srrip_never_evicts_just_touched_way_in_small_sets() {
        let mut s = ReplState::new(ReplacementKind::Srrip, 2);
        let mut lfsr = Lfsr16::default();
        s.filled(0);
        s.filled(1);
        s.touch(1);
        assert_eq!(s.victim(2, &mut lfsr), 0, "the untouched way must age out first");
    }

    #[test]
    fn lru_full_cycle_is_fifo_when_untouch() {
        // Without touches, LRU degenerates to fill order.
        let mut s = ReplState::new(ReplacementKind::Lru, 4);
        let mut lfsr = Lfsr16::default();
        for w in [2u32, 0, 3, 1] {
            s.filled(w);
        }
        assert_eq!(s.victim(4, &mut lfsr), 2);
    }
}
