//! Analytical L2 prediction from one reuse-distance profiling pass.
//!
//! The family engine ([`filter_family`](crate::filter_family)) already
//! replays one event pass per L1 group *per associativity family*; every
//! extra L2 point still costs a per-event probe. This module removes the
//! replay entirely for conventional hierarchies: walk the group's miss
//! stream **once**, capture a reuse-distance histogram of the L2 probe
//! stream, then answer *every* L2 size/ways point from the histogram in
//! time independent of the event count.
//!
//! ## Model
//!
//! The probe stream seen by a conventional L2 is L2-independent (see
//! [`filter`](crate::filter)); an access's *reuse distance* `d` is the
//! number of distinct lines probed since the previous probe of the same
//! line, plus one. The prediction per L2 geometry (`s` sets × `a` ways):
//!
//! * **Fully associative LRU** (`s == 1`): exact Mattson — the access
//!   hits iff `d <= a`.
//! * **Set-associative LRU**: the Ling et al. binomial set-partition
//!   model ("Fast Modeling L2 Cache Reuse Distance Histograms"). The
//!   `d - 1` distinct interposed lines each land in the access's set
//!   with probability `1/s`; the line survives iff fewer than `a` did:
//!   `P_hit(d) = Pr[Binomial(d - 1, 1/s) <= a - 1]`. At `s == 1` this
//!   degenerates to the exact Mattson indicator.
//! * **Direct-mapped** (`a == 1`): exact — the same pass drives a
//!   [`NestedDmProfiler`] over every direct-mapped set count in the
//!   group, so 1-way predictions are real tag-array counts, not
//!   binomial estimates.
//!
//! Off-chip writebacks are estimated from the same pass: each written L1
//! victim merges into the L2 if present (probability `P_hit(p)` at its
//! current stack position `p`) and otherwise goes straight off-chip;
//! merged-dirty lines contribute a deferred writeback when they leave
//! the cache before their next probe (`P_hit(t) - P_hit(d)` for a merge
//! at position `t` reprobed at distance `d`). Both terms reduce to a
//! signed histogram accumulated in the single pass.
//!
//! ## Soundness domain and ε contract
//!
//! Replay remains ground truth. Prediction is *exact* for single-level
//! hierarchies and for direct-mapped conventional L2 hit/miss counts;
//! everything else is approximate, with three documented error sources:
//! the binomial set-partition assumption (probe lines treated as
//! uniformly spread over sets), the LRU assumption (swept L2s use
//! pseudo-random replacement), and recency refreshes by dirty-victim
//! merges, which the probe-order stack does not track. Exclusive
//! hierarchies are out of the model entirely (L2 contents depend on L1
//! victim swaps) — callers must fall back to replay. Consumers compare
//! local L2 miss ratios via [`miss_ratio_error`] against a tolerance ε;
//! [`MISS_RATIO_EPSILON`] is the contract the `predict_equivalence`
//! suite and the audit's `predict-vs-family` check enforce.

use crate::config::CacheConfig;
use crate::filter::{walk_events, EventSink, MissStream};
use crate::mattson::{Fenwick, NestedDmProfiler};
use crate::stats::HierarchyStats;
use std::collections::HashMap;
use tlc_trace::LineAddr;

/// Documented tolerance on the local L2 miss ratio: predicted vs
/// family-replayed ratios agree to within this bound on the equivalence
/// suite's benchmark × geometry grid. The bound is set by fpppp, whose
/// tight floating-point loops are the worst case for the LRU model —
/// a loop slightly wider than the cache scores near zero under LRU but
/// keeps a capacity-fraction of hits under the replayed pseudo-random
/// replacement (observed peak 0.150 on a 32 KB 4-way L2); every other
/// benchmark stays under 0.04 across the grid. Callers with stricter
/// or looser needs pass their own ε to [`miss_ratio_error`] comparisons.
pub const MISS_RATIO_EPSILON: f64 = 0.16;

/// Hit probabilities below this are treated as zero: the incremental
/// binomial tail is abandoned once it can no longer move a count.
const NEGLIGIBLE_HIT_PROB: f64 = 1e-12;

/// Sentinel "clean at every capacity" dirty floor.
const CLEAN: u64 = u64::MAX;

/// Per-line state carried across the profiling pass.
#[derive(Debug, Clone, Copy)]
struct LineState {
    /// Fenwick time slot of the line's most recent probe.
    last: usize,
    /// Smallest capacity (in lines) at which the line currently holds
    /// dirty data, [`CLEAN`] if none: a written victim merged at stack
    /// position `p` dirties every capacity `>= p` (smaller ones already
    /// evicted the line and take an immediate writeback instead).
    dirty_floor: u64,
}

/// The profiling [`EventSink`]: exact reuse-distance histogram over the
/// probe stream plus the signed writeback histogram, sharing the Fenwick
/// machinery with [`StackDistanceProfiler`](crate::StackDistanceProfiler).
#[derive(Debug)]
struct ReuseProfiler {
    fenwick: Fenwick,
    lines: HashMap<LineAddr, LineState>,
    clock: usize,
    accesses: u64,
    cold: u64,
    written_victims: u64,
    /// `hist[d]`: measured probes with exact reuse distance `d`.
    hist: Vec<u64>,
    /// Signed coefficients `V[x]` such that predicted writebacks are
    /// `written_victims + Σ_x V[x] · P_hit(x)` (see the module docs).
    victim_hist: Vec<i64>,
    /// Exact direct-mapped tag arrays, when the group sweeps any.
    dm: Option<NestedDmProfiler>,
}

fn bump_u(v: &mut Vec<u64>, idx: usize, by: u64) {
    if idx >= v.len() {
        v.resize(idx + 1, 0);
    }
    v[idx] += by;
}

fn bump_i(v: &mut Vec<i64>, idx: usize, by: i64) {
    if idx >= v.len() {
        v.resize(idx + 1, 0);
    }
    v[idx] += by;
}

impl ReuseProfiler {
    fn new(dm_set_counts: &[u64]) -> Self {
        ReuseProfiler {
            fenwick: Fenwick::new(),
            lines: HashMap::new(),
            clock: 0,
            accesses: 0,
            cold: 0,
            written_victims: 0,
            hist: Vec::new(),
            victim_hist: Vec::new(),
            dm: (!dm_set_counts.is_empty()).then(|| NestedDmProfiler::new(dm_set_counts)),
        }
    }

    /// Stack position of a line whose last probe sat at slot `last`:
    /// distinct lines probed strictly after it, plus the line itself.
    #[inline]
    fn position(&self, last: usize) -> u64 {
        (self.fenwick.total() - self.fenwick.prefix(last)) as u64 + 1
    }

    /// Records the dirty lines still resident at end of stream: for
    /// capacities in `[floor, final_position)` the line has already been
    /// evicted dirty, with no later probe to account for it.
    fn flush_resident_dirty(&mut self) {
        if self.accesses == 0 {
            return;
        }
        let mut spans = Vec::new();
        for st in self.lines.values() {
            if st.dirty_floor != CLEAN {
                let p = self.position(st.last);
                if st.dirty_floor < p {
                    spans.push((st.dirty_floor as usize, p as usize));
                }
            }
        }
        for (floor, p) in spans {
            bump_i(&mut self.victim_hist, floor, 1);
            bump_i(&mut self.victim_hist, p, -1);
        }
    }
}

impl EventSink for ReuseProfiler {
    fn consume(&mut self, _fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
        self.accesses += 1;
        if let Some(dm) = &mut self.dm {
            dm.record(line.0);
        }
        let now = self.clock;
        self.clock += 1;
        if now > self.fenwick.capacity() {
            // Grow the time axis; only live lines carry a 1 (same scheme
            // as `StackDistanceProfiler`).
            let live: Vec<usize> = self.lines.values().map(|s| s.last).collect();
            self.fenwick.rebuild(now.max(2 * self.fenwick.capacity()), live.into_iter());
        }
        match self.lines.get(&line).copied() {
            None => {
                self.cold += 1;
                self.lines.insert(line, LineState { last: now, dirty_floor: CLEAN });
            }
            Some(st) => {
                let d = self.position(st.last);
                bump_u(&mut self.hist, d as usize, 1);
                // Capacities in [floor, d) evicted the line while dirty
                // and refill it clean on this probe's miss; larger ones
                // hit and keep the dirty data.
                let floor = if st.dirty_floor < d {
                    bump_i(&mut self.victim_hist, st.dirty_floor as usize, 1);
                    bump_i(&mut self.victim_hist, d as usize, -1);
                    d
                } else {
                    st.dirty_floor
                };
                self.lines.insert(line, LineState { last: now, dirty_floor: floor });
                self.fenwick.add(st.last, -1);
            }
        }
        self.fenwick.add(now, 1);
        // The victim merge happens after the probe in the conventional
        // back-end, so its stack position is measured post-probe.
        if let Some((vline, written)) = victim {
            if written {
                self.written_victims += 1;
                let pos = self.lines.get(&vline).map(|st| self.position(st.last));
                if let Some(p) = pos {
                    // Immediate writeback where absent: 1 - P_hit(p).
                    bump_i(&mut self.victim_hist, p as usize, -1);
                    let st = self.lines.get_mut(&vline).expect("state just read");
                    st.dirty_floor = st.dirty_floor.min(p);
                }
                // A line never probed is resident nowhere: the scalar
                // term alone counts one certain writeback.
            }
        }
    }

    fn reset_counters(&mut self) {
        self.accesses = 0;
        self.cold = 0;
        self.written_victims = 0;
        self.hist.iter_mut().for_each(|h| *h = 0);
        self.victim_hist.iter_mut().for_each(|h| *h = 0);
        if let Some(dm) = &mut self.dm {
            dm.reset_counters();
        }
    }
}

/// A captured reuse-distance profile of one L1 group's miss stream:
/// everything needed to predict any conventional L2 point analytically.
/// Capture once per group with [`ReuseProfile::capture`], then call
/// [`ReuseProfile::predict_conventional`] / [`ReuseProfile::predict_single`]
/// per design point.
#[derive(Debug, Clone)]
pub struct ReuseProfile {
    accesses: u64,
    written_victims: u64,
    hist: Vec<u64>,
    victim_hist: Vec<i64>,
    dm_set_counts: Vec<u64>,
    /// `(hits, misses)` per entry of `dm_set_counts`, measured window.
    dm_counters: Vec<(u64, u64)>,
}

impl ReuseProfile {
    /// Profiles `stream` in one event pass. `dm_set_counts` lists every
    /// direct-mapped set count (lines) the caller will later predict —
    /// those geometries get exact tag-array counts; pass `&[]` when the
    /// sweep has no 1-way L2s.
    ///
    /// # Panics
    ///
    /// Panics if `dm_set_counts` is non-empty but not strictly ascending
    /// powers of two (the [`NestedDmProfiler`] contract).
    pub fn capture(stream: &MissStream, dm_set_counts: &[u64]) -> Self {
        tlc_obs::obs_count!(tlc_obs::Counter::PredictGroupsProfiled, 1);
        tlc_obs::obs_count!(tlc_obs::Counter::PredictEventsProfiled, stream.len());
        let mut p = ReuseProfiler::new(dm_set_counts);
        walk_events(&mut p, stream);
        p.flush_resident_dirty();
        let dm_counters = p.dm.as_ref().map(|dm| dm.counters()).unwrap_or_default();
        ReuseProfile {
            accesses: p.accesses,
            written_victims: p.written_victims,
            hist: p.hist,
            victim_hist: p.victim_hist,
            dm_set_counts: dm_set_counts.to_vec(),
            dm_counters,
        }
    }

    /// Measured-window probes (every one of which the single-level
    /// hierarchy sends off-chip).
    pub fn events(&self) -> u64 {
        self.accesses
    }

    /// Expected hits `Σ_d hist[d] · P_hit(d)` and the writeback
    /// correction `Σ_x V[x] · P_hit(x)` for an `s × a` geometry, in one
    /// incremental-binomial walk over the histograms.
    fn hit_sums(&self, sets: u64, ways: u32) -> (f64, f64) {
        let a = ways as usize;
        let max_d = self.hist.len().max(self.victim_hist.len());
        // One set: the binomial is deterministic (every intervening
        // line lands in the probed set), so distance d hits iff d ≤ a —
        // the exact Mattson column, in O(a) instead of O(max_d · a).
        if sets == 1 {
            let hits: f64 =
                self.hist.iter().take(max_d.min(a + 1)).skip(1).map(|&h| h as f64).sum();
            let wb: f64 =
                self.victim_hist.iter().take(max_d.min(a + 1)).skip(1).map(|&v| v as f64).sum();
            return (hits, wb);
        }
        // The truncated pmf only loses mass once Bin(d − 1, 1/s) can
        // reach a, and the intervening-lines-in-set count is monotone in
        // d, so the mass escaped by the end of the walk is exactly
        // P[Bin(max_d − 1, 1/s) ≥ a]. When a sits far enough above the
        // mean μ = (max_d − 1)/s — the Chernoff bound below keeps that
        // tail under ~1e−9 — every phit on the walk is 1 − O(1e−9):
        // each probe hits and each victim interval completes, and the
        // whole walk collapses to two histogram sums. This is what makes
        // predicting large caches O(hist) instead of O(max_d · a).
        let mu = (max_d as f64 - 1.0) / sets as f64;
        if a as f64 - 1.0 >= mu + 21.0 * (1.0 + mu.sqrt()) {
            let hits: f64 = self.hist.iter().skip(1).map(|&h| h as f64).sum();
            let wb: f64 = self.victim_hist.iter().skip(1).map(|&v| v as f64).sum();
            return (hits, wb);
        }
        let p = 1.0 / sets as f64;
        let q = 1.0 - p;
        // pmf of Binomial(d - 1, 1/s) truncated to 0..a; the mass that
        // escapes past a - 1 is permanently lost (a miss at distance d
        // stays a miss at every larger one).
        let mut pmf = vec![0.0f64; a];
        pmf[0] = 1.0;
        let mut phit = 1.0;
        let mut hits = 0.0;
        let mut wb = 0.0;
        for d in 1..max_d {
            if let Some(&h) = self.hist.get(d) {
                hits += h as f64 * phit;
            }
            if let Some(&v) = self.victim_hist.get(d) {
                wb += v as f64 * phit;
            }
            if phit < NEGLIGIBLE_HIT_PROB {
                break;
            }
            for k in (1..a).rev() {
                pmf[k] = pmf[k] * q + pmf[k - 1] * p;
            }
            pmf[0] *= q;
            phit = pmf.iter().sum();
        }
        (hits, wb)
    }

    /// Predicts the measured-window statistics of a conventional
    /// hierarchy with this L2, assembled over the stream's L1 counters
    /// exactly like a replay would.
    ///
    /// # Panics
    ///
    /// Panics if `l2_cfg`'s line size differs from the stream's, or a
    /// direct-mapped `l2_cfg`'s set count was not named at capture.
    pub fn predict_conventional(
        &self,
        stream: &MissStream,
        l2_cfg: &CacheConfig,
    ) -> HierarchyStats {
        assert_eq!(l2_cfg.line_bytes(), stream.line_bytes(), "L1 and L2 must share a line size");
        let sets = l2_cfg.num_sets();
        let ways = l2_cfg.ways();
        let (hits_f, wb_corr) = self.hit_sums(sets, ways);
        let l2_hits = if ways == 1 {
            let i = self
                .dm_set_counts
                .iter()
                .position(|&s| s == sets)
                .expect("direct-mapped set count was not profiled at capture");
            self.dm_counters[i].0
        } else {
            (hits_f.round() as u64).min(self.accesses)
        };
        let offchip_writebacks = (self.written_victims as f64 + wb_corr).max(0.0).round() as u64;
        HierarchyStats {
            l2_hits,
            l2_misses: self.accesses - l2_hits,
            offchip_writebacks,
            ..*stream.l1_stats()
        }
    }

    /// Predicts (exactly) the single-level hierarchy: every probe goes
    /// off-chip, every written victim is written back.
    pub fn predict_single(&self, stream: &MissStream) -> HierarchyStats {
        HierarchyStats {
            l2_hits: 0,
            l2_misses: self.accesses,
            offchip_writebacks: self.written_victims,
            ..*stream.l1_stats()
        }
    }
}

/// Absolute difference of two results' local L2 miss ratios (misses per
/// L2 probe) — the quantity the ε contract bounds. Both sides of a
/// predicted-vs-replayed comparison share the probe count by
/// construction, so this is the natural normalized error.
pub fn miss_ratio_error(a: &HierarchyStats, b: &HierarchyStats) -> f64 {
    (a.l2_local_miss_rate() - b.l2_local_miss_rate()).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, ReplacementKind};
    use crate::filter::{replay_conventional, replay_single, L1FrontEnd};
    use crate::hierarchy::MemorySystem;
    use tlc_trace::spec::SpecBenchmark;
    use tlc_trace::InstructionSource;

    fn l1_cfg(bytes: u64) -> CacheConfig {
        CacheConfig::new(bytes, 16, Associativity::Direct, ReplacementKind::PseudoRandom).unwrap()
    }

    fn l2_cfg(bytes: u64, ways: u32, repl: ReplacementKind) -> CacheConfig {
        let assoc = if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
        CacheConfig::new(bytes, 16, assoc, repl).unwrap()
    }

    fn capture_spec(b: SpecBenchmark, l1_bytes: u64, warm: u64, n: u64) -> MissStream {
        let mut fe = L1FrontEnd::new(l1_cfg(l1_bytes));
        let mut w = b.workload();
        for _ in 0..warm {
            fe.access_instruction(&w.next_instruction_opt().unwrap());
        }
        fe.reset_stats();
        for _ in 0..n {
            fe.access_instruction(&w.next_instruction_opt().unwrap());
        }
        fe.finish(b.name())
    }

    #[test]
    fn direct_mapped_prediction_is_exact() {
        let stream = capture_spec(SpecBenchmark::Gcc1, 1024, 2_000, 10_000);
        let profile = ReuseProfile::capture(&stream, &[128, 256, 512]);
        for sets in [128u64, 256, 512] {
            let cfg = l2_cfg(sets * 16, 1, ReplacementKind::PseudoRandom);
            let got = profile.predict_conventional(&stream, &cfg);
            let want = replay_conventional(cfg, &stream);
            assert_eq!(
                (got.l2_hits, got.l2_misses),
                (want.l2_hits, want.l2_misses),
                "DM prediction must be exact at {sets} sets"
            );
        }
    }

    #[test]
    fn single_level_prediction_is_exact() {
        for warm in [0u64, 1_500] {
            let stream = capture_spec(SpecBenchmark::Tomcatv, 2048, warm, 6_000);
            let profile = ReuseProfile::capture(&stream, &[]);
            assert_eq!(profile.predict_single(&stream), replay_single(&stream), "warm={warm}");
        }
    }

    #[test]
    fn fully_associative_lru_is_exact_without_written_victims() {
        // Loads and fetches only: no written victims, hence no
        // recency-refreshing merges — the probe-order stack model is
        // exact for a fully-associative LRU L2, writebacks included.
        let mut fe = L1FrontEnd::new(l1_cfg(512));
        let mut x = 77u64;
        for _ in 0..20_000 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            let addr = tlc_trace::Addr::new((x % 30_000) * 4);
            let r = if x.is_multiple_of(3) {
                tlc_trace::MemRef::fetch(addr)
            } else {
                tlc_trace::MemRef::load(addr)
            };
            fe.access(r);
        }
        let stream = fe.finish("loads-only");
        let profile = ReuseProfile::capture(&stream, &[]);
        for lines in [64u64, 256, 1024] {
            let cfg = CacheConfig::new(lines * 16, 16, Associativity::Full, ReplacementKind::Lru)
                .unwrap();
            let got = profile.predict_conventional(&stream, &cfg);
            let want = replay_conventional(cfg, &stream);
            assert_eq!(got, want, "FA-LRU must be exact at {lines} lines with no victims");
        }
    }

    #[test]
    fn set_associative_lru_prediction_within_epsilon() {
        for b in [SpecBenchmark::Gcc1, SpecBenchmark::Espresso, SpecBenchmark::Li] {
            let stream = capture_spec(b, 1024, 2_000, 20_000);
            let profile = ReuseProfile::capture(&stream, &[]);
            for (bytes, ways) in [(4096u64, 2u32), (8192, 4), (32768, 8)] {
                let cfg = l2_cfg(bytes, ways, ReplacementKind::Lru);
                let got = profile.predict_conventional(&stream, &cfg);
                let want = replay_conventional(cfg, &stream);
                let err = miss_ratio_error(&got, &want);
                assert!(
                    err <= MISS_RATIO_EPSILON,
                    "{}: {bytes}B {ways}-way LRU miss-ratio error {err:.4} > ε",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn prediction_is_monotone_in_capacity() {
        let stream = capture_spec(SpecBenchmark::Fpppp, 1024, 1_000, 15_000);
        let profile = ReuseProfile::capture(&stream, &[]);
        for ways in [2u32, 4, 8] {
            let mut prev = u64::MAX;
            for bytes in [2048u64, 4096, 8192, 16384, 65536] {
                let cfg = l2_cfg(bytes, ways, ReplacementKind::PseudoRandom);
                let got = profile.predict_conventional(&stream, &cfg);
                assert!(
                    got.l2_misses <= prev,
                    "predicted misses rose with capacity at {bytes}B {ways}-way"
                );
                prev = got.l2_misses;
            }
        }
    }

    #[test]
    fn empty_measurement_window_predicts_zero() {
        let stream = capture_spec(SpecBenchmark::Li, 1024, 2_000, 0);
        assert_eq!(stream.warmup_events(), stream.len());
        let profile = ReuseProfile::capture(&stream, &[64]);
        let cfg = l2_cfg(4096, 4, ReplacementKind::PseudoRandom);
        assert_eq!(profile.predict_conventional(&stream, &cfg), HierarchyStats::default());
        assert_eq!(profile.predict_single(&stream), HierarchyStats::default());
        let dm = l2_cfg(1024, 1, ReplacementKind::PseudoRandom);
        assert_eq!(profile.predict_conventional(&stream, &dm), HierarchyStats::default());
    }

    #[test]
    fn miss_ratio_error_is_symmetric_and_zero_on_equal() {
        let a = HierarchyStats { l2_hits: 30, l2_misses: 70, ..Default::default() };
        let b = HierarchyStats { l2_hits: 50, l2_misses: 50, ..Default::default() };
        assert_eq!(miss_ratio_error(&a, &a), 0.0);
        assert!((miss_ratio_error(&a, &b) - 0.2).abs() < 1e-12);
        assert_eq!(miss_ratio_error(&a, &b), miss_ratio_error(&b, &a));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;
        use tlc_trace::events::EventArena;
        use tlc_trace::{AccessKind, MissEvent, VictimLine};

        /// Builds a synthetic miss stream from `(line, victim)` pairs.
        fn synthetic(events: &[(u64, Option<(u64, bool)>)], warm: usize) -> MissStream {
            let mut arena = EventArena::new();
            for &(line, victim) in events {
                arena.push(MissEvent {
                    kind: AccessKind::Load,
                    line: LineAddr(line),
                    victim: victim.map(|(l, written)| VictimLine { line: LineAddr(l), written }),
                });
            }
            MissStream::from_parts(
                "synthetic",
                arena,
                warm as u64,
                HierarchyStats::default(),
                1024,
                16,
            )
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Predicted direct-mapped hit/miss counts equal the exact
            /// replayed counts on arbitrary streams — 1-way prediction
            /// is not an estimate.
            #[test]
            fn dm_prediction_matches_replay_exactly(
                raw in prop::collection::vec((0u64..600, 0u64..600, any::<bool>()), 1..400),
                warm_frac in 0u8..4,
            ) {
                // Every third event carries no victim; the rest carry a
                // (possibly written) one.
                let events: Vec<(u64, Option<(u64, bool)>)> = raw
                    .iter()
                    .map(|&(line, v, w)| (line, (v % 3 != 0).then_some((v, w))))
                    .collect();
                let warm = events.len() * warm_frac as usize / 4;
                let stream = synthetic(&events, warm);
                let profile = ReuseProfile::capture(&stream, &[16, 64, 256]);
                for sets in [16u64, 64, 256] {
                    let cfg = CacheConfig::new(
                        sets * 16,
                        16,
                        Associativity::Direct,
                        ReplacementKind::PseudoRandom,
                    ).unwrap();
                    let got = profile.predict_conventional(&stream, &cfg);
                    let want = replay_conventional(cfg, &stream);
                    prop_assert_eq!(
                        (got.l2_hits, got.l2_misses),
                        (want.l2_hits, want.l2_misses),
                        "DM mismatch at {} sets", sets
                    );
                }
            }

            /// Predicted hits never exceed probes, and hit counts are
            /// monotone in associativity at fixed set count (more ways
            /// only raise every P_hit(d)).
            #[test]
            fn predictions_are_sane_and_monotone_in_ways(
                raw in prop::collection::vec((0u64..300, 0u64..300, any::<bool>()), 1..300),
            ) {
                let events: Vec<(u64, Option<(u64, bool)>)> = raw
                    .iter()
                    .map(|&(line, v, w)| (line, (v % 3 != 0).then_some((v, w))))
                    .collect();
                let stream = synthetic(&events, 0);
                let profile = ReuseProfile::capture(&stream, &[]);
                let mut prev_hits = 0u64;
                for ways in [2u32, 4, 8] {
                    let cfg = CacheConfig::new(
                        64 * 16 * ways as u64,
                        16,
                        Associativity::SetAssoc(ways),
                        ReplacementKind::Lru,
                    ).unwrap();
                    let got = profile.predict_conventional(&stream, &cfg);
                    prop_assert!(got.l2_hits + got.l2_misses == profile.events());
                    prop_assert!(
                        got.l2_hits >= prev_hits,
                        "hits fell as ways rose at 64 sets"
                    );
                    prev_hits = got.l2_hits;
                }
            }
        }
    }
}
