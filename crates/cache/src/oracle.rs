//! Deliberately-simple reference oracle for the differential audit.
//!
//! Every structure here trades speed for obviousness: caches are
//! per-set vectors of `Option<(line, dirty)>` scanned linearly, there are
//! no packed slots, no fast paths, no histogram tricks. The intent is an
//! implementation whose correctness is checkable by eye, so that when it
//! and a production engine disagree, the engine is the suspect.
//!
//! Three oracles live here:
//!
//! * [`NaiveSystem`] — a per-access re-implementation of the monolithic
//!   hierarchies ([`SingleLevel`](crate::SingleLevel),
//!   [`ConventionalTwoLevel`](crate::ConventionalTwoLevel),
//!   [`ExclusiveTwoLevel`](crate::ExclusiveTwoLevel)) behind the same
//!   [`MemorySystem`] trait, driven on the raw instruction stream. It
//!   reproduces the exact modelled semantics — the same-line fetch
//!   filter, store-only dirty fills, the Figure 21-a swap condition, and
//!   every [`ReplacementKind`]'s call discipline (for pseudo-random, one
//!   LFSR draw exactly when a set-associative fill finds no free way;
//!   direct-mapped fills never draw) — so its [`HierarchyStats`] must be
//!   bit-identical to every engine's.
//! * [`naive_replay_single`] / [`naive_replay_conventional`] /
//!   [`naive_replay_exclusive`] — event-level oracles for the
//!   miss-stream back-ends in [`filter`](crate::filter) and
//!   [`filter_family`](crate::filter_family), built on the same naive
//!   cache.
//! * [`lru_misses`] — a linear-scan fully-associative LRU simulation,
//!   the ground truth for the Mattson stack-distance profiler
//!   ([`StackDistanceProfiler`](crate::StackDistanceProfiler)).

use crate::config::ReplacementKind;
use crate::filter::{walk_events, EventSink, MissStream};
use crate::hierarchy::{MemorySystem, ServiceLevel};
use crate::replacement::{Lfsr16, ReplState};
use crate::stats::HierarchyStats;
use tlc_trace::{AccessKind, LineAddr, MemRef};

/// A cache as a vector of sets, each a vector of `Option<(line, dirty)>`
/// ways scanned linearly. Replacement is one simple per-set
/// [`ReplState`] machine per set — every [`ReplacementKind`] is
/// modelled, with the same call discipline as [`Cache`](crate::Cache):
/// touches on set-associative hits and write-back merges, fills on
/// installs, and (for pseudo-random) one LFSR draw exactly when a
/// set-associative fill finds no free way. Direct-mapped sets keep no
/// replacement state at all.
#[derive(Debug)]
struct NaiveCache {
    sets: Vec<Vec<Option<(u64, bool)>>>,
    repl: Vec<ReplState>,
    set_mask: u64,
    ways: u32,
    lfsr: Lfsr16,
}

impl NaiveCache {
    fn new(size_bytes: u64, line_bytes: u64, ways: u32, repl: ReplacementKind) -> Self {
        assert!(size_bytes.is_power_of_two(), "size must be a power of two");
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(ways.is_power_of_two(), "ways must be a power of two");
        let lines = size_bytes / line_bytes;
        assert!(lines >= ways as u64, "cache must hold at least `ways` lines");
        let num_sets = lines / ways as u64;
        NaiveCache {
            sets: vec![vec![None; ways as usize]; num_sets as usize],
            repl: (0..num_sets).map(|_| ReplState::new(repl, ways)).collect(),
            set_mask: num_sets - 1,
            ways,
            lfsr: Lfsr16::default(),
        }
    }

    fn set_index(&self, line: u64) -> u64 {
        line & self.set_mask
    }

    fn contains(&self, line: u64) -> bool {
        self.sets[self.set_index(line) as usize]
            .iter()
            .any(|w| matches!(w, Some((l, _)) if *l == line))
    }

    /// Demand access: on a hit merges the dirty bit, touches the
    /// replacement state (set-associative sets only, matching
    /// [`Cache::access`](crate::Cache::access)'s direct-mapped fast
    /// path), and returns `true`; on a miss leaves the cache unchanged.
    fn access(&mut self, line: u64, is_write: bool) -> bool {
        let set = self.set_index(line) as usize;
        for (i, w) in self.sets[set].iter_mut().enumerate() {
            if let Some((l, dirty)) = w {
                if *l == line {
                    *dirty |= is_write;
                    if self.ways > 1 {
                        self.repl[set].touch(i as u32);
                    }
                    return true;
                }
            }
        }
        false
    }

    /// Installs an absent line, returning the evicted `(line, dirty)` if
    /// a valid one was displaced. Victim choice replicates
    /// [`Cache::fill_after_miss`](crate::Cache::fill_after_miss): way 0
    /// when direct-mapped (no replacement bookkeeping at all), else the
    /// lowest free way (no draw), else the policy's victim — one LFSR
    /// draw for pseudo-random, a stamp/tree/RRPV scan otherwise.
    fn fill_after_miss(&mut self, line: u64, dirty: bool) -> Option<(u64, bool)> {
        let set = self.set_index(line) as usize;
        let way = if self.ways == 1 {
            0
        } else if let Some(free) = self.sets[set].iter().position(|w| w.is_none()) {
            self.repl[set].filled(free as u32);
            free
        } else {
            let v = self.repl[set].victim(self.ways, &mut self.lfsr);
            self.repl[set].filled(v);
            v as usize
        };
        let old = self.sets[set][way];
        self.sets[set][way] = Some((line, dirty));
        old
    }

    /// Merges `dirty` into a resident copy and refreshes its replacement
    /// state (as [`Cache::merge_if_present`](crate::Cache::merge_if_present)
    /// does), reporting whether one exists.
    fn merge_if_present(&mut self, line: u64, dirty: bool) -> bool {
        let set = self.set_index(line) as usize;
        for (i, w) in self.sets[set].iter_mut().enumerate() {
            if let Some((l, d)) = w {
                if *l == line {
                    *d |= dirty;
                    self.repl[set].touch(i as u32);
                    return true;
                }
            }
        }
        false
    }

    /// Removes a resident line, returning its dirty bit and way.
    fn extract(&mut self, line: u64) -> Option<(bool, usize)> {
        let set = self.set_index(line) as usize;
        for (i, w) in self.sets[set].iter_mut().enumerate() {
            if let Some((l, d)) = w {
                if *l == line {
                    let dirty = *d;
                    *w = None;
                    return Some((dirty, i));
                }
            }
        }
        None
    }

    /// Installs a line into a specific way of its set (the exclusive
    /// swap target), notifying the replacement state of the fill as
    /// [`Cache::fill_at`](crate::Cache::fill_at) does.
    fn fill_slot(&mut self, line: u64, dirty: bool, way: usize) {
        let set = self.set_index(line) as usize;
        self.sets[set][way] = Some((line, dirty));
        self.repl[set].filled(way as u32);
    }

    /// All resident lines, sorted (content comparison against the
    /// production caches).
    fn resident(&self) -> Vec<u64> {
        let mut v: Vec<u64> =
            self.sets.iter().flatten().filter_map(|w| w.map(|(l, _)| l)).collect();
        v.sort_unstable();
        v
    }
}

/// Which hierarchy the naive system models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NaivePolicy {
    Single,
    Conventional,
    Exclusive,
}

/// The per-access reference oracle: a naive re-implementation of the
/// monolithic hierarchies behind [`MemorySystem`]. See the module docs.
#[derive(Debug)]
pub struct NaiveSystem {
    l1i: NaiveCache,
    l1d: NaiveCache,
    l2: Option<NaiveCache>,
    policy: NaivePolicy,
    line_bytes: u64,
    stats: HierarchyStats,
    last_fetch: u64,
}

impl NaiveSystem {
    /// A single-level system: split direct-mapped L1s, no L2.
    pub fn single(l1_size_bytes: u64, line_bytes: u64) -> Self {
        NaiveSystem {
            l1i: NaiveCache::new(l1_size_bytes, line_bytes, 1, ReplacementKind::PseudoRandom),
            l1d: NaiveCache::new(l1_size_bytes, line_bytes, 1, ReplacementKind::PseudoRandom),
            l2: None,
            policy: NaivePolicy::Single,
            line_bytes,
            stats: HierarchyStats::default(),
            last_fetch: u64::MAX,
        }
    }

    /// A conventional two-level system with the given L2 replacement
    /// policy.
    pub fn conventional(
        l1_size_bytes: u64,
        line_bytes: u64,
        l2_size_bytes: u64,
        ways: u32,
        repl: ReplacementKind,
    ) -> Self {
        NaiveSystem {
            l1i: NaiveCache::new(l1_size_bytes, line_bytes, 1, ReplacementKind::PseudoRandom),
            l1d: NaiveCache::new(l1_size_bytes, line_bytes, 1, ReplacementKind::PseudoRandom),
            l2: Some(NaiveCache::new(l2_size_bytes, line_bytes, ways, repl)),
            policy: NaivePolicy::Conventional,
            line_bytes,
            stats: HierarchyStats::default(),
            last_fetch: u64::MAX,
        }
    }

    /// An exclusive (victim-swap) two-level system with the given L2
    /// replacement policy.
    pub fn exclusive(
        l1_size_bytes: u64,
        line_bytes: u64,
        l2_size_bytes: u64,
        ways: u32,
        repl: ReplacementKind,
    ) -> Self {
        NaiveSystem {
            l1i: NaiveCache::new(l1_size_bytes, line_bytes, 1, ReplacementKind::PseudoRandom),
            l1d: NaiveCache::new(l1_size_bytes, line_bytes, 1, ReplacementKind::PseudoRandom),
            l2: Some(NaiveCache::new(l2_size_bytes, line_bytes, ways, repl)),
            policy: NaivePolicy::Exclusive,
            line_bytes,
            stats: HierarchyStats::default(),
            last_fetch: u64::MAX,
        }
    }

    /// Resident lines of each level, sorted: `(l1i, l1d, l2)`, with an
    /// empty L2 vector for single-level systems. The audit compares this
    /// against the production caches' [`iter_lines`](crate::Cache::iter_lines)
    /// content — a stronger check than counter equality, since content
    /// drift can momentarily cancel out in the statistics.
    pub fn content(&self) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        (
            self.l1i.resident(),
            self.l1d.resident(),
            self.l2.as_ref().map(|l2| l2.resident()).unwrap_or_default(),
        )
    }

    /// Exclusive victim retirement with no swap slot: merge into an
    /// existing L2 copy, else insert into the victim's own set, counting
    /// a displaced dirty line as an off-chip writeback.
    fn send_victim_to_l2(&mut self, vline: u64, vdirty: bool) {
        let l2 = self.l2.as_mut().expect("two-level policy has an L2");
        if l2.merge_if_present(vline, vdirty) {
            return;
        }
        if let Some((_, old_dirty)) = l2.fill_after_miss(vline, vdirty) {
            if old_dirty {
                self.stats.offchip_writebacks += 1;
            }
        }
    }
}

impl MemorySystem for NaiveSystem {
    fn access(&mut self, r: MemRef) -> ServiceLevel {
        let line = r.addr.line(self.line_bytes).0;
        let is_write = r.kind == AccessKind::Store;
        let is_fetch = r.kind == AccessKind::InstrFetch;
        if is_fetch {
            self.stats.instructions += 1;
            if line == self.last_fetch {
                return ServiceLevel::L1;
            }
            self.last_fetch = line; // L1I is always direct-mapped here
            if self.l1i.access(line, false) {
                return ServiceLevel::L1;
            }
            self.stats.l1i_misses += 1;
        } else {
            self.stats.data_refs += 1;
            if self.l1d.access(line, is_write) {
                return ServiceLevel::L1;
            }
            self.stats.l1d_misses += 1;
        }

        match self.policy {
            NaivePolicy::Single => {
                self.stats.l2_misses += 1;
                let l1 = if is_fetch { &mut self.l1i } else { &mut self.l1d };
                if let Some((_, old_dirty)) = l1.fill_after_miss(line, is_write) {
                    if old_dirty {
                        self.stats.offchip_writebacks += 1;
                    }
                }
                ServiceLevel::Memory
            }
            NaivePolicy::Conventional => {
                let l2 = self.l2.as_mut().expect("two-level policy has an L2");
                let level = if l2.access(line, false) {
                    self.stats.l2_hits += 1;
                    ServiceLevel::L2
                } else {
                    self.stats.l2_misses += 1;
                    if let Some((_, old_dirty)) = l2.fill_after_miss(line, false) {
                        if old_dirty {
                            self.stats.offchip_writebacks += 1;
                        }
                    }
                    ServiceLevel::Memory
                };
                let l1 = if is_fetch { &mut self.l1i } else { &mut self.l1d };
                if let Some((vline, vdirty)) = l1.fill_after_miss(line, is_write) {
                    // Dirty victims merge into an existing L2 copy or go
                    // off-chip; clean victims vanish.
                    if vdirty
                        && !self
                            .l2
                            .as_mut()
                            .expect("two-level policy has an L2")
                            .merge_if_present(vline, true)
                    {
                        self.stats.offchip_writebacks += 1;
                    }
                }
                level
            }
            NaivePolicy::Exclusive => {
                let l2 = self.l2.as_mut().expect("two-level policy has an L2");
                if l2.access(line, false) {
                    self.stats.l2_hits += 1;
                    let (l2_dirty, slot_way) =
                        l2.extract(line).expect("L2 hit implies the line is extractable");
                    let slot_set = l2.set_index(line);
                    let l1 = if is_fetch { &mut self.l1i } else { &mut self.l1d };
                    let victim = l1.fill_after_miss(line, is_write || l2_dirty);
                    let l2 = self.l2.as_mut().expect("two-level policy has an L2");
                    match victim {
                        Some((vline, vdirty)) => {
                            if l2.set_index(vline) == slot_set && !l2.contains(vline) {
                                // Figure 21-a swap: the victim takes the
                                // requested line's way; the requested line
                                // now lives only in L1 (exclusion).
                                l2.fill_slot(vline, vdirty, slot_way);
                            } else {
                                l2.fill_slot(line, l2_dirty, slot_way);
                                self.send_victim_to_l2(vline, vdirty);
                            }
                        }
                        None => {
                            l2.fill_slot(line, l2_dirty, slot_way);
                        }
                    }
                    ServiceLevel::L2
                } else {
                    self.stats.l2_misses += 1;
                    // Off-chip refill bypasses the L2 (§8).
                    let l1 = if is_fetch { &mut self.l1i } else { &mut self.l1d };
                    if let Some((vline, vdirty)) = l1.fill_after_miss(line, is_write) {
                        self.send_victim_to_l2(vline, vdirty);
                    }
                    ServiceLevel::Memory
                }
            }
        }
    }

    fn stats(&self) -> &HierarchyStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = HierarchyStats::default();
    }

    fn describe(&self) -> String {
        format!("naive reference oracle ({:?})", self.policy)
    }
}

/// Event-level single-level oracle: every L1 miss goes off-chip; every
/// written victim is an off-chip writeback. Must match
/// [`replay_single`](crate::filter::replay_single) bit-for-bit.
pub fn naive_replay_single(stream: &MissStream) -> HierarchyStats {
    #[derive(Default)]
    struct Sink {
        l2_misses: u64,
        writebacks: u64,
    }
    impl EventSink for Sink {
        fn consume(&mut self, _fetch: bool, _line: LineAddr, victim: Option<(LineAddr, bool)>) {
            self.l2_misses += 1;
            if let Some((_, written)) = victim {
                if written {
                    self.writebacks += 1;
                }
            }
        }
        fn reset_counters(&mut self) {
            self.l2_misses = 0;
            self.writebacks = 0;
        }
    }
    let mut s = Sink::default();
    walk_events(&mut s, stream);
    HierarchyStats {
        l2_hits: 0,
        l2_misses: s.l2_misses,
        offchip_writebacks: s.writebacks,
        ..*stream.l1_stats()
    }
}

/// Event-level conventional-L2 oracle on the naive cache. Must match
/// [`replay_conventional`](crate::filter::replay_conventional) (and
/// every family engine member, including the direct-mapped threshold
/// fast path) bit-for-bit.
pub fn naive_replay_conventional(
    l2_size_bytes: u64,
    l2_ways: u32,
    l2_repl: ReplacementKind,
    stream: &MissStream,
) -> HierarchyStats {
    struct Sink {
        l2: NaiveCache,
        hits: u64,
        misses: u64,
        writebacks: u64,
    }
    impl EventSink for Sink {
        fn consume(&mut self, _fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
            if self.l2.access(line.0, false) {
                self.hits += 1;
            } else {
                self.misses += 1;
                if let Some((_, old_dirty)) = self.l2.fill_after_miss(line.0, false) {
                    if old_dirty {
                        self.writebacks += 1;
                    }
                }
            }
            if let Some((vline, written)) = victim {
                if written && !self.l2.merge_if_present(vline.0, true) {
                    self.writebacks += 1;
                }
            }
        }
        fn reset_counters(&mut self) {
            self.hits = 0;
            self.misses = 0;
            self.writebacks = 0;
        }
    }
    let mut s = Sink {
        l2: NaiveCache::new(l2_size_bytes, stream.line_bytes(), l2_ways, l2_repl),
        hits: 0,
        misses: 0,
        writebacks: 0,
    };
    walk_events(&mut s, stream);
    HierarchyStats {
        l2_hits: s.hits,
        l2_misses: s.misses,
        offchip_writebacks: s.writebacks,
        ..*stream.l1_stats()
    }
}

/// Event-level exclusive-L2 oracle on the naive cache, carrying the
/// per-L1-set fill-dirty mirror the event stream cannot encode. Must
/// match [`replay_exclusive`](crate::filter::replay_exclusive) and the
/// exclusive family engine bit-for-bit.
pub fn naive_replay_exclusive(
    l2_size_bytes: u64,
    l2_ways: u32,
    l2_repl: ReplacementKind,
    stream: &MissStream,
) -> HierarchyStats {
    struct Sink {
        l2: NaiveCache,
        mirror_i: Vec<bool>,
        mirror_d: Vec<bool>,
        l1_set_mask: u64,
        hits: u64,
        misses: u64,
        writebacks: u64,
    }
    impl Sink {
        fn send_victim(&mut self, vline: u64, vdirty: bool) {
            if self.l2.merge_if_present(vline, vdirty) {
                return;
            }
            if let Some((_, old_dirty)) = self.l2.fill_after_miss(vline, vdirty) {
                if old_dirty {
                    self.writebacks += 1;
                }
            }
        }
    }
    impl EventSink for Sink {
        fn consume(&mut self, fetch: bool, line: LineAddr, victim: Option<(LineAddr, bool)>) {
            let set = (line.0 & self.l1_set_mask) as usize;
            let mirror = if fetch { &mut self.mirror_i } else { &mut self.mirror_d };
            // Victim dirty = store-written || filled-from-dirty-L2, read
            // before the new fill overwrites the mirror entry.
            let victim = victim.map(|(vline, written)| (vline.0, written || mirror[set]));
            if self.l2.access(line.0, false) {
                self.hits += 1;
                let (l2_dirty, slot_way) =
                    self.l2.extract(line.0).expect("L2 hit implies the line is extractable");
                mirror[set] = l2_dirty;
                let slot_set = self.l2.set_index(line.0);
                match victim {
                    Some((vline, vdirty)) => {
                        if self.l2.set_index(vline) == slot_set && !self.l2.contains(vline) {
                            self.l2.fill_slot(vline, vdirty, slot_way);
                        } else {
                            self.l2.fill_slot(line.0, l2_dirty, slot_way);
                            self.send_victim(vline, vdirty);
                        }
                    }
                    None => {
                        self.l2.fill_slot(line.0, l2_dirty, slot_way);
                    }
                }
            } else {
                self.misses += 1;
                mirror[set] = false;
                if let Some((vline, vdirty)) = victim {
                    self.send_victim(vline, vdirty);
                }
            }
        }
        fn reset_counters(&mut self) {
            self.hits = 0;
            self.misses = 0;
            self.writebacks = 0;
        }
    }
    let sets = (stream.l1_size_bytes() / stream.line_bytes()) as usize;
    let mut s = Sink {
        l2: NaiveCache::new(l2_size_bytes, stream.line_bytes(), l2_ways, l2_repl),
        mirror_i: vec![false; sets],
        mirror_d: vec![false; sets],
        l1_set_mask: sets as u64 - 1,
        hits: 0,
        misses: 0,
        writebacks: 0,
    };
    walk_events(&mut s, stream);
    HierarchyStats {
        l2_hits: s.hits,
        l2_misses: s.misses,
        offchip_writebacks: s.writebacks,
        ..*stream.l1_stats()
    }
}

/// Misses of a fully-associative LRU cache of `capacity_lines` lines on
/// `lines`, by direct simulation (a `Vec` ordered most-recent-first,
/// linear search, O(n·capacity)). Ground truth for
/// [`StackDistanceProfiler::misses_at_capacity`](crate::StackDistanceProfiler::misses_at_capacity).
pub fn lru_misses(lines: &[u64], capacity_lines: usize) -> u64 {
    assert!(capacity_lines > 0, "capacity must be positive");
    let mut stack: Vec<u64> = Vec::with_capacity(capacity_lines + 1);
    let mut misses = 0u64;
    for &l in lines {
        match stack.iter().position(|&s| s == l) {
            Some(i) => {
                stack.remove(i);
            }
            None => {
                misses += 1;
                if stack.len() == capacity_lines {
                    stack.pop();
                }
            }
        }
        stack.insert(0, l);
    }
    misses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Associativity, CacheConfig, ReplacementKind};
    use crate::exclusive::ExclusiveTwoLevel;
    use crate::single::SingleLevel;
    use crate::twolevel::ConventionalTwoLevel;
    use tlc_trace::Addr;

    fn cfg(bytes: u64, ways: u32, repl: ReplacementKind) -> CacheConfig {
        let assoc = if ways == 1 { Associativity::Direct } else { Associativity::SetAssoc(ways) };
        CacheConfig::new(bytes, 16, assoc, repl).unwrap()
    }

    fn dm(bytes: u64) -> CacheConfig {
        cfg(bytes, 1, ReplacementKind::PseudoRandom)
    }

    /// A deterministic mixed fetch/load/store stream with enough conflict
    /// pressure to exercise every fill path.
    fn stream(len: usize, space: u64) -> Vec<MemRef> {
        let mut x = 0x1234_5678_9abc_def0u64;
        (0..len)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let addr = Addr::new((x >> 16) % space);
                match x % 3 {
                    0 => MemRef::fetch(addr),
                    1 => MemRef::load(addr),
                    _ => MemRef::store(addr),
                }
            })
            .collect()
    }

    #[test]
    fn naive_single_matches_monolithic() {
        let mut real = SingleLevel::new(dm(1024));
        let mut naive = NaiveSystem::single(1024, 16);
        for r in stream(30_000, 64 * 1024) {
            real.access(r);
            naive.access(r);
        }
        assert_eq!(real.stats(), naive.stats());
    }

    #[test]
    fn naive_conventional_matches_monolithic() {
        for repl in ReplacementKind::ALL {
            for ways in [1u32, 2, 4] {
                let mut real = ConventionalTwoLevel::new(dm(1024), cfg(8192, ways, repl));
                let mut naive = NaiveSystem::conventional(1024, 16, 8192, ways, repl);
                for r in stream(30_000, 64 * 1024) {
                    real.access(r);
                    naive.access(r);
                }
                assert_eq!(real.stats(), naive.stats(), "{repl} {ways}-way");
            }
        }
    }

    #[test]
    fn naive_exclusive_matches_monolithic() {
        for repl in ReplacementKind::ALL {
            for ways in [1u32, 2, 4] {
                let mut real = ExclusiveTwoLevel::new(dm(1024), cfg(8192, ways, repl));
                let mut naive = NaiveSystem::exclusive(1024, 16, 8192, ways, repl);
                for r in stream(30_000, 64 * 1024) {
                    real.access(r);
                    naive.access(r);
                }
                assert_eq!(real.stats(), naive.stats(), "{repl} {ways}-way");
            }
        }
    }

    #[test]
    fn naive_event_oracles_match_scalar_backends() {
        use crate::filter::{replay_conventional, replay_exclusive, replay_single, L1FrontEnd};
        let mut fe = L1FrontEnd::new(dm(1024));
        let refs = stream(40_000, 64 * 1024);
        for r in &refs[..10_000] {
            fe.access(*r);
        }
        fe.reset_stats();
        for r in &refs[10_000..] {
            fe.access(*r);
        }
        let s = fe.finish("oracle-test");
        assert_eq!(naive_replay_single(&s), replay_single(&s));
        for repl in ReplacementKind::ALL {
            for ways in [1u32, 2, 8] {
                assert_eq!(
                    naive_replay_conventional(4096, ways, repl, &s),
                    replay_conventional(cfg(4096, ways, repl), &s),
                    "conventional {repl} {ways}-way"
                );
                assert_eq!(
                    naive_replay_exclusive(4096, ways, repl, &s),
                    replay_exclusive(cfg(4096, ways, repl), &s),
                    "exclusive {repl} {ways}-way"
                );
            }
        }
    }

    #[test]
    fn lru_misses_matches_mattson() {
        use crate::mattson::StackDistanceProfiler;
        let mut x = 42u64;
        let lines: Vec<u64> = (0..5000)
            .map(|_| {
                x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
                x % 300
            })
            .collect();
        let mut p = StackDistanceProfiler::new();
        for &l in &lines {
            p.record(LineAddr(l));
        }
        for cap in [1u64, 16, 64, 256] {
            assert_eq!(p.misses_at_capacity(cap), lru_misses(&lines, cap as usize), "cap {cap}");
        }
    }
}
